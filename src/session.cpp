// Session: the re-entrant streaming driver behind Plan::open()/run()
// (docs/STREAMING.md). run_initial() is the old one-shot driver with the
// per-rank graph slices retained; update() mutates them in place and
// re-converges warm.
#include "dlouvain.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/metrics.hpp"
#include "louvain/serial.hpp"
#include "louvain/shared.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace dlouvain {

namespace {

void write_text_file(const std::string& path, const std::string& what,
                     const std::function<void(std::ofstream&)>& emit) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + what + " output " + path);
  emit(out);
  if (!out) throw std::runtime_error("failed writing " + what + " output " + path);
}

/// Copies the engine-agnostic scalar block of a result into `out`.
template <typename R>
void assign_scalars(Result& out, const R& r) {
  out.community = r.community;
  out.modularity = r.modularity;
  out.num_communities = r.num_communities;
  out.phases = r.phases;
  out.total_iterations = r.total_iterations;
  out.seconds = r.seconds;
}

}  // namespace

void Session::run_initial(const graph::Csr& g) {
  result_.engine = plan_.engine_;
  switch (plan_.engine_) {
    case Engine::kSerial: {
      csr_ = g;
      auto r = louvain::louvain_serial(csr_, plan_.base_config());
      assign_scalars(result_, r);
      result_.local = std::move(r);
      break;
    }
    case Engine::kShared: {
      csr_ = g;
      auto r = louvain::louvain_shared(csr_, plan_.base_config(), plan_.threads_);
      assign_scalars(result_, r);
      result_.local = std::move(r);
      break;
    }
    case Engine::kDistributed: {
      auto cfg = plan_.dist_config();

      // Claim the checkpoint directory for the session's lifetime BEFORE
      // anything touches it: two live runs checkpointing into one directory
      // interleave (and prune) each other's phase files. The lock is a
      // pidfile, so a directory orphaned by a crashed process is reclaimed,
      // while a genuinely live owner -- another process, or another Session
      // in this one -- turns into a PlanError naming both parties.
      if (!cfg.checkpoint.dir.empty()) {
        static std::atomic<std::uint64_t> next_session_id{0};
        const std::string tag =
            "s" + std::to_string(next_session_id.fetch_add(1, std::memory_order_relaxed));
        try {
          auto lock = std::make_shared<core::CheckpointDirLock>(cfg.checkpoint.dir, tag);
          checkpoint_lock_ = std::move(lock);
        } catch (const core::CheckpointDirBusy& busy) {
          throw PlanError("checkpointing(\"" + cfg.checkpoint.dir +
                          "\"): directory is in use by [" + busy.owner +
                          "] and this plan (pid " + std::to_string(::getpid()) +
                          " session " + tag +
                          ") would interleave its phase files; point the two "
                          "runs at different directories");
        }
      }

      options_.timeout_seconds = plan_.comm_timeout_;
      options_.retransmit_max = plan_.retransmit_max_;
      options_.retransmit_backoff_ms = plan_.retransmit_backoff_ms_;
      // One injector for the whole session: crash triggers are one-shot, so
      // a restarted attempt (and later updates) proceed past fired faults.
      if (plan_.faults_)
        options_.faults = std::make_shared<comm::FaultInjector>(*plan_.faults_);
      // One trace store for the whole session: failed-attempt and update
      // spans flush alongside the initial run's.
      if (!plan_.trace_path_.empty())
        options_.trace = std::make_shared<util::TraceStore>(plan_.ranks_);

      // What the newest on-disk checkpoint has banked so far (zero without
      // checkpointing). Per-attempt deltas of this split a failed attempt's
      // traffic into salvaged (resumable) and wasted.
      core::RunCounters banked;
      if (!cfg.checkpoint.dir.empty()) {
        banked = core::checkpoint_latest_counters(cfg.checkpoint.dir)
                     .value_or(core::RunCounters{});
      }

      active_ranks_ = plan_.ranks_;

      // Fold one attempt's arq.*/heartbeat.* counters into the ladder
      // telemetry. Must run before options_.metrics is replaced.
      const auto harvest_ladder = [&] {
        const util::MetricsSnapshot t = options_.metrics->total();
        result_.recovery.nacks += t[util::Counter::kArqNacks];
        result_.recovery.retransmits += t[util::Counter::kArqRetransmits];
        result_.recovery.backoff_ms += t[util::Counter::kArqBackoffMs];
        result_.recovery.escalations += t[util::Counter::kArqEscalations];
        result_.recovery.slow_verdict_extensions +=
            t[util::Counter::kHeartbeatExtensions];
      };
      const auto harvest_injector = [&] {
        if (!options_.faults) return;
        result_.recovery.injected_delays = options_.faults->delayed.load();
        result_.recovery.injected_duplicates = options_.faults->duplicated.load();
        result_.recovery.injected_corruptions = options_.faults->corrupted.load();
        result_.recovery.injected_crashes = options_.faults->crashes_fired.load();
        result_.recovery.injected_losses = options_.faults->lost.load();
      };

      // Recovery driver: on any detectable communication failure, restart --
      // from the newest checkpoint when checkpointing is on, from scratch
      // otherwise -- up to max_restarts_ extra attempts. A rank-DEAD verdict
      // (rung 2) with shrink_on_rank_loss additionally drops the world to
      // the survivors before resuming (rung 3).
      std::atomic<int> progress{-1};

      // Bookkeeping for one DISCARDED attempt: replayed phases and wasted
      // traffic. Runs for the final failed attempt too (before the rethrow),
      // so a run that ultimately fails still reports honest waste.
      const auto account_failed_attempt = [&] {
        const int next_resume =
            cfg.checkpoint.dir.empty()
                ? 0
                : core::checkpoint_latest_phase(cfg.checkpoint.dir).value_or(0);
        // Phases [next_resume, progress] ran this attempt and will run
        // again on the next one.
        result_.recovery.phases_replayed +=
            std::max(0, progress.load(std::memory_order_relaxed) + 1 - next_resume);

        // Wasted = everything this attempt sent (algorithm + checkpoint
        // I/O) minus what it banked into a checkpoint -- the banked part
        // re-enters the final result through its restored counters.
        const util::MetricsSnapshot spent = options_.metrics->total();
        core::RunCounters now;
        if (!cfg.checkpoint.dir.empty()) {
          now = core::checkpoint_latest_counters(cfg.checkpoint.dir)
                    .value_or(core::RunCounters{});
        }
        const std::int64_t banked_messages =
            std::max<std::int64_t>(0, now.messages - banked.messages);
        const std::int64_t banked_bytes =
            std::max<std::int64_t>(0, now.bytes - banked.bytes);
        result_.recovery.wasted_messages += std::max<std::int64_t>(
            0, spent[util::Counter::kMessages] +
                   spent[util::Counter::kCheckpointMessages] - banked_messages);
        result_.recovery.wasted_bytes += std::max<std::int64_t>(
            0, spent[util::Counter::kBytes] +
                   spent[util::Counter::kCheckpointBytes] - banked_bytes);
        banked = now;
        harvest_ladder();
      };
      // Final-failure path: finish the books, persist what we know (best
      // effort -- never mask the original exception), and let the caller's
      // rethrow proceed.
      const auto finalize_failure = [&](int attempt) {
        result_.recovery.attempts = attempt + 1;
        result_.recovery.final_ranks = active_ranks_;
        harvest_injector();
        try {
          write_artifacts();
        } catch (...) {
        }
      };
      // Marker span in rank 0's ring (post-join, so single-writer safe):
      // restarts and shrinks show up on the recovery timeline.
      const auto mark = [&](const char* name, int attempt) {
        if (options_.trace)
          util::TraceSpan span(options_.trace->buffer(0), name, "recovery", attempt);
      };

      for (int attempt = 0;; ++attempt) {
        progress.store(-1, std::memory_order_relaxed);
        // A FRESH registry per attempt: a discarded attempt's traffic is
        // accounted to recovery.wasted_*, never carried into the next
        // attempt's counters. Sized to the CURRENT world (shrinks resize).
        options_.metrics = std::make_shared<util::MetricsRegistry>(active_ranks_);
        // Retain this attempt's fine slices for update(): distinct
        // elements, written by distinct rank-threads.
        rank_graphs_.assign(static_cast<std::size_t>(active_ranks_), {});
        try {
          core::DistResult r;
          comm::run(
              active_ranks_,
              [&](comm::Comm& comm) {
                auto dist = graph::DistGraph::from_replicated(comm, g, plan_.partition_);
                rank_graphs_[static_cast<std::size_t>(comm.rank())] = dist;
                auto local = core::dist_louvain(comm, std::move(dist), cfg, &progress);
                if (comm.rank() == 0) r = std::move(local);
              },
              options_);
          result_.recovery.attempts = attempt + 1;
          result_.recovery.resumed_from_phase = r.resumed_from_phase;
          harvest_ladder();
          assign_scalars(result_, r);
          result_.distributed = std::move(r);
          break;
        } catch (const comm::RankDead& e) {
          // Rung-2 verdict: a specific rank is permanently gone. Retrying at
          // the same size would hit the same dead rank again; shrink to the
          // survivors (rung 3) when allowed, give up otherwise.
          account_failed_attempt();
          result_.recovery.verdicts_dead += 1;
          if (!plan_.shrink_on_rank_loss_ || active_ranks_ <= 1 ||
              attempt >= plan_.max_restarts_) {
            finalize_failure(attempt);
            throw;
          }
          active_ranks_ -= 1;
          result_.recovery.shrinks += 1;
          // The dead hardware left the world: its kill trigger must not
          // re-fire against the renumbered survivor ranks.
          if (options_.faults) options_.faults->retire(e.rank);
          cfg.checkpoint.resume = !cfg.checkpoint.dir.empty();
          mark("recovery_shrink", attempt);
        } catch (const comm::CommFailure&) {
          account_failed_attempt();
          if (attempt >= plan_.max_restarts_) {
            finalize_failure(attempt);
            throw;
          }
          cfg.checkpoint.resume = !cfg.checkpoint.dir.empty();
          mark("recovery_restart", attempt);
        }
      }

      result_.recovery.final_ranks = active_ranks_;
      harvest_injector();
      break;
    }
  }
  write_artifacts();
}

UpdateStats Session::update(const EdgeBatch& batch) {
  if (!poisoned_.empty()) throw SessionPoisoned(poisoned_);
  if (batch.empty()) return {};

  // Cheap local validation up front: a malformed batch must throw without
  // touching session state (and, distributed, without spinning up ranks).
  // Removal-of-an-absent-edge is graph-dependent and detected collectively
  // by apply_edge_changes -- still before anything commits, because updates
  // mutate per-rank COPIES and swap them in only on success.
  const auto n = static_cast<VertexId>(result_.community.size());
  for (const auto& c : batch.changes()) {
    if (c.u < 0 || c.u >= n || c.v < 0 || c.v >= n)
      throw std::invalid_argument("EdgeBatch: endpoint outside [0, num_vertices)");
    if (c.u == c.v) throw std::invalid_argument("EdgeBatch: self loops not allowed");
    if (!c.remove && !(c.weight > 0))
      throw std::invalid_argument("EdgeBatch: added weight must be > 0");
  }

  UpdateStats stats = plan_.engine_ == Engine::kDistributed ? update_distributed(batch)
                                                            : update_local(batch);

  result_.updates.batches_applied += 1;
  result_.updates.edges_added += stats.edges_added;
  result_.updates.edges_removed += stats.edges_removed;
  result_.updates.vertices_reactivated += stats.vertices_reactivated;
  result_.updates.reconverge_iterations += stats.reconverge_iterations;
  result_.updates.fallback_to_full += stats.fell_back_to_full ? 1 : 0;
  write_artifacts();
  return stats;
}

UpdateStats Session::update_distributed(const EdgeBatch& batch) {
  const util::WallTimer timer;
  auto cfg = plan_.dist_config();
  cfg.checkpoint = {};  // updates never checkpoint or resume

  const double prev_mod = result_.modularity;
  const auto& prev = result_.community;

  // Seed representative per community: its minimum member vertex id. The
  // warm start names communities in vertex-id space (the engine's community
  // ids ARE vertex ids), and the minimum is stable on every rank.
  std::vector<VertexId> rep(static_cast<std::size_t>(result_.num_communities),
                            kInvalidVertex);
  for (std::size_t v = 0; v < prev.size(); ++v) {
    auto& r = rep[static_cast<std::size_t>(prev[v])];
    if (r == kInvalidVertex) r = static_cast<VertexId>(v);
  }

  // Sorted unique batch endpoints: the reactivation probe set.
  std::vector<VertexId> touched;
  touched.reserve(batch.size() * 2);
  for (const auto& c : batch.changes()) {
    touched.push_back(c.u);
    touched.push_back(c.v);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  UpdateStats stats;
  for (const auto& c : batch.changes()) (c.remove ? stats.edges_removed : stats.edges_added) += 1;

  core::DistResult r;
  bool fell_back = false;
  std::int64_t reactivated = 0;
  long warm_iterations = 0;
  std::vector<graph::DistGraph> updated(rank_graphs_.size());

  // Ladder telemetry keeps accumulating across updates: link-level repairs
  // during a streaming batch count like any other.
  const auto harvest_update_ladder = [&] {
    const util::MetricsSnapshot t = options_.metrics->total();
    result_.recovery.nacks += t[util::Counter::kArqNacks];
    result_.recovery.retransmits += t[util::Counter::kArqRetransmits];
    result_.recovery.backoff_ms += t[util::Counter::kArqBackoffMs];
    result_.recovery.escalations += t[util::Counter::kArqEscalations];
    result_.recovery.slow_verdict_extensions += t[util::Counter::kHeartbeatExtensions];
  };

  // Updates run at the session's CURRENT world size (shrunk sessions stay
  // shrunk: the dead rank's hardware is still gone).
  for (int attempt = 0;; ++attempt) {
    try {
      options_.metrics = std::make_shared<util::MetricsRegistry>(active_ranks_);
      comm::run(
          active_ranks_,
          [&](comm::Comm& comm) {
            const auto rk = static_cast<std::size_t>(comm.rank());
            // Mutate a COPY; the session's graphs swap only after the whole
            // collective succeeds, so a crashed/failed update retries (or
            // throws) against pristine state.
            auto g = rank_graphs_[rk];
            g.apply_edge_changes(comm, batch.changes());

            // Warm start: batch endpoints and their (post-batch)
            // neighbourhoods reactivate; everyone else is frozen into the
            // previous assignment, seeded through its representative.
            const VertexId local_n = g.local_count();
            core::WarmStart warm;
            warm.seed_community.resize(static_cast<std::size_t>(local_n));
            warm.reactivated.assign(static_cast<std::size_t>(local_n), 0);
            // Coarsening escalates on the same drift scale the fallback
            // uses: a batch that moves modularity less than the tolerated
            // drift exits at the (cheap) warm phase 0.
            warm.exit_threshold = plan_.update_fallback_;
            const auto hit = [&](VertexId gv) {
              return std::binary_search(touched.begin(), touched.end(), gv);
            };
            std::int64_t local_reactivated = 0;
            for (VertexId lv = 0; lv < local_n; ++lv) {
              const VertexId gv = g.to_global(lv);
              bool active = hit(gv);
              if (!active) {
                for (const auto& e : g.local().neighbors(lv)) {
                  if (hit(e.dst)) { active = true; break; }
                }
              }
              warm.reactivated[static_cast<std::size_t>(lv)] = active ? 1 : 0;
              local_reactivated += active ? 1 : 0;
              warm.seed_community[static_cast<std::size_t>(lv)] =
                  rep[static_cast<std::size_t>(prev[static_cast<std::size_t>(gv)])];
            }
            const auto global_reactivated =
                comm.allreduce_sum<std::int64_t>(local_reactivated);

            auto warm_graph = g;
            auto local = core::dist_louvain(comm, std::move(warm_graph), cfg,
                                            nullptr, &warm);
            const long iterations0 =
                local.phase_telemetry.empty() ? 0 : local.phase_telemetry.front().iterations;

            // Fallback: the warm result drifted too far below the previous
            // modularity -- the frozen skeleton no longer fits. The test is
            // rank-symmetric (modularity is collective-identical), so every
            // rank takes the same branch.
            const bool fb = local.modularity < prev_mod - plan_.update_fallback_;
            if (fb) {
              auto scratch = g;
              local = core::dist_louvain(comm, std::move(scratch), cfg);
            }

            updated[rk] = std::move(g);
            if (comm.rank() == 0) {
              r = std::move(local);
              fell_back = fb;
              reactivated = global_reactivated;
              warm_iterations = iterations0;
            }
          },
          options_);
      break;
    } catch (const comm::RankDead& e) {
      // A permanent death mid-update: the session's per-rank slices are
      // partitioned for a world that no longer exists, and a retry at the
      // old size can only hit the same dead rank again (kill triggers
      // re-fire until retired). Poison the session -- every later
      // update()/result() reports this cause -- and let the verdict
      // propagate. The pre-batch state itself is untouched (copies), but
      // there is no world left to run it on.
      harvest_update_ladder();
      result_.recovery.attempts += 1;
      result_.recovery.verdicts_dead += 1;
      poisoned_ = std::string("session poisoned by rank-death during update ") +
                  "(batch " + std::to_string(result_.updates.batches_applied + 1) +
                  "): " + e.what() + "; re-open the plan to continue";
      throw;
    } catch (const comm::CommFailure&) {
      harvest_update_ladder();
      result_.recovery.attempts += 1;
      // Transient failure past the budget: propagate, but do NOT poison --
      // nothing committed (copy-mutate-commit), so the next update() starts
      // from the pristine pre-batch state with a fresh restart budget.
      if (attempt >= plan_.max_restarts_) throw;
    }
  }
  harvest_update_ladder();

  rank_graphs_ = std::move(updated);
  assign_scalars(result_, r);
  result_.distributed = std::move(r);
  if (options_.faults) {
    result_.recovery.injected_delays = options_.faults->delayed.load();
    result_.recovery.injected_duplicates = options_.faults->duplicated.load();
    result_.recovery.injected_corruptions = options_.faults->corrupted.load();
    result_.recovery.injected_crashes = options_.faults->crashes_fired.load();
    result_.recovery.injected_losses = options_.faults->lost.load();
  }

  stats.vertices_reactivated = reactivated;
  stats.reconverge_iterations = warm_iterations;
  stats.fell_back_to_full = fell_back;
  stats.seconds = timer.seconds();
  return stats;
}

UpdateStats Session::update_local(const EdgeBatch& batch) {
  const util::WallTimer timer;
  const VertexId n = csr_.num_vertices();

  // Materialize the undirected edge list (each edge once: row <= dst; the
  // CSR stores a self loop once, so `>=` keeps it once too).
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(csr_.edges().size() / 2) + batch.size());
  for (VertexId v = 0; v < n; ++v) {
    for (const auto& e : csr_.neighbors(v)) {
      if (e.dst >= v) edges.push_back(Edge{v, e.dst, e.weight});
    }
  }

  UpdateStats stats;
  // Removals resolve against the pre-batch edge set, matching the
  // distributed engine: every removal must consume a distinct existing
  // edge; leftovers (absent edge, duplicate removal) throw BEFORE anything
  // mutates.
  std::map<std::pair<VertexId, VertexId>, std::int64_t> to_remove;
  for (const auto& c : batch.changes()) {
    if (c.remove) to_remove[std::minmax(c.u, c.v)] += 1;
  }
  if (!to_remove.empty()) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto it = to_remove.find(std::minmax(edges[i].src, edges[i].dst));
      if (it != to_remove.end() && it->second > 0) {
        it->second -= 1;
        continue;
      }
      edges[out++] = edges[i];
    }
    std::int64_t missing = 0;
    for (const auto& [edge, count] : to_remove) missing += count;
    if (missing > 0) {
      throw std::invalid_argument(
          "EdgeBatch: " + std::to_string(missing) +
          " removal(s) name edges absent from the graph");
    }
    edges.resize(out);
  }
  for (const auto& c : batch.changes()) {
    if (c.remove) {
      stats.edges_removed += 1;
    } else {
      stats.edges_added += 1;
      edges.push_back(Edge{c.u, c.v, c.weight});  // from_edges merges duplicates
    }
  }

  // Serial/shared sessions are not incremental: rebuild and recompute in
  // full (and say so in the stats/telemetry).
  csr_ = graph::from_edges(n, edges);
  if (plan_.engine_ == Engine::kSerial) {
    auto r = louvain::louvain_serial(csr_, plan_.base_config());
    assign_scalars(result_, r);
    result_.local = std::move(r);
  } else {
    auto r = louvain::louvain_shared(csr_, plan_.base_config(), plan_.threads_);
    assign_scalars(result_, r);
    result_.local = std::move(r);
  }
  stats.fell_back_to_full = true;
  stats.seconds = timer.seconds();
  return stats;
}

void Session::write_artifacts() const {
  if (!plan_.trace_path_.empty()) {
    if (options_.trace) {
      write_text_file(plan_.trace_path_, "trace", [&](std::ofstream& f) {
        options_.trace->write_chrome_trace(f);
      });
    } else {
      // Serial/shared sessions still honour trace(): an empty-but-valid
      // trace (process metadata only) beats a confusing missing file.
      const util::TraceStore empty(1);
      write_text_file(plan_.trace_path_, "trace",
                      [&](std::ofstream& f) { empty.write_chrome_trace(f); });
    }
  }
  if (!plan_.metrics_path_.empty()) {
    write_text_file(plan_.metrics_path_, "metrics",
                    [&](std::ofstream& f) { f << result_.to_json() << '\n'; });
  }
}

}  // namespace dlouvain
