// 1D vertex partitions (paper Section IV "Input Distribution").
//
// Every rank owns a contiguous global-id interval; because the split points
// are replicated, any rank can compute the owner of any vertex or community
// without communication ("each process knows the vertex and community
// intervals owned by every other process").
#pragma once

#include <vector>

#include "util/types.hpp"

namespace dlouvain::graph {

class Partition1D {
 public:
  Partition1D() = default;

  /// starts must be non-decreasing with starts.front()==0; rank r owns
  /// [starts[r], starts[r+1]).
  explicit Partition1D(std::vector<VertexId> starts);

  [[nodiscard]] int num_ranks() const noexcept { return static_cast<int>(starts_.size()) - 1; }
  [[nodiscard]] VertexId num_vertices() const noexcept { return starts_.back(); }

  [[nodiscard]] VertexId begin(Rank r) const { return starts_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] VertexId end(Rank r) const { return starts_[static_cast<std::size_t>(r) + 1]; }
  [[nodiscard]] VertexId count(Rank r) const { return end(r) - begin(r); }

  /// Owner rank of global id v (binary search over split points).
  [[nodiscard]] Rank owner(VertexId v) const;

  [[nodiscard]] const std::vector<VertexId>& starts() const noexcept { return starts_; }

  friend bool operator==(const Partition1D&, const Partition1D&) = default;

 private:
  std::vector<VertexId> starts_{0};
};

/// Even split of [0, n) into p intervals (remainder spread over low ranks).
Partition1D partition_even_vertices(VertexId n, int p);

/// Edge-balanced split: choose split points so each rank's interval carries
/// roughly total_degree/p arc endpoints. `degree(v)` is queried for each
/// vertex once; works for any degree oracle (CSR row length, generator
/// metadata, ...). This is the paper's "each process receives roughly the
/// same number of edges" distribution.
template <typename DegreeFn>
Partition1D partition_even_edges(VertexId n, int p, DegreeFn&& degree) {
  EdgeId total = 0;
  for (VertexId v = 0; v < n; ++v) total += degree(v);
  std::vector<VertexId> starts(static_cast<std::size_t>(p) + 1, n);
  starts[0] = 0;
  EdgeId cum = 0;
  int next_split = 1;
  for (VertexId v = 0; v < n && next_split < p; ++v) {
    cum += degree(v);
    // Place split k after the vertex where cumulative degree crosses k/p of
    // the total. Guarantees monotone, possibly-empty tail intervals.
    while (next_split < p &&
           cum * p >= total * next_split) {
      starts[static_cast<std::size_t>(next_split++)] = v + 1;
    }
  }
  for (int k = next_split; k < p; ++k) starts[static_cast<std::size_t>(k)] = n;
  starts[static_cast<std::size_t>(p)] = n;
  return Partition1D(std::move(starts));
}

}  // namespace dlouvain::graph
