#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dlouvain::graph {

Csr::Csr(VertexId num_vertices, std::vector<EdgeId> offsets, std::vector<HalfEdge> edges)
    : num_vertices_(num_vertices), offsets_(std::move(offsets)), edges_(std::move(edges)) {
  if (offsets_.size() != static_cast<std::size_t>(num_vertices_) + 1)
    throw std::invalid_argument("Csr: offsets must have num_vertices+1 entries");
  if (offsets_.back() != static_cast<EdgeId>(edges_.size()))
    throw std::invalid_argument("Csr: offsets.back() must equal edges.size()");
}

Weight Csr::weighted_degree(VertexId v) const {
  Weight k = 0;
  for (const auto& e : neighbors(v)) k += e.dst == v ? 2 * e.weight : e.weight;
  return k;
}

Weight Csr::total_arc_weight() const {
  Weight total = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) total += weighted_degree(v);
  return total;
}

Csr build_csr(VertexId num_vertices, std::vector<Edge> arcs, const BuildOptions& opts) {
  if (num_vertices < 0) throw std::invalid_argument("build_csr: negative vertex count");

  if (opts.symmetrize) {
    const std::size_t original = arcs.size();
    arcs.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      const Edge& e = arcs[i];
      if (e.src != e.dst) arcs.push_back(Edge{e.dst, e.src, e.weight});
    }
  }

  for (const Edge& e : arcs) {
    if (e.src < 0 || e.src >= num_vertices || e.dst < 0 || e.dst >= num_vertices)
      throw std::out_of_range("build_csr: arc endpoint outside [0, num_vertices)");
  }

  if (opts.drop_self_loops) {
    std::erase_if(arcs, [](const Edge& e) { return e.src == e.dst; });
  }

  std::sort(arcs.begin(), arcs.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });

  if (opts.coalesce) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (out > 0 && arcs[out - 1].src == arcs[i].src && arcs[out - 1].dst == arcs[i].dst) {
        arcs[out - 1].weight += arcs[i].weight;
      } else {
        arcs[out++] = arcs[i];
      }
    }
    arcs.resize(out);
  }

  std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : arcs) ++offsets[static_cast<std::size_t>(e.src) + 1];
  for (std::size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];

  std::vector<HalfEdge> edges;
  edges.reserve(arcs.size());
  for (const Edge& e : arcs) edges.push_back(HalfEdge{e.dst, e.weight});

  return Csr(num_vertices, std::move(offsets), std::move(edges));
}

Csr from_edges(VertexId num_vertices, const std::vector<Edge>& undirected_edges) {
  return build_csr(num_vertices, undirected_edges, BuildOptions{});
}

}  // namespace dlouvain::graph
