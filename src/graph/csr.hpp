// Compressed-sparse-row graph storage (paper Section IV: "We use the
// compressed sparse row (CSR) format to store the vertex and edge lists").
//
// A Csr holds `num_vertices` rows; row v lists the arcs leaving v. Undirected
// graphs are stored symmetrically (both arc directions present), so the total
// arc weight equals 2m in the modularity formulas.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace dlouvain::graph {

class Csr {
 public:
  Csr() = default;

  /// Construct from prebuilt arrays. offsets.size() must be n+1 and
  /// offsets.back() must equal edges.size().
  Csr(VertexId num_vertices, std::vector<EdgeId> offsets, std::vector<HalfEdge> edges);

  [[nodiscard]] VertexId num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] EdgeId num_arcs() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  /// Arcs leaving v (v is a row index in [0, num_vertices)).
  [[nodiscard]] std::span<const HalfEdge> neighbors(VertexId v) const {
    const auto lo = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const auto hi = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    return {edges_.data() + lo, hi - lo};
  }

  /// Unweighted out-degree of row v.
  [[nodiscard]] EdgeId degree(VertexId v) const {
    return offsets_[static_cast<std::size_t>(v) + 1] - offsets_[static_cast<std::size_t>(v)];
  }

  /// Weighted out-degree of row v (k_v in the modularity formulas; self-loop
  /// weight counts twice, matching the adjacency-matrix convention where a
  /// self loop contributes A_vv = 2w).
  [[nodiscard]] Weight weighted_degree(VertexId v) const;

  /// Sum of all arc weights; equals 2m for a symmetric graph with self loops
  /// pre-doubled at build time.
  [[nodiscard]] Weight total_arc_weight() const;

  [[nodiscard]] const std::vector<EdgeId>& offsets() const noexcept { return offsets_; }
  [[nodiscard]] const std::vector<HalfEdge>& edges() const noexcept { return edges_; }

 private:
  VertexId num_vertices_{0};
  std::vector<EdgeId> offsets_{0};
  std::vector<HalfEdge> edges_;
};

/// Options for assembling a Csr from an arc soup.
struct BuildOptions {
  /// Add the reverse of every arc (input is an undirected edge list).
  bool symmetrize{true};
  /// Merge parallel arcs by summing their weights.
  bool coalesce{true};
  /// Drop self loops entirely (rebuild keeps them -- they carry intra-
  /// community weight -- but raw inputs usually shouldn't have them).
  bool drop_self_loops{false};
};

/// Build a CSR over vertex ids [0, num_vertices) from an arbitrary arc list.
/// Arcs with endpoints outside the range throw std::out_of_range.
///
/// Self loops: a retained self loop (u,u,w) is stored as ONE arc whose weight
/// is counted twice by weighted_degree(), so modularity arithmetic sees the
/// conventional A_uu = 2w. (The rebuild step creates these.)
Csr build_csr(VertexId num_vertices, std::vector<Edge> arcs, const BuildOptions& opts = {});

/// Convenience for tests/examples: undirected edge list -> symmetric CSR.
Csr from_edges(VertexId num_vertices, const std::vector<Edge>& undirected_edges);

}  // namespace dlouvain::graph
