// Structural summary statistics for graphs -- used by the CLI tool, the
// generator validation tests, and the bench banners.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace dlouvain::graph {

struct DegreeStats {
  EdgeId min_degree{0};
  EdgeId max_degree{0};
  double mean_degree{0};
  double stddev_degree{0};
  VertexId isolated_vertices{0};
  EdgeId self_loops{0};
  Weight total_weight_2m{0};
  /// log2 histogram: bucket[i] counts vertices with degree in [2^i, 2^(i+1)).
  /// bucket[0] also holds degree-0 and degree-1 vertices.
  std::vector<VertexId> log2_histogram;
};

DegreeStats degree_stats(const Csr& g);

/// Mean local clustering coefficient over (up to) `sample` vertices with
/// degree >= 2, computed exactly by sorted-adjacency intersection.
/// Deterministic: samples vertices at a fixed stride.
double mean_clustering_coefficient(const Csr& g, VertexId sample = 2000);

/// Connected components via union-find; returns component id per vertex
/// (smallest member id) and the component count.
struct ComponentsResult {
  std::vector<VertexId> component;
  VertexId count{0};
};
ComponentsResult connected_components(const Csr& g);

}  // namespace dlouvain::graph
