#include "graph/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dlouvain::graph {

Partition1D::Partition1D(std::vector<VertexId> starts) : starts_(std::move(starts)) {
  if (starts_.size() < 2) throw std::invalid_argument("Partition1D: need >= 1 rank");
  if (starts_.front() != 0) throw std::invalid_argument("Partition1D: starts[0] must be 0");
  if (!std::is_sorted(starts_.begin(), starts_.end()))
    throw std::invalid_argument("Partition1D: starts must be non-decreasing");
}

Rank Partition1D::owner(VertexId v) const {
  if (v < 0 || v >= num_vertices()) throw std::out_of_range("Partition1D::owner: id out of range");
  // upper_bound finds the first split strictly greater than v; owner is the
  // interval just before it. Empty intervals are skipped automatically
  // because their start == end cannot strictly exceed v first.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), v);
  return static_cast<Rank>(it - starts_.begin() - 1);
}

Partition1D partition_even_vertices(VertexId n, int p) {
  if (p <= 0) throw std::invalid_argument("partition_even_vertices: p must be positive");
  std::vector<VertexId> starts(static_cast<std::size_t>(p) + 1);
  const VertexId base = n / p;
  const VertexId extra = n % p;
  starts[0] = 0;
  for (int r = 0; r < p; ++r) {
    const VertexId len = base + (r < extra ? 1 : 0);
    starts[static_cast<std::size_t>(r) + 1] = starts[static_cast<std::size_t>(r)] + len;
  }
  return Partition1D(std::move(starts));
}

}  // namespace dlouvain::graph
