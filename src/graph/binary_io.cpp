#include "graph/binary_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace dlouvain::graph {

namespace {

constexpr std::uint64_t kMagic = 0x444c454c30303031ULL;  // "DLEL0001"
constexpr std::size_t kHeaderBytes = 3 * 8;
constexpr std::size_t kRecordBytes = 8 + 8 + 8;

struct PackedRecord {
  std::int64_t src;
  std::int64_t dst;
  double weight;
};
static_assert(sizeof(PackedRecord) == kRecordBytes);

}  // namespace

void write_binary(const std::string& path, VertexId num_vertices,
                  const std::vector<Edge>& undirected_edges) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("write_binary: cannot open " + path);

  const std::uint64_t magic = kMagic;
  const std::int64_t n = num_vertices;
  const std::int64_t m = static_cast<std::int64_t>(undirected_edges.size());
  file.write(reinterpret_cast<const char*>(&magic), 8);
  file.write(reinterpret_cast<const char*>(&n), 8);
  file.write(reinterpret_cast<const char*>(&m), 8);

  for (const Edge& e : undirected_edges) {
    const PackedRecord rec{e.src, e.dst, e.weight};
    file.write(reinterpret_cast<const char*>(&rec), sizeof rec);
  }
  if (!file) throw std::runtime_error("write_binary: write failed for " + path);
}

BinaryHeader read_binary_header(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("read_binary_header: cannot open " + path);
  std::uint64_t magic = 0;
  std::int64_t n = 0;
  std::int64_t m = 0;
  file.read(reinterpret_cast<char*>(&magic), 8);
  file.read(reinterpret_cast<char*>(&n), 8);
  file.read(reinterpret_cast<char*>(&m), 8);
  if (!file || magic != kMagic)
    throw std::runtime_error("read_binary_header: not a DLEL file: " + path);
  return BinaryHeader{n, m};
}

std::vector<Edge> read_binary_slice(const std::string& path, EdgeId lo, EdgeId hi) {
  const auto header = read_binary_header(path);
  if (lo < 0 || hi < lo || hi > header.num_edges)
    throw std::out_of_range("read_binary_slice: bad record range");

  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("read_binary_slice: cannot open " + path);
  file.seekg(static_cast<std::streamoff>(kHeaderBytes + static_cast<std::size_t>(lo) * kRecordBytes));

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(hi - lo));
  for (EdgeId i = lo; i < hi; ++i) {
    PackedRecord rec{};
    file.read(reinterpret_cast<char*>(&rec), sizeof rec);
    if (!file) throw std::runtime_error("read_binary_slice: truncated file " + path);
    edges.push_back(Edge{rec.src, rec.dst, rec.weight});
  }
  return edges;
}

void write_distributed(comm::Comm& comm, const DistGraph& g, const std::string& path) {
  // Canonical record set: each undirected edge once, owned by the rank
  // holding its smaller endpoint (which stores the src < dst arc); self
  // loops by their owner.
  std::vector<Edge> records;
  for (VertexId lv = 0; lv < g.local_count(); ++lv) {
    const VertexId gv = g.to_global(lv);
    for (const auto& e : g.local().neighbors(lv)) {
      if (gv <= e.dst) records.push_back(Edge{gv, e.dst, e.weight});
    }
  }

  const auto my_count = static_cast<EdgeId>(records.size());
  const EdgeId offset = comm.exscan_sum(my_count);
  const EdgeId total = comm.allreduce_sum(my_count);

  // Rank 0 lays down the header and sizes the file; everyone then writes
  // its record range at a disjoint offset (the MPI-I/O pattern in reverse).
  if (comm.rank() == 0) {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("write_distributed: cannot create " + path);
    const std::uint64_t magic = kMagic;
    const std::int64_t n = g.global_n();
    const std::int64_t m = total;
    file.write(reinterpret_cast<const char*>(&magic), 8);
    file.write(reinterpret_cast<const char*>(&n), 8);
    file.write(reinterpret_cast<const char*>(&m), 8);
  }
  comm.barrier();  // header before anyone seeks past it

  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!file) throw std::runtime_error("write_distributed: cannot open " + path);
  file.seekp(static_cast<std::streamoff>(kHeaderBytes +
                                         static_cast<std::size_t>(offset) * kRecordBytes));
  for (const Edge& e : records) {
    const PackedRecord rec{e.src, e.dst, e.weight};
    file.write(reinterpret_cast<const char*>(&rec), sizeof rec);
  }
  file.flush();
  if (!file) throw std::runtime_error("write_distributed: write failed for " + path);
  comm.barrier();  // file complete before any rank returns
}

DistGraph load_distributed(comm::Comm& comm, const std::string& path, PartitionKind kind) {
  const auto header = read_binary_header(path);
  const int p = comm.size();
  const Rank r = comm.rank();

  // Disjoint contiguous record slice per rank -- the MPI-I/O access pattern.
  const EdgeId per = header.num_edges / p;
  const EdgeId extra = header.num_edges % p;
  const EdgeId lo = r * per + std::min<EdgeId>(r, extra);
  const EdgeId hi = lo + per + (r < extra ? 1 : 0);
  std::vector<Edge> slice = read_binary_slice(path, lo, hi);

  Partition1D part;
  if (kind == PartitionKind::kEvenVertices) {
    part = partition_even_vertices(header.num_vertices, p);
  } else {
    // Edge-balanced: accumulate endpoint counts for this slice, sum across
    // ranks, and cut where cumulative degree crosses each 1/p quantile.
    // (Dense n-length counting is fine at simulator scale; a production MPI
    // build would shard this, but the resulting partition is identical.)
    std::vector<EdgeId> degree(static_cast<std::size_t>(header.num_vertices), 0);
    for (const Edge& e : slice) {
      ++degree[static_cast<std::size_t>(e.src)];
      if (e.dst != e.src) ++degree[static_cast<std::size_t>(e.dst)];
    }
    degree = comm.allreduce_sum_vec(degree);
    part = partition_even_edges(header.num_vertices, p,
                                [&](VertexId v) { return degree[static_cast<std::size_t>(v)]; });
  }
  return DistGraph::build(comm, part, std::move(slice), /*symmetrize=*/true);
}

}  // namespace dlouvain::graph
