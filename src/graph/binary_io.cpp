#include "graph/binary_io.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/crc32.hpp"

namespace dlouvain::graph {

namespace {

constexpr std::uint64_t kMagicV1 = 0x444c454c30303031ULL;  // "DLEL0001"
constexpr std::uint64_t kMagicV2 = 0x444c454c30303032ULL;  // "DLEL0002"
constexpr std::size_t kHeaderBytes = 3 * 8;
constexpr std::size_t kRecordBytes = 8 + 8 + 8;
constexpr std::size_t kFooterBytes = 4;  // u32 CRC, version 2 only

struct PackedRecord {
  std::int64_t src;
  std::int64_t dst;
  double weight;
};
static_assert(sizeof(PackedRecord) == kRecordBytes);

void validate_record(const PackedRecord& rec, VertexId num_vertices, EdgeId index,
                     const std::string& path) {
  if (rec.src < 0 || rec.src >= num_vertices || rec.dst < 0 || rec.dst >= num_vertices)
    throw std::runtime_error("read_binary_slice: record " + std::to_string(index) +
                             " of " + path + " has endpoint out of [0, " +
                             std::to_string(num_vertices) + "): src=" +
                             std::to_string(rec.src) + " dst=" + std::to_string(rec.dst));
  if (!std::isfinite(rec.weight) || rec.weight < 0)
    throw std::runtime_error("read_binary_slice: record " + std::to_string(index) +
                             " of " + path + " has invalid weight " +
                             std::to_string(rec.weight));
}

/// CRC32 of the first `length` bytes of `path`, streamed in 64 KiB chunks.
std::uint32_t file_crc(const std::string& path, std::uintmax_t length) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("file_crc: cannot open " + path);
  util::Crc32 crc;
  char buffer[64 * 1024];
  std::uintmax_t remaining = length;
  while (remaining > 0) {
    const auto chunk = static_cast<std::streamsize>(
        std::min<std::uintmax_t>(remaining, sizeof buffer));
    file.read(buffer, chunk);
    if (!file) throw std::runtime_error("file_crc: short read on " + path);
    crc.update(buffer, static_cast<std::size_t>(chunk));
    remaining -= static_cast<std::uintmax_t>(chunk);
  }
  return crc.value();
}

}  // namespace

void write_binary(const std::string& path, VertexId num_vertices,
                  const std::vector<Edge>& undirected_edges) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("write_binary: cannot open " + path);

  util::Crc32 crc;
  const auto put = [&](const void* data, std::size_t size) {
    file.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
    crc.update(data, size);
  };

  const std::uint64_t magic = kMagicV2;
  const std::int64_t n = num_vertices;
  const std::int64_t m = static_cast<std::int64_t>(undirected_edges.size());
  put(&magic, 8);
  put(&n, 8);
  put(&m, 8);

  for (const Edge& e : undirected_edges) {
    const PackedRecord rec{e.src, e.dst, e.weight};
    put(&rec, sizeof rec);
  }
  const std::uint32_t footer = crc.value();
  file.write(reinterpret_cast<const char*>(&footer), kFooterBytes);
  if (!file) throw std::runtime_error("write_binary: write failed for " + path);
}

BinaryHeader read_binary_header(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("read_binary_header: cannot open " + path);
  std::uint64_t magic = 0;
  std::int64_t n = 0;
  std::int64_t m = 0;
  file.read(reinterpret_cast<char*>(&magic), 8);
  file.read(reinterpret_cast<char*>(&n), 8);
  file.read(reinterpret_cast<char*>(&m), 8);
  if (!file || (magic != kMagicV1 && magic != kMagicV2))
    throw std::runtime_error("read_binary_header: not a DLEL file: " + path);
  if (n < 0 || m < 0)
    throw std::runtime_error("read_binary_header: negative counts in header of " + path);

  const bool has_crc = magic == kMagicV2;
  const std::uintmax_t expected = kHeaderBytes +
                                  static_cast<std::uintmax_t>(m) * kRecordBytes +
                                  (has_crc ? kFooterBytes : 0);
  std::error_code ec;
  const std::uintmax_t actual = std::filesystem::file_size(path, ec);
  if (ec || actual != expected)
    throw std::runtime_error("read_binary_header: " + path + " is " +
                             std::to_string(actual) + " bytes but header implies " +
                             std::to_string(expected) + " (truncated or corrupt)");
  return BinaryHeader{n, m, has_crc};
}

std::vector<Edge> read_binary_slice(const std::string& path, EdgeId lo, EdgeId hi) {
  const auto header = read_binary_header(path);
  if (lo < 0 || hi < lo || hi > header.num_edges)
    throw std::out_of_range("read_binary_slice: bad record range");

  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("read_binary_slice: cannot open " + path);
  file.seekg(static_cast<std::streamoff>(kHeaderBytes + static_cast<std::size_t>(lo) * kRecordBytes));

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(hi - lo));
  for (EdgeId i = lo; i < hi; ++i) {
    PackedRecord rec{};
    file.read(reinterpret_cast<char*>(&rec), sizeof rec);
    if (!file) throw std::runtime_error("read_binary_slice: truncated file " + path);
    validate_record(rec, header.num_vertices, i, path);
    edges.push_back(Edge{rec.src, rec.dst, rec.weight});
  }
  return edges;
}

bool verify_binary_crc(const std::string& path) {
  const auto header = read_binary_header(path);
  if (!header.has_crc) return true;  // version 1: nothing to check

  const std::uintmax_t covered =
      kHeaderBytes + static_cast<std::uintmax_t>(header.num_edges) * kRecordBytes;
  const std::uint32_t computed = file_crc(path, covered);

  std::ifstream file(path, std::ios::binary);
  file.seekg(static_cast<std::streamoff>(covered));
  std::uint32_t stored = 0;
  file.read(reinterpret_cast<char*>(&stored), kFooterBytes);
  if (!file) throw std::runtime_error("verify_binary_crc: cannot read footer of " + path);
  return stored == computed;
}

void write_distributed(comm::Comm& comm, const DistGraph& g, const std::string& path) {
  // Canonical record set: each undirected edge once, owned by the rank
  // holding its smaller endpoint (which stores the src < dst arc); self
  // loops by their owner.
  std::vector<Edge> records;
  for (VertexId lv = 0; lv < g.local_count(); ++lv) {
    const VertexId gv = g.to_global(lv);
    for (const auto& e : g.local().neighbors(lv)) {
      if (gv <= e.dst) records.push_back(Edge{gv, e.dst, e.weight});
    }
  }

  const auto my_count = static_cast<EdgeId>(records.size());
  const EdgeId offset = comm.exscan_sum(my_count);
  const EdgeId total = comm.allreduce_sum(my_count);

  // Rank 0 lays down the header and sizes the file; everyone then writes
  // its record range at a disjoint offset (the MPI-I/O pattern in reverse).
  if (comm.rank() == 0) {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("write_distributed: cannot create " + path);
    const std::uint64_t magic = kMagicV2;
    const std::int64_t n = g.global_n();
    const std::int64_t m = total;
    file.write(reinterpret_cast<const char*>(&magic), 8);
    file.write(reinterpret_cast<const char*>(&n), 8);
    file.write(reinterpret_cast<const char*>(&m), 8);
  }
  comm.barrier();  // header before anyone seeks past it

  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!file) throw std::runtime_error("write_distributed: cannot open " + path);
  file.seekp(static_cast<std::streamoff>(kHeaderBytes +
                                         static_cast<std::size_t>(offset) * kRecordBytes));
  for (const Edge& e : records) {
    const PackedRecord rec{e.src, e.dst, e.weight};
    file.write(reinterpret_cast<const char*>(&rec), sizeof rec);
  }
  file.flush();
  if (!file) throw std::runtime_error("write_distributed: write failed for " + path);
  file.close();
  comm.barrier();  // every slice on disk before the footer is computed

  if (comm.rank() == 0) {
    // Seal with the whole-file CRC: one sequential re-read by rank 0, the
    // same role MPI-I/O gives the root when finalising a shared file.
    const std::uintmax_t covered =
        kHeaderBytes + static_cast<std::uintmax_t>(total) * kRecordBytes;
    const std::uint32_t footer = file_crc(path, covered);
    std::fstream seal(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!seal) throw std::runtime_error("write_distributed: cannot reopen " + path);
    seal.seekp(static_cast<std::streamoff>(covered));
    seal.write(reinterpret_cast<const char*>(&footer), kFooterBytes);
    seal.flush();
    if (!seal) throw std::runtime_error("write_distributed: footer write failed for " + path);
  }
  comm.barrier();  // file complete (and sealed) before any rank returns
}

namespace {

/// Shared front half of the collective loaders: rank 0 verifies the
/// whole-file checksum once and everyone agrees on the verdict before any
/// record is trusted (a corrupt file fails the job collectively instead of
/// desynchronising it), then each rank reads its disjoint contiguous record
/// slice -- the MPI-I/O access pattern.
std::vector<Edge> read_verified_slice(comm::Comm& comm, const std::string& path,
                                      BinaryHeader& header) {
  std::uint8_t crc_ok = 1;
  if (comm.rank() == 0) {
    try {
      crc_ok = verify_binary_crc(path) ? 1 : 0;
    } catch (const std::exception&) {
      crc_ok = 0;
    }
  }
  crc_ok = comm.broadcast(std::vector<std::uint8_t>{crc_ok}).front();
  if (crc_ok == 0)
    throw std::runtime_error("load_distributed: " + path +
                             " failed its CRC32 check (corrupt or unreadable)");

  header = read_binary_header(path);
  const int p = comm.size();
  const Rank r = comm.rank();
  const EdgeId per = header.num_edges / p;
  const EdgeId extra = header.num_edges % p;
  const EdgeId lo = r * per + std::min<EdgeId>(r, extra);
  const EdgeId hi = lo + per + (r < extra ? 1 : 0);
  return read_binary_slice(path, lo, hi);
}

}  // namespace

DistGraph load_distributed(comm::Comm& comm, const std::string& path,
                           const Partition1D& part) {
  BinaryHeader header;
  std::vector<Edge> slice = read_verified_slice(comm, path, header);
  if (static_cast<int>(part.starts().size()) - 1 != comm.size() ||
      part.starts().back() != header.num_vertices) {
    throw std::runtime_error("load_distributed: explicit partition does not cover " +
                             path + " (" + std::to_string(header.num_vertices) +
                             " vertices across " + std::to_string(comm.size()) +
                             " ranks)");
  }
  return DistGraph::build(comm, part, std::move(slice), /*symmetrize=*/true);
}

DistGraph load_distributed(comm::Comm& comm, const std::string& path, PartitionKind kind) {
  BinaryHeader header;
  std::vector<Edge> slice = read_verified_slice(comm, path, header);
  const int p = comm.size();

  Partition1D part;
  if (kind == PartitionKind::kEvenVertices) {
    part = partition_even_vertices(header.num_vertices, p);
  } else {
    // Edge-balanced: accumulate endpoint counts for this slice, sum across
    // ranks, and cut where cumulative degree crosses each 1/p quantile.
    // (Dense n-length counting is fine at simulator scale; a production MPI
    // build would shard this, but the resulting partition is identical.)
    // read_binary_slice validated every endpoint, so the indexing is safe.
    std::vector<EdgeId> degree(static_cast<std::size_t>(header.num_vertices), 0);
    for (const Edge& e : slice) {
      ++degree[static_cast<std::size_t>(e.src)];
      if (e.dst != e.src) ++degree[static_cast<std::size_t>(e.dst)];
    }
    degree = comm.allreduce_sum_vec(degree);
    part = partition_even_edges(header.num_vertices, p,
                                [&](VertexId v) { return degree[static_cast<std::size_t>(v)]; });
  }
  return DistGraph::build(comm, part, std::move(slice), /*symmetrize=*/true);
}

}  // namespace dlouvain::graph
