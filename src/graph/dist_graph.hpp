// Distributed graph: the per-rank slice of a 1D-partitioned global graph.
//
// Matches the paper's input distribution (Section IV): each rank owns a
// contiguous interval of global vertex ids and the full edge lists of those
// vertices (CSR, destinations kept as GLOBAL ids), plus "ghost" bookkeeping
// for every remote vertex referenced by a local edge list. Construction ends
// with the one-time-per-phase ghost/mirror exchange of paper Algorithm 4, so
// each rank also knows which of its own vertices are ghosted where.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "comm/comm.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "util/parallel.hpp"

namespace dlouvain::graph {

enum class PartitionKind {
  kEvenVertices,  ///< equal vertex counts per rank
  kEvenEdges,     ///< equal edge counts per rank (the paper's choice)
};

/// One undirected edge mutation of a streaming batch (see
/// DistGraph::apply_edge_changes and dlouvain::EdgeBatch). `remove` drops
/// the whole edge {u, v} regardless of weight; otherwise weight (> 0) is
/// ADDED to the edge, creating it if absent.
struct EdgeChange {
  VertexId u{kInvalidVertex};
  VertexId v{kInvalidVertex};
  Weight weight{1.0};
  bool remove{false};

  friend bool operator==(const EdgeChange&, const EdgeChange&) = default;
};

class DistGraph {
 public:
  DistGraph() = default;

  /// Local slice accessors. Local row index = global id - v_begin().
  [[nodiscard]] VertexId v_begin() const { return part_.begin(rank_); }
  [[nodiscard]] VertexId v_end() const { return part_.end(rank_); }
  [[nodiscard]] VertexId local_count() const { return part_.count(rank_); }
  [[nodiscard]] VertexId global_n() const { return part_.num_vertices(); }
  [[nodiscard]] bool owns(VertexId gv) const { return gv >= v_begin() && gv < v_end(); }
  [[nodiscard]] VertexId to_local(VertexId gv) const { return gv - v_begin(); }
  [[nodiscard]] VertexId to_global(VertexId lv) const { return lv + v_begin(); }
  [[nodiscard]] Rank owner(VertexId gv) const { return part_.owner(gv); }
  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int num_ranks() const { return part_.num_ranks(); }

  /// The local CSR: rows are owned vertices (local index), destinations are
  /// global ids.
  [[nodiscard]] const Csr& local() const noexcept { return local_; }

  /// Global 2m (sum of all weighted degrees, all ranks).
  [[nodiscard]] Weight total_weight() const noexcept { return total_weight_; }

  /// Weighted degree of an owned vertex (precomputed).
  [[nodiscard]] Weight weighted_degree(VertexId gv) const {
    return degrees_[static_cast<std::size_t>(to_local(gv))];
  }

  /// Sorted unique global ids of remote vertices referenced by local edges.
  [[nodiscard]] const std::vector<VertexId>& ghosts() const noexcept { return ghosts_; }

  /// Index of a ghost in ghosts(), or -1 if gv is not a ghost here.
  [[nodiscard]] std::int64_t ghost_slot(VertexId gv) const {
    const auto it = ghost_index_.find(gv);
    return it == ghost_index_.end() ? -1 : static_cast<std::int64_t>(it->second);
  }

  /// Per-arc destination slots, aligned with local().edges(): arc a's
  /// destination resolves to dst_slots()[a], which is its local row index
  /// when owned here and local_count() + ghost slot otherwise. Precomputed
  /// once per build so the per-iteration hot loops (move scan, modularity,
  /// rebuild) never pay the owns()/ghost_slot() hash lookup per edge -- the
  /// index-translation trick of the Vite/Grappolo lineage.
  [[nodiscard]] const std::vector<std::int64_t>& dst_slots() const noexcept {
    return dst_slots_;
  }

  /// ghosts_by_owner()[r]: the subset of ghosts() owned by rank r (sorted).
  [[nodiscard]] const std::vector<std::vector<VertexId>>& ghosts_by_owner() const noexcept {
    return ghosts_by_owner_;
  }

  /// mirrors()[r]: my owned vertices that rank r keeps a ghost copy of
  /// (sorted). Produced by the Algorithm-4 exchange; this is the send list
  /// for per-iteration community updates.
  [[nodiscard]] const std::vector<std::vector<VertexId>>& mirrors() const noexcept {
    return mirrors_;
  }

  /// Interior/boundary classification (ISSUE 5): a vertex is BOUNDARY when
  /// at least one of its arcs resolves to a ghost slot, INTERIOR otherwise.
  /// Interior vertices' move decisions read no ghost vertex state, so the
  /// sweep can process them while a ghost exchange is still in flight.
  [[nodiscard]] bool is_boundary(VertexId lv) const {
    return boundary_flags_[static_cast<std::size_t>(lv)] != 0;
  }
  /// One flag per owned vertex (local index), nonzero = boundary.
  [[nodiscard]] const std::vector<char>& boundary_flags() const noexcept {
    return boundary_flags_;
  }
  [[nodiscard]] VertexId boundary_count() const noexcept { return boundary_count_; }
  [[nodiscard]] VertexId interior_count() const noexcept {
    return local_count() - boundary_count_;
  }

  /// Ranks this rank exchanges ghost traffic with (sorted, self excluded).
  /// Symmetric across the world for symmetric graphs: r lists s iff s lists
  /// r. This is the static topology the neighbourhood collectives use.
  [[nodiscard]] const std::vector<Rank>& neighbor_ranks() const noexcept {
    return neighbor_ranks_;
  }

  [[nodiscard]] const Partition1D& partition() const noexcept { return part_; }

  /// Global arc count (allreduced at build).
  [[nodiscard]] EdgeId global_arcs() const noexcept { return global_arcs_; }

  /// Build a rank's slice from an arbitrary scatter of edges: every rank
  /// passes whatever (undirected, when symmetrize) edges it happens to hold
  /// -- e.g. straight out of a generator or a file slice -- and the
  /// constructor routes each arc to the owner of its source. Collective:
  /// all ranks of `comm` must call with the same global_n and partition.
  /// `pool` (optional) threads the local CSR assembly (sort + fills); the
  /// resulting graph is identical at any thread count.
  static DistGraph build(comm::Comm& comm, const Partition1D& part,
                         std::vector<Edge> edges, bool symmetrize = true,
                         util::ThreadPool* pool = nullptr);

  /// Convenience for tests and small runs: every rank holds the same global
  /// CSR; each slices out its own rows. Collective.
  static DistGraph from_replicated(comm::Comm& comm, const Csr& global,
                                   PartitionKind kind = PartitionKind::kEvenEdges);

  /// Apply a batch of undirected edge additions/removals in place and
  /// reclassify everything derived from the arc set: CSR, degrees, total
  /// weight, ghosts, mirrors, dst slots, interior/boundary flags, neighbour
  /// topology. Collective: every rank passes the SAME global change list
  /// (the streaming-session contract); each applies the changes touching
  /// its owned rows, so both directions of every edge stay consistent.
  ///
  /// Semantics per change: removals resolve against the PRE-batch arc set
  /// (removing an edge the graph does not have throws std::invalid_argument
  /// on every rank); additions are applied afterwards and merge weights with
  /// surviving or duplicate arcs. Self loops and out-of-range endpoints are
  /// rejected. The partition is unchanged -- vertices never move ranks, so
  /// a fixed (graph, batch sequence) yields an identical DistGraph at any
  /// rank/thread count.
  void apply_edge_changes(comm::Comm& comm, std::span<const EdgeChange> changes,
                          util::ThreadPool* pool = nullptr);

  /// Collective consistency audit; throws std::logic_error (on every rank)
  /// describing the first violation found. Checks: every remote arc (u, v)
  /// has a reverse arc (v, u) of equal weight at v's owner; ghost and mirror
  /// lists agree pairwise; per-rank degree sums reproduce total_weight().
  /// Intended after custom construction paths and in long-running services'
  /// self-checks; O(arcs) compute + one alltoallv.
  void validate(comm::Comm& comm) const;

 private:
  void discover_ghosts(comm::Comm& comm);

  Rank rank_{0};
  Partition1D part_;
  Csr local_;
  std::vector<Weight> degrees_;
  Weight total_weight_{0};
  EdgeId global_arcs_{0};
  std::vector<VertexId> ghosts_;
  std::vector<std::int64_t> dst_slots_;
  std::vector<char> boundary_flags_;
  VertexId boundary_count_{0};
  std::unordered_map<VertexId, std::size_t> ghost_index_;
  std::vector<std::vector<VertexId>> ghosts_by_owner_;
  std::vector<std::vector<VertexId>> mirrors_;
  std::vector<Rank> neighbor_ranks_;
};

}  // namespace dlouvain::graph
