#include "graph/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

namespace dlouvain::graph {

DegreeStats degree_stats(const Csr& g) {
  DegreeStats stats;
  const VertexId n = g.num_vertices();
  if (n == 0) return stats;

  stats.min_degree = g.degree(0);
  double sum = 0;
  double sum_sq = 0;
  for (VertexId v = 0; v < n; ++v) {
    const EdgeId d = g.degree(v);
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
    if (d == 0) ++stats.isolated_vertices;

    const std::size_t bucket =
        d <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(static_cast<std::uint64_t>(d)) - 1);
    if (stats.log2_histogram.size() <= bucket) stats.log2_histogram.resize(bucket + 1, 0);
    ++stats.log2_histogram[bucket];

    for (const auto& e : g.neighbors(v))
      if (e.dst == v) ++stats.self_loops;
  }
  stats.mean_degree = sum / static_cast<double>(n);
  const double var = sum_sq / static_cast<double>(n) - stats.mean_degree * stats.mean_degree;
  stats.stddev_degree = var > 0 ? std::sqrt(var) : 0.0;
  stats.total_weight_2m = g.total_arc_weight();
  return stats;
}

double mean_clustering_coefficient(const Csr& g, VertexId sample) {
  const VertexId n = g.num_vertices();
  if (n == 0 || sample <= 0) return 0.0;
  const VertexId stride = std::max<VertexId>(1, n / sample);

  double sum = 0;
  VertexId counted = 0;
  std::vector<VertexId> nbrs;
  for (VertexId v = 0; v < n; v += stride) {
    nbrs.clear();
    for (const auto& e : g.neighbors(v))
      if (e.dst != v) nbrs.push_back(e.dst);
    const auto d = static_cast<double>(nbrs.size());
    if (nbrs.size() < 2) continue;

    // CSR rows are sorted, so neighbour-of-neighbour membership is a binary
    // search over each u's (sorted) adjacency.
    EdgeId closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto row = g.neighbors(nbrs[i]);
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const auto it = std::lower_bound(
            row.begin(), row.end(), nbrs[j],
            [](const HalfEdge& e, VertexId target) { return e.dst < target; });
        if (it != row.end() && it->dst == nbrs[j]) ++closed;
      }
    }
    sum += 2.0 * static_cast<double>(closed) / (d * (d - 1));
    ++counted;
  }
  return counted ? sum / static_cast<double>(counted) : 0.0;
}

namespace {

VertexId find_root(std::vector<VertexId>& parent, VertexId v) {
  while (parent[static_cast<std::size_t>(v)] != v) {
    parent[static_cast<std::size_t>(v)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
    v = parent[static_cast<std::size_t>(v)];
  }
  return v;
}

}  // namespace

ComponentsResult connected_components(const Csr& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), VertexId{0});

  for (VertexId v = 0; v < n; ++v) {
    for (const auto& e : g.neighbors(v)) {
      const VertexId a = find_root(parent, v);
      const VertexId b = find_root(parent, e.dst);
      if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
    }
  }

  ComponentsResult result;
  result.component.resize(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    result.component[static_cast<std::size_t>(v)] = find_root(parent, v);
    if (result.component[static_cast<std::size_t>(v)] == v) ++result.count;
  }
  return result;
}

}  // namespace dlouvain::graph
