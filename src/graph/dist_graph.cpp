#include "graph/dist_graph.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "util/parallel.hpp"

namespace dlouvain::graph {

DistGraph DistGraph::build(comm::Comm& comm, const Partition1D& part,
                           std::vector<Edge> edges, bool symmetrize,
                           util::ThreadPool* pool) {
  if (part.num_ranks() != comm.size())
    throw std::invalid_argument("DistGraph::build: partition rank count != comm size");

  const VertexId n = part.num_vertices();
  const int p = comm.size();

  // Route every arc to the owner of its source; with symmetrize on, each
  // undirected input edge contributes both directions.
  std::vector<std::vector<Edge>> outbox(static_cast<std::size_t>(p));
  for (const Edge& e : edges) {
    if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n)
      throw std::out_of_range("DistGraph::build: edge endpoint out of range");
    outbox[static_cast<std::size_t>(part.owner(e.src))].push_back(e);
    if (symmetrize && e.src != e.dst)
      outbox[static_cast<std::size_t>(part.owner(e.dst))].push_back(Edge{e.dst, e.src, e.weight});
  }
  edges.clear();
  edges.shrink_to_fit();

  auto inbox = comm.alltoallv<Edge>(std::move(outbox));

  DistGraph g;
  g.rank_ = comm.rank();
  g.part_ = part;

  // Re-base sources to local row indices and assemble the local CSR.
  const VertexId lo = part.begin(comm.rank());
  std::vector<Edge> local_arcs;
  std::size_t total = 0;
  for (const auto& part_arcs : inbox) total += part_arcs.size();
  local_arcs.reserve(total);
  for (auto& part_arcs : inbox) {
    for (Edge& e : part_arcs) {
      e.src -= lo;
      local_arcs.push_back(e);
    }
    part_arcs.clear();
    part_arcs.shrink_to_fit();
  }

  BuildOptions opts;
  opts.symmetrize = false;  // both directions already routed explicitly
  opts.coalesce = true;
  // Note: local row ids in [0, local_count), but dst stays global, so the
  // CSR is built over max(local_count, n)... build_csr validates endpoints
  // against one range; handle by building manually instead.
  const VertexId local_n = part.count(comm.rank());
  // Stable sort so duplicate (src, dst) arcs coalesce their weights in
  // arrival order -- with the parallel path this is what keeps the rebuilt
  // graph (and every downstream modularity bit) independent of the thread
  // count; see util::stable_sort_parallel.
  util::stable_sort_parallel(pool, local_arcs, [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  // Coalesce duplicates (parallel edges merge weights).
  std::size_t out = 0;
  for (std::size_t i = 0; i < local_arcs.size(); ++i) {
    if (out > 0 && local_arcs[out - 1].src == local_arcs[i].src &&
        local_arcs[out - 1].dst == local_arcs[i].dst) {
      local_arcs[out - 1].weight += local_arcs[i].weight;
    } else {
      local_arcs[out++] = local_arcs[i];
    }
  }
  local_arcs.resize(out);

  std::vector<EdgeId> offsets(static_cast<std::size_t>(local_n) + 1, 0);
  for (const Edge& e : local_arcs) ++offsets[static_cast<std::size_t>(e.src) + 1];
  for (std::size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];
  std::vector<HalfEdge> half(local_arcs.size());
  util::parallel_for(pool, static_cast<std::int64_t>(local_arcs.size()),
                     [&](int, std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i)
                         half[static_cast<std::size_t>(i)] =
                             HalfEdge{local_arcs[static_cast<std::size_t>(i)].dst,
                                      local_arcs[static_cast<std::size_t>(i)].weight};
                     });
  g.local_ = Csr(local_n, std::move(offsets), std::move(half));

  // Weighted degrees (global-id self loops detected against the global id).
  g.degrees_.resize(static_cast<std::size_t>(local_n), 0.0);
  util::parallel_for(pool, local_n, [&](int, std::int64_t begin, std::int64_t end) {
    for (VertexId lv = begin; lv < end; ++lv) {
      const VertexId gv = lv + lo;
      Weight k = 0;
      for (const auto& e : g.local_.neighbors(lv))
        k += e.dst == gv ? 2 * e.weight : e.weight;
      g.degrees_[static_cast<std::size_t>(lv)] = k;
    }
  });

  Weight local_weight = 0;
  for (const Weight k : g.degrees_) local_weight += k;
  g.total_weight_ = comm.allreduce_sum(local_weight);
  g.global_arcs_ = comm.allreduce_sum(g.local_.num_arcs());

  g.discover_ghosts(comm);
  return g;
}

DistGraph DistGraph::from_replicated(comm::Comm& comm, const Csr& global,
                                     PartitionKind kind) {
  const VertexId n = global.num_vertices();
  Partition1D part = kind == PartitionKind::kEvenVertices
                         ? partition_even_vertices(n, comm.size())
                         : partition_even_edges(n, comm.size(),
                                                [&](VertexId v) { return global.degree(v); });

  // Each rank contributes only its own rows as directed arcs; the global CSR
  // is already symmetric, so no symmetrization on build.
  std::vector<Edge> arcs;
  for (VertexId v = part.begin(comm.rank()); v < part.end(comm.rank()); ++v) {
    for (const auto& e : global.neighbors(v)) arcs.push_back(Edge{v, e.dst, e.weight});
  }
  return build(comm, part, std::move(arcs), /*symmetrize=*/false);
}

void DistGraph::apply_edge_changes(comm::Comm& comm,
                                   std::span<const EdgeChange> changes,
                                   util::ThreadPool* pool) {
  const VertexId n = part_.num_vertices();

  // Validate the batch shape locally; the list is replicated, so every rank
  // reaches the same verdict without a collective.
  for (const EdgeChange& c : changes) {
    if (c.u < 0 || c.u >= n || c.v < 0 || c.v >= n)
      throw std::invalid_argument("apply_edge_changes: endpoint out of range");
    if (c.u == c.v)
      throw std::invalid_argument("apply_edge_changes: self loops not supported");
    if (!c.remove && !(c.weight > 0))
      throw std::invalid_argument("apply_edge_changes: added weight must be > 0");
  }

  // A batch of k edges must not cost a full rebuild of |arcs| -- shipping
  // and re-sorting every arc through build() dominates Session::update on
  // any real graph. Instead, splice only the touched CSR rows in place.
  // Rows are coalesced and dst-sorted by construction (build() stable-sorts
  // then coalesces; this function preserves both invariants), so each
  // touched row is a small sorted merge.
  //
  // Removals resolve against the pre-batch arc set, directions owned here.
  // Because rows are coalesced, each (src, dst) appears at most once: a
  // batch naming the same edge twice can match at most one arc, and the
  // excess is a batch error -- detected locally, agreed globally so every
  // rank throws (or none does), before anything is mutated.
  std::map<VertexId, std::vector<std::pair<VertexId, Weight>>> row_adds;
  std::map<VertexId, std::vector<VertexId>> row_removes;
  std::int64_t missing = 0;
  {
    std::map<std::pair<VertexId, VertexId>, std::int64_t> remove_counts;
    for (const EdgeChange& c : changes) {
      if (!c.remove) continue;
      if (owns(c.u)) ++remove_counts[{to_local(c.u), c.v}];
      if (owns(c.v)) ++remove_counts[{to_local(c.v), c.u}];
    }
    for (const auto& [arc, count] : remove_counts) {
      const auto row = local_.neighbors(arc.first);
      const auto it = std::lower_bound(
          row.begin(), row.end(), arc.second,
          [](const HalfEdge& e, VertexId dst) { return e.dst < dst; });
      const bool present = it != row.end() && it->dst == arc.second;
      if (present) row_removes[arc.first].push_back(arc.second);
      missing += count - (present ? 1 : 0);
    }
  }
  if (comm.allreduce_max<std::int64_t>(missing) > 0)
    throw std::invalid_argument(
        "apply_edge_changes: batch removes an edge the graph does not have");

  // Additions after removals, in batch order (duplicate adds sum their
  // weights left to right, matching build()'s arrival-order coalesce).
  for (const EdgeChange& c : changes) {
    if (c.remove) continue;
    if (owns(c.u)) row_adds[to_local(c.u)].push_back({c.v, c.weight});
    if (owns(c.v)) row_adds[to_local(c.v)].push_back({c.u, c.weight});
  }

  // Merge each touched row: drop removed arcs, fold additions into
  // surviving arcs or insert them sorted.
  std::map<VertexId, std::vector<HalfEdge>> new_rows;
  for (const auto& kv : row_removes) new_rows.emplace(kv.first, std::vector<HalfEdge>{});
  for (const auto& kv : row_adds) new_rows.emplace(kv.first, std::vector<HalfEdge>{});
  for (auto& [lv, merged] : new_rows) {
    const auto row = local_.neighbors(lv);
    merged.assign(row.begin(), row.end());
    if (const auto rit = row_removes.find(lv); rit != row_removes.end()) {
      for (const VertexId dst : rit->second) {
        const auto it = std::lower_bound(
            merged.begin(), merged.end(), dst,
            [](const HalfEdge& e, VertexId d) { return e.dst < d; });
        merged.erase(it);  // presence established above
      }
    }
    if (const auto ait = row_adds.find(lv); ait != row_adds.end()) {
      for (const auto& [dst, w] : ait->second) {
        const auto it = std::lower_bound(
            merged.begin(), merged.end(), dst,
            [](const HalfEdge& e, VertexId d) { return e.dst < d; });
        if (it != merged.end() && it->dst == dst)
          it->weight += w;
        else
          merged.insert(it, HalfEdge{dst, w});
      }
    }
  }

  // Splice: new offsets (old lengths adjusted for touched rows), then one
  // O(arcs) copy -- untouched rows verbatim, touched rows from their merge.
  const VertexId local_n = local_count();
  const auto& old_offsets = local_.offsets();
  const auto& old_half = local_.edges();
  std::vector<EdgeId> offsets(static_cast<std::size_t>(local_n) + 1, 0);
  for (VertexId lv = 0; lv < local_n; ++lv) {
    const auto it = new_rows.find(lv);
    const auto len = it != new_rows.end()
                         ? static_cast<EdgeId>(it->second.size())
                         : old_offsets[static_cast<std::size_t>(lv) + 1] -
                               old_offsets[static_cast<std::size_t>(lv)];
    offsets[static_cast<std::size_t>(lv) + 1] = offsets[static_cast<std::size_t>(lv)] + len;
  }
  std::vector<HalfEdge> half(static_cast<std::size_t>(offsets.back()));
  util::parallel_for(pool, local_n, [&](int, std::int64_t begin, std::int64_t end) {
    for (VertexId lv = begin; lv < end; ++lv) {
      const auto out = half.begin() + static_cast<std::ptrdiff_t>(offsets[static_cast<std::size_t>(lv)]);
      const auto it = new_rows.find(lv);
      if (it != new_rows.end()) {
        std::copy(it->second.begin(), it->second.end(), out);
      } else {
        std::copy(old_half.begin() + static_cast<std::ptrdiff_t>(old_offsets[static_cast<std::size_t>(lv)]),
                  old_half.begin() + static_cast<std::ptrdiff_t>(old_offsets[static_cast<std::size_t>(lv) + 1]),
                  out);
      }
    }
  });
  local_ = Csr(local_n, std::move(offsets), std::move(half));

  // Re-derive weighted degrees for touched rows only; totals by allreduce,
  // summed serially in local-index order exactly as build() does.
  for (const auto& [lv, merged] : new_rows) {
    const VertexId gv = to_global(lv);
    Weight k = 0;
    for (const auto& e : merged) k += e.dst == gv ? 2 * e.weight : e.weight;
    degrees_[static_cast<std::size_t>(lv)] = k;
  }
  Weight local_weight = 0;
  for (const Weight k : degrees_) local_weight += k;
  total_weight_ = comm.allreduce_sum(local_weight);
  global_arcs_ = comm.allreduce_sum(local_.num_arcs());

  // Ghosts, mirrors, dst slots, boundary flags, neighbour topology: the
  // collective part that genuinely needs redoing.
  discover_ghosts(comm);
}

void DistGraph::validate(comm::Comm& comm) const {
  const int p = comm.size();
  std::string local_error;

  // 1. Ghost/mirror symmetry: what I ghost from rank r must equal what rank
  // r mirrors to me (and vice versa).
  const auto mirror_echo = comm.alltoallv<VertexId>(ghosts_by_owner_);
  for (int r = 0; r < p && local_error.empty(); ++r) {
    if (mirror_echo[static_cast<std::size_t>(r)] != mirrors_[static_cast<std::size_t>(r)])
      local_error = "ghost/mirror lists disagree with rank " + std::to_string(r);
  }

  // 2. Reverse-arc check: ship every cross-rank arc to its destination's
  // owner, which verifies a matching reverse arc exists locally.
  if (local_error.empty()) {
    std::vector<std::vector<Edge>> outbox(static_cast<std::size_t>(p));
    for (VertexId lv = 0; lv < local_count(); ++lv) {
      const VertexId gv = to_global(lv);
      for (const auto& e : local_.neighbors(lv)) {
        if (!owns(e.dst))
          outbox[static_cast<std::size_t>(owner(e.dst))].push_back(Edge{gv, e.dst, e.weight});
      }
    }
    const auto inbox = comm.alltoallv<Edge>(std::move(outbox));
    for (const auto& from_rank : inbox) {
      for (const Edge& arc : from_rank) {
        // arc.src -> arc.dst exists remotely; we own arc.dst and must hold
        // the reverse with equal weight.
        bool found = false;
        for (const auto& e : local_.neighbors(to_local(arc.dst))) {
          if (e.dst == arc.src && e.weight == arc.weight) {
            found = true;
            break;
          }
        }
        if (!found) {
          local_error = "missing reverse arc " + std::to_string(arc.dst) + "->" +
                        std::to_string(arc.src);
          break;
        }
      }
      if (!local_error.empty()) break;
    }
  }

  // 3. Degree sums reproduce the cached 2m.
  Weight local_weight = 0;
  for (const Weight k : degrees_) local_weight += k;
  const Weight recomputed = comm.allreduce_sum(local_weight);
  if (local_error.empty() && recomputed != total_weight_)
    local_error = "degree sum != cached total weight";

  // Agree on the outcome so every rank throws (or none does).
  const int worst = comm.allreduce_max<int>(local_error.empty() ? 0 : 1);
  if (worst != 0) {
    throw std::logic_error("DistGraph::validate: " +
                           (local_error.empty() ? std::string("peer rank failed")
                                                : local_error));
  }
}

void DistGraph::discover_ghosts(comm::Comm& comm) {
  const int p = comm.size();

  // Paper Algorithm 4 (ExchangeGhostVertices): scan local edge lists for
  // remote endpoints, bucket them by owner...
  ghosts_by_owner_.assign(static_cast<std::size_t>(p), {});
  for (const auto& e : local_.edges()) {
    if (!owns(e.dst)) ghosts_by_owner_[static_cast<std::size_t>(part_.owner(e.dst))].push_back(e.dst);
  }
  ghosts_.clear();
  ghost_index_.clear();
  for (auto& bucket : ghosts_by_owner_) {
    std::sort(bucket.begin(), bucket.end());
    bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
    ghosts_.insert(ghosts_.end(), bucket.begin(), bucket.end());
  }
  // Buckets are owner-ordered and internally sorted, and owner intervals are
  // contiguous in id space, so the concatenation is globally sorted.
  ghost_index_.reserve(ghosts_.size());
  for (std::size_t i = 0; i < ghosts_.size(); ++i) ghost_index_[ghosts_[i]] = i;

  // One-time arc -> slot translation: local row index for owned
  // destinations, local_count() + ghost slot for remote ones. Every
  // per-iteration O(arcs) loop indexes through this instead of hashing.
  dst_slots_.resize(local_.edges().size());
  for (std::size_t a = 0; a < local_.edges().size(); ++a) {
    const VertexId dst = local_.edges()[a].dst;
    dst_slots_[a] = owns(dst)
                        ? static_cast<std::int64_t>(to_local(dst))
                        : static_cast<std::int64_t>(local_count()) +
                              static_cast<std::int64_t>(ghost_index_.at(dst));
  }

  // Interior/boundary split (ISSUE 5): a vertex whose row references no
  // ghost slot can decide its move from purely rank-local state, so the
  // sweep may process it while a ghost exchange is still in flight. Derived
  // from dst_slots_, so it costs one extra O(arcs) pass at build time.
  boundary_flags_.assign(static_cast<std::size_t>(local_count()), 0);
  boundary_count_ = 0;
  const auto& offsets = local_.offsets();
  for (VertexId lv = 0; lv < local_count(); ++lv) {
    const auto lo = static_cast<std::size_t>(offsets[static_cast<std::size_t>(lv)]);
    const auto hi = static_cast<std::size_t>(offsets[static_cast<std::size_t>(lv) + 1]);
    for (std::size_t a = lo; a < hi; ++a) {
      if (dst_slots_[a] >= static_cast<std::int64_t>(local_count())) {
        boundary_flags_[static_cast<std::size_t>(lv)] = 1;
        ++boundary_count_;
        break;
      }
    }
  }

  // ...then tell each owner which of its vertices we ghost, so owners know
  // their send lists (mirrors) for the per-iteration community updates.
  mirrors_ = comm.alltoallv<VertexId>(ghosts_by_owner_);

  // Static exchange topology: peers we either ghost from or mirror to. For
  // a symmetric graph the two imply each other, so the adjacency is
  // symmetric world-wide -- the prerequisite for neighbor_alltoallv.
  neighbor_ranks_.clear();
  for (int r = 0; r < p; ++r) {
    if (r == comm.rank()) continue;
    if (!ghosts_by_owner_[static_cast<std::size_t>(r)].empty() ||
        !mirrors_[static_cast<std::size_t>(r)].empty())
      neighbor_ranks_.push_back(static_cast<Rank>(r));
  }
}

}  // namespace dlouvain::graph
