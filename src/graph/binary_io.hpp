// Binary edge-list file format + sliced parallel loading.
//
// The paper converts all test graphs to "an edge list based binary format"
// and reads it with MPI I/O so every rank pulls only its share. We mirror
// that: a fixed-size header, fixed 24-byte records, and a collective loader
// where each rank seeks to and reads a disjoint contiguous record range.
//
// Layout (little-endian):
//   magic   u64  'DLEL0001'
//   n       i64  number of vertices
//   m       i64  number of undirected edges (records)
//   records m x { src i64, dst i64, weight f64 }
#pragma once

#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "graph/dist_graph.hpp"
#include "util/types.hpp"

namespace dlouvain::graph {

struct BinaryHeader {
  VertexId num_vertices{0};
  EdgeId num_edges{0};
};

/// Write an undirected edge list (each edge once) to `path`.
void write_binary(const std::string& path, VertexId num_vertices,
                  const std::vector<Edge>& undirected_edges);

/// Read just the header.
BinaryHeader read_binary_header(const std::string& path);

/// Read records [lo, hi) -- the per-rank slice read.
std::vector<Edge> read_binary_slice(const std::string& path, EdgeId lo, EdgeId hi);

/// Collective: every rank reads its 1/p record slice concurrently, degrees
/// are accumulated globally to form the requested partition, and the slices
/// are shuffled into a DistGraph.
DistGraph load_distributed(comm::Comm& comm, const std::string& path,
                           PartitionKind kind = PartitionKind::kEvenEdges);

/// Collective: write a DistGraph back to the binary format. Each undirected
/// edge is emitted once (by the owner of its smaller endpoint, from the
/// canonical src < dst arc; self loops by their owner). Record counts are
/// exscan-ed so every rank writes its slice at a disjoint offset -- the
/// mirror image of load_distributed's sliced read.
void write_distributed(comm::Comm& comm, const DistGraph& g, const std::string& path);

}  // namespace dlouvain::graph
