// Binary edge-list file format + sliced parallel loading.
//
// The paper converts all test graphs to "an edge list based binary format"
// and reads it with MPI I/O so every rank pulls only its share. We mirror
// that: a fixed-size header, fixed 24-byte records, and a collective loader
// where each rank seeks to and reads a disjoint contiguous record range.
//
// Layout (little-endian):
//   magic   u64  'DLEL0002' (version 2; 'DLEL0001' files remain readable)
//   n       i64  number of vertices
//   m       i64  number of undirected edges (records)
//   records m x { src i64, dst i64, weight f64 }
//   crc     u32  CRC32 of header + records (version 2 only)
//
// Reads are defensive: the header is checked against the file size, every
// record's endpoints must lie in [0, n) and its weight must be finite and
// non-negative (a hostile or truncated file used to drive an out-of-bounds
// write through the degree accumulation in load_distributed), and version-2
// files carry a whole-file CRC32 that load_distributed verifies before any
// record is trusted.
#pragma once

#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "graph/dist_graph.hpp"
#include "util/types.hpp"

namespace dlouvain::graph {

struct BinaryHeader {
  VertexId num_vertices{0};
  EdgeId num_edges{0};
  bool has_crc{false};  ///< true for version-2 files (CRC32 footer present)
};

/// Write an undirected edge list (each edge once) to `path`. Emits the
/// version-2 format (CRC32 footer).
void write_binary(const std::string& path, VertexId num_vertices,
                  const std::vector<Edge>& undirected_edges);

/// Read just the header. Validates magic/version, non-negative counts, and
/// that the file is exactly the size the header implies.
BinaryHeader read_binary_header(const std::string& path);

/// Read records [lo, hi) -- the per-rank slice read. Every record is
/// validated (endpoints in range, finite non-negative weight); a bad record
/// is reported with its index.
std::vector<Edge> read_binary_slice(const std::string& path, EdgeId lo, EdgeId hi);

/// Recompute the whole-file CRC32 and compare with the footer. Version-1
/// files carry no footer and trivially pass. Throws on unreadable files.
bool verify_binary_crc(const std::string& path);

/// Collective: every rank reads its 1/p record slice concurrently, degrees
/// are accumulated globally to form the requested partition, and the slices
/// are shuffled into a DistGraph. Rank 0 verifies the file CRC first; all
/// ranks throw together on mismatch.
DistGraph load_distributed(comm::Comm& comm, const std::string& path,
                           PartitionKind kind = PartitionKind::kEvenEdges);

/// Collective: same sliced read, but onto an EXPLICIT replicated partition
/// (e.g. the ownership map recorded in a checkpoint, which may have been
/// migrated by the phase-boundary re-balancer and is then not derivable from
/// the rank count). Throws if the partition does not cover exactly the
/// file's vertex range across comm.size() ranks.
DistGraph load_distributed(comm::Comm& comm, const std::string& path,
                           const Partition1D& part);

/// Collective: write a DistGraph back to the binary format. Each undirected
/// edge is emitted once (by the owner of its smaller endpoint, from the
/// canonical src < dst arc; self loops by their owner). Record counts are
/// exscan-ed so every rank writes its slice at a disjoint offset -- the
/// mirror image of load_distributed's sliced read. Rank 0 seals the file
/// with the CRC32 footer once every slice has landed.
void write_distributed(comm::Comm& comm, const DistGraph& g, const std::string& path);

}  // namespace dlouvain::graph
