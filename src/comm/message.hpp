// Wire representation for the message-passing runtime.
//
// Payloads are opaque byte buffers; the typed API in comm.hpp restricts
// itself to trivially-copyable element types, exactly the constraint MPI
// datatypes impose on the original implementation.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

namespace dlouvain::comm {

/// Message tags. User code uses tags >= 0; the collective implementations
/// reserve the negative space so they never match user traffic.
using Tag = int;

struct Message {
  Rank src{-1};
  Tag tag{0};
  std::vector<std::byte> payload;

  // Wire-integrity metadata, stamped by the destination mailbox as the
  // message is enqueued (the in-process analogue of a transport header).
  // `seq` numbers the (src, tag) stream for duplicate suppression; `crc` is
  // the CRC32 of the payload at send time, verified on receive; `visible_at`
  // implements injected delivery delays (epoch = immediately visible);
  // `arrived_at` records the enqueue instant, so receivers can tell how long
  // a buffer sat waiting -- the raw input of the overlap telemetry's
  // comm_hidden accounting (effective arrival = max(arrived_at, visible_at)).
  std::uint64_t seq{0};
  std::uint32_t crc{0};
  std::chrono::steady_clock::time_point visible_at{};
  std::chrono::steady_clock::time_point arrived_at{};

  /// When the message became (or becomes) deliverable: enqueue time, pushed
  /// back by any injected delay.
  [[nodiscard]] std::chrono::steady_clock::time_point effective_arrival() const {
    return visible_at > arrived_at ? visible_at : arrived_at;
  }
};

/// Serialize a span of trivially copyable values into a byte buffer.
template <typename T>
std::vector<std::byte> to_bytes(std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "message elements must be trivially copyable");
  std::vector<std::byte> bytes(data.size_bytes());
  if (!bytes.empty()) std::memcpy(bytes.data(), data.data(), bytes.size());
  return bytes;
}

/// Deserialize a byte buffer into a vector of T. The buffer size must be a
/// multiple of sizeof(T); enforced by the caller (same-typed send/recv).
template <typename T>
std::vector<T> from_bytes(const std::vector<std::byte>& bytes) {
  static_assert(std::is_trivially_copyable_v<T>,
                "message elements must be trivially copyable");
  std::vector<T> data(bytes.size() / sizeof(T));
  if (!bytes.empty()) std::memcpy(data.data(), bytes.data(), bytes.size());
  return data;
}

}  // namespace dlouvain::comm
