#include "comm/fault.hpp"

#include "util/prng.hpp"

namespace dlouvain::comm {

namespace {

// Distinct salts per fate kind so one keyed draw never correlates with
// another (a message both delayed and duplicated must be two independent
// coin flips).
constexpr std::uint64_t kDelaySalt = 0x64656c6179ULL;      // "delay"
constexpr std::uint64_t kDuplicateSalt = 0x647570ULL;      // "dup"
constexpr std::uint64_t kCorruptSalt = 0x636f727275ULL;    // "corru"
constexpr std::uint64_t kBitSalt = 0x626974ULL;            // "bit"
constexpr std::uint64_t kLoseSalt = 0x6c6f7365ULL;         // "lose"
constexpr std::uint64_t kRetrySalt = 0x7265747279ULL;      // "retry"

std::uint64_t stream_key(Rank dst, Rank src, Tag tag, std::uint64_t seq) {
  return util::hash_combine(
      util::hash_combine(static_cast<std::uint64_t>(dst), static_cast<std::uint64_t>(src)),
      util::hash_combine(static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)), seq));
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), crash_fired_(plan_.crashes.size(), false) {}

FaultInjector::Fate FaultInjector::message_fate(Rank dst, Rank src, Tag tag,
                                                std::uint64_t seq,
                                                std::size_t payload_bytes) {
  Fate fate;
  if (!plan_.injects_messages()) return fate;
  const std::uint64_t key = stream_key(dst, src, tag, seq);

  // Loss preempts every other fate: a message that never made it across the
  // wire cannot also be delayed or corrupted. Its sequence number is still
  // consumed by the sender, which is exactly the gap the receiving mailbox's
  // ARQ detects.
  if (plan_.lose_probability > 0 &&
      util::hash_rand_unit(util::hash_combine(plan_.seed, kLoseSalt) ^ key) <
          plan_.lose_probability) {
    fate.lose = true;
    lost.fetch_add(1, std::memory_order_relaxed);
    return fate;
  }
  if (plan_.delay_probability > 0 &&
      util::hash_rand_unit(util::hash_combine(plan_.seed, kDelaySalt) ^ key) <
          plan_.delay_probability) {
    fate.delay = true;
    delayed.fetch_add(1, std::memory_order_relaxed);
  }
  if (plan_.duplicate_probability > 0 &&
      util::hash_rand_unit(util::hash_combine(plan_.seed, kDuplicateSalt) ^ key) <
          plan_.duplicate_probability) {
    fate.duplicate = true;
    duplicated.fetch_add(1, std::memory_order_relaxed);
  }
  // Zero-length payloads (barrier tokens) have no bits to flip; corruption
  // only targets data-carrying messages.
  if (payload_bytes > 0 && plan_.corrupt_probability > 0 &&
      util::hash_rand_unit(util::hash_combine(plan_.seed, kCorruptSalt) ^ key) <
          plan_.corrupt_probability) {
    fate.corrupt = true;
    fate.corrupt_bit = static_cast<std::uint32_t>(
        util::mix64(util::hash_combine(plan_.seed, kBitSalt) ^ key) %
        (payload_bytes * 8));
    corrupted.fetch_add(1, std::memory_order_relaxed);
  }
  return fate;
}

FaultInjector::Fate FaultInjector::retransmit_fate(Rank dst, Rank src, Tag tag,
                                                   std::uint64_t seq, int attempt,
                                                   std::size_t payload_bytes) {
  Fate fate;
  if (!plan_.injects_messages()) return fate;
  // Fold the attempt number into the key so each retransmission is an
  // independent draw -- deterministic in (plan seed, message identity,
  // attempt), independent of wall-clock backoff timing.
  const std::uint64_t key =
      util::hash_combine(stream_key(dst, src, tag, seq),
                         util::hash_combine(kRetrySalt, static_cast<std::uint64_t>(attempt)));

  if (plan_.lose_probability > 0 &&
      util::hash_rand_unit(util::hash_combine(plan_.seed, kLoseSalt) ^ key) <
          plan_.lose_probability) {
    fate.lose = true;
    lost.fetch_add(1, std::memory_order_relaxed);
    return fate;
  }
  if (payload_bytes > 0 && plan_.corrupt_probability > 0 &&
      util::hash_rand_unit(util::hash_combine(plan_.seed, kCorruptSalt) ^ key) <
          plan_.corrupt_probability) {
    fate.corrupt = true;
    fate.corrupt_bit = static_cast<std::uint32_t>(
        util::mix64(util::hash_combine(plan_.seed, kBitSalt) ^ key) %
        (payload_bytes * 8));
    corrupted.fetch_add(1, std::memory_order_relaxed);
  }
  return fate;
}

FaultInjector::CrashKind FaultInjector::should_crash(Rank rank, int phase, int iteration) {
  if (plan_.crashes.empty()) return CrashKind::kNone;
  const std::lock_guard<std::mutex> lock(crash_mutex_);
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    const auto& c = plan_.crashes[i];
    if (c.rank != rank || c.phase != phase || c.iteration != iteration) continue;
    if (c.permanent) {
      // Dead hardware: fires on every attempt until retire()d by a shrink.
      if (crash_fired_[i]) continue;  // retired
      crashes_fired.fetch_add(1, std::memory_order_relaxed);
      return CrashKind::kPermanent;
    }
    if (!crash_fired_[i]) {
      crash_fired_[i] = true;
      crashes_fired.fetch_add(1, std::memory_order_relaxed);
      return CrashKind::kTransient;
    }
  }
  return CrashKind::kNone;
}

void FaultInjector::retire(Rank rank) {
  const std::lock_guard<std::mutex> lock(crash_mutex_);
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    if (plan_.crashes[i].permanent && plan_.crashes[i].rank == rank) crash_fired_[i] = true;
  }
}

}  // namespace dlouvain::comm
