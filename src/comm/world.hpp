// World: the shared state behind one communicator group, plus the launcher
// that runs an SPMD function on `size` rank-threads.
//
// This is the project's stand-in for an MPI job: `comm::run(p, fn)` is
// `mpirun -np p`, and the `Comm` handle each rank receives is its
// MPI_COMM_WORLD. See DESIGN.md section 2 for the substitution rationale.
//
// RunOptions carries the fault-tolerance knobs: a receive deadline (blocked
// receives throw CommTimeout with a deadlock diagnostic instead of hanging),
// an optional FaultInjector whose plan the mailboxes apply to every message,
// and the rung-1 retransmission budget (see docs/FAULT_TOLERANCE.md). All
// default off, so existing callers are unchanged.
//
// The World also hosts the rung-2 heartbeat lane: every rank stamps a
// per-rank health slot on each send and successful receive (plain relaxed
// atomics -- no extra messages), and a rank whose permanent-death trigger
// fires is declared dead here. Blocked receives consult the lane when their
// deadline expires to turn a raw timeout into a structured verdict: rank
// dead (RankDead, carries who), slow-but-alive (extend the deadline a
// bounded number of times), or no progress anywhere (CommTimeout with the
// deadlock diagnostic, exactly as before).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/buffer_pool.hpp"
#include "comm/mailbox.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace dlouvain::comm {

class Comm;
class FaultInjector;

/// Knobs for one run()/World. Defaults reproduce the original behaviour
/// (wait forever, no injection, no link-level retransmission).
struct RunOptions {
  /// <= 0 waits forever; > 0 makes every blocked receive throw CommTimeout
  /// (with a deadlock diagnostic) after this many seconds without a match.
  double timeout_seconds{0};
  /// Shared so crash triggers stay one-shot across restart attempts of the
  /// same job. Null = no fault injection.
  std::shared_ptr<FaultInjector> faults;
  /// Per-rank counter registry. Null = World creates its own (reachable via
  /// World::metrics()). Pass one per recovery attempt so failed-attempt
  /// traffic stays attributable instead of leaking into the next attempt.
  /// Must be sized to the world size.
  std::shared_ptr<util::MetricsRegistry> metrics;
  /// Null = tracing off (the default; spans become no-ops). Sized to at
  /// least the world size. May outlive several attempts: failed-attempt
  /// spans stay in the rings and flush alongside the successful run's.
  std::shared_ptr<util::TraceStore> trace;
  /// > 0 enables rung-1 link-level ARQ: that many retransmission attempts
  /// per message (sequence gap or checksum mismatch triggers a NACK against
  /// the sender-retained copy) before the link escalates to CommFailure.
  int retransmit_max{0};
  /// First-retry backoff; doubles per attempt, capped (mailbox.cpp).
  double retransmit_backoff_ms{1.0};
};

/// Shared state for one group of ranks. Created by run(); user code only
/// ever sees Comm handles.
class World {
 public:
  explicit World(int size, const RunOptions& options = {});

  [[nodiscard]] int size() const noexcept { return static_cast<int>(mailboxes_.size()); }
  [[nodiscard]] Mailbox& mailbox(Rank rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }
  [[nodiscard]] FaultInjector* injector() const noexcept { return options_.faults.get(); }

  /// Wake every blocked receiver with WorldAborted (called when a rank throws).
  void abort_all();

  /// Multi-line snapshot of every OTHER rank's mailbox (blocked receivers,
  /// pending depths), for the CommTimeout diagnostic. Uses try_lock per
  /// mailbox so simultaneously timing-out ranks cannot deadlock on each
  /// other's report.
  [[nodiscard]] std::string deadlock_report(Rank reporting) const;

  // --- rung-2 heartbeat lane ---

  /// Record liveness for `world_rank` (called on every send and successful
  /// receive; relaxed atomic store, no synchronisation required -- the lane
  /// is advisory, the verdict logic tolerates stale reads).
  void beat(Rank world_rank) noexcept {
    health_[static_cast<std::size_t>(world_rank)].last_beat_ns.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
  }
  /// Mark `world_rank` permanently dead (its kill trigger fired). Sticky.
  void declare_dead(Rank world_rank) noexcept {
    health_[static_cast<std::size_t>(world_rank)].dead.store(true,
                                                            std::memory_order_relaxed);
  }
  /// Lowest rank declared dead, or -1 if everyone is (presumed) alive.
  [[nodiscard]] Rank first_dead_rank() const noexcept {
    for (std::size_t r = 0; r < mailboxes_.size(); ++r)
      if (health_[r].dead.load(std::memory_order_relaxed)) return static_cast<Rank>(r);
    return -1;
  }
  /// Did any rank other than `exclude` beat strictly after `t`? The
  /// slow-vs-dead discriminator: a deadlocked world has no beats in the
  /// window, a merely degraded one does.
  [[nodiscard]] bool beat_after(std::chrono::steady_clock::time_point t,
                                Rank exclude) const noexcept {
    const std::int64_t cutoff = t.time_since_epoch().count();
    for (std::size_t r = 0; r < mailboxes_.size(); ++r) {
      if (static_cast<Rank>(r) == exclude) continue;
      if (health_[r].last_beat_ns.load(std::memory_order_relaxed) > cutoff) return true;
    }
    return false;
  }

  /// Per-rank counter registry (replaces the old World-wide atomics). Each
  /// rank counts into its own cache-line-aligned block from its own thread
  /// -- see util/metrics.hpp for the single-writer contract.
  [[nodiscard]] util::MetricsRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] util::CounterBlock& counters(Rank world_rank) {
    return metrics_->rank(world_rank);
  }
  /// Rank's trace ring, or nullptr when tracing is off.
  [[nodiscard]] util::TraceBuffer* trace(Rank world_rank) const {
    return trace_ ? trace_->buffer(world_rank) : nullptr;
  }

  /// Shared send-buffer slab pool: typed sends acquire payload buffers here,
  /// typed receives hand them back after unpacking (see buffer_pool.hpp).
  [[nodiscard]] BufferPool& pool() noexcept { return pool_; }

 private:
  /// One cache line per rank so beats never contend.
  struct alignas(64) RankHealth {
    std::atomic<std::int64_t> last_beat_ns{0};
    std::atomic<bool> dead{false};
  };

  RunOptions options_;
  BufferPool pool_;
  std::shared_ptr<util::MetricsRegistry> metrics_;
  std::shared_ptr<util::TraceStore> trace_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::unique_ptr<RankHealth[]> health_;
};

/// Run `fn(comm)` on `nranks` concurrent rank-threads and join them all.
/// If any rank throws, the world is aborted (blocked receives on other ranks
/// unwind with WorldAborted) and the first non-abort exception is rethrown
/// on the caller's thread.
///
/// Returns the total traffic (messages, bytes) the job generated, plus the
/// fault-layer counters (all zero when no faults are injected).
struct TrafficReport {
  std::int64_t messages{0};
  std::int64_t bytes{0};
  std::int64_t duplicates_dropped{0};
  std::int64_t injected_delays{0};
  std::int64_t injected_duplicates{0};
  std::int64_t injected_corruptions{0};
  std::int64_t injected_losses{0};
};
TrafficReport run(int nranks, const std::function<void(Comm&)>& fn,
                  const RunOptions& options = {});

/// Helper used by run_collect (defined in world.cpp, where Comm is complete,
/// to avoid a circular include).
std::size_t rank_of(const Comm& comm) noexcept;

/// As run(), but collects one R per rank (indexed by rank).
template <typename R>
std::vector<R> run_collect(int nranks, const std::function<R(Comm&)>& fn,
                           const RunOptions& options = {}) {
  std::vector<R> results(static_cast<std::size_t>(nranks));
  run(nranks, [&](Comm& comm) { results[rank_of(comm)] = fn(comm); }, options);
  return results;
}

}  // namespace dlouvain::comm
