// World: the shared state behind one communicator group, plus the launcher
// that runs an SPMD function on `size` rank-threads.
//
// This is the project's stand-in for an MPI job: `comm::run(p, fn)` is
// `mpirun -np p`, and the `Comm` handle each rank receives is its
// MPI_COMM_WORLD. See DESIGN.md section 2 for the substitution rationale.
//
// RunOptions carries the fault-tolerance knobs: a receive deadline (blocked
// receives throw CommTimeout with a deadlock diagnostic instead of hanging)
// and an optional FaultInjector whose plan the mailboxes apply to every
// message. Both default off, so existing callers are unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/mailbox.hpp"

namespace dlouvain::comm {

class Comm;
class FaultInjector;

/// Knobs for one run()/World. Defaults reproduce the original behaviour
/// (wait forever, no injection).
struct RunOptions {
  /// <= 0 waits forever; > 0 makes every blocked receive throw CommTimeout
  /// (with a deadlock diagnostic) after this many seconds without a match.
  double timeout_seconds{0};
  /// Shared so crash triggers stay one-shot across restart attempts of the
  /// same job. Null = no fault injection.
  std::shared_ptr<FaultInjector> faults;
};

/// Shared state for one group of ranks. Created by run(); user code only
/// ever sees Comm handles.
class World {
 public:
  explicit World(int size, const RunOptions& options = {});

  [[nodiscard]] int size() const noexcept { return static_cast<int>(mailboxes_.size()); }
  [[nodiscard]] Mailbox& mailbox(Rank rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }
  [[nodiscard]] FaultInjector* injector() const noexcept { return options_.faults.get(); }

  /// Wake every blocked receiver with WorldAborted (called when a rank throws).
  void abort_all();

  /// Multi-line snapshot of every OTHER rank's mailbox (blocked receivers,
  /// pending depths), for the CommTimeout diagnostic. Uses try_lock per
  /// mailbox so simultaneously timing-out ranks cannot deadlock on each
  /// other's report.
  [[nodiscard]] std::string deadlock_report(Rank reporting) const;

  /// Cumulative traffic counters (all ranks). Used by telemetry to report
  /// communication volume the way the paper's HPCToolkit analysis does.
  std::atomic<std::int64_t> messages_sent{0};
  std::atomic<std::int64_t> bytes_sent{0};
  std::atomic<std::int64_t> duplicates_dropped{0};

 private:
  RunOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

/// Run `fn(comm)` on `nranks` concurrent rank-threads and join them all.
/// If any rank throws, the world is aborted (blocked receives on other ranks
/// unwind with WorldAborted) and the first non-abort exception is rethrown
/// on the caller's thread.
///
/// Returns the total traffic (messages, bytes) the job generated, plus the
/// fault-layer counters (all zero when no faults are injected).
struct TrafficReport {
  std::int64_t messages{0};
  std::int64_t bytes{0};
  std::int64_t duplicates_dropped{0};
  std::int64_t injected_delays{0};
  std::int64_t injected_duplicates{0};
  std::int64_t injected_corruptions{0};
};
TrafficReport run(int nranks, const std::function<void(Comm&)>& fn,
                  const RunOptions& options = {});

/// Helper used by run_collect (defined in world.cpp, where Comm is complete,
/// to avoid a circular include).
std::size_t rank_of(const Comm& comm) noexcept;

/// As run(), but collects one R per rank (indexed by rank).
template <typename R>
std::vector<R> run_collect(int nranks, const std::function<R(Comm&)>& fn,
                           const RunOptions& options = {}) {
  std::vector<R> results(static_cast<std::size_t>(nranks));
  run(nranks, [&](Comm& comm) { results[rank_of(comm)] = fn(comm); }, options);
  return results;
}

}  // namespace dlouvain::comm
