// World: the shared state behind one communicator group, plus the launcher
// that runs an SPMD function on `size` rank-threads.
//
// This is the project's stand-in for an MPI job: `comm::run(p, fn)` is
// `mpirun -np p`, and the `Comm` handle each rank receives is its
// MPI_COMM_WORLD. See DESIGN.md section 2 for the substitution rationale.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/mailbox.hpp"

namespace dlouvain::comm {

class Comm;

/// Shared state for one group of ranks. Created by run(); user code only
/// ever sees Comm handles.
class World {
 public:
  explicit World(int size);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(mailboxes_.size()); }
  [[nodiscard]] Mailbox& mailbox(Rank rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }

  /// Wake every blocked receiver with WorldAborted (called when a rank throws).
  void abort_all();

  /// Cumulative traffic counters (all ranks). Used by telemetry to report
  /// communication volume the way the paper's HPCToolkit analysis does.
  std::atomic<std::int64_t> messages_sent{0};
  std::atomic<std::int64_t> bytes_sent{0};

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

/// Run `fn(comm)` on `nranks` concurrent rank-threads and join them all.
/// If any rank throws, the world is aborted (blocked receives on other ranks
/// unwind with WorldAborted) and the first non-abort exception is rethrown
/// on the caller's thread.
///
/// Returns the total traffic (messages, bytes) the job generated.
struct TrafficReport {
  std::int64_t messages{0};
  std::int64_t bytes{0};
};
TrafficReport run(int nranks, const std::function<void(Comm&)>& fn);

/// Helper used by run_collect (defined in world.cpp, where Comm is complete,
/// to avoid a circular include).
std::size_t rank_of(const Comm& comm) noexcept;

/// As run(), but collects one R per rank (indexed by rank).
template <typename R>
std::vector<R> run_collect(int nranks, const std::function<R(Comm&)>& fn) {
  std::vector<R> results(static_cast<std::size_t>(nranks));
  run(nranks, [&](Comm& comm) { results[rank_of(comm)] = fn(comm); });
  return results;
}

}  // namespace dlouvain::comm
