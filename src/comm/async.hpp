// Awaitable handles for nonblocking point-to-point operations (ISSUE 5).
//
// The in-process transport is eager: a send deposits its payload in the
// destination mailbox and returns, so SendHandle is trivially complete at
// creation (exactly like an MPI eager-protocol MPI_Isend of a small
// message). The interesting half is RecvHandle: a posted receive that has
// not yet matched. test() polls without blocking, wait() blocks, and the
// free functions wait_any / wait_all drive a SET of posted receives to
// completion in ARRIVAL order via Mailbox::get_any -- the progress engine
// behind the collectives' arrival-order draining.
//
// Handles are created by Comm::irecv / Comm::isend (comm.hpp); they carry
// pre-packed wire tags, so user code never constructs them directly.
//
// Interplay with the ARQ layer (mailbox.cpp, docs/FAULT_TOLERANCE.md rung 1):
// handles need no retransmit logic of their own. A RecvHandle only observes
// messages the mailbox DELIVERS, and delivery already sits downstream of the
// per-stream sequence check, the CRC check, and the NACK/retransmit repair --
// so a posted receive over a lossy wire simply completes later (after the
// backoff) with the clean payload, in unchanged per-(src, tag) FIFO order.
// If repair fails (retry budget exhausted, rank declared dead), wait()/test()
// surface the escalated CommFailure/RankDead exactly like a blocking receive.
#pragma once

#include <chrono>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "comm/buffer_pool.hpp"
#include "comm/mailbox.hpp"
#include "comm/message.hpp"

namespace dlouvain::comm {

/// A posted nonblocking receive. Movable, not copyable; one message per
/// handle. Completion is observed via test()/wait()/wait_any; the payload is
/// consumed exactly once with take<T>(), which recycles the slab through the
/// world's BufferPool.
class RecvHandle {
 public:
  RecvHandle() = default;
  /// `packed_tag` is the wire tag (Comm::pack_tag output); `src` is the
  /// sender's rank in the posting communicator, which is what messages are
  /// stamped with.
  RecvHandle(Mailbox& mailbox, BufferPool* pool, Rank src, Tag packed_tag)
      : mailbox_(&mailbox), pool_(pool), src_(src), tag_(packed_tag) {}

  RecvHandle(RecvHandle&&) = default;
  RecvHandle& operator=(RecvHandle&&) = default;
  RecvHandle(const RecvHandle&) = delete;
  RecvHandle& operator=(const RecvHandle&) = delete;

  [[nodiscard]] bool valid() const noexcept { return mailbox_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Nonblocking completion probe (MPI_Test): true once the message has been
  /// pulled out of the mailbox. Throws WorldAborted if the world aborted.
  bool test() {
    if (done_) return true;
    require_valid("test");
    if (auto msg = mailbox_->try_get(src_, tag_)) {
      msg_ = std::move(*msg);
      done_ = true;
    }
    return done_;
  }

  /// Block until the message arrives (MPI_Wait). Idempotent.
  void wait() {
    if (done_) return;
    require_valid("wait");
    msg_ = mailbox_->get(src_, tag_);
    done_ = true;
  }

  /// When the completed message became deliverable at this mailbox (enqueue
  /// instant, pushed back by any injected delay) -- the raw input of the
  /// comm_hidden telemetry. Only meaningful once done().
  [[nodiscard]] std::chrono::steady_clock::time_point arrival() const {
    return msg_.effective_arrival();
  }

  /// Complete (blocking if needed) and consume the payload as typed data;
  /// the slab goes back to the pool. Call at most once.
  template <typename T>
  std::vector<T> take() {
    wait();
    auto data = from_bytes<T>(msg_.payload);
    if (pool_ != nullptr) pool_->release(std::move(msg_.payload));
    msg_.payload = {};
    return data;
  }

 private:
  void require_valid(const char* who) const {
    if (!valid())
      throw std::logic_error(std::string("RecvHandle::") + who + ": empty handle");
  }

  friend std::size_t wait_any(std::span<RecvHandle* const> handles);

  Mailbox* mailbox_{nullptr};
  BufferPool* pool_{nullptr};
  Rank src_{-1};
  Tag tag_{0};
  bool done_{false};
  Message msg_{};
};

/// Handle for a nonblocking send. The transport is eager (buffered into the
/// destination mailbox before isend returns), so the handle is born
/// complete; it exists so call sites read like their MPI counterparts.
class SendHandle {
 public:
  [[nodiscard]] bool done() const noexcept { return true; }
  bool test() const noexcept { return true; }  // NOLINT(modernize-use-nodiscard)
  void wait() const noexcept {}
};

/// Block until any one of `handles` completes and return its index.
/// Already-completed handles win immediately (lowest index first); otherwise
/// whichever pending message is delivered first by arrival order wins. All
/// pending handles must target the same mailbox (one rank's posted
/// receives). If several handles want the same (src, tag) stream, the
/// earliest in span order matches first.
inline std::size_t wait_any(std::span<RecvHandle* const> handles) {
  if (handles.empty()) throw std::logic_error("wait_any: no handles");
  Mailbox* mailbox = nullptr;
  std::vector<Mailbox::Want> wants;
  std::vector<std::size_t> owner;  // handle index per want
  for (std::size_t i = 0; i < handles.size(); ++i) {
    RecvHandle* h = handles[i];
    if (h == nullptr || !h->valid())
      throw std::logic_error("wait_any: null or empty handle");
    if (h->done()) return i;
    if (mailbox == nullptr) {
      mailbox = h->mailbox_;
    } else if (mailbox != h->mailbox_) {
      throw std::logic_error("wait_any: handles must share one mailbox");
    }
    wants.push_back({h->src_, h->tag_});
    owner.push_back(i);
  }
  auto [msg, want_index] = mailbox->get_any(wants);
  RecvHandle* h = handles[owner[want_index]];
  h->msg_ = std::move(msg);
  h->done_ = true;
  return owner[want_index];
}

/// Drive every handle to completion, draining messages in arrival order.
inline void wait_all(std::span<RecvHandle* const> handles) {
  std::size_t remaining = 0;
  for (RecvHandle* h : handles) {
    if (h == nullptr || !h->valid()) throw std::logic_error("wait_all: null or empty handle");
    if (!h->done()) ++remaining;
  }
  std::vector<RecvHandle*> pending;
  pending.reserve(remaining);
  for (RecvHandle* h : handles) {
    if (!h->done()) pending.push_back(h);
  }
  while (!pending.empty()) {
    const std::size_t i = wait_any(pending);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

}  // namespace dlouvain::comm
