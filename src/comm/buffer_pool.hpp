// Pooled send-buffer slab for the message runtime (ISSUE 5).
//
// Every typed send used to allocate a fresh std::vector<std::byte>, copy the
// payload in, and the receiver freed it after deserializing -- one
// malloc/free pair per message on the hottest comm path. The pool recycles
// those buffers instead: Comm's typed send path acquires a slab, the typed
// receive paths hand the payload back once its contents are unpacked.
//
// Capacities are rounded up to powers of two so a released buffer lands in a
// bucket any later acquire of a similar size can reuse; retention is bounded
// (per bucket and in total bytes) so a one-off giant collective cannot pin
// its peak memory for the rest of the run. The pool is shared by all rank
// threads of a World and guarded by a mutex -- the win is skipping the
// allocator, not the lock (rank counts here are small).
#pragma once

#include <bit>
#include <cstddef>
#include <mutex>
#include <vector>

namespace dlouvain::comm {

class BufferPool {
 public:
  /// A buffer of size() == n, recycled from the pool when a matching slab is
  /// available (capacity = the next power of two >= n). `reused`, when
  /// non-null, reports whether a slab was recycled -- the caller counts it
  /// into its own rank's block (the pool itself is multi-writer and cannot).
  [[nodiscard]] std::vector<std::byte> acquire(std::size_t n, bool* reused = nullptr) {
    const std::size_t cap = slab_capacity(n);
    const std::size_t b = bucket_of(cap);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      auto& bucket = buckets_[b];
      if (!bucket.empty()) {
        std::vector<std::byte> buf = std::move(bucket.back());
        bucket.pop_back();
        held_bytes_ -= buf.capacity();
        buf.resize(n);
        if (reused != nullptr) *reused = true;
        return buf;
      }
    }
    if (reused != nullptr) *reused = false;
    std::vector<std::byte> buf;
    buf.reserve(cap);
    buf.resize(n);
    return buf;
  }

  /// Return a buffer to the pool. Buffers whose capacity is not a pool slab
  /// size, or that would exceed the retention bounds, are simply freed.
  void release(std::vector<std::byte>&& buf) {
    const std::size_t cap = buf.capacity();
    if (cap == 0 || cap != slab_capacity(cap)) return;  // not one of ours
    const std::size_t b = bucket_of(cap);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (buckets_[b].size() >= kMaxPerBucket || held_bytes_ + cap > kMaxHeldBytes)
      return;
    buf.clear();
    held_bytes_ += cap;
    buckets_[b].push_back(std::move(buf));
  }

  /// Bytes currently parked in the pool (diagnostics only).
  [[nodiscard]] std::size_t held_bytes() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return held_bytes_;
  }

 private:
  static constexpr std::size_t kMinSlab = 64;  ///< empty/1-element messages share a bucket
  static constexpr std::size_t kBuckets = 40;
  static constexpr std::size_t kMaxPerBucket = 64;
  static constexpr std::size_t kMaxHeldBytes = std::size_t{64} << 20;

  [[nodiscard]] static std::size_t slab_capacity(std::size_t n) {
    return std::bit_ceil(n < kMinSlab ? kMinSlab : n);
  }
  [[nodiscard]] static std::size_t bucket_of(std::size_t cap) {
    return static_cast<std::size_t>(std::countr_zero(cap));
  }

  mutable std::mutex mutex_;
  std::vector<std::vector<std::byte>> buckets_[kBuckets]{};
  std::size_t held_bytes_{0};
};

}  // namespace dlouvain::comm
