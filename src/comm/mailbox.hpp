// Per-rank mailbox with MPI-style (source, tag) matching.
//
// One Mailbox exists per destination rank. Senders append under the mutex
// and notify; receivers block until a message whose (src, tag) matches is
// present. Messages from the same source with the same tag are delivered in
// FIFO order -- the non-overtaking guarantee MPI provides and that the
// Louvain communication protocol relies on.
//
// The mailbox is also the runtime's detection layer (ISSUE 2 fault model):
//  * every message is stamped with a per-(src, tag) sequence number on entry
//    and a CRC32 of its payload; receives verify the checksum (CorruptMessage
//    on mismatch) and silently drop duplicate sequence numbers, so injected
//    or transport-level duplication and bit-rot are caught instead of
//    silently corrupting the protocol;
//  * blocked receives honour a configurable deadline; on expiry they throw
//    CommTimeout carrying a deadlock diagnostic (which ranks are blocked on
//    which (src, tag), per-mailbox pending depths) instead of hanging
//    forever.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/message.hpp"

namespace dlouvain::comm {

class FaultInjector;
class World;

/// Thrown out of blocked receives when another rank aborted (threw) so the
/// whole world can unwind instead of deadlocking.
struct WorldAborted : std::exception {
  const char* what() const noexcept override {
    return "communicator world aborted by another rank";
  }
};

/// Base class of every detectable communication fault. Recovery drivers
/// (Plan's restart loop) catch this one type to decide "retryable".
struct CommFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A blocked receive exceeded the configured deadline; what() carries the
/// deadlock diagnostic.
struct CommTimeout : CommFailure {
  using CommFailure::CommFailure;
};

/// A received payload failed its CRC32 check.
struct CorruptMessage : CommFailure {
  using CommFailure::CommFailure;
};

class Mailbox {
 public:
  /// `world` may be null (standalone use in unit tests): no deadline, no
  /// injection, no global counters. `timeout_seconds` <= 0 = wait forever.
  explicit Mailbox(World* world = nullptr, Rank owner = 0, double timeout_seconds = 0,
                   FaultInjector* injector = nullptr)
      : world_(world), owner_(owner), timeout_seconds_(timeout_seconds),
        injector_(injector) {}

  /// Deposit a message (buffered send: never blocks). Stamps the sequence
  /// number and payload CRC, then applies any injected fate (delay /
  /// duplicate / corrupt) from the world's FaultInjector.
  void put(Message msg);

  /// Block until a message from `src` with tag `tag` is available, then
  /// remove and return it. Throws WorldAborted if abort() is called,
  /// CommTimeout past the configured deadline, CorruptMessage on checksum
  /// mismatch.
  Message get(Rank src, Tag tag);

  /// One (src, tag) stream a receiver is interested in.
  struct Want {
    Rank src;
    Tag tag;
  };

  /// Non-blocking receive: deliver the head of the (src, tag) stream if one
  /// is present and visible, nullopt otherwise. Same dedup/loss/CRC
  /// semantics as get() -- this is the progress engine's polling primitive.
  std::optional<Message> try_get(Rank src, Tag tag);

  /// Block until a message matching ANY of `wants` is deliverable, then
  /// remove and return it together with the index of the want it matched.
  /// Among streams with deliverable heads, ARRIVAL order wins (the entry
  /// that was enqueued first), not want order -- the primitive behind
  /// wait_any and the collectives' arrival-order draining. Per-stream FIFO
  /// is preserved: a delayed stream head holds its stream back without
  /// blocking the other wanted streams.
  std::pair<Message, std::size_t> get_any(std::span<const Want> wants);

  /// Wake all blocked receivers with WorldAborted.
  void abort();

  /// Number of queued messages (diagnostics only).
  [[nodiscard]] std::size_t pending() const;

  /// Duplicate messages this mailbox has dropped (diagnostics only).
  [[nodiscard]] std::int64_t duplicates_dropped() const;

  /// One line for the deadlock report: blocked receivers and queue depth.
  /// Uses try_lock so a wedged peer cannot block the reporter; returns
  /// "rank N: <busy>" if the mailbox lock is held elsewhere.
  [[nodiscard]] std::string status_line() const;

 private:
  [[nodiscard]] static std::uint64_t stream_key(Rank src, Tag tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(tag);
  }
  [[nodiscard]] std::string status_line_locked() const;

  /// One pass over the queue under the caller's lock: drop duplicates,
  /// detect stream gaps, and deliver the oldest visible entry matching any
  /// want. `head_delayed`/`next_visible` report a matching-but-not-yet-
  /// visible head so blocking callers can bound their sleep.
  struct ScanResult {
    bool delivered{false};
    Message msg{};
    std::size_t want_index{0};
    bool head_delayed{false};
    std::chrono::steady_clock::time_point next_visible{};
  };
  ScanResult scan_locked(std::span<const Want> wants);
  std::pair<Message, std::size_t> get_any_impl(std::span<const Want> wants);

  World* world_;
  Rank owner_;
  double timeout_seconds_;
  FaultInjector* injector_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_{false};
  std::unordered_map<std::uint64_t, std::uint64_t> next_put_seq_;
  std::unordered_map<std::uint64_t, std::uint64_t> next_deliver_seq_;
  std::vector<std::pair<Rank, Tag>> waiting_;  ///< blocked receivers' (src, tag)
  std::int64_t duplicates_dropped_{0};
};

}  // namespace dlouvain::comm
