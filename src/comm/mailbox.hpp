// Per-rank mailbox with MPI-style (source, tag) matching.
//
// One Mailbox exists per destination rank. Senders append under the mutex
// and notify; receivers block until a message whose (src, tag) matches is
// present. Messages from the same source with the same tag are delivered in
// FIFO order -- the non-overtaking guarantee MPI provides and that the
// Louvain communication protocol relies on.
//
// The mailbox is also the runtime's detection layer (ISSUE 2 fault model):
//  * every message is stamped with a per-(src, tag) sequence number on entry
//    and a CRC32 of its payload; receives verify the checksum (CorruptMessage
//    on mismatch) and silently drop duplicate sequence numbers, so injected
//    or transport-level duplication and bit-rot are caught instead of
//    silently corrupting the protocol;
//  * blocked receives honour a configurable deadline; on expiry they throw
//    CommTimeout carrying a deadlock diagnostic (which ranks are blocked on
//    which (src, tag), per-mailbox pending depths) instead of hanging
//    forever.
//
// ISSUE 7 adds the RESPONSE layer on top of detection -- rung 1 of the
// recovery ladder (docs/FAULT_TOLERANCE.md). With retransmission enabled,
// put() retains a clean copy of every payload in pooled slabs until its
// delivery acknowledges it; a receiver that detects a sequence gap or a
// checksum mismatch issues a NACK against the retained store and the link
// retransmits with capped exponential backoff, bounded by `retransmit_max`
// attempts per message before escalating to CommFailure. Retransmitted
// copies carry the original sequence number, so the existing duplicate-
// suppression machinery makes the repair invisible to the algorithm:
// delivered bytes and order are bitwise those of a clean wire.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/buffer_pool.hpp"
#include "comm/message.hpp"

namespace dlouvain::comm {

class FaultInjector;
class World;

/// Thrown out of blocked receives when another rank aborted (threw) so the
/// whole world can unwind instead of deadlocking.
struct WorldAborted : std::exception {
  const char* what() const noexcept override {
    return "communicator world aborted by another rank";
  }
};

/// Base class of every detectable communication fault. Recovery drivers
/// (Plan's restart loop) catch this one type to decide "retryable".
struct CommFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A blocked receive exceeded the configured deadline; what() carries the
/// deadlock diagnostic.
struct CommTimeout : CommFailure {
  using CommFailure::CommFailure;
};

/// A received payload failed its CRC32 check.
struct CorruptMessage : CommFailure {
  using CommFailure::CommFailure;
};

/// Rung-2 structured verdict: a specific rank is DEAD (its heartbeat lane
/// declared it, or its own fault_point fired a permanent kill), not merely
/// slow. Carries the world rank so the rung-3 recovery driver can shrink the
/// world to the survivors instead of blindly retrying at full size.
struct RankDead : CommFailure {
  Rank rank{-1};
  RankDead(Rank dead_rank, const std::string& msg) : CommFailure(msg), rank(dead_rank) {}
};

class Mailbox {
 public:
  /// `world` may be null (standalone use in unit tests): no deadline, no
  /// injection, no global counters. `timeout_seconds` <= 0 = wait forever.
  /// `retransmit_max` > 0 enables link-level ARQ: that many retransmission
  /// attempts per message (first retry after `retransmit_backoff_ms`,
  /// doubling per attempt, capped) before the link escalates.
  explicit Mailbox(World* world = nullptr, Rank owner = 0, double timeout_seconds = 0,
                   FaultInjector* injector = nullptr, int retransmit_max = 0,
                   double retransmit_backoff_ms = 1.0)
      : world_(world), owner_(owner), timeout_seconds_(timeout_seconds),
        injector_(injector), retransmit_max_(retransmit_max),
        retransmit_backoff_ms_(retransmit_backoff_ms) {}

  /// Deposit a message (buffered send: never blocks). Stamps the sequence
  /// number and payload CRC, retains a clean copy for retransmission when
  /// ARQ is on, then applies any injected fate (delay / duplicate / corrupt
  /// / lose) from the world's FaultInjector.
  void put(Message msg);

  /// Block until a message from `src` with tag `tag` is available, then
  /// remove and return it. Throws WorldAborted if abort() is called,
  /// CommTimeout past the configured deadline, CorruptMessage on checksum
  /// mismatch.
  Message get(Rank src, Tag tag);

  /// One (src, tag) stream a receiver is interested in.
  struct Want {
    Rank src;
    Tag tag;
  };

  /// Non-blocking receive: deliver the head of the (src, tag) stream if one
  /// is present and visible, nullopt otherwise. Same dedup/loss/CRC
  /// semantics as get() -- this is the progress engine's polling primitive.
  std::optional<Message> try_get(Rank src, Tag tag);

  /// Block until a message matching ANY of `wants` is deliverable, then
  /// remove and return it together with the index of the want it matched.
  /// Among streams with deliverable heads, ARRIVAL order wins (the entry
  /// that was enqueued first), not want order -- the primitive behind
  /// wait_any and the collectives' arrival-order draining. Per-stream FIFO
  /// is preserved: a delayed stream head holds its stream back without
  /// blocking the other wanted streams.
  std::pair<Message, std::size_t> get_any(std::span<const Want> wants);

  /// Wake all blocked receivers with WorldAborted.
  void abort();

  /// Number of queued messages (diagnostics only).
  [[nodiscard]] std::size_t pending() const;

  /// Duplicate messages this mailbox has dropped (diagnostics only).
  [[nodiscard]] std::int64_t duplicates_dropped() const;

  /// Payload bytes currently retained for possible retransmission
  /// (diagnostics only; 0 with ARQ off or everything acknowledged).
  [[nodiscard]] std::size_t retained_bytes() const;

  /// One line for the deadlock report: blocked receivers and queue depth.
  /// Uses try_lock so a wedged peer cannot block the reporter; returns
  /// "rank N: <busy>" if the mailbox lock is held elsewhere.
  [[nodiscard]] std::string status_line() const;

 private:
  [[nodiscard]] static std::uint64_t stream_key(Rank src, Tag tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(tag);
  }
  [[nodiscard]] std::string status_line_locked() const;

  /// One pass over the queue under the caller's lock: drop duplicates,
  /// detect stream gaps, and deliver the oldest visible entry matching any
  /// want. `head_delayed`/`next_visible` report a matching-but-not-yet-
  /// visible head (or an ARQ backoff in progress) so blocking callers can
  /// bound their sleep.
  struct ScanResult {
    bool delivered{false};
    Message msg{};
    std::size_t want_index{0};
    bool head_delayed{false};
    std::chrono::steady_clock::time_point next_visible{};
  };
  ScanResult scan_locked(std::span<const Want> wants);
  std::pair<Message, std::size_t> get_any_impl(std::span<const Want> wants);

  // --- rung-1 ARQ internals (all under mutex_) ---

  /// Sender-retained copy of one unacknowledged message (the link buffer).
  struct Retained {
    std::uint64_t seq{0};
    std::vector<std::byte> payload;  ///< slab from arq_pool_
    std::uint32_t crc{0};
  };
  /// Per-stream retransmission state for the sequence number currently
  /// being recovered.
  struct ArqState {
    std::uint64_t seq{0};     ///< the missing/corrupt seq under recovery
    int attempts{0};          ///< retransmissions already issued for it
    std::chrono::steady_clock::time_point not_before{};  ///< backoff gate
  };

  [[nodiscard]] bool arq_enabled() const noexcept { return retransmit_max_ > 0; }
  /// NACK `seq` on stream (src, tag): retransmit from the retained store,
  /// honouring the backoff gate, or throw CommFailure once the retry budget
  /// is exhausted. Updates `result`'s sleep bound. `now` is the scan's
  /// timestamp. Returns true if the caller should keep scanning (the stream
  /// stays blocked either way).
  void nack_locked(std::uint64_t key, Rank src, Tag tag, std::uint64_t seq,
                   std::chrono::steady_clock::time_point now, const char* why,
                   ScanResult& result);
  /// Drop retained copies with seq <= `acked` (cumulative ack on delivery).
  void ack_locked(std::uint64_t key, std::uint64_t acked);

  World* world_;
  Rank owner_;
  double timeout_seconds_;
  FaultInjector* injector_;
  int retransmit_max_;
  double retransmit_backoff_ms_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_{false};
  std::unordered_map<std::uint64_t, std::uint64_t> next_put_seq_;
  std::unordered_map<std::uint64_t, std::uint64_t> next_deliver_seq_;
  std::vector<std::pair<Rank, Tag>> waiting_;  ///< blocked receivers' (src, tag)
  std::int64_t duplicates_dropped_{0};

  /// Unacked payload copies per stream (FIFO by seq) and the in-progress
  /// recovery state. Slabs come from arq_pool_ (private to this mailbox, so
  /// only ever touched under mutex_) and return to it on acknowledgement.
  std::unordered_map<std::uint64_t, std::deque<Retained>> retained_;
  std::unordered_map<std::uint64_t, ArqState> arq_;
  BufferPool arq_pool_;
  std::size_t retained_bytes_{0};
};

}  // namespace dlouvain::comm
