// Per-rank mailbox with MPI-style (source, tag) matching.
//
// One Mailbox exists per destination rank. Senders append under the mutex
// and notify; receivers block until a message whose (src, tag) matches is
// present. Messages from the same source with the same tag are delivered in
// FIFO order -- the non-overtaking guarantee MPI provides and that the
// Louvain communication protocol relies on.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "comm/message.hpp"

namespace dlouvain::comm {

/// Thrown out of blocked receives when another rank aborted (threw) so the
/// whole world can unwind instead of deadlocking.
struct WorldAborted : std::exception {
  const char* what() const noexcept override {
    return "communicator world aborted by another rank";
  }
};

class Mailbox {
 public:
  /// Deposit a message (buffered send: never blocks).
  void put(Message msg);

  /// Block until a message from `src` with tag `tag` is available, then
  /// remove and return it. Throws WorldAborted if abort() is called.
  Message get(Rank src, Tag tag);

  /// Wake all blocked receivers with WorldAborted.
  void abort();

  /// Number of queued messages (diagnostics only).
  [[nodiscard]] std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_{false};
};

}  // namespace dlouvain::comm
