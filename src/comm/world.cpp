#include "comm/world.hpp"

#include <exception>
#include <thread>

#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "util/log.hpp"

namespace dlouvain::comm {

World::World(int size, const RunOptions& options) : options_(options) {
  if (size <= 0) throw std::invalid_argument("world size must be positive");
  metrics_ = options_.metrics;
  if (!metrics_) metrics_ = std::make_shared<util::MetricsRegistry>(size);
  if (metrics_->num_ranks() < size)
    throw std::invalid_argument("RunOptions::metrics registry smaller than world");
  trace_ = options_.trace;
  if (trace_ && trace_->num_ranks() < size)
    throw std::invalid_argument("RunOptions::trace store smaller than world");
  if (options_.retransmit_max < 0)
    throw std::invalid_argument("RunOptions::retransmit_max must be >= 0");
  if (options_.retransmit_backoff_ms <= 0 && options_.retransmit_max > 0)
    throw std::invalid_argument("RunOptions::retransmit_backoff_ms must be positive");
  health_ = std::make_unique<RankHealth[]>(static_cast<std::size_t>(size));
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>(
        this, r, options_.timeout_seconds, options_.faults.get(),
        options_.retransmit_max, options_.retransmit_backoff_ms));
}

void World::abort_all() {
  for (auto& box : mailboxes_) box->abort();
}

std::string World::deadlock_report(Rank reporting) const {
  std::string report;
  for (std::size_t r = 0; r < mailboxes_.size(); ++r) {
    if (static_cast<Rank>(r) == reporting) continue;  // reporter printed itself
    report += "\n  " + mailboxes_[r]->status_line();
  }
  return report;
}

std::size_t rank_of(const Comm& comm) noexcept {
  return static_cast<std::size_t>(comm.rank());
}

TrafficReport run(int nranks, const std::function<void(Comm&)>& fn,
                  const RunOptions& options) {
  World world(nranks, options);

  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto rank_main = [&](Rank rank) {
    Comm comm(world, rank);
    try {
      fn(comm);
    } catch (const WorldAborted&) {
      // Unwound because another rank failed; nothing to record.
    } catch (const std::exception& e) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      util::log_error() << "rank " << rank << " failed (" << e.what()
                        << "); aborting world";
      world.abort_all();
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      util::log_error() << "rank " << rank << " threw; aborting world";
      world.abort_all();
    }
  };

  if (nranks == 1) {
    // Single-rank worlds run inline: cheaper, and keeps stack traces simple.
    rank_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (Rank r = 0; r < nranks; ++r) threads.emplace_back(rank_main, r);
    for (auto& t : threads) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  // Joining (or inline execution) above gives the happens-before edge for
  // reading the per-rank counter blocks. Report TOTAL traffic: algorithm
  // messages plus any reclassified checkpoint I/O.
  const util::MetricsSnapshot totals = world.metrics().total();
  TrafficReport report{
      totals[util::Counter::kMessages] + totals[util::Counter::kCheckpointMessages],
      totals[util::Counter::kBytes] + totals[util::Counter::kCheckpointBytes],
      totals[util::Counter::kDuplicatesDropped]};
  if (const auto* inj = world.injector()) {
    report.injected_delays = inj->delayed.load();
    report.injected_duplicates = inj->duplicated.load();
    report.injected_corruptions = inj->corrupted.load();
    report.injected_losses = inj->lost.load();
  }
  return report;
}

}  // namespace dlouvain::comm
