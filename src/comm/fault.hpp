// Deterministic fault injection for the message-passing runtime.
//
// A FaultPlan is a seeded, declarative description of the failures one run
// should experience: rank crashes pinned to a {phase, iteration} of the
// algorithm (transient with crash(), permanent with kill()), plus
// per-message delay / duplication / payload-corruption / loss probabilities
// applied on the wire. A FaultInjector is the plan's live, shareable state:
// message fates are drawn from counter-based hashes keyed on (destination,
// source, tag, per-stream sequence number), so which message is delayed /
// duplicated / corrupted / lost is a pure function of the plan seed and the
// communication pattern -- NOT of thread scheduling -- and every failure
// scenario replays exactly. Crash triggers are one-shot: the same injector
// carried across restart attempts fires each crash once, which is what lets
// a recovery driver resume past an injected failure. kill() triggers are the
// opposite -- they re-fire on every attempt, modelling dead hardware, until
// the recovery driver retires them by excluding the dead rank from the world
// (the rung-3 shrink; see docs/FAULT_TOLERANCE.md).
//
// Injection sites (see mailbox.cpp): fates are applied as messages enter the
// destination mailbox, inside the per-stream sequence numbering, so the
// per-(src, tag) FIFO guarantee is preserved by construction -- a delayed
// message delays its whole stream rather than being overtaken, and a lost
// message consumes its sequence number (the gap the receiver detects).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "comm/mailbox.hpp"

namespace dlouvain::comm {

/// Thrown by Comm::fault_point on a rank whose injected crash trigger fires.
/// Derives CommFailure, so recovery drivers treat it like any other
/// detectable communication fault.
struct RankCrashed : CommFailure {
  using CommFailure::CommFailure;
};

/// Declarative, seeded fault scenario. Plain value; build fluently:
///
///   comm::FaultPlan().with_seed(7).crash(2, /*phase=*/1).corrupt(0.001)
struct FaultPlan {
  std::uint64_t seed{1};

  struct Crash {
    Rank rank{0};
    int phase{0};
    int iteration{0};
    /// Transient crashes (crash()) fire once; permanent deaths (kill())
    /// re-fire every attempt until retired -- the rank's hardware is gone.
    bool permanent{false};
  };
  std::vector<Crash> crashes;

  double delay_probability{0};      ///< per message; holds delivery back
  double delay_ms{2.0};             ///< visibility delay for delayed messages
  double duplicate_probability{0};  ///< per message; re-enqueue same seq
  double corrupt_probability{0};    ///< per message; flip one payload bit
  double lose_probability{0};       ///< per message; drop it on the wire

  FaultPlan& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  FaultPlan& crash(Rank rank, int phase, int iteration = 0) {
    crashes.push_back(Crash{rank, phase, iteration, false});
    return *this;
  }
  /// Permanent rank death at {phase, iteration}: throws RankDead (not
  /// RankCrashed) and RE-FIRES on every restart attempt -- a retry at the
  /// same rank count hits the same dead rank again. Only a rung-3 shrink
  /// (which retires the entry) gets past it.
  FaultPlan& kill(Rank rank, int phase, int iteration = 0) {
    crashes.push_back(Crash{rank, phase, iteration, true});
    return *this;
  }
  FaultPlan& delay(double probability, double ms = 2.0) {
    delay_probability = probability;
    delay_ms = ms;
    return *this;
  }
  FaultPlan& duplicate(double probability) {
    duplicate_probability = probability;
    return *this;
  }
  FaultPlan& corrupt(double probability) {
    corrupt_probability = probability;
    return *this;
  }
  /// Drop the message on the wire: the sequence number is consumed but the
  /// payload never reaches the destination queue -- the gap the receiving
  /// mailbox's ARQ layer detects and NACKs (docs/FAULT_TOLERANCE.md rung 1).
  FaultPlan& lose(double probability) {
    lose_probability = probability;
    return *this;
  }

  [[nodiscard]] bool injects_messages() const noexcept {
    return delay_probability > 0 || duplicate_probability > 0 ||
           corrupt_probability > 0 || lose_probability > 0;
  }
};

/// Live state of one FaultPlan. Share (via shared_ptr in RunOptions) across
/// restart attempts of the same job so crash triggers stay one-shot.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Fate of the message with per-stream sequence number `seq` travelling
  /// src -> dst under wire tag `tag`. Deterministic; counters updated.
  /// A lost message has no other fate (it never reaches the wire's far end).
  struct Fate {
    bool lose{false};
    bool delay{false};
    bool duplicate{false};
    bool corrupt{false};
    std::uint32_t corrupt_bit{0};  ///< bit index into the payload to flip
  };
  Fate message_fate(Rank dst, Rank src, Tag tag, std::uint64_t seq,
                    std::size_t payload_bytes);

  /// Fate of retransmission `attempt` (>= 1) of the same message: an
  /// independent draw per attempt, so a retransmitted copy can itself be
  /// lost or corrupted again -- which is what exercises the capped backoff
  /// and the bounded-retry escalation. Only lose/corrupt apply (a
  /// retransmission is already a duplicate by construction, and its delay
  /// is the ARQ backoff).
  Fate retransmit_fate(Rank dst, Rank src, Tag tag, std::uint64_t seq, int attempt,
                       std::size_t payload_bytes);

  [[nodiscard]] double delay_ms() const noexcept { return plan_.delay_ms; }
  [[nodiscard]] bool injects_messages() const noexcept { return plan_.injects_messages(); }

  /// Crash-trigger verdict for this (rank, phase, iteration) progress point.
  enum class CrashKind { kNone, kTransient, kPermanent };

  /// kTransient exactly once for each crash() entry matching (rank, phase,
  /// iteration); kPermanent on EVERY match of a live kill() entry.
  CrashKind should_crash(Rank rank, int phase, int iteration);

  /// Retire every kill() entry for `rank`: the recovery driver excluded the
  /// dead rank from the world (rung-3 shrink), so its hardware death can no
  /// longer fire.
  void retire(Rank rank);

  // Telemetry (cumulative across all attempts sharing this injector).
  std::atomic<std::int64_t> delayed{0};
  std::atomic<std::int64_t> duplicated{0};
  std::atomic<std::int64_t> corrupted{0};
  std::atomic<std::int64_t> lost{0};
  std::atomic<std::int64_t> crashes_fired{0};

 private:
  FaultPlan plan_;
  std::mutex crash_mutex_;
  std::vector<bool> crash_fired_;
};

}  // namespace dlouvain::comm
