// Deterministic fault injection for the message-passing runtime.
//
// A FaultPlan is a seeded, declarative description of the failures one run
// should experience: rank crashes pinned to a {phase, iteration} of the
// algorithm, plus per-message delay / duplication / payload-corruption
// probabilities applied on the wire. A FaultInjector is the plan's live,
// shareable state: message fates are drawn from counter-based hashes keyed
// on (destination, source, tag, per-stream sequence number), so which
// message is delayed / duplicated / corrupted is a pure function of the plan
// seed and the communication pattern -- NOT of thread scheduling -- and every
// failure scenario replays exactly. Crash triggers are one-shot: the same
// injector carried across restart attempts fires each crash once, which is
// what lets a recovery driver resume past an injected failure.
//
// Injection sites (see mailbox.cpp): fates are applied as messages enter the
// destination mailbox, inside the per-stream sequence numbering, so the
// per-(src, tag) FIFO guarantee is preserved by construction -- a delayed
// message delays its whole stream rather than being overtaken.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "comm/mailbox.hpp"

namespace dlouvain::comm {

/// Thrown by Comm::fault_point on a rank whose injected crash trigger fires.
/// Derives CommFailure, so recovery drivers treat it like any other
/// detectable communication fault.
struct RankCrashed : CommFailure {
  using CommFailure::CommFailure;
};

/// Declarative, seeded fault scenario. Plain value; build fluently:
///
///   comm::FaultPlan().with_seed(7).crash(2, /*phase=*/1).corrupt(0.001)
struct FaultPlan {
  std::uint64_t seed{1};

  struct Crash {
    Rank rank{0};
    int phase{0};
    int iteration{0};
  };
  std::vector<Crash> crashes;

  double delay_probability{0};      ///< per message; holds delivery back
  double delay_ms{2.0};             ///< visibility delay for delayed messages
  double duplicate_probability{0};  ///< per message; re-enqueue same seq
  double corrupt_probability{0};    ///< per message; flip one payload bit

  FaultPlan& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  FaultPlan& crash(Rank rank, int phase, int iteration = 0) {
    crashes.push_back(Crash{rank, phase, iteration});
    return *this;
  }
  FaultPlan& delay(double probability, double ms = 2.0) {
    delay_probability = probability;
    delay_ms = ms;
    return *this;
  }
  FaultPlan& duplicate(double probability) {
    duplicate_probability = probability;
    return *this;
  }
  FaultPlan& corrupt(double probability) {
    corrupt_probability = probability;
    return *this;
  }

  [[nodiscard]] bool injects_messages() const noexcept {
    return delay_probability > 0 || duplicate_probability > 0 || corrupt_probability > 0;
  }
};

/// Live state of one FaultPlan. Share (via shared_ptr in RunOptions) across
/// restart attempts of the same job so crash triggers stay one-shot.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Fate of the message with per-stream sequence number `seq` travelling
  /// src -> dst under wire tag `tag`. Deterministic; counters updated.
  struct Fate {
    bool delay{false};
    bool duplicate{false};
    bool corrupt{false};
    std::uint32_t corrupt_bit{0};  ///< bit index into the payload to flip
  };
  Fate message_fate(Rank dst, Rank src, Tag tag, std::uint64_t seq,
                    std::size_t payload_bytes);

  [[nodiscard]] double delay_ms() const noexcept { return plan_.delay_ms; }
  [[nodiscard]] bool injects_messages() const noexcept { return plan_.injects_messages(); }

  /// One-shot crash trigger: true exactly once for each plan entry matching
  /// (rank, phase, iteration).
  bool should_crash(Rank rank, int phase, int iteration);

  // Telemetry (cumulative across all attempts sharing this injector).
  std::atomic<std::int64_t> delayed{0};
  std::atomic<std::int64_t> duplicated{0};
  std::atomic<std::int64_t> corrupted{0};
  std::atomic<std::int64_t> crashes_fired{0};

 private:
  FaultPlan plan_;
  std::mutex crash_mutex_;
  std::vector<bool> crash_fired_;
};

}  // namespace dlouvain::comm
