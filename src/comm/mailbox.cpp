#include "comm/mailbox.hpp"

#include <algorithm>

namespace dlouvain::comm {

void Mailbox::put(Message msg) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::get(Rank src, Tag tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (aborted_) throw WorldAborted{};
    const auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
      return m.src == src && m.tag == tag;
    });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    cv_.wait(lock);
  }
}

void Mailbox::abort() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace dlouvain::comm
