#include "comm/mailbox.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "comm/fault.hpp"
#include "comm/world.hpp"
#include "util/crc32.hpp"

namespace dlouvain::comm {

namespace {

using Clock = std::chrono::steady_clock;

/// ARQ backoff plateaus at base * 2^kBackoffCapDoublings -- exponential
/// enough to yield under persistent trouble, capped so a recovering link
/// re-probes within a bounded interval.
constexpr int kBackoffCapDoublings = 6;

/// How many times a bounded receive may extend its deadline on evidence the
/// world is slow-but-alive (rung-2 verdict) before reporting CommTimeout
/// anyway. A genuinely deadlocked world produces no heartbeats, so it never
/// extends and the diagnostic fires on schedule.
constexpr int kMaxSlowExtensions = 3;

/// RAII entry in the mailbox's blocked-receiver registry (caller holds the
/// mailbox mutex at construction and destruction). Registers every wanted
/// stream so the deadlock report names all of them.
struct WaitingGuard {
  std::vector<std::pair<Rank, Tag>>& registry;
  std::span<const Mailbox::Want> wants;

  WaitingGuard(std::vector<std::pair<Rank, Tag>>& r, std::span<const Mailbox::Want> ws)
      : registry(r), wants(ws) {
    for (const auto& w : wants) registry.emplace_back(w.src, w.tag);
  }
  ~WaitingGuard() {
    for (const auto& w : wants) {
      const auto it = std::find(registry.begin(), registry.end(), std::pair(w.src, w.tag));
      if (it != registry.end()) registry.erase(it);
    }
  }
};

std::string wants_desc(std::span<const Mailbox::Want> wants) {
  std::string out;
  for (std::size_t i = 0; i < wants.size(); ++i) {
    if (i != 0) out += i + 1 == wants.size() ? " or " : ", ";
    out += "(src=" + std::to_string(wants[i].src) + ", tag=" + std::to_string(wants[i].tag) + ")";
  }
  return out;
}

}  // namespace

void Mailbox::put(Message msg) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    msg.seq = next_put_seq_[stream_key(msg.src, msg.tag)]++;
    msg.crc = util::crc32(msg.payload);
    msg.arrived_at = Clock::now();

    if (arq_enabled()) {
      // Retain the CLEAN payload (before any injected fate) in a pooled
      // slab: the sender-side link buffer a NACK retransmits from. Released
      // by the cumulative ack when the message is delivered.
      std::vector<std::byte> copy = arq_pool_.acquire(msg.payload.size());
      if (!copy.empty()) std::memcpy(copy.data(), msg.payload.data(), copy.size());
      retained_bytes_ += copy.size();
      retained_[stream_key(msg.src, msg.tag)].push_back(
          Retained{msg.seq, std::move(copy), msg.crc});
    }

    bool duplicate = false;
    bool lose = false;
    if (injector_ != nullptr && injector_->injects_messages()) {
      const auto fate =
          injector_->message_fate(owner_, msg.src, msg.tag, msg.seq, msg.payload.size());
      lose = fate.lose;
      if (fate.delay) {
        msg.visible_at = msg.arrived_at + std::chrono::duration_cast<Clock::duration>(
                                              std::chrono::duration<double, std::milli>(
                                                  injector_->delay_ms()));
      }
      if (fate.corrupt) {
        // Flip one bit AFTER the checksum was computed: wire corruption the
        // receiver's CRC verification must catch.
        auto& byte = msg.payload[fate.corrupt_bit / 8];
        byte ^= static_cast<std::byte>(1u << (fate.corrupt_bit % 8));
      }
      duplicate = fate.duplicate;
    }

    // A lost message consumed its sequence number but never reaches the
    // queue: the receiver sees a stream gap (and, with ARQ, NACKs it).
    if (!lose) {
      if (duplicate) queue_.push_back(msg);  // same seq: dedup layer's problem
      queue_.push_back(std::move(msg));
    }
  }
  cv_.notify_all();
}

Mailbox::ScanResult Mailbox::scan_locked(std::span<const Want> wants) {
  // Queue order is put order across ALL streams, so delivering the first
  // deliverable match is arrival-order completion. Per-stream FIFO needs no
  // extra bookkeeping: only the entry whose seq equals the stream's
  // next-deliver counter is a candidate, so later entries (including
  // retransmitted copies, which sit out of arrival order at the back) can
  // never overtake.
  ScanResult result;
  const auto now = Clock::now();
  struct Gap {
    std::uint64_t key;
    Rank src;
    Tag tag;
    std::uint64_t expected;
    std::uint64_t found;
  };
  std::vector<Gap> gaps;           // streams where an entry past a hole was seen
  std::vector<std::uint64_t> satisfied;  // streams holding a seq==expected entry
  const auto is_satisfied = [&](std::uint64_t key) {
    return std::find(satisfied.begin(), satisfied.end(), key) != satisfied.end();
  };

  for (std::size_t i = 0; i < queue_.size();) {
    const Message& m = queue_[i];
    const auto match = std::find_if(wants.begin(), wants.end(), [&](const Want& w) {
      return m.src == w.src && m.tag == w.tag;
    });
    if (match == wants.end()) {
      ++i;
      continue;
    }
    const std::uint64_t key = stream_key(m.src, m.tag);
    auto& expected = next_deliver_seq_[key];
    if (m.seq < expected) {
      // Duplicate delivery: drop and keep scanning. The counter goes into
      // the RECEIVER's block -- receives run on the owner's thread,
      // honouring the single-writer contract of util/metrics.hpp.
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      ++duplicates_dropped_;
      if (world_ != nullptr)
        world_->counters(owner_)[util::Counter::kDuplicatesDropped] += 1;
      continue;
    }
    if (m.seq > expected) {
      // A hole precedes this entry: either the expected message is lost
      // (resolved after the walk -- NACK with ARQ, hard failure without) or
      // its copy is merely delayed and sits elsewhere in the queue, which
      // `satisfied` disambiguates.
      if (std::none_of(gaps.begin(), gaps.end(), [&](const Gap& g) { return g.key == key; }))
        gaps.push_back(Gap{key, m.src, m.tag, expected, m.seq});
      ++i;
      continue;
    }
    // m.seq == expected: the head of this stream.
    if (m.visible_at > now) {
      if (!result.head_delayed || m.visible_at < result.next_visible)
        result.next_visible = m.visible_at;
      result.head_delayed = true;
      satisfied.push_back(key);
      ++i;
      continue;
    }
    const bool crc_ok = util::crc32(m.payload) == m.crc;
    if (!crc_ok && arq_enabled()) {
      // Rung 1: discard the corrupt copy and NACK a clean retransmission
      // from the retained store. The stream stays blocked until it lands.
      const Rank src = m.src;
      const Tag tag = m.tag;
      const std::uint64_t seq = m.seq;
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      nack_locked(key, src, tag, seq, now, "checksum mismatch", result);
      satisfied.push_back(key);  // recovery in progress; no second NACK below
      continue;
    }
    result.msg = std::move(queue_[i]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    ++expected;
    if (!crc_ok) {
      throw CorruptMessage("rank " + std::to_string(owner_) +
                           ": payload checksum mismatch on message (src=" +
                           std::to_string(result.msg.src) +
                           ", tag=" + std::to_string(result.msg.tag) +
                           ", seq=" + std::to_string(result.msg.seq) + ", " +
                           std::to_string(result.msg.payload.size()) + " bytes)");
    }
    ack_locked(key, result.msg.seq);
    result.delivered = true;
    result.want_index = static_cast<std::size_t>(match - wants.begin());
    return result;
  }

  // Nothing deliverable. Streams with a hole and no queued head copy need
  // link-level recovery; so does the lost-TAIL case (the newest message
  // dropped, leaving no queue entry at all), which only the retained store
  // can witness.
  if (arq_enabled()) {
    for (const auto& w : wants) {
      const std::uint64_t key = stream_key(w.src, w.tag);
      if (is_satisfied(key)) continue;
      const auto rit = retained_.find(key);
      if (rit == retained_.end() || rit->second.empty()) continue;
      const auto dit = next_deliver_seq_.find(key);
      const std::uint64_t expected = dit == next_deliver_seq_.end() ? 0 : dit->second;
      if (rit->second.front().seq != expected) continue;
      nack_locked(key, w.src, w.tag, expected, now, "sequence gap", result);
    }
  } else {
    for (const auto& g : gaps) {
      if (is_satisfied(g.key)) continue;
      throw CommFailure("mailbox of rank " + std::to_string(owner_) +
                        ": lost message in stream (src=" + std::to_string(g.src) +
                        ", tag=" + std::to_string(g.tag) + "): expected seq " +
                        std::to_string(g.expected) + ", found " + std::to_string(g.found));
    }
  }
  return result;
}

void Mailbox::nack_locked(std::uint64_t key, Rank src, Tag tag, std::uint64_t seq,
                          Clock::time_point now, const char* why, ScanResult& result) {
  auto& st = arq_[key];
  if (st.seq != seq || st.attempts == 0) st = ArqState{seq, 0, Clock::time_point{}};
  if (now < st.not_before) {
    // Backoff in progress (or the retransmitted copy is still in flight):
    // bound the caller's sleep to the gate, no new attempt.
    if (!result.head_delayed || st.not_before < result.next_visible)
      result.next_visible = st.not_before;
    result.head_delayed = true;
    return;
  }
  if (st.attempts >= retransmit_max_) {
    if (world_ != nullptr)
      world_->counters(owner_)[util::Counter::kArqEscalations] += 1;
    throw CommFailure("rank " + std::to_string(owner_) +
                      ": link-level retransmit budget exhausted after " +
                      std::to_string(st.attempts) + " attempts on stream (src=" +
                      std::to_string(src) + ", tag=" + std::to_string(tag) +
                      "), seq " + std::to_string(seq) + " (" + why + ")");
  }
  ++st.attempts;

  const auto rit = retained_.find(key);
  if (rit == retained_.end() || rit->second.empty() || rit->second.front().seq != seq) {
    throw CommFailure("rank " + std::to_string(owner_) +
                      ": no retained copy to retransmit for stream (src=" +
                      std::to_string(src) + ", tag=" + std::to_string(tag) +
                      "), seq " + std::to_string(seq) + " (" + why + ")");
  }
  const Retained& kept = rit->second.front();

  const double backoff_ms =
      retransmit_backoff_ms_ *
      static_cast<double>(1u << std::min(st.attempts - 1, kBackoffCapDoublings));
  st.not_before = now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(backoff_ms));
  if (world_ != nullptr) {
    auto& counters = world_->counters(owner_);
    counters[util::Counter::kArqNacks] += 1;
    counters[util::Counter::kArqBackoffMs] +=
        static_cast<std::int64_t>(std::llround(backoff_ms));
  }

  // The retransmitted copy crosses the same faulty wire: draw an independent
  // per-attempt fate so it too can be lost or corrupted (deterministically).
  FaultInjector::Fate fate;
  if (injector_ != nullptr && injector_->injects_messages())
    fate = injector_->retransmit_fate(owner_, src, tag, seq, st.attempts,
                                      kept.payload.size());
  if (!fate.lose) {
    Message copy;
    copy.src = src;
    copy.tag = tag;
    copy.payload = kept.payload;
    copy.seq = seq;
    copy.crc = kept.crc;
    copy.arrived_at = now;
    copy.visible_at = st.not_before;  // the repair lands after the backoff round trip
    if (fate.corrupt) {
      auto& byte = copy.payload[fate.corrupt_bit / 8];
      byte ^= static_cast<std::byte>(1u << (fate.corrupt_bit % 8));
    }
    queue_.push_back(std::move(copy));
    if (world_ != nullptr)
      world_->counters(owner_)[util::Counter::kArqRetransmits] += 1;
  }
  if (!result.head_delayed || st.not_before < result.next_visible)
    result.next_visible = st.not_before;
  result.head_delayed = true;
}

void Mailbox::ack_locked(std::uint64_t key, std::uint64_t acked) {
  if (!arq_enabled()) return;
  const auto rit = retained_.find(key);
  if (rit == retained_.end()) return;
  auto& kept = rit->second;
  while (!kept.empty() && kept.front().seq <= acked) {
    retained_bytes_ -= kept.front().payload.size();
    arq_pool_.release(std::move(kept.front().payload));
    kept.pop_front();
  }
  if (kept.empty()) retained_.erase(rit);
  const auto ait = arq_.find(key);
  if (ait != arq_.end() && ait->second.seq <= acked) arq_.erase(ait);
}

std::pair<Message, std::size_t> Mailbox::get_any_impl(std::span<const Want> wants) {
  std::unique_lock<std::mutex> lock(mutex_);
  const WaitingGuard waiting(waiting_, wants);

  const bool bounded = timeout_seconds_ > 0;
  const auto timeout_dur = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(timeout_seconds_));
  auto deadline = bounded ? Clock::now() + timeout_dur : Clock::time_point::max();
  int extensions = 0;

  for (;;) {
    if (aborted_) throw WorldAborted{};

    ScanResult scan = scan_locked(wants);
    if (scan.delivered) {
      // Successful delivery is this rank's heartbeat: peers blocked on a
      // deadline can tell a slow world from a dead one.
      if (world_ != nullptr) world_->beat(owner_);
      return {std::move(scan.msg), scan.want_index};
    }

    if (Clock::now() >= deadline) {
      if (world_ != nullptr) {
        // Rung 2: turn the raw deadline expiry into a structured verdict.
        if (const Rank dead = world_->first_dead_rank(); dead >= 0) {
          throw RankDead(dead, "rank " + std::to_string(dead) +
                                   " is dead (heartbeat verdict); rank " +
                                   std::to_string(owner_) + " blocked on " +
                                   wants_desc(wants));
        }
        if (extensions < kMaxSlowExtensions &&
            world_->beat_after(deadline - timeout_dur, owner_)) {
          // Slow, not dead: a peer made progress inside this window, so the
          // world is degraded rather than wedged -- extend and keep waiting.
          ++extensions;
          world_->counters(owner_)[util::Counter::kHeartbeatExtensions] += 1;
          deadline += timeout_dur;
          continue;
        }
      }
      // No heartbeat anywhere: assemble the deadlock diagnostic. Our own
      // state is summarised under our (held) lock; the rest of the world
      // via try_lock snapshots.
      std::string report = "comm timeout after " + std::to_string(timeout_seconds_) +
                           "s: rank " + std::to_string(owner_) + " blocked on " +
                           wants_desc(wants);
      report += "\n  " + status_line_locked();
      if (world_ != nullptr) report += world_->deadlock_report(owner_);
      throw CommTimeout(report);
    }
    // A delayed stream head, an ARQ backoff gate, or a finite deadline
    // bounds the sleep; the scan holds no iterators across the unlock, so
    // just re-scan after every wake.
    if (scan.head_delayed) {
      cv_.wait_until(lock, std::min(scan.next_visible, deadline));
    } else if (bounded) {
      cv_.wait_until(lock, deadline);
    } else {
      cv_.wait(lock);
    }
  }
}

Message Mailbox::get(Rank src, Tag tag) {
  const Want want{src, tag};
  return get_any_impl({&want, 1}).first;
}

std::pair<Message, std::size_t> Mailbox::get_any(std::span<const Want> wants) {
  return get_any_impl(wants);
}

std::optional<Message> Mailbox::try_get(Rank src, Tag tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (aborted_) throw WorldAborted{};
  const Want want{src, tag};
  ScanResult scan = scan_locked({&want, 1});
  if (!scan.delivered) return std::nullopt;
  if (world_ != nullptr) world_->beat(owner_);
  return std::move(scan.msg);
}

void Mailbox::abort() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::int64_t Mailbox::duplicates_dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return duplicates_dropped_;
}

std::size_t Mailbox::retained_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return retained_bytes_;
}

std::string Mailbox::status_line_locked() const {
  std::ostringstream out;
  out << "rank " << owner_ << ": " << queue_.size() << " pending";
  if (retained_bytes_ > 0) out << ", " << retained_bytes_ << "B retained";
  if (!waiting_.empty()) {
    out << ", blocked on";
    for (const auto& [src, tag] : waiting_) out << " (src=" << src << ", tag=" << tag << ")";
  }
  // Per-stream depths of what IS queued -- the other half of "who is stuck
  // on whom": a deep unread stream names the receiver that never came.
  std::unordered_map<std::uint64_t, std::size_t> depth;
  for (const auto& m : queue_) ++depth[stream_key(m.src, m.tag)];
  std::size_t shown = 0;
  for (const auto& [key, count] : depth) {
    if (shown++ == 4) {
      out << " ...";
      break;
    }
    out << " [src=" << static_cast<Rank>(key >> 32)
        << ", tag=" << static_cast<Tag>(static_cast<std::uint32_t>(key)) << "]x" << count;
  }
  return out.str();
}

std::string Mailbox::status_line() const {
  const std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return "rank " + std::to_string(owner_) + ": <lock busy>";
  return status_line_locked();
}

}  // namespace dlouvain::comm
