#include "comm/mailbox.hpp"

#include <algorithm>
#include <sstream>

#include "comm/fault.hpp"
#include "comm/world.hpp"
#include "util/crc32.hpp"

namespace dlouvain::comm {

namespace {

using Clock = std::chrono::steady_clock;

/// RAII entry in the mailbox's blocked-receiver registry (caller holds the
/// mailbox mutex at construction and destruction).
struct WaitingGuard {
  std::vector<std::pair<Rank, Tag>>& registry;
  std::pair<Rank, Tag> entry;

  WaitingGuard(std::vector<std::pair<Rank, Tag>>& r, Rank src, Tag tag)
      : registry(r), entry(src, tag) {
    registry.push_back(entry);
  }
  ~WaitingGuard() {
    const auto it = std::find(registry.begin(), registry.end(), entry);
    if (it != registry.end()) registry.erase(it);
  }
};

}  // namespace

void Mailbox::put(Message msg) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    msg.seq = next_put_seq_[stream_key(msg.src, msg.tag)]++;
    msg.crc = util::crc32(msg.payload);

    bool duplicate = false;
    if (injector_ != nullptr && injector_->injects_messages()) {
      const auto fate =
          injector_->message_fate(owner_, msg.src, msg.tag, msg.seq, msg.payload.size());
      if (fate.delay) {
        msg.visible_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                            std::chrono::duration<double, std::milli>(
                                                injector_->delay_ms()));
      }
      if (fate.corrupt) {
        // Flip one bit AFTER the checksum was computed: wire corruption the
        // receiver's CRC verification must catch.
        auto& byte = msg.payload[fate.corrupt_bit / 8];
        byte ^= static_cast<std::byte>(1u << (fate.corrupt_bit % 8));
      }
      duplicate = fate.duplicate;
    }

    if (duplicate) queue_.push_back(msg);  // same seq: dedup layer's problem
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::get(Rank src, Tag tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const WaitingGuard waiting(waiting_, src, tag);

  const bool bounded = timeout_seconds_ > 0;
  const auto deadline =
      bounded ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(timeout_seconds_))
              : Clock::time_point::max();

  for (;;) {
    if (aborted_) throw WorldAborted{};

    // First queued message of the (src, tag) stream -- queue order is put
    // order, so this preserves per-stream FIFO even with delayed entries: a
    // delayed head holds its whole stream back instead of being overtaken.
    const auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
      return m.src == src && m.tag == tag;
    });
    bool head_delayed = false;
    Clock::time_point head_visible{};
    if (it != queue_.end()) {
      const auto now = Clock::now();
      if (it->visible_at <= now) {
        auto& expected = next_deliver_seq_[stream_key(src, tag)];
        if (it->seq < expected) {
          // Duplicate delivery: drop and keep scanning. The counter goes
          // into the RECEIVER's block -- get() runs on the owner's thread,
          // honouring the single-writer contract of util/metrics.hpp.
          queue_.erase(it);
          ++duplicates_dropped_;
          if (world_ != nullptr)
            world_->counters(owner_)[util::Counter::kDuplicatesDropped] += 1;
          continue;
        }
        if (it->seq > expected) {
          throw CommFailure("mailbox of rank " + std::to_string(owner_) +
                            ": lost message in stream (src=" + std::to_string(src) +
                            ", tag=" + std::to_string(tag) + "): expected seq " +
                            std::to_string(expected) + ", found " +
                            std::to_string(it->seq));
        }

        Message msg = std::move(*it);
        queue_.erase(it);
        ++expected;
        if (util::crc32(msg.payload) != msg.crc) {
          throw CorruptMessage("rank " + std::to_string(owner_) +
                               ": payload checksum mismatch on message (src=" +
                               std::to_string(src) + ", tag=" + std::to_string(tag) +
                               ", seq=" + std::to_string(msg.seq) + ", " +
                               std::to_string(msg.payload.size()) + " bytes)");
        }
        return msg;
      }
      head_delayed = true;
      head_visible = it->visible_at;
    }

    if (Clock::now() >= deadline) {
      // Deadline expired with no matching message: assemble the deadlock
      // diagnostic. Our own state is summarised under our (held) lock; the
      // rest of the world via try_lock snapshots.
      std::string report = "comm timeout after " + std::to_string(timeout_seconds_) +
                           "s: rank " + std::to_string(owner_) + " blocked on (src=" +
                           std::to_string(src) + ", tag=" + std::to_string(tag) + ")";
      report += "\n  " + status_line_locked();
      if (world_ != nullptr) report += world_->deadlock_report(owner_);
      throw CommTimeout(report);
    }
    // A delayed stream head or a finite deadline bounds the sleep; iterators
    // are invalidated by unlocking, so re-scan after every wake.
    if (head_delayed) {
      cv_.wait_until(lock, std::min(head_visible, deadline));
    } else if (bounded) {
      cv_.wait_until(lock, deadline);
    } else {
      cv_.wait(lock);
    }
  }
}

void Mailbox::abort() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::int64_t Mailbox::duplicates_dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return duplicates_dropped_;
}

std::string Mailbox::status_line_locked() const {
  std::ostringstream out;
  out << "rank " << owner_ << ": " << queue_.size() << " pending";
  if (!waiting_.empty()) {
    out << ", blocked on";
    for (const auto& [src, tag] : waiting_) out << " (src=" << src << ", tag=" << tag << ")";
  }
  // Per-stream depths of what IS queued -- the other half of "who is stuck
  // on whom": a deep unread stream names the receiver that never came.
  std::unordered_map<std::uint64_t, std::size_t> depth;
  for (const auto& m : queue_) ++depth[stream_key(m.src, m.tag)];
  std::size_t shown = 0;
  for (const auto& [key, count] : depth) {
    if (shown++ == 4) {
      out << " ...";
      break;
    }
    out << " [src=" << static_cast<Rank>(key >> 32)
        << ", tag=" << static_cast<Tag>(static_cast<std::uint32_t>(key)) << "]x" << count;
  }
  return out.str();
}

std::string Mailbox::status_line() const {
  const std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return "rank " + std::to_string(owner_) + ": <lock busy>";
  return status_line_locked();
}

}  // namespace dlouvain::comm
