#include "comm/mailbox.hpp"

#include <algorithm>
#include <sstream>

#include "comm/fault.hpp"
#include "comm/world.hpp"
#include "util/crc32.hpp"

namespace dlouvain::comm {

namespace {

using Clock = std::chrono::steady_clock;

/// RAII entry in the mailbox's blocked-receiver registry (caller holds the
/// mailbox mutex at construction and destruction). Registers every wanted
/// stream so the deadlock report names all of them.
struct WaitingGuard {
  std::vector<std::pair<Rank, Tag>>& registry;
  std::span<const Mailbox::Want> wants;

  WaitingGuard(std::vector<std::pair<Rank, Tag>>& r, std::span<const Mailbox::Want> ws)
      : registry(r), wants(ws) {
    for (const auto& w : wants) registry.emplace_back(w.src, w.tag);
  }
  ~WaitingGuard() {
    for (const auto& w : wants) {
      const auto it = std::find(registry.begin(), registry.end(), std::pair(w.src, w.tag));
      if (it != registry.end()) registry.erase(it);
    }
  }
};

std::string wants_desc(std::span<const Mailbox::Want> wants) {
  std::string out;
  for (std::size_t i = 0; i < wants.size(); ++i) {
    if (i != 0) out += i + 1 == wants.size() ? " or " : ", ";
    out += "(src=" + std::to_string(wants[i].src) + ", tag=" + std::to_string(wants[i].tag) + ")";
  }
  return out;
}

}  // namespace

void Mailbox::put(Message msg) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    msg.seq = next_put_seq_[stream_key(msg.src, msg.tag)]++;
    msg.crc = util::crc32(msg.payload);
    msg.arrived_at = Clock::now();

    bool duplicate = false;
    if (injector_ != nullptr && injector_->injects_messages()) {
      const auto fate =
          injector_->message_fate(owner_, msg.src, msg.tag, msg.seq, msg.payload.size());
      if (fate.delay) {
        msg.visible_at = msg.arrived_at + std::chrono::duration_cast<Clock::duration>(
                                              std::chrono::duration<double, std::milli>(
                                                  injector_->delay_ms()));
      }
      if (fate.corrupt) {
        // Flip one bit AFTER the checksum was computed: wire corruption the
        // receiver's CRC verification must catch.
        auto& byte = msg.payload[fate.corrupt_bit / 8];
        byte ^= static_cast<std::byte>(1u << (fate.corrupt_bit % 8));
      }
      duplicate = fate.duplicate;
    }

    if (duplicate) queue_.push_back(msg);  // same seq: dedup layer's problem
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Mailbox::ScanResult Mailbox::scan_locked(std::span<const Want> wants) {
  // Queue order is put order across ALL streams, so delivering the first
  // deliverable match is arrival-order completion. Per-stream FIFO is still
  // honoured: once a stream's head is seen but not yet visible, that stream
  // is blocked and its later entries are skipped rather than overtaking.
  ScanResult result;
  const auto now = Clock::now();
  std::vector<std::uint64_t> blocked;  // streams whose delayed head was passed
  for (std::size_t i = 0; i < queue_.size();) {
    const Message& m = queue_[i];
    const auto match = std::find_if(wants.begin(), wants.end(), [&](const Want& w) {
      return m.src == w.src && m.tag == w.tag;
    });
    if (match == wants.end()) {
      ++i;
      continue;
    }
    const std::uint64_t key = stream_key(m.src, m.tag);
    if (std::find(blocked.begin(), blocked.end(), key) != blocked.end()) {
      ++i;
      continue;
    }
    if (m.visible_at > now) {
      if (!result.head_delayed || m.visible_at < result.next_visible)
        result.next_visible = m.visible_at;
      result.head_delayed = true;
      blocked.push_back(key);
      ++i;
      continue;
    }
    auto& expected = next_deliver_seq_[key];
    if (m.seq < expected) {
      // Duplicate delivery: drop and keep scanning. The counter goes into
      // the RECEIVER's block -- receives run on the owner's thread,
      // honouring the single-writer contract of util/metrics.hpp.
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      ++duplicates_dropped_;
      if (world_ != nullptr)
        world_->counters(owner_)[util::Counter::kDuplicatesDropped] += 1;
      continue;
    }
    if (m.seq > expected) {
      throw CommFailure("mailbox of rank " + std::to_string(owner_) +
                        ": lost message in stream (src=" + std::to_string(m.src) +
                        ", tag=" + std::to_string(m.tag) + "): expected seq " +
                        std::to_string(expected) + ", found " + std::to_string(m.seq));
    }

    result.msg = std::move(queue_[i]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    ++expected;
    if (util::crc32(result.msg.payload) != result.msg.crc) {
      throw CorruptMessage("rank " + std::to_string(owner_) +
                           ": payload checksum mismatch on message (src=" +
                           std::to_string(result.msg.src) +
                           ", tag=" + std::to_string(result.msg.tag) +
                           ", seq=" + std::to_string(result.msg.seq) + ", " +
                           std::to_string(result.msg.payload.size()) + " bytes)");
    }
    result.delivered = true;
    result.want_index = static_cast<std::size_t>(match - wants.begin());
    return result;
  }
  return result;
}

std::pair<Message, std::size_t> Mailbox::get_any_impl(std::span<const Want> wants) {
  std::unique_lock<std::mutex> lock(mutex_);
  const WaitingGuard waiting(waiting_, wants);

  const bool bounded = timeout_seconds_ > 0;
  const auto deadline =
      bounded ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(timeout_seconds_))
              : Clock::time_point::max();

  for (;;) {
    if (aborted_) throw WorldAborted{};

    ScanResult scan = scan_locked(wants);
    if (scan.delivered) return {std::move(scan.msg), scan.want_index};

    if (Clock::now() >= deadline) {
      // Deadline expired with no matching message: assemble the deadlock
      // diagnostic. Our own state is summarised under our (held) lock; the
      // rest of the world via try_lock snapshots.
      std::string report = "comm timeout after " + std::to_string(timeout_seconds_) +
                           "s: rank " + std::to_string(owner_) + " blocked on " +
                           wants_desc(wants);
      report += "\n  " + status_line_locked();
      if (world_ != nullptr) report += world_->deadlock_report(owner_);
      throw CommTimeout(report);
    }
    // A delayed stream head or a finite deadline bounds the sleep; the scan
    // holds no iterators across the unlock, so just re-scan after every wake.
    if (scan.head_delayed) {
      cv_.wait_until(lock, std::min(scan.next_visible, deadline));
    } else if (bounded) {
      cv_.wait_until(lock, deadline);
    } else {
      cv_.wait(lock);
    }
  }
}

Message Mailbox::get(Rank src, Tag tag) {
  const Want want{src, tag};
  return get_any_impl({&want, 1}).first;
}

std::pair<Message, std::size_t> Mailbox::get_any(std::span<const Want> wants) {
  return get_any_impl(wants);
}

std::optional<Message> Mailbox::try_get(Rank src, Tag tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (aborted_) throw WorldAborted{};
  const Want want{src, tag};
  ScanResult scan = scan_locked({&want, 1});
  if (!scan.delivered) return std::nullopt;
  return std::move(scan.msg);
}

void Mailbox::abort() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::int64_t Mailbox::duplicates_dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return duplicates_dropped_;
}

std::string Mailbox::status_line_locked() const {
  std::ostringstream out;
  out << "rank " << owner_ << ": " << queue_.size() << " pending";
  if (!waiting_.empty()) {
    out << ", blocked on";
    for (const auto& [src, tag] : waiting_) out << " (src=" << src << ", tag=" << tag << ")";
  }
  // Per-stream depths of what IS queued -- the other half of "who is stuck
  // on whom": a deep unread stream names the receiver that never came.
  std::unordered_map<std::uint64_t, std::size_t> depth;
  for (const auto& m : queue_) ++depth[stream_key(m.src, m.tag)];
  std::size_t shown = 0;
  for (const auto& [key, count] : depth) {
    if (shown++ == 4) {
      out << " ...";
      break;
    }
    out << " [src=" << static_cast<Rank>(key >> 32)
        << ", tag=" << static_cast<Tag>(static_cast<std::uint32_t>(key)) << "]x" << count;
  }
  return out.str();
}

std::string Mailbox::status_line() const {
  const std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return "rank " + std::to_string(owner_) + ": <lock busy>";
  return status_line_locked();
}

}  // namespace dlouvain::comm
