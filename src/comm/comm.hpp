// Comm: the per-rank communicator handle -- the project's MPI_COMM_WORLD.
//
// Point-to-point operations are buffered (a send copies the payload into the
// destination mailbox and returns immediately, like an eager-protocol
// MPI_Send), and receives match on (source, tag) with per-pair FIFO order.
//
// Collectives are implemented ON TOP of point-to-point messages, the way an
// MPI library implements them over its transport. They must be invoked by
// all ranks of the world in the same order -- the same usage contract MPI
// imposes. Reduction folds always run in rank order 0..p-1 on every rank, so
// floating-point collective results are bitwise identical across ranks.
//
// Tag space: user tags must be >= 0; negative tags are reserved for the
// collective implementations.
#pragma once

#include <bit>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <functional>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "comm/async.hpp"
#include "comm/fault.hpp"
#include "comm/message.hpp"
#include "comm/world.hpp"

namespace dlouvain::comm {

namespace internal_tags {
// Distinct bases keep different collective kinds from ever cross-matching,
// which makes protocol bugs loud instead of silently reordering data.
inline constexpr Tag kBarrierBase = -1000;  // kBarrierBase - round
inline constexpr Tag kBcast = -2000;
inline constexpr Tag kAllgather = -3000;
inline constexpr Tag kGather = -4000;
inline constexpr Tag kAlltoallv = -5000;
inline constexpr Tag kScan = -6000;
inline constexpr Tag kNeighbor = -7000;
inline constexpr Tag kAlltoall = -7300;
inline constexpr Tag kAllreduceVec = -7500;
}  // namespace internal_tags

/// An in-flight personalized exchange, returned by Comm::ialltoallv /
/// Comm::ineighbor_alltoallv. The sends have already been deposited; the
/// receives are posted but not yet matched. test() absorbs whatever has
/// landed without blocking; wait() completes the exchange, draining the
/// remaining peer buffers in ARRIVAL order (whichever lands first is
/// unpacked first -- no head-of-line blocking on the slowest peer) and
/// records how much of the exchange's latency elapsed before the caller
/// started waiting (hidden_seconds -- the overlap telemetry's raw metric).
template <typename T>
class PendingAlltoallv {
 public:
  PendingAlltoallv() = default;
  PendingAlltoallv(PendingAlltoallv&&) = default;
  PendingAlltoallv& operator=(PendingAlltoallv&&) = default;

  /// True once every peer buffer has been absorbed.
  [[nodiscard]] bool done() const noexcept { return n_done_ == handles_.size(); }

  /// Nonblocking progress: absorb every peer buffer that has already
  /// arrived. Returns done().
  bool test() {
    for (std::size_t i = 0; i < handles_.size(); ++i) {
      if (!handles_[i].done() && handles_[i].test()) absorb(i);
    }
    return done();
  }

  /// Complete the exchange (blocking), then finalize the wait/hidden split:
  /// wait_seconds is time spent blocked in here; hidden_seconds sums, per
  /// peer buffer, the in-flight span from launch to the earlier of "this
  /// buffer arrived" and "caller started waiting" -- exchange latency that
  /// overlapped the caller's own work instead of a blocking wait (a buffer
  /// already delivered at launch contributes zero). Idempotent.
  void wait() {
    if (finished_) return;
    const auto wait_begin = Clock::now();
    std::vector<RecvHandle*> pending;
    std::vector<std::size_t> orig;
    for (std::size_t i = 0; i < handles_.size(); ++i) {
      if (!handles_[i].done()) {
        pending.push_back(&handles_[i]);
        orig.push_back(i);
      }
    }
    while (!pending.empty()) {
      const std::size_t i = wait_any(std::span<RecvHandle* const>(pending));
      absorb(orig[i]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      orig.erase(orig.begin() + static_cast<std::ptrdiff_t>(i));
    }
    wait_seconds_ = sec(Clock::now() - wait_begin);
    hidden_seconds_ = 0;
    for (const auto arrival : arrivals_) {
      const auto covered = arrival < wait_begin ? arrival : wait_begin;
      if (covered > launch_) hidden_seconds_ += sec(covered - launch_);
    }
    finished_ = true;
  }

  /// Complete and surrender the inbox: slot [i] holds what peer i sent
  /// (rank-indexed for ialltoallv, neighbour-indexed for the sparse form).
  std::vector<std::vector<T>> take() {
    wait();
    return std::move(inbox_);
  }

  /// Time spent blocked inside wait() (0 until wait() ran).
  [[nodiscard]] double wait_seconds() const noexcept { return wait_seconds_; }
  /// Exchange latency that elapsed before the caller blocked (0 until
  /// wait() ran; ~0 when wait() directly follows the launch).
  [[nodiscard]] double hidden_seconds() const noexcept { return hidden_seconds_; }

 private:
  friend class Comm;
  using Clock = std::chrono::steady_clock;
  [[nodiscard]] static double sec(Clock::duration d) {
    return std::chrono::duration<double>(d).count();
  }

  void absorb(std::size_t i) {
    inbox_[slots_[i]] = handles_[i].template take<T>();
    arrivals_.push_back(handles_[i].arrival());
    ++n_done_;
  }

  std::vector<RecvHandle> handles_;  ///< one posted receive per remote peer
  std::vector<std::size_t> slots_;   ///< inbox slot per handle
  std::vector<std::vector<T>> inbox_;
  std::vector<Clock::time_point> arrivals_;  ///< delivery instant per absorbed buffer
  std::size_t n_done_{0};
  bool finished_{false};
  Clock::time_point launch_{};
  double wait_seconds_{0};
  double hidden_seconds_{0};
};

class Comm {
 public:
  Comm(World& world, Rank rank) : world_(&world), rank_(rank) {}

  [[nodiscard]] Rank rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept {
    return group_.empty() ? world_->size() : static_cast<int>(group_.size());
  }
  [[nodiscard]] bool is_root() const noexcept { return rank_ == 0; }
  [[nodiscard]] World& world() const noexcept { return *world_; }

  /// This rank's counter block (keyed by WORLD rank, so split children keep
  /// counting into the same block as their parent rank). Only call from the
  /// owning rank's thread -- the block is deliberately not atomic.
  [[nodiscard]] util::CounterBlock& counters() {
    return world_->counters(to_world(rank_));
  }
  /// This rank's trace ring, or nullptr when tracing is off.
  [[nodiscard]] util::TraceBuffer* trace() const {
    return world_->trace(to_world(rank_));
  }

  /// Crash trigger for deterministic fault injection: algorithm code calls
  /// this at well-defined progress points ({phase, iteration}); if the
  /// world's FaultPlan pins a crash of this rank there, the rank dies.
  /// Transient crashes throw RankCrashed (retryable at the same world
  /// size); permanent kills record the death in the world's heartbeat lane
  /// and throw RankDead, the rung-2 verdict that tells the recovery driver
  /// to shrink rather than retry. No-op (one atomic-free null check)
  /// without injection.
  void fault_point(int phase, int iteration = 0) {
    auto* injector = world_->injector();
    if (injector == nullptr) return;
    switch (injector->should_crash(rank_, phase, iteration)) {
      case FaultInjector::CrashKind::kNone:
        return;
      case FaultInjector::CrashKind::kTransient:
        throw RankCrashed("rank " + std::to_string(rank_) +
                          ": injected crash at phase " + std::to_string(phase) +
                          ", iteration " + std::to_string(iteration));
      case FaultInjector::CrashKind::kPermanent:
        world_->declare_dead(to_world(rank_));
        throw RankDead(to_world(rank_),
                       "rank " + std::to_string(rank_) +
                           ": injected permanent death at phase " +
                           std::to_string(phase) + ", iteration " +
                           std::to_string(iteration));
    }
  }

  // --- point to point -------------------------------------------------

  /// Buffered send of raw bytes. `dst` is a rank of THIS communicator; the
  /// message is stamped with the sender's rank in this communicator and the
  /// communicator's context, so traffic never crosses between a parent and
  /// its split children.
  void send_bytes(Rank dst, Tag tag, std::vector<std::byte> payload) {
    check_rank(dst);
    // Plain increments into the SENDER's block: send_bytes always runs on
    // the sending rank's thread (single-writer contract, util/metrics.hpp).
    util::CounterBlock& ctr = world_->counters(to_world(rank_));
    ctr[util::Counter::kMessages] += 1;
    ctr[util::Counter::kBytes] += static_cast<std::int64_t>(payload.size());
    // Every send doubles as this rank's heartbeat for the rung-2 lane.
    world_->beat(to_world(rank_));
    world_->mailbox(to_world(dst)).put(Message{rank_, pack_tag(tag), std::move(payload)});
  }

  /// Blocking receive of raw bytes from (src, tag); src in this communicator.
  std::vector<std::byte> recv_bytes(Rank src, Tag tag) {
    check_rank(src);
    return world_->mailbox(to_world(rank_)).get(src, pack_tag(tag)).payload;
  }

  /// Typed buffered send of a contiguous range. The payload slab is
  /// recycled through the world's BufferPool (the typed receive paths hand
  /// it back after unpacking), so steady-state typed traffic allocates
  /// nothing.
  template <typename T>
  void send(Rank dst, Tag tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "message elements must be trivially copyable");
    std::vector<std::byte> bytes = world_->pool().acquire(data.size_bytes());
    if (!bytes.empty()) std::memcpy(bytes.data(), data.data(), bytes.size());
    send_bytes(dst, tag, std::move(bytes));
  }

  template <typename T>
  void send(Rank dst, Tag tag, const std::vector<T>& data) {
    send<T>(dst, tag, std::span<const T>(data));
  }

  /// Typed send of a single value.
  template <typename T>
  void send_value(Rank dst, Tag tag, const T& value) {
    send<T>(dst, tag, std::span<const T>(&value, 1));
  }

  /// Typed blocking receive. Returns the payload slab to the BufferPool
  /// after unpacking (the other half of send's pooled path).
  template <typename T>
  std::vector<T> recv(Rank src, Tag tag) {
    auto bytes = recv_bytes(src, tag);
    auto data = from_bytes<T>(bytes);
    world_->pool().release(std::move(bytes));
    return data;
  }

  /// Typed blocking receive of exactly one value.
  template <typename T>
  T recv_value(Rank src, Tag tag) {
    auto data = recv<T>(src, tag);
    if (data.size() != 1) throw std::logic_error("recv_value: payload is not one element");
    return data[0];
  }

  /// Combined exchange (MPI_Sendrecv): ship `data` to `dst` and return what
  /// `src` shipped here under the same tag. Deadlock-free because sends are
  /// buffered; provided so exchange patterns read as one operation.
  template <typename T>
  std::vector<T> sendrecv(Rank dst, Rank src, Tag tag, std::span<const T> data) {
    send<T>(dst, tag, data);
    return recv<T>(src, tag);
  }

  template <typename T>
  std::vector<T> sendrecv(Rank dst, Rank src, Tag tag, const std::vector<T>& data) {
    return sendrecv<T>(dst, src, tag, std::span<const T>(data));
  }

  // --- nonblocking point to point ---------------------------------------

  /// Post a nonblocking receive for (src, tag). Complete via the handle's
  /// test()/wait()/take<T>() or the free wait_any/wait_all (async.hpp).
  [[nodiscard]] RecvHandle irecv(Rank src, Tag tag) {
    check_rank(src);
    return RecvHandle(world_->mailbox(to_world(rank_)), &world_->pool(), src,
                      pack_tag(tag));
  }

  /// Nonblocking typed send. The transport is eager (the payload is
  /// buffered into the destination mailbox before this returns), so the
  /// handle is born complete -- provided for API symmetry with irecv.
  template <typename T>
  SendHandle isend(Rank dst, Tag tag, std::span<const T> data) {
    send<T>(dst, tag, data);
    return {};
  }

  template <typename T>
  SendHandle isend(Rank dst, Tag tag, const std::vector<T>& data) {
    return isend<T>(dst, tag, std::span<const T>(data));
  }

  // --- collectives ------------------------------------------------------

  /// Dissemination barrier: O(p log p) messages, round-tagged.
  void barrier() {
    const int p = size();
    int round = 0;
    for (int step = 1; step < p; step <<= 1, ++round) {
      const Rank to = static_cast<Rank>((rank_ + step) % p);
      const Rank from = static_cast<Rank>((rank_ - step + p) % p);
      const Tag tag = internal_tags::kBarrierBase - round;
      send_bytes(to, tag, {});
      (void)recv_bytes(from, tag);
    }
  }

  /// Root's buffer is distributed to every rank; all ranks return it.
  /// Canonical binomial tree (O(log p) rounds): with virtual ranks placing
  /// the root at 0, rank vr receives from vr minus its lowest set bit, then
  /// forwards to vr + mask for every mask below that bit.
  template <typename T>
  std::vector<T> broadcast(std::vector<T> data, Rank root = 0) {
    check_rank(root);
    const int p = size();
    const int vr = (rank_ - root + p) % p;

    int mask = 1;
    while (mask < p) {
      if (vr & mask) {
        const Rank parent = static_cast<Rank>((vr - mask + root) % p);
        data = recv<T>(parent, internal_tags::kBcast);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vr + mask < p) {
        const Rank child = static_cast<Rank>((vr + mask + root) % p);
        send<T>(child, internal_tags::kBcast, data);
      }
      mask >>= 1;
    }
    return data;
  }

  /// Gather one value per rank; every rank returns the rank-indexed vector.
  template <typename T>
  std::vector<T> allgather(const T& value) {
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) send_value<T>(r, internal_tags::kAllgather, value);
    }
    std::vector<T> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)] = value;
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) out[static_cast<std::size_t>(r)] = recv_value<T>(r, internal_tags::kAllgather);
    }
    return out;
  }

  /// Gather variable-length buffers; every rank returns the concatenation in
  /// rank order. If `counts` is non-null it receives each rank's length.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local,
                            std::vector<std::size_t>* counts = nullptr) {
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) send<T>(r, internal_tags::kAllgather, local);
    }
    std::vector<std::vector<T>> parts(static_cast<std::size_t>(size()));
    parts[static_cast<std::size_t>(rank_)].assign(local.begin(), local.end());
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) parts[static_cast<std::size_t>(r)] = recv<T>(r, internal_tags::kAllgather);
    }
    std::vector<T> out;
    std::size_t total = 0;
    for (const auto& part : parts) total += part.size();
    out.reserve(total);
    if (counts) counts->clear();
    for (const auto& part : parts) {
      if (counts) counts->push_back(part.size());
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& local,
                            std::vector<std::size_t>* counts = nullptr) {
    return allgatherv<T>(std::span<const T>(local), counts);
  }

  /// Gather variable-length buffers at `root`; non-roots return empty.
  /// Receives land in rank order, so each part is appended straight into
  /// its rank-ordered position -- one pass, no staging copy.
  template <typename T>
  std::vector<T> gatherv(std::span<const T> local, Rank root = 0) {
    check_rank(root);
    if (rank_ != root) {
      send<T>(root, internal_tags::kGather, local);
      return {};
    }
    std::vector<T> ordered;
    for (Rank r = 0; r < size(); ++r) {
      if (r == root) {
        ordered.insert(ordered.end(), local.begin(), local.end());
      } else {
        const auto part = recv<T>(r, internal_tags::kGather);
        ordered.insert(ordered.end(), part.begin(), part.end());
      }
    }
    return ordered;
  }

  template <typename T>
  std::vector<T> gatherv(const std::vector<T>& local, Rank root = 0) {
    return gatherv<T>(std::span<const T>(local), root);
  }

  /// Generic all-reduce: every rank folds contributions in rank order with
  /// `op`, so all ranks compute the identical result.
  template <typename T, typename Op>
  T allreduce(const T& local, Op op) {
    const auto contributions = allgather(local);
    T acc = contributions[0];
    for (std::size_t i = 1; i < contributions.size(); ++i) acc = op(acc, contributions[i]);
    return acc;
  }

  template <typename T>
  T allreduce_sum(const T& local) {
    return allreduce(local, [](const T& a, const T& b) { return a + b; });
  }

  template <typename T>
  T allreduce_max(const T& local) {
    return allreduce(local, [](const T& a, const T& b) { return a < b ? b : a; });
  }

  template <typename T>
  T allreduce_min(const T& local) {
    return allreduce(local, [](const T& a, const T& b) { return b < a ? b : a; });
  }

  /// Logical AND across ranks (termination votes).
  bool allreduce_land(bool local) {
    return allreduce_min<int>(local ? 1 : 0) != 0;
  }

  /// Element-wise sum of equal-length vectors across ranks. Each peer's
  /// contribution is streamed through the fold as it is received instead of
  /// materializing the p*n allgatherv concatenation, so peak memory is O(n)
  /// rather than O(p*n). The fold stays in rank order 0..p-1, so the result
  /// is still bitwise identical on every rank.
  template <typename T>
  std::vector<T> allreduce_sum_vec(const std::vector<T>& local) {
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) send<T>(r, internal_tags::kAllreduceVec, local);
    }
    std::vector<T> out(local.size(), T{});
    for (Rank r = 0; r < size(); ++r) {
      if (r == rank_) {
        for (std::size_t i = 0; i < local.size(); ++i) out[i] += local[i];
      } else {
        const auto part = recv<T>(r, internal_tags::kAllreduceVec);
        if (part.size() != local.size())
          throw std::logic_error("allreduce_sum_vec: mismatched vector lengths");
        for (std::size_t i = 0; i < local.size(); ++i) out[i] += part[i];
      }
    }
    return out;
  }

  /// Exclusive prefix sum: rank r returns sum of ranks [0, r). Rank 0 gets T{}.
  /// This is the paper's "parallel prefix sum" used for global community
  /// renumbering (graph reconstruction step 3).
  template <typename T>
  T exscan_sum(const T& local) {
    const auto contributions = allgather(local);
    T acc{};
    for (Rank r = 0; r < rank_; ++r) acc += contributions[static_cast<std::size_t>(r)];
    return acc;
  }

  /// Inclusive prefix sum: rank r returns sum of ranks [0, r].
  template <typename T>
  T scan_sum(const T& local) {
    return exscan_sum(local) + local;
  }

  /// Launch a personalized all-to-all of variable-length buffers without
  /// blocking: outbox[r] goes to rank r; the returned operation's inbox slot
  /// [r] will hold what rank r sent here. The self slot is moved through
  /// directly without touching the mailbox. Complete with wait()/take();
  /// replies are drained in arrival order, not rank order.
  template <typename T>
  PendingAlltoallv<T> ialltoallv(std::vector<std::vector<T>> outbox) {
    if (outbox.size() != static_cast<std::size_t>(size()))
      throw std::logic_error("alltoallv: outbox must have one slot per rank");
    PendingAlltoallv<T> op;
    op.inbox_.resize(static_cast<std::size_t>(size()));
    for (Rank r = 0; r < size(); ++r) {
      if (r == rank_) {
        op.inbox_[static_cast<std::size_t>(r)] = std::move(outbox[static_cast<std::size_t>(r)]);
      } else {
        send<T>(r, internal_tags::kAlltoallv, outbox[static_cast<std::size_t>(r)]);
      }
    }
    op.handles_.reserve(static_cast<std::size_t>(size()) - 1);
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) {
        op.handles_.push_back(irecv(r, internal_tags::kAlltoallv));
        op.slots_.push_back(static_cast<std::size_t>(r));
      }
    }
    // Launch is stamped AFTER the deposits: the send loop is paid CPU, not
    // in-flight latency, so hidden_seconds counts only what elapses once the
    // exchange is actually airborne (~0 when wait() directly follows).
    op.launch_ = std::chrono::steady_clock::now();
    return op;
  }

  /// Personalized all-to-all of variable-length buffers: outbox[r] goes to
  /// rank r; the result's slot [r] holds what rank r sent here.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(std::vector<std::vector<T>> outbox) {
    return ialltoallv<T>(std::move(outbox)).take();
  }

  /// Sparse personalized exchange over a fixed neighbourhood -- the analogue
  /// of MPI-3's MPI_Neighbor_alltoallv, which the paper names as the planned
  /// scalability upgrade over dense all-to-all (Section VI). `neighbors`
  /// lists the peer ranks this rank exchanges with (sorted, no self); the
  /// neighbourhood must be SYMMETRIC across the world (if r lists s, s lists
  /// r), which holds for the ghost-exchange topology of a symmetric graph.
  /// outbox[i] goes to neighbors[i]; the result's slot [i] holds what
  /// neighbors[i] sent here. Message count is O(sum of degrees) instead of
  /// O(p^2).
  template <typename T>
  std::vector<std::vector<T>> neighbor_alltoallv(std::span<const Rank> neighbors,
                                                 std::vector<std::vector<T>> outbox) {
    return ineighbor_alltoallv<T>(neighbors, std::move(outbox)).take();
  }

  /// Nonblocking launch of the sparse exchange; same contract as
  /// neighbor_alltoallv, completed via the returned operation. Inbox slot
  /// [i] will hold what neighbors[i] sent here; replies are drained in
  /// arrival order.
  template <typename T>
  PendingAlltoallv<T> ineighbor_alltoallv(std::span<const Rank> neighbors,
                                          std::vector<std::vector<T>> outbox) {
    if (outbox.size() != neighbors.size())
      throw std::logic_error("neighbor_alltoallv: one outbox slot per neighbour");
    PendingAlltoallv<T> op;
    op.inbox_.resize(neighbors.size());
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] == rank_)
        throw std::logic_error("neighbor_alltoallv: self must not be listed");
      send<T>(neighbors[i], internal_tags::kNeighbor, outbox[i]);
    }
    op.handles_.reserve(neighbors.size());
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      op.handles_.push_back(irecv(neighbors[i], internal_tags::kNeighbor));
      op.slots_.push_back(i);
    }
    // Post-deposit stamp, same rationale as ialltoallv.
    op.launch_ = std::chrono::steady_clock::now();
    return op;
  }

  /// Fixed all-to-all: one element to/from each rank. Ships flat
  /// one-element payloads directly -- no per-rank vector staging.
  template <typename T>
  std::vector<T> alltoall(const std::vector<T>& out) {
    if (out.size() != static_cast<std::size_t>(size()))
      throw std::logic_error("alltoall: need exactly one element per rank");
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_)
        send<T>(r, internal_tags::kAlltoall,
                std::span<const T>(&out[static_cast<std::size_t>(r)], 1));
    }
    std::vector<T> in(static_cast<std::size_t>(size()));
    in[static_cast<std::size_t>(rank_)] = out[static_cast<std::size_t>(rank_)];
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) in[static_cast<std::size_t>(r)] = recv_value<T>(r, internal_tags::kAlltoall);
    }
    return in;
  }

  // --- sub-communicators -------------------------------------------------

  /// MPI_Comm_split: collective over THIS communicator. Ranks passing the
  /// same `color` form a new communicator, ordered by (key, old rank). The
  /// child gets its own context, so its traffic (including collectives)
  /// never matches the parent's or a sibling's. Returns a fully usable Comm.
  ///
  /// Limits: nesting depth and split count are bounded by the context space
  /// (~2^14 distinct communicators per world); user tags must stay below
  /// kMaxUserTag.
  Comm split(int color, int key = 0) {
    struct Entry {
      int color;
      int key;
      Rank old_rank;
    };
    const auto entries = allgather(Entry{color, key, rank_});

    // Deterministic context for each (split call, color): contexts are
    // allocated in sorted-distinct-color order on every member identically.
    std::vector<int> colors;
    for (const auto& e : entries) colors.push_back(e.color);
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
    const auto color_index = static_cast<int>(
        std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());

    Comm child(*world_, 0);
    child.context_ = next_context_base_ + color_index;
    if (child.context_ >= kMaxContexts)
      throw std::logic_error("Comm::split: context space exhausted");
    next_context_base_ += static_cast<int>(colors.size());

    // Group members ordered by (key, old rank); translate to world ranks.
    std::vector<Entry> members;
    for (const auto& e : entries) {
      if (e.color == color) members.push_back(e);
    }
    std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
      return a.key != b.key ? a.key < b.key : a.old_rank < b.old_rank;
    });
    child.group_.reserve(members.size());
    for (const auto& e : members) {
      if (e.old_rank == rank_) child.rank_ = static_cast<Rank>(child.group_.size());
      child.group_.push_back(to_world(e.old_rank));
    }
    child.next_context_base_ = child.context_ * kContextBranch + 1;
    return child;
  }

 private:
  // Tag packing: the wire tag encodes (context, logical tag) so communicators
  // are isolated. Logical tags live in [kMinInternalTag, kMaxUserTag).
  static constexpr Tag kMinInternalTag = -8192;
  static constexpr Tag kMaxUserTag = 1 << 16;
  static constexpr int kContextBranch = 16;
  static constexpr int kMaxContexts = 1 << 14;

  [[nodiscard]] Tag pack_tag(Tag tag) const {
    if (tag < kMinInternalTag || tag >= kMaxUserTag)
      throw std::out_of_range("tag outside [internal, 65536)");
    return context_ * (kMaxUserTag - kMinInternalTag) + (tag - kMinInternalTag);
  }

  /// Communicator rank -> world rank.
  [[nodiscard]] Rank to_world(Rank r) const {
    return group_.empty() ? r : group_[static_cast<std::size_t>(r)];
  }

  void check_rank(Rank r) const {
    if (r < 0 || r >= size()) throw std::out_of_range("rank out of range");
  }

  World* world_;
  Rank rank_;
  int context_{0};
  int next_context_base_{1};       ///< next child context allocation base
  std::vector<Rank> group_;        ///< world rank per communicator rank; empty = world
};

}  // namespace dlouvain::comm
