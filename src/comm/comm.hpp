// Comm: the per-rank communicator handle -- the project's MPI_COMM_WORLD.
//
// Point-to-point operations are buffered (a send copies the payload into the
// destination mailbox and returns immediately, like an eager-protocol
// MPI_Send), and receives match on (source, tag) with per-pair FIFO order.
//
// Collectives are implemented ON TOP of point-to-point messages, the way an
// MPI library implements them over its transport. They must be invoked by
// all ranks of the world in the same order -- the same usage contract MPI
// imposes. Reduction folds always run in rank order 0..p-1 on every rank, so
// floating-point collective results are bitwise identical across ranks.
//
// Tag space: user tags must be >= 0; negative tags are reserved for the
// collective implementations.
#pragma once

#include <bit>
#include <cstddef>
#include <functional>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "comm/fault.hpp"
#include "comm/message.hpp"
#include "comm/world.hpp"

namespace dlouvain::comm {

namespace internal_tags {
// Distinct bases keep different collective kinds from ever cross-matching,
// which makes protocol bugs loud instead of silently reordering data.
inline constexpr Tag kBarrierBase = -1000;  // kBarrierBase - round
inline constexpr Tag kBcast = -2000;
inline constexpr Tag kAllgather = -3000;
inline constexpr Tag kGather = -4000;
inline constexpr Tag kAlltoallv = -5000;
inline constexpr Tag kScan = -6000;
inline constexpr Tag kNeighbor = -7000;
}  // namespace internal_tags

class Comm {
 public:
  Comm(World& world, Rank rank) : world_(&world), rank_(rank) {}

  [[nodiscard]] Rank rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept {
    return group_.empty() ? world_->size() : static_cast<int>(group_.size());
  }
  [[nodiscard]] bool is_root() const noexcept { return rank_ == 0; }
  [[nodiscard]] World& world() const noexcept { return *world_; }

  /// This rank's counter block (keyed by WORLD rank, so split children keep
  /// counting into the same block as their parent rank). Only call from the
  /// owning rank's thread -- the block is deliberately not atomic.
  [[nodiscard]] util::CounterBlock& counters() {
    return world_->counters(to_world(rank_));
  }
  /// This rank's trace ring, or nullptr when tracing is off.
  [[nodiscard]] util::TraceBuffer* trace() const {
    return world_->trace(to_world(rank_));
  }

  /// Crash trigger for deterministic fault injection: algorithm code calls
  /// this at well-defined progress points ({phase, iteration}); if the
  /// world's FaultPlan pins a crash of this rank there, the rank dies by
  /// throwing RankCrashed. No-op (one atomic-free null check) without
  /// injection.
  void fault_point(int phase, int iteration = 0) {
    if (auto* injector = world_->injector();
        injector != nullptr && injector->should_crash(rank_, phase, iteration)) {
      throw RankCrashed("rank " + std::to_string(rank_) +
                        ": injected crash at phase " + std::to_string(phase) +
                        ", iteration " + std::to_string(iteration));
    }
  }

  // --- point to point -------------------------------------------------

  /// Buffered send of raw bytes. `dst` is a rank of THIS communicator; the
  /// message is stamped with the sender's rank in this communicator and the
  /// communicator's context, so traffic never crosses between a parent and
  /// its split children.
  void send_bytes(Rank dst, Tag tag, std::vector<std::byte> payload) {
    check_rank(dst);
    // Plain increments into the SENDER's block: send_bytes always runs on
    // the sending rank's thread (single-writer contract, util/metrics.hpp).
    util::CounterBlock& ctr = world_->counters(to_world(rank_));
    ctr[util::Counter::kMessages] += 1;
    ctr[util::Counter::kBytes] += static_cast<std::int64_t>(payload.size());
    world_->mailbox(to_world(dst)).put(Message{rank_, pack_tag(tag), std::move(payload)});
  }

  /// Blocking receive of raw bytes from (src, tag); src in this communicator.
  std::vector<std::byte> recv_bytes(Rank src, Tag tag) {
    check_rank(src);
    return world_->mailbox(to_world(rank_)).get(src, pack_tag(tag)).payload;
  }

  /// Typed buffered send of a contiguous range.
  template <typename T>
  void send(Rank dst, Tag tag, std::span<const T> data) {
    send_bytes(dst, tag, to_bytes(data));
  }

  template <typename T>
  void send(Rank dst, Tag tag, const std::vector<T>& data) {
    send<T>(dst, tag, std::span<const T>(data));
  }

  /// Typed send of a single value.
  template <typename T>
  void send_value(Rank dst, Tag tag, const T& value) {
    send<T>(dst, tag, std::span<const T>(&value, 1));
  }

  /// Typed blocking receive.
  template <typename T>
  std::vector<T> recv(Rank src, Tag tag) {
    return from_bytes<T>(recv_bytes(src, tag));
  }

  /// Typed blocking receive of exactly one value.
  template <typename T>
  T recv_value(Rank src, Tag tag) {
    auto data = recv<T>(src, tag);
    if (data.size() != 1) throw std::logic_error("recv_value: payload is not one element");
    return data[0];
  }

  /// Combined exchange (MPI_Sendrecv): ship `data` to `dst` and return what
  /// `src` shipped here under the same tag. Deadlock-free because sends are
  /// buffered; provided so exchange patterns read as one operation.
  template <typename T>
  std::vector<T> sendrecv(Rank dst, Rank src, Tag tag, std::span<const T> data) {
    send<T>(dst, tag, data);
    return recv<T>(src, tag);
  }

  template <typename T>
  std::vector<T> sendrecv(Rank dst, Rank src, Tag tag, const std::vector<T>& data) {
    return sendrecv<T>(dst, src, tag, std::span<const T>(data));
  }

  // --- collectives ------------------------------------------------------

  /// Dissemination barrier: O(p log p) messages, round-tagged.
  void barrier() {
    const int p = size();
    int round = 0;
    for (int step = 1; step < p; step <<= 1, ++round) {
      const Rank to = static_cast<Rank>((rank_ + step) % p);
      const Rank from = static_cast<Rank>((rank_ - step + p) % p);
      const Tag tag = internal_tags::kBarrierBase - round;
      send_bytes(to, tag, {});
      (void)recv_bytes(from, tag);
    }
  }

  /// Root's buffer is distributed to every rank; all ranks return it.
  /// Canonical binomial tree (O(log p) rounds): with virtual ranks placing
  /// the root at 0, rank vr receives from vr minus its lowest set bit, then
  /// forwards to vr + mask for every mask below that bit.
  template <typename T>
  std::vector<T> broadcast(std::vector<T> data, Rank root = 0) {
    check_rank(root);
    const int p = size();
    const int vr = (rank_ - root + p) % p;

    int mask = 1;
    while (mask < p) {
      if (vr & mask) {
        const Rank parent = static_cast<Rank>((vr - mask + root) % p);
        data = recv<T>(parent, internal_tags::kBcast);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vr + mask < p) {
        const Rank child = static_cast<Rank>((vr + mask + root) % p);
        send<T>(child, internal_tags::kBcast, data);
      }
      mask >>= 1;
    }
    return data;
  }

  /// Gather one value per rank; every rank returns the rank-indexed vector.
  template <typename T>
  std::vector<T> allgather(const T& value) {
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) send_value<T>(r, internal_tags::kAllgather, value);
    }
    std::vector<T> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)] = value;
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) out[static_cast<std::size_t>(r)] = recv_value<T>(r, internal_tags::kAllgather);
    }
    return out;
  }

  /// Gather variable-length buffers; every rank returns the concatenation in
  /// rank order. If `counts` is non-null it receives each rank's length.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local,
                            std::vector<std::size_t>* counts = nullptr) {
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) send<T>(r, internal_tags::kAllgather, local);
    }
    std::vector<std::vector<T>> parts(static_cast<std::size_t>(size()));
    parts[static_cast<std::size_t>(rank_)].assign(local.begin(), local.end());
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) parts[static_cast<std::size_t>(r)] = recv<T>(r, internal_tags::kAllgather);
    }
    std::vector<T> out;
    std::size_t total = 0;
    for (const auto& part : parts) total += part.size();
    out.reserve(total);
    if (counts) counts->clear();
    for (const auto& part : parts) {
      if (counts) counts->push_back(part.size());
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& local,
                            std::vector<std::size_t>* counts = nullptr) {
    return allgatherv<T>(std::span<const T>(local), counts);
  }

  /// Gather variable-length buffers at `root`; non-roots return empty.
  template <typename T>
  std::vector<T> gatherv(std::span<const T> local, Rank root = 0) {
    check_rank(root);
    if (rank_ != root) {
      send<T>(root, internal_tags::kGather, local);
      return {};
    }
    std::vector<T> out(local.begin(), local.end());
    std::vector<std::vector<T>> parts(static_cast<std::size_t>(size()));
    for (Rank r = 0; r < size(); ++r) {
      if (r != root) parts[static_cast<std::size_t>(r)] = recv<T>(r, internal_tags::kGather);
    }
    // Preserve rank order: root's own data occupies its slot.
    std::vector<T> ordered;
    for (Rank r = 0; r < size(); ++r) {
      if (r == root) {
        ordered.insert(ordered.end(), local.begin(), local.end());
      } else {
        const auto& part = parts[static_cast<std::size_t>(r)];
        ordered.insert(ordered.end(), part.begin(), part.end());
      }
    }
    return ordered;
  }

  template <typename T>
  std::vector<T> gatherv(const std::vector<T>& local, Rank root = 0) {
    return gatherv<T>(std::span<const T>(local), root);
  }

  /// Generic all-reduce: every rank folds contributions in rank order with
  /// `op`, so all ranks compute the identical result.
  template <typename T, typename Op>
  T allreduce(const T& local, Op op) {
    const auto contributions = allgather(local);
    T acc = contributions[0];
    for (std::size_t i = 1; i < contributions.size(); ++i) acc = op(acc, contributions[i]);
    return acc;
  }

  template <typename T>
  T allreduce_sum(const T& local) {
    return allreduce(local, [](const T& a, const T& b) { return a + b; });
  }

  template <typename T>
  T allreduce_max(const T& local) {
    return allreduce(local, [](const T& a, const T& b) { return a < b ? b : a; });
  }

  template <typename T>
  T allreduce_min(const T& local) {
    return allreduce(local, [](const T& a, const T& b) { return b < a ? b : a; });
  }

  /// Logical AND across ranks (termination votes).
  bool allreduce_land(bool local) {
    return allreduce_min<int>(local ? 1 : 0) != 0;
  }

  /// Element-wise sum of equal-length vectors across ranks.
  template <typename T>
  std::vector<T> allreduce_sum_vec(const std::vector<T>& local) {
    std::vector<std::size_t> counts;
    const auto all = allgatherv<T>(local, &counts);
    for (const auto c : counts) {
      if (c != local.size())
        throw std::logic_error("allreduce_sum_vec: mismatched vector lengths");
    }
    std::vector<T> out(local.size(), T{});
    for (int r = 0; r < size(); ++r) {
      const std::size_t base = static_cast<std::size_t>(r) * local.size();
      for (std::size_t i = 0; i < local.size(); ++i) out[i] += all[base + i];
    }
    return out;
  }

  /// Exclusive prefix sum: rank r returns sum of ranks [0, r). Rank 0 gets T{}.
  /// This is the paper's "parallel prefix sum" used for global community
  /// renumbering (graph reconstruction step 3).
  template <typename T>
  T exscan_sum(const T& local) {
    const auto contributions = allgather(local);
    T acc{};
    for (Rank r = 0; r < rank_; ++r) acc += contributions[static_cast<std::size_t>(r)];
    return acc;
  }

  /// Inclusive prefix sum: rank r returns sum of ranks [0, r].
  template <typename T>
  T scan_sum(const T& local) {
    return exscan_sum(local) + local;
  }

  /// Personalized all-to-all of variable-length buffers: outbox[r] goes to
  /// rank r; the result's slot [r] holds what rank r sent here. The self slot
  /// is moved through directly without touching the mailbox.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(std::vector<std::vector<T>> outbox) {
    if (outbox.size() != static_cast<std::size_t>(size()))
      throw std::logic_error("alltoallv: outbox must have one slot per rank");
    std::vector<std::vector<T>> inbox(static_cast<std::size_t>(size()));
    for (Rank r = 0; r < size(); ++r) {
      if (r == rank_) {
        inbox[static_cast<std::size_t>(r)] = std::move(outbox[static_cast<std::size_t>(r)]);
      } else {
        send<T>(r, internal_tags::kAlltoallv, outbox[static_cast<std::size_t>(r)]);
      }
    }
    for (Rank r = 0; r < size(); ++r) {
      if (r != rank_) inbox[static_cast<std::size_t>(r)] = recv<T>(r, internal_tags::kAlltoallv);
    }
    return inbox;
  }

  /// Sparse personalized exchange over a fixed neighbourhood -- the analogue
  /// of MPI-3's MPI_Neighbor_alltoallv, which the paper names as the planned
  /// scalability upgrade over dense all-to-all (Section VI). `neighbors`
  /// lists the peer ranks this rank exchanges with (sorted, no self); the
  /// neighbourhood must be SYMMETRIC across the world (if r lists s, s lists
  /// r), which holds for the ghost-exchange topology of a symmetric graph.
  /// outbox[i] goes to neighbors[i]; the result's slot [i] holds what
  /// neighbors[i] sent here. Message count is O(sum of degrees) instead of
  /// O(p^2).
  template <typename T>
  std::vector<std::vector<T>> neighbor_alltoallv(std::span<const Rank> neighbors,
                                                 std::vector<std::vector<T>> outbox) {
    if (outbox.size() != neighbors.size())
      throw std::logic_error("neighbor_alltoallv: one outbox slot per neighbour");
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] == rank_)
        throw std::logic_error("neighbor_alltoallv: self must not be listed");
      send<T>(neighbors[i], internal_tags::kNeighbor, outbox[i]);
    }
    std::vector<std::vector<T>> inbox(neighbors.size());
    for (std::size_t i = 0; i < neighbors.size(); ++i)
      inbox[i] = recv<T>(neighbors[i], internal_tags::kNeighbor);
    return inbox;
  }

  /// Fixed all-to-all: one element to/from each rank.
  template <typename T>
  std::vector<T> alltoall(const std::vector<T>& out) {
    if (out.size() != static_cast<std::size_t>(size()))
      throw std::logic_error("alltoall: need exactly one element per rank");
    std::vector<std::vector<T>> outbox(static_cast<std::size_t>(size()));
    for (Rank r = 0; r < size(); ++r) outbox[static_cast<std::size_t>(r)] = {out[static_cast<std::size_t>(r)]};
    const auto inbox = alltoallv<T>(std::move(outbox));
    std::vector<T> in(static_cast<std::size_t>(size()));
    for (Rank r = 0; r < size(); ++r) {
      if (inbox[static_cast<std::size_t>(r)].size() != 1)
        throw std::logic_error("alltoall: peer sent wrong count");
      in[static_cast<std::size_t>(r)] = inbox[static_cast<std::size_t>(r)][0];
    }
    return in;
  }

  // --- sub-communicators -------------------------------------------------

  /// MPI_Comm_split: collective over THIS communicator. Ranks passing the
  /// same `color` form a new communicator, ordered by (key, old rank). The
  /// child gets its own context, so its traffic (including collectives)
  /// never matches the parent's or a sibling's. Returns a fully usable Comm.
  ///
  /// Limits: nesting depth and split count are bounded by the context space
  /// (~2^14 distinct communicators per world); user tags must stay below
  /// kMaxUserTag.
  Comm split(int color, int key = 0) {
    struct Entry {
      int color;
      int key;
      Rank old_rank;
    };
    const auto entries = allgather(Entry{color, key, rank_});

    // Deterministic context for each (split call, color): contexts are
    // allocated in sorted-distinct-color order on every member identically.
    std::vector<int> colors;
    for (const auto& e : entries) colors.push_back(e.color);
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
    const auto color_index = static_cast<int>(
        std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());

    Comm child(*world_, 0);
    child.context_ = next_context_base_ + color_index;
    if (child.context_ >= kMaxContexts)
      throw std::logic_error("Comm::split: context space exhausted");
    next_context_base_ += static_cast<int>(colors.size());

    // Group members ordered by (key, old rank); translate to world ranks.
    std::vector<Entry> members;
    for (const auto& e : entries) {
      if (e.color == color) members.push_back(e);
    }
    std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
      return a.key != b.key ? a.key < b.key : a.old_rank < b.old_rank;
    });
    child.group_.reserve(members.size());
    for (const auto& e : members) {
      if (e.old_rank == rank_) child.rank_ = static_cast<Rank>(child.group_.size());
      child.group_.push_back(to_world(e.old_rank));
    }
    child.next_context_base_ = child.context_ * kContextBranch + 1;
    return child;
  }

 private:
  // Tag packing: the wire tag encodes (context, logical tag) so communicators
  // are isolated. Logical tags live in [kMinInternalTag, kMaxUserTag).
  static constexpr Tag kMinInternalTag = -8192;
  static constexpr Tag kMaxUserTag = 1 << 16;
  static constexpr int kContextBranch = 16;
  static constexpr int kMaxContexts = 1 << 14;

  [[nodiscard]] Tag pack_tag(Tag tag) const {
    if (tag < kMinInternalTag || tag >= kMaxUserTag)
      throw std::out_of_range("tag outside [internal, 65536)");
    return context_ * (kMaxUserTag - kMinInternalTag) + (tag - kMinInternalTag);
  }

  /// Communicator rank -> world rank.
  [[nodiscard]] Rank to_world(Rank r) const {
    return group_.empty() ? r : group_[static_cast<std::size_t>(r)];
  }

  void check_rank(Rank r) const {
    if (r < 0 || r >= size()) throw std::out_of_range("rank out of range");
  }

  World* world_;
  Rank rank_;
  int context_{0};
  int next_context_base_{1};       ///< next child context allocation base
  std::vector<Rank> group_;        ///< world rank per communicator rank; empty = world
};

}  // namespace dlouvain::comm
