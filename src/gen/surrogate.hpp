// Named surrogates for the paper's test graphs (Table II plus the CNR and
// Channel inputs of Table I).
//
// The original graphs (soc-friendster at 1.8B edges, uk-2007 at 3.3B, ...)
// are proprietary-sized downloads evaluated on a 2,388-node Cray; neither
// fits this environment. Each surrogate is a scaled-down synthetic graph of
// the same STRUCTURE CLASS -- banded mesh for the CFD/optimization matrices,
// LFR with matched mixing for the social networks, clique-dominated SSCA#2
// for the web crawls, small-world for CNR -- because the paper's qualitative
// results (which heuristic wins per graph, convergence shapes, modularity
// bands) are driven by community structure, not by raw size. Default sizes
// keep the 12 graphs in the same ascending-edge-count order as Table II.
// See DESIGN.md section 2.
#pragma once

#include <string>
#include <vector>

#include "gen/generated.hpp"

namespace dlouvain::gen {

struct SurrogateInfo {
  std::string name;              ///< paper's graph name
  std::string structure;         ///< generator family used
  double paper_vertices;         ///< |V| reported in the paper
  double paper_edges;            ///< |E| reported in the paper
  double paper_modularity;       ///< Grappolo 1-thread modularity (Table II)
};

/// The 12 graphs of Table II, in the paper's (ascending-edge) order.
const std::vector<SurrogateInfo>& table2_catalog();

/// The two Table I inputs (CNR, Channel).
const std::vector<SurrogateInfo>& table1_catalog();

/// Generate the surrogate for `name` (any catalog entry, case-sensitive).
/// `scale` multiplies the default vertex count (1.0 = quick-run default);
/// seed keeps runs reproducible. Throws std::invalid_argument for unknown
/// names.
GeneratedGraph surrogate(const std::string& name, double scale = 1.0,
                         std::uint64_t seed = 42);

}  // namespace dlouvain::gen
