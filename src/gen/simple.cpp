#include "gen/simple.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

#include "util/prng.hpp"

namespace dlouvain::gen {

namespace {

using util::Xoshiro256StarStar;

/// Canonical undirected key (min, max) for dedup sets.
std::pair<VertexId, VertexId> key(VertexId a, VertexId b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

GeneratedGraph ring(VertexId n) {
  if (n < 3) throw std::invalid_argument("ring: need n >= 3");
  GeneratedGraph g;
  g.name = "ring";
  g.num_vertices = n;
  g.edges.reserve(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) g.edges.push_back({v, (v + 1) % n, 1.0});
  return g;
}

GeneratedGraph clique_chain(VertexId num_cliques, VertexId clique_size) {
  if (num_cliques < 1 || clique_size < 2)
    throw std::invalid_argument("clique_chain: need >=1 cliques of size >=2");
  GeneratedGraph g;
  g.name = "clique_chain";
  g.num_vertices = num_cliques * clique_size;
  g.ground_truth.resize(static_cast<std::size_t>(g.num_vertices));
  for (VertexId c = 0; c < num_cliques; ++c) {
    const VertexId base = c * clique_size;
    for (VertexId i = 0; i < clique_size; ++i) {
      g.ground_truth[static_cast<std::size_t>(base + i)] = c;
      for (VertexId j = i + 1; j < clique_size; ++j)
        g.edges.push_back({base + i, base + j, 1.0});
    }
    if (c > 0) g.edges.push_back({base - 1, base, 1.0});  // bridge
  }
  return g;
}

GeneratedGraph banded(VertexId n, VertexId band) {
  if (n < 2 || band < 1) throw std::invalid_argument("banded: need n >= 2, band >= 1");
  GeneratedGraph g;
  g.name = "banded";
  g.num_vertices = n;
  for (VertexId v = 0; v < n; ++v)
    for (VertexId d = 1; d <= band && v + d < n; ++d) g.edges.push_back({v, v + d, 1.0});
  return g;
}

GeneratedGraph watts_strogatz(VertexId n, VertexId k, double beta, std::uint64_t seed) {
  if (n < 4 || k < 2 || k % 2 != 0 || k >= n)
    throw std::invalid_argument("watts_strogatz: need n >= 4 and even k in [2, n)");
  if (beta < 0.0 || beta > 1.0) throw std::invalid_argument("watts_strogatz: beta in [0,1]");
  Xoshiro256StarStar rng(seed);
  std::set<std::pair<VertexId, VertexId>> present;
  // Ring lattice, then rewire the far endpoint with probability beta.
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId d = 1; d <= k / 2; ++d) {
      VertexId u = (v + d) % n;
      if (rng.next_unit() < beta) {
        // Draw a replacement avoiding self loops and duplicates; bounded
        // retries keep the generator total even on dense inputs.
        for (int attempt = 0; attempt < 32; ++attempt) {
          const VertexId candidate = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
          if (candidate != v && !present.contains(key(v, candidate))) {
            u = candidate;
            break;
          }
        }
      }
      if (u != v) present.insert(key(v, u));
    }
  }
  GeneratedGraph g;
  g.name = "watts_strogatz";
  g.num_vertices = n;
  g.edges.reserve(present.size());
  for (const auto& [a, b] : present) g.edges.push_back({a, b, 1.0});
  return g;
}

GeneratedGraph erdos_renyi(VertexId n, double p_edge, std::uint64_t seed) {
  if (n < 1 || p_edge < 0.0 || p_edge > 1.0)
    throw std::invalid_argument("erdos_renyi: bad parameters");
  Xoshiro256StarStar rng(seed);
  GeneratedGraph g;
  g.name = "erdos_renyi";
  g.num_vertices = n;
  // Geometric skipping: O(expected edges) instead of O(n^2).
  if (p_edge > 0.0) {
    const double log1mp = std::log1p(-p_edge);
    std::int64_t idx = -1;
    const std::int64_t total_pairs = n * (n - 1) / 2;
    for (;;) {
      const double r = rng.next_unit();
      // Skip a geometrically distributed number of candidate pairs.
      const auto skip =
          p_edge >= 1.0 ? 0 : static_cast<std::int64_t>(std::log1p(-r) / log1mp);
      idx += 1 + skip;
      if (idx >= total_pairs) break;
      // Decode linear pair index -> (i, j), i < j.
      VertexId i = 0;
      std::int64_t rem = idx;
      VertexId row_len = n - 1;
      while (rem >= row_len) {
        rem -= row_len;
        ++i;
        --row_len;
      }
      const VertexId j = i + 1 + static_cast<VertexId>(rem);
      g.edges.push_back({i, j, 1.0});
    }
  }
  return g;
}

GeneratedGraph planted_partition(VertexId n, int blocks, double p_in, double p_out,
                                 std::uint64_t seed) {
  if (blocks < 1 || n < blocks) throw std::invalid_argument("planted_partition: bad sizes");
  Xoshiro256StarStar rng(seed);
  GeneratedGraph g;
  g.name = "planted_partition";
  g.num_vertices = n;
  g.ground_truth.resize(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v)
    g.ground_truth[static_cast<std::size_t>(v)] = v * blocks / n;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      const bool same = g.ground_truth[static_cast<std::size_t>(i)] ==
                        g.ground_truth[static_cast<std::size_t>(j)];
      if (rng.next_unit() < (same ? p_in : p_out)) g.edges.push_back({i, j, 1.0});
    }
  }
  return g;
}

GeneratedGraph karate_club() {
  GeneratedGraph g;
  g.name = "karate";
  g.num_vertices = 34;
  // Zachary (1977), 0-indexed.
  g.edges = {
      {0, 1, 1},   {0, 2, 1},   {0, 3, 1},   {0, 4, 1},   {0, 5, 1},   {0, 6, 1},
      {0, 7, 1},   {0, 8, 1},   {0, 10, 1},  {0, 11, 1},  {0, 12, 1},  {0, 13, 1},
      {0, 17, 1},  {0, 19, 1},  {0, 21, 1},  {0, 31, 1},  {1, 2, 1},   {1, 3, 1},
      {1, 7, 1},   {1, 13, 1},  {1, 17, 1},  {1, 19, 1},  {1, 21, 1},  {1, 30, 1},
      {2, 3, 1},   {2, 7, 1},   {2, 8, 1},   {2, 9, 1},   {2, 13, 1},  {2, 27, 1},
      {2, 28, 1},  {2, 32, 1},  {3, 7, 1},   {3, 12, 1},  {3, 13, 1},  {4, 6, 1},
      {4, 10, 1},  {5, 6, 1},   {5, 10, 1},  {5, 16, 1},  {6, 16, 1},  {8, 30, 1},
      {8, 32, 1},  {8, 33, 1},  {9, 33, 1},  {13, 33, 1}, {14, 32, 1}, {14, 33, 1},
      {15, 32, 1}, {15, 33, 1}, {18, 32, 1}, {18, 33, 1}, {19, 33, 1}, {20, 32, 1},
      {20, 33, 1}, {22, 32, 1}, {22, 33, 1}, {23, 25, 1}, {23, 27, 1}, {23, 29, 1},
      {23, 32, 1}, {23, 33, 1}, {24, 25, 1}, {24, 27, 1}, {24, 31, 1}, {25, 31, 1},
      {26, 29, 1}, {26, 33, 1}, {27, 33, 1}, {28, 31, 1}, {28, 33, 1}, {29, 32, 1},
      {29, 33, 1}, {30, 32, 1}, {30, 33, 1}, {31, 32, 1}, {31, 33, 1}, {32, 33, 1},
  };
  // Documented post-fission factions (Mr. Hi = 0, Officer = 1).
  g.ground_truth = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 1, 0,
                    0, 1, 0, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  return g;
}

}  // namespace dlouvain::gen
