// Common result type for all synthetic graph generators.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace dlouvain::gen {

/// A generated graph: undirected edge list (each edge listed once, no
/// duplicates, no self loops) plus optional planted ground truth.
struct GeneratedGraph {
  std::string name;
  VertexId num_vertices{0};
  std::vector<Edge> edges;
  /// Planted community per vertex; empty when the generator has no notion of
  /// ground truth (e.g. Erdős–Rényi).
  std::vector<CommunityId> ground_truth;

  [[nodiscard]] EdgeId num_edges() const { return static_cast<EdgeId>(edges.size()); }
};

}  // namespace dlouvain::gen
