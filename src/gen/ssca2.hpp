// SSCA#2-style generator (DARPA HPCS graph analysis benchmark; the paper
// uses GTgraph's implementation for its weak-scaling study, Section V-B):
// the vertex set is carved into random-sized cliques (capped at
// max_clique_size) with fully-connected intra-clique edges, plus a low
// probability of inter-clique edges -- "deliberately ... low to enforce good
// community structure" (paper gets modularity 0.9999+ on these).
#pragma once

#include "gen/generated.hpp"

namespace dlouvain::gen {

struct Ssca2Params {
  VertexId num_vertices{10000};
  VertexId max_clique_size{100};
  /// Probability that any given clique member gains one extra edge to a
  /// random vertex of another clique.
  double inter_clique_prob{0.01};
  std::uint64_t seed{2};
};

/// Ground truth: one community per clique.
GeneratedGraph ssca2(const Ssca2Params& params);

}  // namespace dlouvain::gen
