// R-MAT recursive matrix generator (Chakrabarti et al.) -- produces
// scale-free graphs with heavy-tailed degree distributions, the structure
// class of the paper's web-crawl inputs (webbase-2001, sk-2005, uk-2007 have
// power-law degrees with locally dense host-level clusters).
#pragma once

#include "gen/generated.hpp"

namespace dlouvain::gen {

struct RmatParams {
  int scale{10};                 ///< n = 2^scale vertices
  EdgeId edges_per_vertex{8};    ///< m = n * edges_per_vertex attempted edges
  double a{0.57}, b{0.19}, c{0.19};  ///< quadrant probabilities (d = 1-a-b-c)
  std::uint64_t seed{1};
};

/// Generate an undirected R-MAT graph. Duplicate edges are merged and self
/// loops discarded, so the realized edge count is below the attempted count
/// (normal for R-MAT).
GeneratedGraph rmat(const RmatParams& params);

}  // namespace dlouvain::gen
