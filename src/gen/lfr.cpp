#include "gen/lfr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "util/prng.hpp"

namespace dlouvain::gen {

namespace {

using util::Xoshiro256StarStar;

/// Sample from a discrete power law on [lo, hi] with exponent `tau` via
/// inverse-CDF of the continuous approximation.
VertexId power_law_sample(Xoshiro256StarStar& rng, VertexId lo, VertexId hi, double tau) {
  const double u = rng.next_unit();
  const double a = std::pow(static_cast<double>(lo), 1.0 - tau);
  const double b = std::pow(static_cast<double>(hi) + 1.0, 1.0 - tau);
  const double x = std::pow(a + u * (b - a), 1.0 / (1.0 - tau));
  return std::clamp(static_cast<VertexId>(x), lo, hi);
}

/// 64-bit pair key for the duplicate-edge filter.
std::uint64_t pair_key(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

}  // namespace

GeneratedGraph lfr(const LfrParams& p) {
  if (p.num_vertices < 4) throw std::invalid_argument("lfr: too few vertices");
  if (p.mu < 0.0 || p.mu > 1.0) throw std::invalid_argument("lfr: mu in [0,1]");
  if (p.min_community < 2 || p.max_community < p.min_community)
    throw std::invalid_argument("lfr: bad community size bounds");
  if (p.max_degree < 2 || p.avg_degree < 1.0 || p.avg_degree > static_cast<double>(p.max_degree))
    throw std::invalid_argument("lfr: bad degree bounds");
  if (p.num_vertices > (VertexId{1} << 32))
    throw std::invalid_argument("lfr: pair_key supports < 2^32 vertices");

  Xoshiro256StarStar rng(p.seed);
  const VertexId n = p.num_vertices;

  GeneratedGraph g;
  g.name = "lfr";
  g.num_vertices = n;
  g.ground_truth.resize(static_cast<std::size_t>(n));

  // 1. Community sizes: power law tau2, truncated to cover exactly n.
  std::vector<VertexId> comm_size;
  VertexId assigned = 0;
  while (assigned < n) {
    VertexId s = power_law_sample(rng, p.min_community, p.max_community, p.tau2);
    if (assigned + s > n) s = n - assigned;  // trim the final community
    comm_size.push_back(s);
    assigned += s;
  }
  // A trimmed final community smaller than min_community is merged backward.
  if (comm_size.size() > 1 && comm_size.back() < p.min_community) {
    comm_size[comm_size.size() - 2] += comm_size.back();
    comm_size.pop_back();
  }
  const auto num_comms = static_cast<CommunityId>(comm_size.size());

  std::vector<VertexId> comm_start(static_cast<std::size_t>(num_comms) + 1, 0);
  for (CommunityId c = 0; c < num_comms; ++c)
    comm_start[static_cast<std::size_t>(c) + 1] =
        comm_start[static_cast<std::size_t>(c)] + comm_size[static_cast<std::size_t>(c)];
  for (CommunityId c = 0; c < num_comms; ++c)
    for (VertexId v = comm_start[static_cast<std::size_t>(c)];
         v < comm_start[static_cast<std::size_t>(c) + 1]; ++v)
      g.ground_truth[static_cast<std::size_t>(v)] = c;

  // 2. Degree sequence: power law tau1 with the requested mean. Sample on
  // [kmin, max_degree] where kmin is solved (approximately) from the mean.
  // For tau1 in (2, 3) the mean is roughly kmin * (tau1-1)/(tau1-2).
  VertexId kmin = std::max<VertexId>(
      2, static_cast<VertexId>(p.avg_degree * (p.tau1 - 2.0) / (p.tau1 - 1.0)));
  std::vector<VertexId> degree(static_cast<std::size_t>(n));
  for (auto& k : degree) k = power_law_sample(rng, kmin, p.max_degree, p.tau1);

  // Rescale toward the requested average (power-law truncation shifts it).
  const double mean = std::accumulate(degree.begin(), degree.end(), 0.0) /
                      static_cast<double>(n);
  for (auto& k : degree) {
    k = std::clamp<VertexId>(static_cast<VertexId>(std::lround(
                                 static_cast<double>(k) * p.avg_degree / mean)),
                             2, p.max_degree);
  }

  // 3. Split each degree into intra/inter parts; intra capped by community
  // size - 1 (cannot exceed the number of possible intra partners).
  std::vector<VertexId> intra_deg(static_cast<std::size_t>(n));
  std::vector<VertexId> inter_deg(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    const CommunityId c = g.ground_truth[static_cast<std::size_t>(v)];
    const VertexId cap = comm_size[static_cast<std::size_t>(c)] - 1;
    const auto want = static_cast<VertexId>(
        std::lround((1.0 - p.mu) * static_cast<double>(degree[static_cast<std::size_t>(v)])));
    intra_deg[static_cast<std::size_t>(v)] = std::min(want, cap);
    inter_deg[static_cast<std::size_t>(v)] =
        degree[static_cast<std::size_t>(v)] - intra_deg[static_cast<std::size_t>(v)];
  }

  std::unordered_set<std::uint64_t> present;
  present.reserve(static_cast<std::size_t>(n) * 8);
  auto try_add = [&](VertexId a, VertexId b) {
    if (a == b) return false;
    const auto [it, inserted] = present.insert(pair_key(a, b));
    (void)it;
    if (inserted) g.edges.push_back({std::min(a, b), std::max(a, b), 1.0});
    return inserted;
  };

  // 4. Intra-community stub matching, one community at a time.
  for (CommunityId c = 0; c < num_comms; ++c) {
    std::vector<VertexId> stubs;
    for (VertexId v = comm_start[static_cast<std::size_t>(c)];
         v < comm_start[static_cast<std::size_t>(c) + 1]; ++v)
      stubs.insert(stubs.end(), static_cast<std::size_t>(intra_deg[static_cast<std::size_t>(v)]), v);
    if (stubs.size() % 2) stubs.pop_back();
    // Fisher-Yates shuffle, then pair consecutive stubs; rejected pairs
    // (self/duplicate) are simply dropped -- LFR tolerates slight degree
    // deficit and the expectation is preserved.
    for (std::size_t i = stubs.size(); i > 1; --i)
      std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) try_add(stubs[i], stubs[i + 1]);
  }

  // 5. Inter-community stub matching, global; pairs falling inside one
  // community are re-tried a bounded number of times.
  std::vector<VertexId> stubs;
  for (VertexId v = 0; v < n; ++v)
    stubs.insert(stubs.end(), static_cast<std::size_t>(inter_deg[static_cast<std::size_t>(v)]), v);
  if (stubs.size() % 2) stubs.pop_back();
  for (std::size_t i = stubs.size(); i > 1; --i)
    std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
  std::size_t tail = stubs.size();
  for (std::size_t i = 0; i + 1 < tail; i += 2) {
    VertexId a = stubs[i];
    VertexId b = stubs[i + 1];
    int attempts = 0;
    while (attempts < 16 &&
           g.ground_truth[static_cast<std::size_t>(a)] ==
               g.ground_truth[static_cast<std::size_t>(b)] &&
           tail > i + 2) {
      // Swap b with a random later stub and retry.
      const std::size_t j = i + 2 + rng.next_below(tail - i - 2);
      std::swap(stubs[i + 1], stubs[j]);
      b = stubs[i + 1];
      ++attempts;
    }
    if (g.ground_truth[static_cast<std::size_t>(a)] !=
        g.ground_truth[static_cast<std::size_t>(b)])
      try_add(a, b);
  }

  std::sort(g.edges.begin(), g.edges.end(), [](const Edge& x, const Edge& y) {
    return x.src != y.src ? x.src < y.src : x.dst < y.dst;
  });
  return g;
}

}  // namespace dlouvain::gen
