#include "gen/surrogate.hpp"

#include <cmath>
#include <functional>
#include <map>
#include <stdexcept>

#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "gen/simple.hpp"
#include "gen/ssca2.hpp"

namespace dlouvain::gen {

namespace {

VertexId scaled(double base, double scale) {
  return std::max<VertexId>(16, static_cast<VertexId>(std::lround(base * scale)));
}

GeneratedGraph make_banded(const std::string& name, double scale, VertexId base_n,
                           VertexId band) {
  auto g = banded(scaled(static_cast<double>(base_n), scale), band);
  g.name = name;
  return g;
}

GeneratedGraph make_lfr(const std::string& name, double scale, std::uint64_t seed,
                        VertexId base_n, double avg_deg, double mu) {
  LfrParams p;
  p.num_vertices = scaled(static_cast<double>(base_n), scale);
  p.avg_degree = avg_deg;
  p.max_degree = static_cast<VertexId>(avg_deg * 3);
  p.mu = mu;
  p.min_community = 16;
  p.max_community = std::max<VertexId>(32, p.num_vertices / 12);
  p.seed = seed;
  auto g = lfr(p);
  g.name = name;
  return g;
}

GeneratedGraph make_ssca2(const std::string& name, double scale, std::uint64_t seed,
                          VertexId base_n, VertexId max_clique, double inter) {
  Ssca2Params p;
  p.num_vertices = scaled(static_cast<double>(base_n), scale);
  p.max_clique_size = max_clique;
  p.inter_clique_prob = inter;
  p.seed = seed;
  auto g = ssca2(p);
  g.name = name;
  return g;
}

GeneratedGraph make_small_world(const std::string& name, double scale, std::uint64_t seed,
                                VertexId base_n, VertexId k, double beta) {
  auto g = watts_strogatz(scaled(static_cast<double>(base_n), scale), k, beta, seed);
  g.name = name;
  return g;
}

using Maker = std::function<GeneratedGraph(double scale, std::uint64_t seed)>;

// Structure-class mapping per graph; sizes ascend with Table II's edge order.
const std::map<std::string, Maker>& makers() {
  static const std::map<std::string, Maker> table = {
      // Table I inputs.
      {"CNR",
       [](double s, std::uint64_t seed) {
         return make_small_world("CNR", s, seed, 2000, 12, 0.12);
       }},
      // Table II, ascending edges. channel doubles as a Table I input.
      {"channel",
       [](double s, std::uint64_t) { return make_banded("channel", s, 2000, 6); }},
      {"com-orkut",
       [](double s, std::uint64_t seed) {
         return make_lfr("com-orkut", s, seed, 1200, 26, 0.47);
       }},
      {"soc-sinaweibo",
       [](double s, std::uint64_t seed) {
         return make_lfr("soc-sinaweibo", s, seed, 1500, 26, 0.46);
       }},
      {"twitter-2010",
       [](double s, std::uint64_t seed) {
         return make_lfr("twitter-2010", s, seed, 1700, 26, 0.47);
       }},
      {"nlpkkt240",
       [](double s, std::uint64_t) { return make_banded("nlpkkt240", s, 3600, 7); }},
      {"web-wiki-en-2013",
       [](double s, std::uint64_t seed) {
         return make_lfr("web-wiki-en-2013", s, seed, 2300, 28, 0.26);
       }},
      {"arabic-2005",
       [](double s, std::uint64_t seed) {
         return make_ssca2("arabic-2005", s, seed, 3000, 30, 0.004);
       }},
      {"webbase-2001",
       [](double s, std::uint64_t seed) {
         return make_ssca2("webbase-2001", s, seed, 3600, 30, 0.006);
       }},
      {"web-cc12-PayLevelDomain",
       [](double s, std::uint64_t seed) {
         return make_lfr("web-cc12-PayLevelDomain", s, seed, 2900, 30, 0.24);
       }},
      {"soc-friendster",
       [](double s, std::uint64_t seed) {
         return make_lfr("soc-friendster", s, seed, 3200, 30, 0.30);
       }},
      {"sk-2005",
       [](double s, std::uint64_t seed) {
         return make_ssca2("sk-2005", s, seed, 4400, 30, 0.005);
       }},
      {"uk-2007",
       [](double s, std::uint64_t seed) {
         return make_ssca2("uk-2007", s, seed, 5500, 30, 0.005);
       }},
  };
  return table;
}

}  // namespace

const std::vector<SurrogateInfo>& table2_catalog() {
  static const std::vector<SurrogateInfo> catalog = {
      {"channel", "banded mesh", 4.8e6, 42.7e6, 0.943},
      {"com-orkut", "LFR mu=0.47", 3e6, 117.1e6, 0.472},
      {"soc-sinaweibo", "LFR mu=0.46", 58.6e6, 261.3e6, 0.482},
      {"twitter-2010", "LFR mu=0.47", 21.2e6, 265e6, 0.478},
      {"nlpkkt240", "banded mesh", 27.9e6, 401.2e6, 0.939},
      {"web-wiki-en-2013", "LFR mu=0.26", 27.1e6, 601e6, 0.671},
      {"arabic-2005", "SSCA#2 cliques", 22.7e6, 640e6, 0.989},
      {"webbase-2001", "SSCA#2 cliques", 118e6, 1e9, 0.983},
      {"web-cc12-PayLevelDomain", "LFR mu=0.24", 42.8e6, 1.2e9, 0.687},
      {"soc-friendster", "LFR mu=0.30", 65.6e6, 1.8e9, 0.624},
      {"sk-2005", "SSCA#2 cliques", 50.6e6, 1.9e9, 0.971},
      {"uk-2007", "SSCA#2 cliques", 105.8e6, 3.3e9, 0.972},
  };
  return catalog;
}

const std::vector<SurrogateInfo>& table1_catalog() {
  static const std::vector<SurrogateInfo> catalog = {
      {"CNR", "small world", 325e3, 3.2e6, 0.913},
      {"channel", "banded mesh", 4.8e6, 42.7e6, 0.943},
  };
  return catalog;
}

GeneratedGraph surrogate(const std::string& name, double scale, std::uint64_t seed) {
  const auto it = makers().find(name);
  if (it == makers().end())
    throw std::invalid_argument("surrogate: unknown graph name '" + name + "'");
  return it->second(scale, seed);
}

}  // namespace dlouvain::gen
