// LFR-style benchmark generator (Lancichinetti, Fortunato, Radicchi 2008).
//
// The paper's quality assessment (Section V-D, Table VII) runs the
// distributed Louvain against LFR networks with known ground truth and
// reports precision / recall / F-score. This implementation follows the LFR
// recipe: power-law degree distribution (exponent tau1), power-law community
// sizes (exponent tau2), and a mixing parameter mu giving each vertex a
// (1-mu) fraction of intra-community stubs. Edges are realized by stub
// matching with bounded rejection, which preserves the degree sequence in
// expectation -- the property the benchmark's difficulty depends on.
#pragma once

#include "gen/generated.hpp"

namespace dlouvain::gen {

struct LfrParams {
  VertexId num_vertices{1000};
  double avg_degree{20};
  VertexId max_degree{50};
  double tau1{2.5};   ///< degree exponent
  double tau2{1.5};   ///< community-size exponent
  double mu{0.1};     ///< mixing: fraction of inter-community stubs
  VertexId min_community{20};
  VertexId max_community{100};
  std::uint64_t seed{3};
};

/// Ground truth included. Throws std::invalid_argument on infeasible
/// parameter combinations (e.g. max_community < min_community).
GeneratedGraph lfr(const LfrParams& params);

}  // namespace dlouvain::gen
