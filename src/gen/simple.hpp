// Elementary graph families used across tests, examples, and surrogates.
#pragma once

#include "gen/generated.hpp"

namespace dlouvain::gen {

/// Cycle 0-1-...-n-1-0.
GeneratedGraph ring(VertexId n);

/// `k` cliques of `clique_size` vertices, consecutive cliques joined by one
/// bridge edge. Ground truth: one community per clique. The classic Louvain
/// sanity input: near-perfect modularity, obvious answer.
GeneratedGraph clique_chain(VertexId num_cliques, VertexId clique_size);

/// Banded (diagonal) mesh: vertex v connects to v+1 .. v+band. Structure
/// class of the paper's "channel" and "nlpkkt240" inputs (banded matrices
/// from CFD / optimization); Louvain finds contiguous segments.
GeneratedGraph banded(VertexId n, VertexId band);

/// Watts-Strogatz small world: ring lattice with k/2 neighbours each side,
/// each edge rewired with probability beta. Structure class of the paper's
/// CNR input ("small world characteristics").
GeneratedGraph watts_strogatz(VertexId n, VertexId k, double beta, std::uint64_t seed);

/// Erdős–Rényi G(n, p_edge). No planted structure (modularity of whatever
/// Louvain finds is low); used for negative controls.
GeneratedGraph erdos_renyi(VertexId n, double p_edge, std::uint64_t seed);

/// Planted partition: `blocks` equal communities, intra-community edge
/// probability p_in, inter p_out. Ground truth included.
GeneratedGraph planted_partition(VertexId n, int blocks, double p_in, double p_out,
                                 std::uint64_t seed);

/// Zachary's karate club (34 vertices, 78 edges) -- the classic real-world
/// community-detection fixture. Ground truth: the documented two-faction
/// split after the club's fission. Louvain typically finds 4 communities at
/// modularity ~0.41-0.42.
GeneratedGraph karate_club();

}  // namespace dlouvain::gen
