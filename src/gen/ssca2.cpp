#include "gen/ssca2.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/prng.hpp"

namespace dlouvain::gen {

GeneratedGraph ssca2(const Ssca2Params& params) {
  if (params.num_vertices < 2 || params.max_clique_size < 2)
    throw std::invalid_argument("ssca2: need >= 2 vertices and clique cap >= 2");
  if (params.inter_clique_prob < 0.0 || params.inter_clique_prob > 1.0)
    throw std::invalid_argument("ssca2: inter_clique_prob in [0,1]");

  util::Xoshiro256StarStar rng(params.seed);
  const VertexId n = params.num_vertices;

  GeneratedGraph g;
  g.name = "ssca2";
  g.num_vertices = n;
  g.ground_truth.resize(static_cast<std::size_t>(n));

  // Carve [0, n) into cliques of size U[1, max_clique_size].
  std::vector<VertexId> clique_start;  // start of each clique; sentinel n at end
  VertexId cursor = 0;
  while (cursor < n) {
    clique_start.push_back(cursor);
    const VertexId size = 1 + static_cast<VertexId>(rng.next_below(
                                  static_cast<std::uint64_t>(params.max_clique_size)));
    cursor = std::min<VertexId>(n, cursor + size);
  }
  clique_start.push_back(n);
  const auto num_cliques = static_cast<VertexId>(clique_start.size()) - 1;

  for (VertexId c = 0; c < num_cliques; ++c) {
    const VertexId lo = clique_start[static_cast<std::size_t>(c)];
    const VertexId hi = clique_start[static_cast<std::size_t>(c) + 1];
    for (VertexId i = lo; i < hi; ++i) {
      g.ground_truth[static_cast<std::size_t>(i)] = c;
      for (VertexId j = i + 1; j < hi; ++j) g.edges.push_back({i, j, 1.0});
    }
  }

  // Sparse inter-clique edges. Connect to a uniformly random vertex outside
  // the member's own clique; also guarantee chain connectivity so the graph
  // is one component (one bridge between consecutive cliques).
  for (VertexId c = 1; c < num_cliques; ++c) {
    const VertexId a = clique_start[static_cast<std::size_t>(c)] - 1;
    const VertexId b = clique_start[static_cast<std::size_t>(c)];
    g.edges.push_back({a, b, 1.0});
  }
  if (num_cliques > 1) {
    for (VertexId v = 0; v < n; ++v) {
      if (rng.next_unit() >= params.inter_clique_prob) continue;
      const VertexId c = g.ground_truth[static_cast<std::size_t>(v)];
      const VertexId lo = clique_start[static_cast<std::size_t>(c)];
      const VertexId hi = clique_start[static_cast<std::size_t>(c) + 1];
      const VertexId outside = n - (hi - lo);
      VertexId pick = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(outside)));
      if (pick >= lo) pick += hi - lo;  // skip own clique's interval
      g.edges.push_back({v, pick, 1.0});
    }
  }

  // Canonicalize + dedup (bridges may duplicate random inter edges).
  for (auto& e : g.edges) {
    if (e.src > e.dst) std::swap(e.src, e.dst);
  }
  std::sort(g.edges.begin(), g.edges.end(), [](const Edge& x, const Edge& y) {
    return x.src != y.src ? x.src < y.src : x.dst < y.dst;
  });
  g.edges.erase(std::unique(g.edges.begin(), g.edges.end(),
                            [](const Edge& x, const Edge& y) {
                              return x.src == y.src && x.dst == y.dst;
                            }),
                g.edges.end());
  return g;
}

}  // namespace dlouvain::gen
