#include "gen/rmat.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/prng.hpp"

namespace dlouvain::gen {

GeneratedGraph rmat(const RmatParams& params) {
  if (params.scale < 1 || params.scale > 30)
    throw std::invalid_argument("rmat: scale must be in [1, 30]");
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || d < 0)
    throw std::invalid_argument("rmat: quadrant probabilities must be a distribution");

  util::Xoshiro256StarStar rng(params.seed);
  const VertexId n = VertexId{1} << params.scale;
  const EdgeId target = n * params.edges_per_vertex;

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(target));
  for (EdgeId e = 0; e < target; ++e) {
    VertexId u = 0;
    VertexId v = 0;
    for (int bit = 0; bit < params.scale; ++bit) {
      const double r = rng.next_unit();
      const int quadrant = r < params.a                          ? 0
                           : r < params.a + params.b             ? 1
                           : r < params.a + params.b + params.c ? 2
                                                                 : 3;
      u = (u << 1) | (quadrant >> 1);
      v = (v << 1) | (quadrant & 1);
    }
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges.push_back({u, v, 1.0});
  }

  // Dedup (R-MAT hits hot cells repeatedly).
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    return x.src != y.src ? x.src < y.src : x.dst < y.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& x, const Edge& y) {
                            return x.src == y.src && x.dst == y.dst;
                          }),
              edges.end());

  GeneratedGraph g;
  g.name = "rmat";
  g.num_vertices = n;
  g.edges = std::move(edges);
  return g;
}

}  // namespace dlouvain::gen
