// Aligned plain-text table printing for the bench harnesses.
//
// The bench binaries regenerate the paper's tables; TextTable keeps their
// stdout output readable and diff-able (fixed column alignment, optional
// markdown rendering for EXPERIMENTS.md).
#pragma once

#include <concepts>
#include <ostream>
#include <string>
#include <vector>

namespace dlouvain::util {

class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 4);

  /// Any integer type formats exactly.
  template <typename T>
    requires std::integral<T>
  static std::string fmt(T value) {
    return std::to_string(value);
  }

  /// Render with space padding and a header rule.
  void print(std::ostream& os) const;

  /// Render as a GitHub-flavoured markdown table.
  void print_markdown(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  [[nodiscard]] std::vector<std::size_t> column_widths() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dlouvain::util
