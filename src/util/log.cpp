#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace dlouvain::util {

namespace {

std::atomic<LogLevel> g_level{[] {
  if (const char* env = std::getenv("DLOUVAIN_LOG")) {
    const std::string v = env;
    if (v == "debug") return LogLevel::kDebug;
    if (v == "info") return LogLevel::kInfo;
    if (v == "warn") return LogLevel::kWarn;
    if (v == "error") return LogLevel::kError;
    if (v == "off") return LogLevel::kOff;
  }
  return LogLevel::kWarn;
}()};

std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[dlouvain " << level_name(level) << "] " << message << '\n';
}

}  // namespace dlouvain::util
