// Per-rank ring-buffered tracing flushed to Chrome trace_event JSON
// (chrome://tracing, https://ui.perfetto.dev). The tentpole of ISSUE 4.
//
// Invariants that keep the determinism tests green with tracing enabled:
//   * recording a span takes the SAME code path regardless of thread count --
//     spans are recorded on the owning rank's thread into that rank's ring
//     buffer (single-writer, no locks, no atomics on the hot path);
//   * the buffers are drained (write_chrome_trace) strictly OUTSIDE timed
//     regions, after comm::run has joined the rank threads;
//   * tracing never feeds back into the algorithm: span contents are wall
//     timestamps only, never read by compute code.
//
// A null TraceBuffer* disables a span entirely (two branch instructions), so
// the trace-off hot path is unchanged.
//
// Span taxonomy note: alongside the timed phase/iteration spans, the Session
// recovery driver records zero-length MARKER spans in the "recovery"
// category ("recovery_restart", "recovery_shrink") with the attempt number
// in the iteration field -- they make ladder escalations visible on the
// trace timeline next to the work they interrupted (docs/OBSERVABILITY.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dlouvain::util {

/// One completed span. `name`/`cat` must be string literals (stored as
/// pointers; the ring never owns strings).
struct TraceEvent {
  const char* name{nullptr};
  const char* cat{nullptr};
  double ts_us{0};   ///< start, microseconds since the store epoch
  double dur_us{0};  ///< duration, microseconds
  std::int32_t phase{-1};
  std::int64_t iteration{-1};
};

/// Fixed-capacity ring of TraceEvents for ONE rank. Overwrites the oldest
/// event when full and counts the overwrites, so a long run degrades to "the
/// most recent N spans" instead of unbounded memory.
class TraceBuffer {
 public:
  using Clock = std::chrono::steady_clock;

  TraceBuffer(int pid, Clock::time_point epoch, std::size_t capacity)
      : pid_(pid), epoch_(epoch), events_(capacity) {}

  void record(const char* name, const char* cat, Clock::time_point start,
              Clock::time_point end, int phase, std::int64_t iteration) {
    TraceEvent& e = events_[head_];
    e.name = name;
    e.cat = cat;
    e.ts_us = std::chrono::duration<double, std::micro>(start - epoch_).count();
    e.dur_us = std::chrono::duration<double, std::micro>(end - start).count();
    e.phase = phase;
    e.iteration = iteration;
    head_ = (head_ + 1) % events_.size();
    if (size_ < events_.size())
      ++size_;
    else
      ++dropped_;
  }

  [[nodiscard]] int pid() const noexcept { return pid_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::int64_t dropped() const noexcept { return dropped_; }

  /// Events oldest-first. Call only after the owning rank thread is joined.
  [[nodiscard]] std::vector<TraceEvent> drain() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    const std::size_t start = (head_ + events_.size() - size_) % events_.size();
    for (std::size_t i = 0; i < size_; ++i)
      out.push_back(events_[(start + i) % events_.size()]);
    return out;
  }

 private:
  int pid_;
  Clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::size_t head_{0};
  std::size_t size_{0};
  std::int64_t dropped_{0};
};

/// RAII span. Constructed against a rank's TraceBuffer (or nullptr for
/// trace-off); records a complete "X" event at destruction.
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buffer, const char* name, const char* cat,
            int phase = -1, std::int64_t iteration = -1)
      : buffer_(buffer), name_(name), cat_(cat), phase_(phase), iteration_(iteration) {
    if (buffer_ != nullptr) start_ = TraceBuffer::Clock::now();
  }

  ~TraceSpan() {
    if (buffer_ != nullptr)
      buffer_->record(name_, cat_, start_, TraceBuffer::Clock::now(), phase_,
                      iteration_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const char* name_;
  const char* cat_;
  int phase_;
  std::int64_t iteration_;
  TraceBuffer::Clock::time_point start_{};
};

/// All ranks' buffers plus the shared epoch. One store can span several
/// recovery attempts -- spans from a failed attempt stay in the rings and are
/// flushed alongside the successful run's, which is exactly what you want
/// when debugging a crash.
class TraceStore {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit TraceStore(int num_ranks, std::size_t capacity_per_rank = kDefaultCapacity)
      : epoch_(TraceBuffer::Clock::now()) {
    buffers_.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r)
      buffers_.emplace_back(r, epoch_, capacity_per_rank);
  }

  [[nodiscard]] int num_ranks() const noexcept { return static_cast<int>(buffers_.size()); }

  [[nodiscard]] TraceBuffer* buffer(int rank) {
    if (rank < 0 || rank >= num_ranks()) return nullptr;
    return &buffers_[static_cast<std::size_t>(rank)];
  }

  [[nodiscard]] std::int64_t total_dropped() const {
    std::int64_t n = 0;
    for (const auto& b : buffers_) n += b.dropped();
    return n;
  }

  /// Merged Chrome trace_event JSON: one pid per rank, process_name metadata,
  /// complete ("X") events with phase/iteration args. Call after comm::run.
  void write_chrome_trace(std::ostream& out) const {
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto& buffer : buffers_) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << buffer.pid()
          << ",\"tid\":0,\"ts\":0,\"args\":{\"name\":\"rank " << buffer.pid()
          << "\"}}";
      for (const auto& e : buffer.drain()) {
        out << ",{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
            << "\",\"ph\":\"X\",\"pid\":" << buffer.pid() << ",\"tid\":0,\"ts\":"
            << e.ts_us << ",\"dur\":" << e.dur_us << ",\"args\":{\"phase\":" << e.phase
            << ",\"iteration\":" << e.iteration << "}}";
      }
    }
    out << "]}";
  }

 private:
  TraceBuffer::Clock::time_point epoch_;
  std::vector<TraceBuffer> buffers_;
};

}  // namespace dlouvain::util
