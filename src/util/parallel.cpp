#include "util/parallel.hpp"

#include "util/timer.hpp"

namespace dlouvain::util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    const auto hw = static_cast<int>(std::thread::hardware_concurrency());
    num_threads = hw > 0 ? hw : 1;
  }
  busy_.assign(static_cast<std::size_t>(num_threads), 0.0);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int tid = 1; tid < num_threads; ++tid)
    workers_.emplace_back([this, tid] { worker_loop(tid); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(int tid) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    WallTimer timer;
    std::exception_ptr error;
    try {
      (*job)(tid);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      busy_[static_cast<std::size_t>(tid)] += timer.seconds();
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(const std::function<void(int)>& job) {
  if (workers_.empty()) {
    WallTimer timer;
    job(0);
    busy_[0] += timer.seconds();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_ = &job;
    remaining_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  start_cv_.notify_all();

  WallTimer timer;
  std::exception_ptr error;
  try {
    job(0);
  } catch (...) {
    error = std::current_exception();
  }

  std::unique_lock lock(mutex_);
  busy_[0] += timer.seconds();
  if (error && !first_error_) first_error_ = error;
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    const auto rethrown = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(rethrown);
  }
}

double ThreadPool::busy_seconds() const {
  // Only meaningful between run() calls; no run is in flight, so the plain
  // reads race with nothing.
  double total = 0;
  for (const double seconds : busy_) total += seconds;
  return total;
}

void ThreadPool::reset_busy() {
  for (auto& seconds : busy_) seconds = 0;
}

}  // namespace dlouvain::util
