#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace dlouvain::util {

namespace {

std::string strip_dashes(const std::string& arg) {
  std::size_t i = 0;
  while (i < arg.size() && arg[i] == '-') ++i;
  return arg.substr(i);
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("positional arguments are not supported: " + arg);
    }
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = strip_dashes(arg.substr(0, eq));
      value = arg.substr(eq + 1);
    } else {
      name = strip_dashes(arg);
      // A value follows unless the next token is another flag (or absent):
      // that makes `--verbose --n 5` parse --verbose as a switch.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    values_[name] = value;
    consumed_[name] = false;
  }
}

std::optional<std::string> Cli::raw(const std::string& name) {
  if (auto it = values_.find(name); it != values_.end()) {
    consumed_[name] = true;
    return it->second;
  }
  return std::nullopt;
}

std::string Cli::get_string(const std::string& name, std::string def,
                            const std::string& help) {
  help_lines_.push_back("  --" + name + " <str>  (default: " + def + ") " + help);
  return raw(name).value_or(std::move(def));
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def,
                          const std::string& help) {
  help_lines_.push_back("  --" + name + " <int>  (default: " + std::to_string(def) +
                        ") " + help);
  if (auto v = raw(name)) return std::stoll(*v);
  return def;
}

double Cli::get_double(const std::string& name, double def, const std::string& help) {
  help_lines_.push_back("  --" + name + " <num>  (default: " + std::to_string(def) +
                        ") " + help);
  if (auto v = raw(name)) return std::stod(*v);
  return def;
}

bool Cli::get_flag(const std::string& name, bool def, const std::string& help) {
  help_lines_.push_back("  --" + name + "  (default: " + (def ? "true" : "false") +
                        ") " + help);
  if (auto v = raw(name)) return *v == "true" || *v == "1" || *v == "yes";
  return def;
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& name,
                                            std::vector<std::int64_t> def,
                                            const std::string& help) {
  help_lines_.push_back("  --" + name + " <i,j,...>  " + help);
  auto v = raw(name);
  if (!v) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  return out;
}

std::vector<double> Cli::get_double_list(const std::string& name,
                                         std::vector<double> def,
                                         const std::string& help) {
  help_lines_.push_back("  --" + name + " <x,y,...>  " + help);
  auto v = raw(name);
  if (!v) return def;
  std::vector<double> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

bool Cli::finish() const {
  if (help_requested_) {
    std::cerr << "usage: " << program_ << " [flags]\n";
    for (const auto& line : help_lines_) std::cerr << line << '\n';
    return false;
  }
  bool ok = true;
  for (const auto& [name, used] : consumed_) {
    if (!used) {
      std::cerr << program_ << ": unknown flag --" << name << '\n';
      ok = false;
    }
  }
  if (!ok) {
    std::cerr << "run with --help for the flag list\n";
  }
  return ok;
}

}  // namespace dlouvain::util
