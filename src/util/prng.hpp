// Deterministic pseudo-random number generation.
//
// Two flavours:
//  * Xoshiro256StarStar -- a fast sequential generator for the synthetic
//    graph generators.
//  * counter-based `hash_rand` helpers -- stateless, keyed draws used by the
//    early-termination heuristic so that a vertex's coin flip at (phase,
//    iteration) is identical regardless of which rank owns it or how many
//    ranks participate. This keeps distributed runs reproducible at any
//    process count (DESIGN.md decision #4).
#pragma once

#include <cstdint>

namespace dlouvain::util {

/// SplitMix64 step: the canonical seeding/stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One-shot stateless mix of a 64-bit value.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Combine two keys into one (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Stateless keyed uniform draw in [0, 1).
constexpr double hash_rand_unit(std::uint64_t key) noexcept {
  // 53 high bits -> double mantissa.
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

/// Keyed draw for a (seed, a, b, c) tuple; used as (seed, vertex, phase, iter).
constexpr double hash_rand_unit(std::uint64_t seed, std::uint64_t a,
                                std::uint64_t b, std::uint64_t c) noexcept {
  return hash_rand_unit(hash_combine(hash_combine(seed, a), hash_combine(b, c)));
}

/// xoshiro256** 1.0 -- public-domain algorithm by Blackman & Vigna.
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256StarStar(std::uint64_t seed = 0x7b1dcdaf2c0aa3feULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_unit() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) (bound > 0). Uses Lemire's multiply-shift
  /// reduction; bias is negligible for our bounds (< 2^48).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace dlouvain::util
