// Segmented-reduction sweep kernels (ISSUE 8): the sorted-neighbor layout
// from Forster's GPU Louvain, adapted to the epoch-stamped scatter idiom.
//
// The flat ScatterAccumulator path ("gather lane") accumulates e_{v -> c}
// into a slot-indexed sparse array and then walks touched() gathering
// values_[slot] + the community degree per candidate -- every read in the
// gain loop is an indirection into slot space. The segmented lanes instead
// group each vertex's arcs by destination-community slot as they stream by
// (STABLE first-touch grouping), producing three dense, contiguous arrays:
//
//   slots[i]  -- the i-th distinct community slot, in first-touch order
//   sums[i]   -- e_{v -> slots[i]}, accumulated left-to-right in scan order
//   (scratch) -- per-segment degree / gain arrays the SIMD lane fills
//
// Bitwise contract: first-touch segment order IS ScatterAccumulator's
// touched() order, and each segment's sum is accumulated in the exact scan
// order the flat path used (`values_[s] += w` becomes `sums_[seg] += w`), so
// every floating-point bit matches the flat path. The ∆Q selection (max
// gain, strictly positive, smallest community id on ties) is visit-order
// independent, so the lanes may restructure that loop freely -- the SIMD
// lane splits it into a degree gather, a dense element-wise gain pass the
// compiler vectorizes (contiguous loads, no calls, no branches), and a
// scalar argmax scan. Per-segment sums are NEVER tree-reduced.
//
// Lane selection: preferred_sweep_lane() picks the widest profitable lane
// for the host CPU at runtime (kSimd where a vector FPU is present, else
// kSegmented), with kScalar always available as the reference fallback.
// set_sweep_lane() overrides the choice process-wide (tests, benches, and
// the DLOUVAIN_SWEEP_LANE environment knob); sweeps re-read the lane at
// phase granularity, so a mid-sweep override cannot tear a batch.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

// Function multiversioning for the dense gain pass: when the translation
// unit is built for baseline x86-64 (no -mavx2), emit an additional AVX2
// clone of the pass and pick it at runtime. target("avx2") deliberately
// does NOT enable FMA, so the compiler cannot contract a*b+c -- the AVX2
// clone is bitwise identical to the scalar/SSE2 code, just 4 doubles wide
// (vdivpd halves the per-element divide throughput that bounds the pass).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(__AVX2__)
#define DLOUVAIN_SEGMENTED_MULTIVERSION 1
#else
#define DLOUVAIN_SEGMENTED_MULTIVERSION 0
#endif

namespace dlouvain::util {

/// Which implementation of the local-move inner loop a sweep runs. All
/// three produce bitwise-identical results; they differ only in memory
/// layout and instruction scheduling.
enum class SweepLane : int {
  kScalar = 0,     ///< flat ScatterAccumulator + interleaved gather gain loop
  kSegmented = 1,  ///< dense segment arrays, fused per-segment gain loop
  kSimd = 2,       ///< dense segments + split vectorizable gain passes
};

[[nodiscard]] inline const char* sweep_lane_label(SweepLane lane) {
  switch (lane) {
    case SweepLane::kScalar: return "scalar";
    case SweepLane::kSegmented: return "segmented";
    case SweepLane::kSimd: return "simd";
  }
  return "?";
}

/// Widest lane the host CPU profits from. The SIMD lane is portable C++
/// (compiler-vectorized stride loops, no intrinsics), so this is a
/// performance choice, not a correctness gate: prefer it wherever a vector
/// FPU wide enough to pay for the split passes exists, fall back to the
/// fused segmented lane otherwise.
[[nodiscard]] inline SweepLane preferred_sweep_lane() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  // AVX2 (4-wide double, and what the multiversioned gain-pass clone is
  // compiled for) is where the split passes win over the fused loop; older
  // x86-64 keeps the fused segmented lane.
  return __builtin_cpu_supports("avx2") ? SweepLane::kSimd : SweepLane::kSegmented;
#else
  return SweepLane::kSegmented;
#endif
#elif defined(__aarch64__)
  return SweepLane::kSimd;  // NEON (2-wide double) is architectural
#else
  return SweepLane::kSegmented;
#endif
}

namespace detail {
inline std::atomic<int>& sweep_lane_override() {
  static std::atomic<int> lane{-1};  // -1 = no override
  return lane;
}
}  // namespace detail

/// Process-wide lane override (tests / benches / the DLOUVAIN_SWEEP_LANE
/// env knob). Sweeps capture the lane once per phase, so flipping this
/// mid-run affects the next phase, never a half-swept batch.
inline void set_sweep_lane(SweepLane lane) {
  detail::sweep_lane_override().store(static_cast<int>(lane),
                                      std::memory_order_relaxed);
}

/// Drop any override and return to runtime CPU detection.
inline void clear_sweep_lane() {
  detail::sweep_lane_override().store(-1, std::memory_order_relaxed);
}

/// The lane sweeps should run: the override if one is set (API first, then
/// the DLOUVAIN_SWEEP_LANE environment variable, latched on first query),
/// otherwise the CPU-detected preference.
[[nodiscard]] inline SweepLane sweep_lane() {
  const int forced = detail::sweep_lane_override().load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SweepLane>(forced);
  static const int env_lane = [] {
    const char* env = std::getenv("DLOUVAIN_SWEEP_LANE");
    if (env == nullptr) return -1;
    if (std::strcmp(env, "scalar") == 0) return 0;
    if (std::strcmp(env, "segmented") == 0) return 1;
    if (std::strcmp(env, "simd") == 0) return 2;
    return -1;  // unknown value: ignore, keep detection
  }();
  if (env_lane >= 0) return static_cast<SweepLane>(env_lane);
  return preferred_sweep_lane();
}

/// Parse a lane label ("scalar" | "segmented" | "simd"); throws on unknown.
[[nodiscard]] inline SweepLane parse_sweep_lane(const std::string& label) {
  if (label == "scalar") return SweepLane::kScalar;
  if (label == "segmented") return SweepLane::kSegmented;
  if (label == "simd") return SweepLane::kSimd;
  throw std::invalid_argument("unknown sweep lane '" + label +
                              "' (want scalar|segmented|simd)");
}

/// Stable group-by-slot accumulator: the segmented twin of
/// ScatterAccumulator. add() streams arcs in scan order; segments appear in
/// first-touch order and each segment's sum accumulates left-to-right, so
/// sums()[i] is bitwise identical to the flat path's values_[slots()[i]].
/// One per thread (not thread-safe), reused across vertices and batches.
///
/// Layout: epoch stamp and segment index share one packed 64-bit mark word
/// per slot (epoch high 32, segment low 32), so the random-access side of
/// add() touches exactly ONE cache line per arc -- the flat path touches
/// two (stamps_[s] + values_[s]). The dense arrays are pre-sized to the
/// reset() capacity, which makes the first-touch path branch-free (plain
/// overwrites, no push_back). Together these are what make the segmented
/// lanes faster than the flat gather, not just bitwise equal to it.
template <typename V>
class SegmentedAccumulator {
 public:
  /// Start a fresh vertex over slots [0, capacity). O(1) amortised -- the
  /// epoch bump in the packed marks invalidates stale segment entries.
  void reset(std::size_t capacity) {
    if (capacity > mark_.size()) {
      mark_.resize(capacity, 0);
      slots_.resize(capacity);
      sums_.resize(capacity);
    }
    count_ = 0;
    if (++epoch_ == 0) {  // wrapped: stale marks could alias epoch 0
      std::fill(mark_.begin(), mark_.end(), std::uint64_t{0});
      epoch_ = 1;
    }
  }

  /// sums[segment_of(slot)] += w, opening a new segment on first touch.
  void add(std::int64_t slot, V w) {
    assert(slot >= 0 && static_cast<std::size_t>(slot) < mark_.size() &&
           "SegmentedAccumulator::add: slot outside reset() capacity");
    const auto s = static_cast<std::size_t>(slot);
    const std::uint64_t mk = mark_[s];
    if ((mk >> 32) == epoch_) {
      sums_[static_cast<std::uint32_t>(mk)] += w;
    } else {
      mark_[s] = (static_cast<std::uint64_t>(epoch_) << 32) | count_;
      slots_[count_] = slot;
      sums_[count_] = w;
      ++count_;
    }
  }

  /// Number of distinct slots touched since reset().
  [[nodiscard]] std::size_t segments() const noexcept { return count_; }

  /// Distinct slots in first-touch order (== flat touched() order).
  [[nodiscard]] const std::int64_t* slots() const noexcept { return slots_.data(); }

  /// Per-segment scan-order sums, aligned with slots().
  [[nodiscard]] const V* sums() const noexcept { return sums_.data(); }

  /// Segment index of `slot`, or -1 if untouched this epoch.
  [[nodiscard]] std::int64_t segment_of(std::int64_t slot) const {
    assert(slot >= 0 && static_cast<std::size_t>(slot) < mark_.size() &&
           "SegmentedAccumulator::segment_of: slot outside reset() capacity");
    const std::uint64_t mk = mark_[static_cast<std::size_t>(slot)];
    return (mk >> 32) == epoch_
               ? static_cast<std::int64_t>(static_cast<std::uint32_t>(mk))
               : -1;
  }

  /// Sum for `slot` (V{} if untouched) -- flat get() equivalent.
  [[nodiscard]] V sum_of(std::int64_t slot) const {
    const std::int64_t seg = segment_of(slot);
    return seg >= 0 ? sums_[static_cast<std::size_t>(seg)] : V{};
  }

  /// Dense per-segment scratch (degree gather / gain output) for the SIMD
  /// lane's split passes; grown lazily to segments() so the fused lanes
  /// never pay for it.
  [[nodiscard]] V* deg_scratch() {
    if (deg_.size() < count_) deg_.resize(count_);
    return deg_.data();
  }
  [[nodiscard]] V* gain_scratch() {
    if (gain_.size() < count_) gain_.resize(count_);
    return gain_.data();
  }

 private:
  // slot -> (epoch << 32 | segment index); the single random-access array.
  std::vector<std::uint64_t> mark_;
  std::uint32_t epoch_{0};
  std::uint32_t count_{0};
  std::vector<std::int64_t> slots_;
  std::vector<V> sums_;
  std::vector<V> deg_;   // SIMD-lane scratch, aligned with slots_
  std::vector<V> gain_;  // SIMD-lane scratch, aligned with slots_
};

/// Outcome of one vertex's ∆Q argmax: the winning segment index into the
/// accumulator's arrays, or -1 to stay put.
struct BestSegment {
  std::int64_t segment{-1};
};

namespace detail {

/// The dense element-wise gain pass of the SIMD lane. The expression is
/// token-for-token the one in best_segment()'s fused loop -- any edit must
/// change all copies together or the lanes stop being bitwise identical.
inline void gain_pass(std::size_t n, const double* __restrict sums,
                      const double* __restrict deg, double* __restrict gain,
                      double e_own, double a_own_less_v, double kv, double m,
                      double gamma) {
  for (std::size_t i = 0; i < n; ++i) {
    gain[i] =
        (sums[i] - e_own) / m - gamma * kv * (deg[i] - a_own_less_v) / (2 * m * m);
  }
}

#if DLOUVAIN_SEGMENTED_MULTIVERSION
/// AVX2 clone of gain_pass (runtime-dispatched). No FMA in the target set,
/// so every operation rounds exactly like the scalar code -- same bits,
/// twice the divide throughput (vdivpd ymm).
__attribute__((target("avx2"), noinline)) inline void gain_pass_avx2(
    std::size_t n, const double* __restrict sums, const double* __restrict deg,
    double* __restrict gain, double e_own, double a_own_less_v, double kv,
    double m, double gamma) {
  for (std::size_t i = 0; i < n; ++i) {
    gain[i] =
        (sums[i] - e_own) / m - gamma * kv * (deg[i] - a_own_less_v) / (2 * m * m);
  }
}

[[nodiscard]] inline bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}
#endif

inline void dispatch_gain_pass(std::size_t n, const double* sums,
                               const double* deg, double* gain, double e_own,
                               double a_own_less_v, double kv, double m,
                               double gamma) {
#if DLOUVAIN_SEGMENTED_MULTIVERSION
  if (cpu_has_avx2()) {
    gain_pass_avx2(n, sums, deg, gain, e_own, a_own_less_v, kv, m, gamma);
    return;
  }
#endif
  gain_pass(n, sums, deg, gain, e_own, a_own_less_v, kv, m, gamma);
}

}  // namespace detail

/// ∆Q argmax over the segments of one vertex. `own_segment` is
/// seg.segment_of(own_slot) (-1 if no arc points into the own community),
/// `e_own` the matching sum (0 if absent). `deg_of(slot)` returns the
/// candidate community's total degree a_c, `id_of(slot)` its community id
/// (the tie key). Selection rule -- shared verbatim by all engines: the
/// strictly-positive maximum of
///
///   gain = (e_target - e_own) / m - gamma * kv * (a_target - a_own_less_v)
///                                   / (2 * m * m)
///
/// with ties broken toward the smallest community id. The rule is
/// visit-order independent, so all three lanes return the same segment.
///
/// kScalar/kSegmented fuse the gain computation into the scan (degree
/// fetched per candidate); kSimd runs three dense passes -- gather degrees,
/// element-wise gain (vectorizable: contiguous loads, no calls), argmax.
template <typename V, typename DegOf, typename IdOf>
[[nodiscard]] inline BestSegment best_segment(
    SweepLane lane, SegmentedAccumulator<V>& seg, std::int64_t own_segment,
    V e_own, V a_own_less_v, V kv, V m, double gamma, DegOf&& deg_of,
    IdOf&& id_of) {
  const std::size_t n = seg.segments();
  const std::int64_t* slots = seg.slots();
  const V* sums = seg.sums();

  std::int64_t best_seg = -1;
  V best_gain = 0;
  CommunityId best_id = kInvalidCommunity;

  if (lane == SweepLane::kSimd) {
    V* deg = seg.deg_scratch();
    V* gain = seg.gain_scratch();
    for (std::size_t i = 0; i < n; ++i) deg[i] = deg_of(slots[i]);
    // The vector pass: every operand is a contiguous load or a scalar
    // broadcast, the expression matches the fused lanes token for token
    // (no reassociation), so the bits agree and the loop vectorizes --
    // 4-wide AVX2 via the runtime-dispatched clone where the CPU has it.
    if constexpr (std::is_same_v<V, double>) {
      detail::dispatch_gain_pass(n, sums, deg, gain, e_own, a_own_less_v, kv,
                                 m, gamma);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        gain[i] = (sums[i] - e_own) / m -
                  gamma * kv * (deg[i] - a_own_less_v) / (2 * m * m);
      }
    }
    // Branchless running max (compiles to maxsd, no mispredicts), then a
    // rare resolve pass. The own segment needs no skip here: its first
    // term is exactly +-0 (sums[own] == e_own) and its second is
    // non-negative for non-negative weights, so its gain can never reach
    // a strictly positive max; the resolve pass still excludes it for
    // belt-and-braces. Selection is "max gain, then smallest community
    // id" -- visit-order independent, so this equals the fused scan.
    V max_gain = 0;
    for (std::size_t i = 0; i < n; ++i)
      max_gain = gain[i] > max_gain ? gain[i] : max_gain;
    if (!(max_gain > 0)) return BestSegment{-1};
    CommunityId resolved_id = std::numeric_limits<CommunityId>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (gain[i] == max_gain &&
          static_cast<std::int64_t>(i) != own_segment) {
        const CommunityId target = id_of(slots[i]);
        if (best_seg < 0 || target < resolved_id) {
          best_seg = static_cast<std::int64_t>(i);
          resolved_id = target;
        }
      }
    }
    return BestSegment{best_seg};
  }

  // Fused lanes: kSegmented streams the dense segment arrays; kScalar is
  // the same loop shape the flat path ran (the accumulator is shared, so
  // "scalar" here means fused-gather scheduling, not a different layout).
  for (std::size_t i = 0; i < n; ++i) {
    const auto si = static_cast<std::int64_t>(i);
    if (si == own_segment) continue;
    const V e_target = sums[i];
    const V gain = (e_target - e_own) / m -
                   gamma * kv * (deg_of(slots[i]) - a_own_less_v) / (2 * m * m);
    if (gain > best_gain) {
      best_seg = si;
      best_gain = gain;
      best_id = kInvalidCommunity;
    } else if (gain == best_gain && gain > 0 && best_seg >= 0) {
      if (best_id == kInvalidCommunity)
        best_id = id_of(slots[static_cast<std::size_t>(best_seg)]);
      const CommunityId target = id_of(slots[i]);
      if (target < best_id) {
        best_seg = si;
        best_id = target;
      }
    }
  }
  return BestSegment{best_seg};
}

}  // namespace dlouvain::util
