// Leveled, thread-safe logging.
//
// Distributed runs execute many rank-threads concurrently; each log line is
// assembled in one shot and written under a mutex so interleaving never
// splits a line. Level is process-global and settable via DLOUVAIN_LOG.
#pragma once

#include <sstream>
#include <string>

namespace dlouvain::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold (default: read from env DLOUVAIN_LOG, else Warn).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emit one line at `level` (no-op when below threshold).
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { log_line(level_, stream_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LineBuilder log_debug() { return detail::LineBuilder(LogLevel::kDebug); }
inline detail::LineBuilder log_info() { return detail::LineBuilder(LogLevel::kInfo); }
inline detail::LineBuilder log_warn() { return detail::LineBuilder(LogLevel::kWarn); }
inline detail::LineBuilder log_error() { return detail::LineBuilder(LogLevel::kError); }

}  // namespace dlouvain::util
