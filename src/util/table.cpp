#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace dlouvain::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::vector<std::size_t> TextTable::column_widths() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

void TextTable::print(std::ostream& os) const {
  const auto widths = column_widths();
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TextTable::print_markdown(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << ' ' << (c < row.size() ? row[c] : std::string{}) << " |";
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace dlouvain::util
