// Minimal command-line flag parser for the bench harnesses and examples.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags are an error (catches typos in sweep scripts).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dlouvain::util {

class Cli {
 public:
  /// Parse argv. Throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  /// Declare a flag with a default, returning its value. Declared flags are
  /// also what `help()` lists and what unknown-flag checking validates.
  std::string get_string(const std::string& name, std::string def,
                         const std::string& help = "");
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help = "");
  double get_double(const std::string& name, double def,
                    const std::string& help = "");
  bool get_flag(const std::string& name, bool def = false,
                const std::string& help = "");

  /// Comma-separated list of integers, e.g. `--ranks 2,4,8`.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         std::vector<std::int64_t> def,
                                         const std::string& help = "");
  /// Comma-separated list of doubles, e.g. `--alpha 0.25,0.75`.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> def,
                                      const std::string& help = "");

  /// Call after all get_* declarations: errors out (returns false and prints
  /// to stderr) if the user passed a flag nobody declared, or passed --help.
  [[nodiscard]] bool finish() const;

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::optional<std::string> raw(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  mutable std::vector<std::string> help_lines_;
  bool help_requested_{false};
};

}  // namespace dlouvain::util
