// ScatterAccumulator: the flat replacement for the per-vertex
// `std::unordered_map<key, V>` scatter pattern in the Louvain local-move
// kernels.
//
// The hash-map version pays an allocation-amortised probe per edge and a
// rehash-sensitive iteration to read the result back. This structure keys by
// a DENSE SLOT (community ids in the serial/shared engines, the
// CommunityLedger's compact community index in the distributed engine) into
// a value array that is never cleared: each slot carries an epoch stamp, and
// a slot is "present" iff its stamp equals the current epoch. reset() just
// bumps the epoch, so per-vertex reuse is O(touched) -- the classic
// generation-stamped scatter/gather kernel (Grappolo/Vite lineage).
//
// Determinism: touched() lists slots in FIRST-TOUCH order, which for an edge
// scan is a deterministic function of the adjacency order alone -- no hash
// seeding, no rehash boundaries. Accumulation order per slot equals the scan
// order, so floating-point sums are bitwise identical to the hash-map
// version's operator[] += sequence.
//
// Each thread owns one accumulator (they are not thread-safe); sweeps reuse
// them across vertices and batches.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dlouvain::util {

template <typename V>
class ScatterAccumulator {
 public:
  /// Start a fresh accumulation over slots [0, capacity). O(1) amortised:
  /// grows the backing arrays on capacity increase and on epoch-counter
  /// wraparound only.
  void reset(std::size_t capacity) {
    if (capacity > values_.size()) {
      values_.resize(capacity, V{});
      stamps_.resize(capacity, 0);
    }
    touched_.clear();
    if (++epoch_ == 0) {  // wrapped: stale stamps could alias epoch 0
      std::fill(stamps_.begin(), stamps_.end(), std::uint32_t{0});
      epoch_ = 1;
    }
  }

  /// values_[slot] += delta, first touch initialising to delta. Slot access
  /// follows the GhostField::of()/at() twin pattern: the hot-path methods
  /// assert in debug builds and trust the caller in Release; at() below is
  /// the bounds-checked twin for cold paths and tests.
  void add(std::int64_t slot, V delta) {
    assert(slot >= 0 && static_cast<std::size_t>(slot) < stamps_.size() &&
           "ScatterAccumulator::add: slot outside reset() capacity");
    const auto s = static_cast<std::size_t>(slot);
    if (stamps_[s] == epoch_) {
      values_[s] += delta;
    } else {
      stamps_[s] = epoch_;
      values_[s] = delta;
      touched_.push_back(slot);
    }
  }

  /// Current value of `slot` (V{} if untouched this epoch). Assert-based
  /// hot-path twin of at().
  [[nodiscard]] V get(std::int64_t slot) const {
    assert(slot >= 0 && static_cast<std::size_t>(slot) < stamps_.size() &&
           "ScatterAccumulator::get: slot outside reset() capacity");
    const auto s = static_cast<std::size_t>(slot);
    return stamps_[s] == epoch_ ? values_[s] : V{};
  }

  /// Bounds-checked twin of get(): throws std::out_of_range instead of
  /// invoking UB when `slot` was never covered by a reset(). For cold paths
  /// and tests; the sweeps stay on get().
  [[nodiscard]] V at(std::int64_t slot) const {
    if (slot < 0 || static_cast<std::size_t>(slot) >= stamps_.size())
      throw std::out_of_range("ScatterAccumulator::at: slot " +
                              std::to_string(slot) + " outside capacity " +
                              std::to_string(stamps_.size()));
    return get(slot);
  }

  /// Slots touched since reset(), in first-touch order.
  [[nodiscard]] const std::vector<std::int64_t>& touched() const noexcept {
    return touched_;
  }

 private:
  std::vector<V> values_;
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_{0};
  std::vector<std::int64_t> touched_;
};

}  // namespace dlouvain::util
