// Fundamental scalar types shared across the dlouvain libraries.
//
// All graph entities use 64-bit signed ids so that intermediate arithmetic
// (prefix sums, differences, sentinel values) is safe without casting, and
// so that graphs beyond 2^31 vertices/edges are representable -- matching
// the billion-edge scale of the paper's evaluation.
#pragma once

#include <cstdint>
#include <limits>

namespace dlouvain {

/// Global vertex identifier. Community identifiers live in the same id
/// space (paper Section IV: "community IDs originate from vertex IDs").
using VertexId = std::int64_t;

/// Global edge (arc) identifier / edge count.
using EdgeId = std::int64_t;

/// Community identifier -- intentionally the same type as VertexId.
using CommunityId = std::int64_t;

/// Edge weight and all modularity arithmetic.
using Weight = double;

/// Process rank inside a communicator (mirrors MPI's `int` rank).
using Rank = int;

/// Sentinel for "no vertex" / "no community".
inline constexpr VertexId kInvalidVertex = -1;
inline constexpr CommunityId kInvalidCommunity = -1;

/// A single weighted, directed arc (u -> v). Undirected graphs store both
/// directions.
struct Edge {
  VertexId src{kInvalidVertex};
  VertexId dst{kInvalidVertex};
  Weight weight{1.0};

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Half of an arc: destination + weight, used inside CSR adjacency.
struct HalfEdge {
  VertexId dst{kInvalidVertex};
  Weight weight{1.0};

  friend bool operator==(const HalfEdge&, const HalfEdge&) = default;
};

}  // namespace dlouvain
