// Per-rank counter/gauge registry -- the low-level half of the observability
// layer (ISSUE 4). The higher-level manifest emission lives in
// core/metrics.{hpp,cpp}; this header sits in util so the comm layer (which
// cannot include core headers) can count into it.
//
// Design: one cache-line-aligned CounterBlock per simulated rank, written
// with PLAIN (non-atomic) increments. That is safe because every counting
// site runs on the owning rank's thread:
//   * sends increment the SENDER's block (Comm::send_bytes runs on the
//     sending rank's thread);
//   * duplicate drops increment the RECEIVER's block (Mailbox::get runs on
//     the receiving rank's thread);
//   * ghost/ledger/checkpoint record counts increment the local rank's block
//     from inside collective calls on that rank's thread.
// Cross-thread reads (MetricsRegistry::total()) happen only after comm::run
// joins the rank threads, which provides the happens-before edge. This keeps
// the hot send path free of atomic RMW contention -- the whole point of
// replacing the old World-wide atomics.
//
// Traffic classification: kMessages/kBytes count ALGORITHM traffic only.
// Checkpoint save/load wrap their bodies in a TrafficReclassScope that moves
// the delta into kCheckpointMessages/kCheckpointBytes, so DistResult::
// messages/bytes mean the same thing with and without checkpointing.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace dlouvain::util {

/// Catalog of named counters. Keep counter_name() in sync.
enum class Counter : int {
  kMessages = 0,          ///< point-to-point messages sent (algorithm traffic)
  kBytes,                 ///< payload bytes sent (algorithm traffic)
  kDuplicatesDropped,     ///< duplicate deliveries absorbed by the dedup layer
  kGhostBytesDense,       ///< ghost-exchange payload bytes shipped dense
  kGhostBytesDelta,       ///< ghost-exchange payload bytes shipped as deltas
  kGhostRecordsShipped,   ///< ghost values carried (dense entries + delta pairs)
  kLedgerRefreshRecords,  ///< community info records pushed by refresh()
  kLedgerDeltaRecords,    ///< community delta records shipped to owners
  kCheckpointMessages,    ///< messages reclassified as checkpoint save/load I/O
  kCheckpointBytes,       ///< payload bytes reclassified as checkpoint I/O
  kCheckpointFileBytes,   ///< bytes persisted to checkpoint files on disk
  kOverlapProbeMessages,  ///< messages reclassified as overlap cost-model probes
  kOverlapProbeBytes,     ///< payload bytes reclassified as overlap probes
  kArqNacks,              ///< rung-1 retransmit requests issued by receivers
  kArqRetransmits,        ///< payload copies re-enqueued from the retained store
  kArqBackoffMs,          ///< summed ARQ backoff milliseconds scheduled
  kArqEscalations,        ///< messages whose link retry budget was exhausted
  kHeartbeatExtensions,   ///< receive deadlines extended on slow-not-dead verdicts
  kRebalanceMessages,     ///< messages reclassified as load-rebalancer sampling
  kRebalanceBytes,        ///< payload bytes reclassified as rebalancer sampling
  kCount
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);

/// Manifest/catalog name of a counter (dotted namespace per subsystem).
[[nodiscard]] constexpr const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kMessages: return "comm.messages";
    case Counter::kBytes: return "comm.bytes";
    case Counter::kDuplicatesDropped: return "comm.duplicates_dropped";
    case Counter::kGhostBytesDense: return "ghost.bytes_dense";
    case Counter::kGhostBytesDelta: return "ghost.bytes_delta";
    case Counter::kGhostRecordsShipped: return "ghost.records_shipped";
    case Counter::kLedgerRefreshRecords: return "ledger.refresh_records";
    case Counter::kLedgerDeltaRecords: return "ledger.delta_records";
    case Counter::kCheckpointMessages: return "checkpoint.messages";
    case Counter::kCheckpointBytes: return "checkpoint.bytes";
    case Counter::kCheckpointFileBytes: return "checkpoint.file_bytes";
    case Counter::kOverlapProbeMessages: return "overlap.probe_messages";
    case Counter::kOverlapProbeBytes: return "overlap.probe_bytes";
    case Counter::kArqNacks: return "arq.nacks";
    case Counter::kArqRetransmits: return "arq.retransmits";
    case Counter::kArqBackoffMs: return "arq.backoff_ms";
    case Counter::kArqEscalations: return "arq.escalations";
    case Counter::kHeartbeatExtensions: return "heartbeat.slow_extensions";
    case Counter::kRebalanceMessages: return "rebalance.messages";
    case Counter::kRebalanceBytes: return "rebalance.bytes";
    case Counter::kCount: break;
  }
  return "unknown";
}

/// One rank's counters. Single-writer: only the owning rank's thread may
/// mutate it (see the file comment for why each site satisfies that).
/// Cache-line aligned so neighbouring ranks never false-share.
struct alignas(64) CounterBlock {
  std::array<std::int64_t, kNumCounters> values{};
  /// Gauge: summed seconds the rank's compute pool threads spent busy inside
  /// the local-move scan (overlapping wall time; see TimeBreakdown).
  double busy_seconds{0};

  [[nodiscard]] std::int64_t& operator[](Counter c) {
    return values[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::int64_t operator[](Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }
};

/// Plain-value sum of counter blocks (per rank, or all ranks, or an
/// allreduced global total). Not aligned -- it is a result, not a counter.
struct MetricsSnapshot {
  std::array<std::int64_t, kNumCounters> values{};
  double busy_seconds{0};

  [[nodiscard]] std::int64_t operator[](Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }
};

/// The per-run registry: one CounterBlock per rank. Created by the caller of
/// comm::run (one per attempt, so failed-attempt traffic stays attributable)
/// or by World itself when the caller does not care.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int num_ranks)
      : blocks_(static_cast<std::size_t>(num_ranks > 0 ? num_ranks : 0)) {
    if (num_ranks <= 0)
      throw std::invalid_argument("MetricsRegistry: rank count must be positive");
  }

  [[nodiscard]] int num_ranks() const noexcept { return static_cast<int>(blocks_.size()); }

  [[nodiscard]] CounterBlock& rank(int r) { return blocks_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] const CounterBlock& rank(int r) const {
    return blocks_[static_cast<std::size_t>(r)];
  }

  /// Sum over all ranks. Only meaningful when the rank threads are quiescent
  /// (after comm::run returned or threw -- it joins either way).
  [[nodiscard]] MetricsSnapshot total() const {
    MetricsSnapshot sum;
    for (const auto& block : blocks_) {
      for (std::size_t i = 0; i < kNumCounters; ++i) sum.values[i] += block.values[i];
      sum.busy_seconds += block.busy_seconds;
    }
    return sum;
  }

 private:
  std::vector<CounterBlock> blocks_;
};

/// RAII reclassification of one rank's traffic: whatever kMessages/kBytes
/// grow by during the scope's lifetime is moved into (to_messages, to_bytes)
/// at scope exit. Valid because the block is single-writer: the scope lives
/// on the owning rank's thread. Nesting is fine -- an inner scope's move is
/// invisible to the outer delta.
class TrafficReclassScope {
 public:
  TrafficReclassScope(CounterBlock& block, Counter to_messages, Counter to_bytes)
      : block_(block),
        to_messages_(to_messages),
        to_bytes_(to_bytes),
        messages_before_(block[Counter::kMessages]),
        bytes_before_(block[Counter::kBytes]) {}

  ~TrafficReclassScope() {
    const std::int64_t dm = block_[Counter::kMessages] - messages_before_;
    const std::int64_t db = block_[Counter::kBytes] - bytes_before_;
    block_[Counter::kMessages] -= dm;
    block_[Counter::kBytes] -= db;
    block_[to_messages_] += dm;
    block_[to_bytes_] += db;
  }

  TrafficReclassScope(const TrafficReclassScope&) = delete;
  TrafficReclassScope& operator=(const TrafficReclassScope&) = delete;

 private:
  CounterBlock& block_;
  Counter to_messages_;
  Counter to_bytes_;
  std::int64_t messages_before_;
  std::int64_t bytes_before_;
};

}  // namespace dlouvain::util
