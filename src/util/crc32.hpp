// CRC32 (IEEE 802.3 polynomial, reflected) -- the integrity check shared by
// the message-passing runtime (per-message payload checksums), the .dlel
// binary graph format's footer, and the checkpoint files. Table-driven,
// constexpr-initialised, no dependencies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace dlouvain::util {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// Incremental CRC32. Feed bytes in any chunking; `value()` is the standard
/// (final-xor applied) checksum of everything fed so far.
class Crc32 {
 public:
  void update(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < size; ++i)
      c = detail::kCrc32Table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    state_ = c;
  }

  void update(std::span<const std::byte> data) noexcept {
    update(data.data(), data.size());
  }

  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_{0xffffffffu};
};

/// One-shot CRC32 of a byte span.
inline std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

inline std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  Crc32 crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace dlouvain::util
