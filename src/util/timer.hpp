// Wall-clock timing utilities used by the telemetry module and benches.
#pragma once

#include <chrono>

namespace dlouvain::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop windows; used for the
/// Section V-A style compute/communication breakdowns.
class AccumTimer {
 public:
  void start() noexcept { window_.reset(); running_ = true; }

  void stop() noexcept {
    if (running_) {
      total_ += window_.seconds();
      ++count_;
      running_ = false;
    }
  }

  [[nodiscard]] double seconds() const noexcept { return total_; }
  [[nodiscard]] long count() const noexcept { return count_; }
  void clear() noexcept { total_ = 0; count_ = 0; running_ = false; }

 private:
  WallTimer window_;
  double total_{0};
  long count_{0};
  bool running_{false};
};

/// RAII start/stop for an AccumTimer.
class ScopedAccum {
 public:
  explicit ScopedAccum(AccumTimer& timer) noexcept : timer_(timer) { timer_.start(); }
  ~ScopedAccum() { timer_.stop(); }
  ScopedAccum(const ScopedAccum&) = delete;
  ScopedAccum& operator=(const ScopedAccum&) = delete;

 private:
  AccumTimer& timer_;
};

}  // namespace dlouvain::util
