// Small numeric-summary helpers for benches and telemetry output.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace dlouvain::util {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_{0};
  double mean_{0};
  double m2_{0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Exact percentile of a sample (copies + sorts; fine for bench-sized data).
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace dlouvain::util
