// Per-rank thread pool and deterministic parallel primitives -- the
// shared-memory half of the hybrid MPI+OpenMP-style execution model (the
// paper's implementation is explicitly MPI+OpenMP; here each rank-thread
// owns a small pool of compute threads for its local hot loops).
//
// Determinism contract: every primitive in this header produces BITWISE
// IDENTICAL results at any thread count, including 1.
//  * parallel_for uses static contiguous chunking, so it is deterministic
//    whenever the body writes only to disjoint, index-addressed slots.
//  * parallel_reduce partitions the index range into a FIXED number of
//    chunks independent of the thread count and combines the chunk partials
//    with a fixed pairwise tree, so floating-point sums do not depend on how
//    many threads computed them.
//  * stable_sort_parallel is semantically std::stable_sort: fixed chunk
//    boundaries, stable chunk sorts, and a fixed pairwise tree of stable
//    merges reproduce the exact stable order at any thread count.
// This is what lets the distributed Louvain driver promise the same
// community vector and the same modularity bits for --threads 1/2/4.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace dlouvain::util {

/// A fixed-size pool of worker threads with fork-join semantics. The calling
/// thread participates as logical thread 0, so a pool of T threads spawns
/// only T-1 workers and a pool of 1 spawns none (pure serial, no sync cost).
///
/// Also keeps per-thread busy time (seconds spent inside jobs), which the
/// telemetry layer reports as TimeBreakdown::compute_busy so the compute /
/// communication attribution stays honest under threading.
class ThreadPool {
 public:
  /// `num_threads` <= 0 picks the hardware concurrency.
  explicit ThreadPool(int num_threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const noexcept {
    return static_cast<int>(busy_.size());
  }

  /// Run job(thread_id) once on every pool thread (the caller runs id 0) and
  /// block until all are done. If any invocation throws, the first exception
  /// is rethrown on the caller after the join.
  void run(const std::function<void(int)>& job);

  /// Sum of per-thread seconds spent inside jobs since the last reset.
  [[nodiscard]] double busy_seconds() const;
  void reset_busy();

 private:
  void worker_loop(int tid);

  std::vector<std::thread> workers_;
  std::vector<double> busy_;  ///< by thread id, guarded by mutex_ at edges

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_{nullptr};
  std::uint64_t epoch_{0};
  int remaining_{0};
  bool stop_{false};
  std::exception_ptr first_error_;
};

/// Number of fixed reduction chunks. Constant by design: the chunking (and
/// therefore every partial-sum boundary) must not depend on the thread
/// count, or float sums would change with it.
inline constexpr std::int64_t kReduceChunks = 64;

/// Fixed-shape pairwise tree sum. Deterministic for a given input array.
inline double tree_reduce(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> buf(values.begin(), values.end());
  std::size_t len = buf.size();
  while (len > 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) buf[i] = buf[2 * i] + buf[2 * i + 1];
    if (len % 2 != 0) {
      buf[half] = buf[len - 1];
      len = half + 1;
    } else {
      len = half;
    }
  }
  return buf[0];
}

/// Bounds of fixed chunk `c` of `k` chunks over [0, n).
inline std::pair<std::int64_t, std::int64_t> fixed_chunk(std::int64_t n,
                                                         std::int64_t c,
                                                         std::int64_t k) {
  const std::int64_t q = n / k;
  const std::int64_t r = n % k;
  const std::int64_t begin = c * q + std::min(c, r);
  const std::int64_t end = begin + q + (c < r ? 1 : 0);
  return {begin, end};
}

/// Static-chunked parallel loop over [0, n): each pool thread receives at
/// most one contiguous chunk [begin, end) and calls body(tid, begin, end).
/// With a null pool (or one thread, or an empty range) the body runs inline
/// on the caller.
template <typename Body>
void parallel_for(ThreadPool* pool, std::int64_t n, Body&& body) {
  if (n <= 0) return;
  const int threads = pool == nullptr ? 1 : pool->num_threads();
  if (threads <= 1 || n == 1) {
    body(0, std::int64_t{0}, n);
    return;
  }
  const std::int64_t chunk = (n + threads - 1) / threads;
  pool->run([&](int tid) {
    const std::int64_t begin = static_cast<std::int64_t>(tid) * chunk;
    const std::int64_t end = std::min(n, begin + chunk);
    if (begin < end) body(tid, begin, end);
  });
}

/// Deterministic parallel sum: evaluate partial(begin, end) over the
/// kReduceChunks fixed chunks of [0, n) (in parallel, chunks round-robined
/// over threads) and tree-reduce the chunk partials in fixed order. The
/// result is bitwise identical at any thread count.
template <typename Partial>
double parallel_reduce(ThreadPool* pool, std::int64_t n, Partial&& partial) {
  if (n <= 0) return 0.0;
  double partials[kReduceChunks] = {};
  const int threads = pool == nullptr ? 1 : pool->num_threads();
  const auto chunk_worker = [&](int tid) {
    for (std::int64_t c = tid; c < kReduceChunks; c += threads) {
      const auto [begin, end] = fixed_chunk(n, c, kReduceChunks);
      if (begin < end) partials[c] = partial(begin, end);
    }
  };
  if (threads <= 1) {
    chunk_worker(0);
  } else {
    pool->run(chunk_worker);
  }
  return tree_reduce(std::span<const double>(partials, kReduceChunks));
}

/// Parallel stable sort with std::stable_sort semantics: the output is the
/// unique stable order of `items` under `comp`, independent of the thread
/// count. Fixed chunk boundaries are stably sorted (in parallel) and then
/// merged pairwise level by level; std::merge keeps left-run elements first
/// on ties, which composes to global stability.
template <typename T, typename Comp>
void stable_sort_parallel(ThreadPool* pool, std::vector<T>& items, Comp comp) {
  const auto n = static_cast<std::int64_t>(items.size());
  const int threads = pool == nullptr ? 1 : pool->num_threads();
  if (threads <= 1 || n < 2 * kReduceChunks) {
    std::stable_sort(items.begin(), items.end(), comp);
    return;
  }

  // Run boundaries: the fixed reduction chunking, so the merge tree shape
  // does not depend on the thread count (only on n).
  std::vector<std::int64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(kReduceChunks) + 1);
  bounds.push_back(0);
  for (std::int64_t c = 0; c < kReduceChunks; ++c)
    bounds.push_back(fixed_chunk(n, c, kReduceChunks).second);

  pool->run([&](int tid) {
    for (std::int64_t c = tid; c < kReduceChunks; c += threads) {
      std::stable_sort(items.begin() + bounds[static_cast<std::size_t>(c)],
                       items.begin() + bounds[static_cast<std::size_t>(c) + 1], comp);
    }
  });

  std::vector<T> buffer(items.size());
  T* src = items.data();
  T* dst = buffer.data();
  while (bounds.size() > 2) {
    const auto pairs = static_cast<std::int64_t>((bounds.size() - 1) / 2);
    pool->run([&](int tid) {
      for (std::int64_t i = tid; i < pairs; i += threads) {
        const auto lo = bounds[static_cast<std::size_t>(2 * i)];
        const auto mid = bounds[static_cast<std::size_t>(2 * i + 1)];
        const auto hi = bounds[static_cast<std::size_t>(2 * i + 2)];
        std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, comp);
      }
      if (tid == 0 && (bounds.size() - 1) % 2 != 0) {
        const auto lo = bounds[bounds.size() - 2];
        std::copy(src + lo, src + n, dst + lo);
      }
    });
    std::vector<std::int64_t> next;
    next.reserve(bounds.size() / 2 + 2);
    for (std::size_t i = 0; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if (next.back() != n) next.push_back(n);
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src != items.data())
    std::copy(src, src + n, items.data());
}

}  // namespace dlouvain::util
