// JSON emission for the observability layer (ISSUE 4): the machine-readable
// run manifest consumed by tools/check_bench_regression.py and the bench
// harness instead of re-parsing stdout.
//
// Layering: the raw registry/trace primitives live in util/ (so the comm
// layer can count); THIS header owns everything that knows about DistResult
// and the manifest schema. The full `Result::to_json()` in dlouvain.cpp is
// built from these helpers.
//
// Manifest schema (stable, versioned): see docs/OBSERVABILITY.md. The
// top-level "schema" key is "dlouvain-run-manifest/5"; v2 added the always-
// present "updates" section (streaming-session telemetry), v3 the
// "recovery.ladder" section (graduated recovery telemetry: retransmits,
// verdicts, shrinks) and the arq.*/heartbeat.* counters, v4 the "overlap"
// object on distributed manifests (the --overlap=auto cost-model decision
// and its inputs; core/overlap_model.hpp), v5 the "rebalance" object plus
// per-phase load_lambda/time_lambda/rebalance records in phases_detail and
// the rebalance.* counters (the phase-boundary load re-balancer,
// core/rebalance.hpp). v1-v4 documents remain valid inputs for the tooling
// (tools/check_bench_regression.py, tools/validate_trace.py accept all
// versions).
#pragma once

#include <string>
#include <string_view>

#include "core/telemetry.hpp"
#include "util/metrics.hpp"

namespace dlouvain::core {

inline constexpr std::string_view kManifestSchema = "dlouvain-run-manifest/5";

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Round-trippable double formatting (%.17g); NaN/inf become null, which is
/// what strict JSON parsers require.
std::string json_number(double v);

/// Appends the named-counter object: every catalog entry from
/// util/metrics.hpp plus the pool busy-seconds gauge. `{"comm.messages":N,
/// ..., "pool.busy_seconds":X}`.
void append_counters_json(std::string& out, const util::MetricsSnapshot& counters);

/// Appends a TimeBreakdown object (the Section V-A buckets).
void append_breakdown_json(std::string& out, const TimeBreakdown& b);

/// Appends the manifest-v2 "updates" object (streaming-session telemetry;
/// all zeros for a one-shot run).
void append_updates_json(std::string& out, const UpdateTelemetry& u);

/// Appends the manifest-v4 "overlap" object: configured mode, settled
/// decision, and the cost-model inputs (core/overlap_model.hpp).
void append_overlap_json(std::string& out, const OverlapTelemetry& o);

/// Appends the manifest-v5 "rebalance" object: the knob, how many phase
/// boundaries were screened / engaged / declined, the migration totals, and
/// the worst lambdas seen (core/rebalance.hpp; per-boundary detail rides
/// phases_detail).
void append_rebalance_json(std::string& out,
                           const DistResult::RebalanceTelemetry& r);

/// Telemetry of the long-lived clustering service (dlouvaind; see
/// docs/SERVICE.md). One struct serves both emission sites: a per-response
/// view (job_id / cache_hit / queue_depth at admission, plus the daemon
/// totals at that moment) appended to each run manifest as an OPTIONAL
/// "service" section, and the daemon's final drain manifest
/// ("dlouvain-service-manifest/1"), where job_id stays -1. The run-manifest
/// schema is unchanged by the section (dlouvain-run-manifest/5 as of the re-balancer) -- the section is additive and
/// the tooling accepts manifests with or without it.
struct ServiceTelemetry {
  std::int64_t job_id{-1};       ///< admission id of this response's job; -1 daemon-wide
  bool cache_hit{false};         ///< this response was served from the result cache
  std::int64_t queue_depth{0};   ///< jobs queued (at admission / at emission)
  std::int64_t jobs_served{0};   ///< responses produced (computed + cached)
  std::int64_t cache_hits{0};
  std::int64_t cache_misses{0};
  std::int64_t rejected{0};      ///< admissions refused (full queue, bad plan, limits)
  std::int64_t sessions_open{0}; ///< named streaming sessions currently resident
  std::string drain{"none"};     ///< none | clean | forced (docs/SERVICE.md)
};

/// Appends the "service" object for either emission site of
/// ServiceTelemetry.
void append_service_json(std::string& out, const ServiceTelemetry& s);

/// Full manifest for one distributed run: scalars, restored counters,
/// counter catalog, breakdown, per-phase detail. Identical on every rank
/// (DistResult is collective-produced).
std::string dist_result_to_json(const DistResult& r);

}  // namespace dlouvain::core
