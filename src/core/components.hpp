// Distributed connected components over the comm substrate.
//
// A second distributed graph algorithm on the same machinery as the Louvain
// code (ghost fields, all-reduce convergence votes): min-label propagation,
// where every vertex repeatedly adopts the smallest component label in its
// closed neighbourhood until a global fixed point. Used by the CLI tool and
// by the generator validation tests (e.g. SSCA#2's chain bridges must leave
// exactly one component); also a readable template for porting other
// label-propagation algorithms onto the substrate.
#pragma once

#include "comm/comm.hpp"
#include "graph/dist_graph.hpp"
#include "util/types.hpp"

namespace dlouvain::core {

struct DistComponentsResult {
  /// Component label per OWNED vertex (local index): the smallest vertex id
  /// in the component.
  std::vector<VertexId> component;
  VertexId count{0};  ///< global component count
  int rounds{0};      ///< propagation rounds to the fixed point
};

/// Collective. Label space is vertex-id space, so results are comparable
/// with graph::connected_components on the same graph.
DistComponentsResult dist_connected_components(comm::Comm& comm,
                                               const graph::DistGraph& g);

}  // namespace dlouvain::core
