// Per-iteration ghost field exchange (paper Algorithm 3 lines 4-5).
//
// A GhostField<T> holds one T per ghost vertex of a DistGraph and knows how
// to refresh all of them from their owners in one collective step. The
// structural lists from DistGraph's Algorithm-4 setup make this cheap:
// mirrors()[r] on this rank and ghosts_by_owner()[me] on rank r are the SAME
// list in the same order, so each update message is just the T values
// aligned with that list -- no (vertex, value) pairs needed.
//
// Used with T = CommunityId for the Louvain community push, and with
// T = std::int64_t for ghost colors in the distance-1 coloring.
#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "comm/comm.hpp"
#include "graph/dist_graph.hpp"
#include "util/types.hpp"

namespace dlouvain::core {

template <typename T>
class GhostField {
 public:
  /// All ghost slots start at `fill`.
  GhostField(const graph::DistGraph& g, const T& fill)
      : graph_(&g), values_(g.ghosts().size(), fill) {
    init_offsets();
  }

  /// Identity start: every ghost slot holds the ghost's own global id --
  /// the "each vertex in its own community" phase-start state.
  static GhostField identity(const graph::DistGraph& g)
    requires std::is_convertible_v<VertexId, T>
  {
    GhostField field(g, T{});
    std::copy(g.ghosts().begin(), g.ghosts().end(), field.values_.begin());
    return field;
  }

  /// Value for ghost vertex gv (must be a ghost of this rank).
  [[nodiscard]] const T& of(VertexId gv) const {
    const auto slot = graph_->ghost_slot(gv);
    if (slot < 0) throw std::out_of_range("GhostField: not a ghost vertex");
    return values_[static_cast<std::size_t>(slot)];
  }

  /// Collective: push the current value of every mirrored owned vertex to
  /// the ranks ghosting it, and absorb their pushes into our slots. `owned`
  /// maps local vertex index -> value. With `use_neighbor` (default) the
  /// exchange runs over the sparse neighbourhood topology (the paper's
  /// planned MPI-3 neighbourhood-collective upgrade, Section VI); without
  /// it, a dense all-to-all -- same payloads, O(p^2) messages (kept for the
  /// ablation bench).
  void exchange(comm::Comm& comm, std::span<const T> owned, bool use_neighbor = true) {
    const auto payload_for = [&](Rank r) {
      const auto& mirror_list = graph_->mirrors()[static_cast<std::size_t>(r)];
      std::vector<T> payload;
      payload.reserve(mirror_list.size());
      for (const VertexId gv : mirror_list)
        payload.push_back(owned[static_cast<std::size_t>(graph_->to_local(gv))]);
      return payload;
    };
    const auto absorb = [&](Rank r, const std::vector<T>& received) {
      if (received.size() != graph_->ghosts_by_owner()[static_cast<std::size_t>(r)].size())
        throw std::logic_error("GhostField: update length mismatch");
      std::copy(received.begin(), received.end(),
                values_.begin() +
                    static_cast<std::ptrdiff_t>(offsets_[static_cast<std::size_t>(r)]));
    };

    if (use_neighbor) {
      const auto& neighbors = graph_->neighbor_ranks();
      std::vector<std::vector<T>> outbox;
      outbox.reserve(neighbors.size());
      for (const Rank r : neighbors) outbox.push_back(payload_for(r));
      const auto inbox = comm.neighbor_alltoallv<T>(neighbors, std::move(outbox));
      for (std::size_t i = 0; i < neighbors.size(); ++i) absorb(neighbors[i], inbox[i]);
      return;
    }

    const int p = comm.size();
    std::vector<std::vector<T>> outbox(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      if (r != comm.rank())
        outbox[static_cast<std::size_t>(r)] = payload_for(static_cast<Rank>(r));
    }
    const auto inbox = comm.alltoallv<T>(std::move(outbox));
    for (int r = 0; r < p; ++r) {
      if (r != comm.rank()) absorb(static_cast<Rank>(r), inbox[static_cast<std::size_t>(r)]);
    }
  }

  /// Overload for vector storage.
  void exchange(comm::Comm& comm, const std::vector<T>& owned, bool use_neighbor = true) {
    exchange(comm, std::span<const T>(owned), use_neighbor);
  }

  /// All ghost values, indexed by ghost slot (aligned with
  /// DistGraph::ghosts()).
  [[nodiscard]] const std::vector<T>& values() const { return values_; }

 private:
  void init_offsets() {
    offsets_.resize(graph_->ghosts_by_owner().size() + 1, 0);
    for (std::size_t r = 0; r < graph_->ghosts_by_owner().size(); ++r)
      offsets_[r + 1] = offsets_[r] + graph_->ghosts_by_owner()[r].size();
  }

  const graph::DistGraph* graph_;
  std::vector<T> values_;           ///< by ghost slot
  std::vector<std::size_t> offsets_;  ///< slot offset per owner rank
};

/// The Louvain community field: ghosts start in their own community.
class GhostCommunities : public GhostField<CommunityId> {
 public:
  explicit GhostCommunities(const graph::DistGraph& g)
      : GhostField<CommunityId>(GhostField<CommunityId>::identity(g)) {}
};

}  // namespace dlouvain::core
