// Per-iteration ghost field exchange (paper Algorithm 3 lines 4-5).
//
// A GhostField<T> holds one T per ghost vertex of a DistGraph and knows how
// to refresh all of them from their owners in one collective step. The
// structural lists from DistGraph's Algorithm-4 setup make this cheap:
// mirrors()[r] on this rank and ghosts_by_owner()[me] on rank r are the SAME
// list in the same order, so an update message needs no (vertex, value)
// pairs -- either the full value array aligned with that list (dense), or,
// once most vertices have stopped moving, just the changed entries as
// (list index, value) pairs (delta). Every message carries a one-element
// header tagging its format, so the sender decides per destination and per
// round; see core/exchange_mode.hpp. Results are identical in every mode.
//
// The field also records which of its slots changed in the last exchange
// (last_changes(), with the previous value) -- the hook the distributed
// engine's incremental community-cache bookkeeping hangs off.
//
// Used with T = CommunityId for the Louvain community push, and with
// T = std::int64_t for ghost colors in the distance-1 coloring.
#pragma once

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "comm/comm.hpp"
#include "core/exchange_mode.hpp"
#include "graph/dist_graph.hpp"
#include "util/types.hpp"

namespace dlouvain::core {

/// Knobs for one GhostField::exchange call (see DistConfig for the run-level
/// defaults and the CLI spellings).
struct GhostExchangeConfig {
  /// Sparse neighbourhood collective (default) vs dense all-to-all; the
  /// paper's planned MPI-3 upgrade vs its baseline. Same payloads either way.
  bool use_neighbor{true};
  GhostExchangeMode mode{GhostExchangeMode::kDense};
  /// kAuto picks delta for a destination when
  ///   2 * changed_entries <= crossover * mirror_list_size
  /// (a delta entry costs two wire elements where a dense one costs one).
  double delta_crossover{0.5};
  /// ISSUE 5: leave the collective in flight after exchange_begin() so the
  /// caller can compute while messages travel; exchange_finish() completes.
  /// Off = exchange_begin() blocks in place (the seed's synchronous order).
  /// Identical results either way -- only the wait's position moves.
  bool overlap{false};
};

/// Wait/hidden timing of the last completed exchange (overlap telemetry).
struct GhostExchangeStats {
  double wait_seconds{0};    ///< blocked in exchange_finish (or _begin, off)
  double hidden_seconds{0};  ///< exchange latency that overlapped compute
};

template <typename T>
class GhostField {
 public:
  /// A slot the last exchange changed, with the value it replaced.
  struct SlotChange {
    std::int64_t slot;
    T old_value;
  };

  /// All ghost slots start at `fill`; delta senders assume the receiver
  /// holds `fill` too, so the first exchange already works in any mode.
  GhostField(const graph::DistGraph& g, const T& fill)
      : graph_(&g),
        values_(g.ghosts().size(), fill),
        prev_owned_(static_cast<std::size_t>(g.local_count()), fill) {
    init_offsets();
  }

  /// Identity start: every ghost slot holds the ghost's own global id --
  /// the "each vertex in its own community" phase-start state.
  static GhostField identity(const graph::DistGraph& g)
    requires std::is_convertible_v<VertexId, T>
  {
    GhostField field(g, T{});
    std::copy(g.ghosts().begin(), g.ghosts().end(), field.values_.begin());
    for (VertexId lv = 0; lv < g.local_count(); ++lv)
      field.prev_owned_[static_cast<std::size_t>(lv)] = static_cast<T>(g.to_global(lv));
    return field;
  }

  /// Value for ghost vertex gv. Hot path: debug-asserted, no checks in
  /// release builds -- callers that cannot guarantee gv is a ghost use at().
  [[nodiscard]] const T& of(VertexId gv) const {
    const auto slot = graph_->ghost_slot(gv);
    assert(slot >= 0 && "GhostField::of: not a ghost vertex");
    return values_[static_cast<std::size_t>(slot)];
  }

  /// Checked twin of of(): throws std::out_of_range when gv is not a ghost
  /// of this rank. For protocol-boundary callers and tests.
  [[nodiscard]] const T& at(VertexId gv) const {
    const auto slot = graph_->ghost_slot(gv);
    if (slot < 0) throw std::out_of_range("GhostField: not a ghost vertex");
    return values_[static_cast<std::size_t>(slot)];
  }

  /// Collective: push the current value of every mirrored owned vertex to
  /// the ranks ghosting it, and absorb their pushes into our slots. `owned`
  /// maps local vertex index -> value.
  void exchange(comm::Comm& comm, std::span<const T> owned,
                const GhostExchangeConfig& cfg) {
    exchange_begin(comm, owned, cfg);
    exchange_finish(comm);
  }

  /// First half of exchange(): deposit every outgoing update and post the
  /// receives. With cfg.overlap the collective stays in flight (the caller
  /// computes, then calls exchange_finish()); without it, block right here
  /// so the order of waits matches the seed's synchronous schedule.
  void exchange_begin(comm::Comm& comm, std::span<const T> owned,
                      const GhostExchangeConfig& cfg) {
    if (pending_.has_value())
      throw std::logic_error("GhostField: exchange already in flight");
    changes_.clear();

    const auto build_payload = [&](Rank r) {
      const auto& mirror_list = graph_->mirrors()[static_cast<std::size_t>(r)];
      std::vector<T> payload;
      if (cfg.mode != GhostExchangeMode::kDense) {
        if constexpr (std::is_integral_v<T>) {
          std::size_t changed = 0;
          for (const VertexId gv : mirror_list) {
            const auto lv = static_cast<std::size_t>(graph_->to_local(gv));
            if (owned[lv] != prev_owned_[lv]) ++changed;
          }
          const bool use_delta =
              cfg.mode == GhostExchangeMode::kDelta ||
              2.0 * static_cast<double>(changed) <=
                  cfg.delta_crossover * static_cast<double>(mirror_list.size());
          if (use_delta) {
            payload.reserve(1 + 2 * changed);
            payload.push_back(static_cast<T>(1));
            for (std::size_t i = 0; i < mirror_list.size(); ++i) {
              const auto lv = static_cast<std::size_t>(graph_->to_local(mirror_list[i]));
              if (owned[lv] != prev_owned_[lv]) {
                payload.push_back(static_cast<T>(i));
                payload.push_back(owned[lv]);
              }
            }
            return payload;
          }
        }
      }
      payload.reserve(1 + mirror_list.size());
      payload.push_back(static_cast<T>(0));
      for (const VertexId gv : mirror_list)
        payload.push_back(owned[static_cast<std::size_t>(graph_->to_local(gv))]);
      return payload;
    };

    // Wire-mode accounting (ISSUE 4): bytes split by format so the manifest
    // shows what delta mode actually saves, records = ghost values carried.
    // Counts into this rank's block on this rank's thread (single-writer).
    util::CounterBlock& ctr = comm.counters();
    const auto count_payload = [&ctr](const std::vector<T>& payload) {
      const auto bytes = static_cast<std::int64_t>(payload.size() * sizeof(T));
      if (!payload.empty() && payload.front() == static_cast<T>(1)) {
        ctr[util::Counter::kGhostBytesDelta] += bytes;
        ctr[util::Counter::kGhostRecordsShipped] +=
            static_cast<std::int64_t>((payload.size() - 1) / 2);
      } else {
        ctr[util::Counter::kGhostBytesDense] += bytes;
        ctr[util::Counter::kGhostRecordsShipped] +=
            static_cast<std::int64_t>(payload.empty() ? 0 : payload.size() - 1);
      }
    };

    if (cfg.use_neighbor) {
      const auto& neighbors = graph_->neighbor_ranks();
      std::vector<std::vector<T>> outbox;
      outbox.reserve(neighbors.size());
      for (const Rank r : neighbors) {
        outbox.push_back(build_payload(r));
        count_payload(outbox.back());
      }
      remember_sent(owned);
      pending_.emplace(comm.ineighbor_alltoallv<T>(neighbors, std::move(outbox)));
      pending_neighbor_ = true;
    } else {
      const int p = comm.size();
      std::vector<std::vector<T>> outbox(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        if (r == comm.rank()) continue;
        outbox[static_cast<std::size_t>(r)] = build_payload(static_cast<Rank>(r));
        count_payload(outbox[static_cast<std::size_t>(r)]);
      }
      remember_sent(owned);
      pending_.emplace(comm.ialltoallv<T>(std::move(outbox)));
      pending_neighbor_ = false;
    }
    if (!cfg.overlap) pending_->wait();
  }

  /// Second half of exchange(): complete the in-flight collective (peer
  /// buffers drain in arrival order) and absorb every update in FIXED peer
  /// order -- so changes_ ordering, and everything downstream of it, is
  /// independent of message timing. Records the wait/hidden stats.
  void exchange_finish(comm::Comm& comm) {
    if (!pending_.has_value())
      throw std::logic_error("GhostField: no exchange in flight");
    pending_->wait();
    stats_.wait_seconds = pending_->wait_seconds();
    stats_.hidden_seconds = pending_->hidden_seconds();
    const auto inbox = pending_->take();
    if (pending_neighbor_) {
      const auto& neighbors = graph_->neighbor_ranks();
      for (std::size_t i = 0; i < neighbors.size(); ++i)
        absorb_from(neighbors[i], inbox[i]);
    } else {
      for (std::size_t r = 0; r < inbox.size(); ++r) {
        if (static_cast<Rank>(r) != comm.rank())
          absorb_from(static_cast<Rank>(r), inbox[r]);
      }
    }
    pending_.reset();
  }

  /// True between exchange_begin() and exchange_finish().
  [[nodiscard]] bool exchange_in_flight() const noexcept { return pending_.has_value(); }

  /// Timing of the last completed exchange (zeros before the first one).
  [[nodiscard]] const GhostExchangeStats& last_exchange_stats() const noexcept {
    return stats_;
  }

  /// Legacy dense-mode entry points (sparse/dense topology knob only).
  void exchange(comm::Comm& comm, std::span<const T> owned, bool use_neighbor = true) {
    GhostExchangeConfig cfg;
    cfg.use_neighbor = use_neighbor;
    exchange(comm, owned, cfg);
  }
  void exchange(comm::Comm& comm, const std::vector<T>& owned, bool use_neighbor = true) {
    exchange(comm, std::span<const T>(owned), use_neighbor);
  }
  void exchange(comm::Comm& comm, const std::vector<T>& owned,
                const GhostExchangeConfig& cfg) {
    exchange(comm, std::span<const T>(owned), cfg);
  }

  /// Slots the last exchange() call overwrote with a DIFFERENT value, with
  /// the value each held before (in ascending slot order per source rank).
  [[nodiscard]] const std::vector<SlotChange>& last_changes() const noexcept {
    return changes_;
  }

  /// All ghost values, indexed by ghost slot (aligned with
  /// DistGraph::ghosts()).
  [[nodiscard]] const std::vector<T>& values() const { return values_; }

 private:
  void store_slot(std::size_t slot, const T& value) {
    if (values_[slot] != value) {
      changes_.push_back(SlotChange{static_cast<std::int64_t>(slot), values_[slot]});
      values_[slot] = value;
    }
  }

  void absorb_from(Rank r, const std::vector<T>& received) {
    const auto base = offsets_[static_cast<std::size_t>(r)];
    const auto count = graph_->ghosts_by_owner()[static_cast<std::size_t>(r)].size();
    if (count == 0 && received.empty()) return;
    if (received.empty())
      throw std::logic_error("GhostField: missing update header");
    if (received.front() == static_cast<T>(0)) {
      if (received.size() != count + 1)
        throw std::logic_error("GhostField: dense update length mismatch");
      for (std::size_t i = 0; i < count; ++i) store_slot(base + i, received[i + 1]);
      return;
    }
    if constexpr (std::is_integral_v<T>) {
      if (received.front() != static_cast<T>(1) || received.size() % 2 != 1)
        throw std::logic_error("GhostField: malformed delta update");
      for (std::size_t i = 1; i + 1 < received.size(); i += 2) {
        const auto idx = static_cast<std::size_t>(received[i]);
        if (idx >= count)
          throw std::logic_error("GhostField: delta index out of range");
        store_slot(base + idx, received[i + 1]);
      }
      return;
    }
    throw std::logic_error("GhostField: delta update for non-integral field");
  }

  void init_offsets() {
    offsets_.resize(graph_->ghosts_by_owner().size() + 1, 0);
    for (std::size_t r = 0; r < graph_->ghosts_by_owner().size(); ++r)
      offsets_[r + 1] = offsets_[r] + graph_->ghosts_by_owner()[r].size();
  }

  /// Snapshot what this round told the world, so the next round's deltas are
  /// relative to what every receiver now holds.
  void remember_sent(std::span<const T> owned) {
    std::copy(owned.begin(), owned.end(), prev_owned_.begin());
  }

  const graph::DistGraph* graph_;
  std::vector<T> values_;             ///< by ghost slot
  std::vector<T> prev_owned_;         ///< by local vertex: value last sent
  std::vector<std::size_t> offsets_;  ///< slot offset per owner rank
  std::vector<SlotChange> changes_;   ///< slots the last exchange rewrote
  std::optional<comm::PendingAlltoallv<T>> pending_;  ///< in-flight collective
  bool pending_neighbor_{false};      ///< topology of pending_
  GhostExchangeStats stats_;          ///< last completed exchange's timing
};

/// The Louvain community field: ghosts start in their own community.
class GhostCommunities : public GhostField<CommunityId> {
 public:
  explicit GhostCommunities(const graph::DistGraph& g)
      : GhostField<CommunityId>(GhostField<CommunityId>::identity(g)) {}
};

}  // namespace dlouvain::core
