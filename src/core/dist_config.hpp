// Configuration for the distributed Louvain algorithm and its heuristic
// variants (paper Section IV-B and the Section V evaluation legend).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/exchange_mode.hpp"
#include "core/overlap_mode.hpp"
#include "louvain/config.hpp"

namespace dlouvain::core {

/// The variants evaluated in the paper's Section V.
enum class Variant {
  kBaseline,           ///< Algorithm 2 with a fixed tau
  kThresholdCycling,   ///< tau modulated across phases (Fig. 2 schedule)
  kEt,                 ///< adaptive early termination, parameterized by alpha
  kEtc,                ///< ET + global inactive-count exit (extra all-reduce)
};

/// Human-readable variant label as used in the paper's charts, e.g.
/// "ET(0.25)" or "Threshold Cycling".
std::string variant_label(Variant variant, double alpha);

/// Inverse of variant_label for command lines: accepts the short tokens
/// "baseline", "tc", "et", "etc" (case-insensitive; "threshold-cycling" is
/// an alias for "tc"). Returns nullopt for anything else -- callers own the
/// error message. Shared by the CLI, the bench harnesses, and the tests so
/// variant spellings cannot drift apart.
std::optional<Variant> parse_variant(std::string_view name);

struct DistConfig {
  /// threshold / iteration bounds / ET alpha / seed live in the base config.
  louvain::LouvainConfig base;

  Variant variant{Variant::kBaseline};

  /// Threshold cycling can also be combined with ET (paper Table VI studies
  /// ET(0.25) + Threshold Cycling); setting this with variant kEt/kEtc
  /// enables the combination.
  bool add_threshold_cycling{false};

  /// The Fig. 2 schedule: thresholds and how many consecutive phases each
  /// one covers, cycled. The final convergence check always re-runs at the
  /// minimum threshold ("our distributed implementation always forces
  /// Louvain iteration to run once more with the lowest threshold").
  std::vector<double> cycle_thresholds{1e-3, 1e-4, 1e-5, 1e-6};
  std::vector<int> cycle_lengths{3, 4, 3, 3};

  /// ETC: exit the phase when this fraction of all vertices is inactive.
  double etc_exit_fraction{0.90};

  /// Record per-iteration telemetry (modularity evolution for Figs. 5-6).
  bool record_iterations{true};

  /// Run the per-iteration ghost exchange over the sparse neighbourhood
  /// topology (the paper's planned MPI-3 neighbourhood-collective upgrade)
  /// instead of a dense all-to-all. Same results either way; kept as a knob
  /// for the ablation bench.
  bool use_neighbor_exchange{true};

  /// Wire format of the per-iteration ghost community update: full mirror
  /// lists (dense), changed entries only (delta), or a per-destination pick
  /// (auto, the default). Results are identical in every mode; see
  /// core/exchange_mode.hpp.
  GhostExchangeMode ghost_exchange_mode{GhostExchangeMode::kAuto};

  /// kAuto's crossover: a destination goes delta when 2 * changed entries
  /// <= crossover * mirror list size.
  double delta_exchange_crossover{0.5};

  /// Overlap ghost/delta exchanges with interior compute (see
  /// core/overlap_mode.hpp). NEVER changes results -- only where the
  /// blocking wait sits -- so it is excluded from the checkpoint config
  /// fingerprint, like ghost_exchange_mode.
  OverlapMode overlap{OverlapMode::kAuto};

  /// kAuto's measured cost model (core/overlap_model.hpp): probe iterations
  /// sampled per stage (OFF first, then -- only if the OFF samples predict
  /// hidable time -- ON) before the model locks its verdict. Like
  /// `overlap`, never changes results; excluded from the fingerprint.
  int overlap_probe_iters{2};

  /// kAuto's engagement floor: when the OFF probe predicts fewer hidable
  /// seconds per iteration than this, auto declines without probing ON.
  double overlap_min_hidden_s{100e-6};

  /// Process vertices color class by color class (distributed distance-1
  /// coloring, recomputed per phase) so concurrently-deciding vertices are
  /// mutually non-adjacent -- the paper's Section VI future-work heuristic,
  /// taken from Grappolo. Costs extra communication rounds per iteration
  /// (one ghost/community refresh per color) in exchange for decisions that
  /// never act on stale neighbour state.
  bool use_coloring{false};

  /// Gather per-phase vertex-community associations at rank 0 (the paper's
  /// Section V-D quality-assessment mode: "extra collective operations per
  /// Louvain method phase"). Exposed via DistResult::phase_assignments.
  bool gather_quality{false};

  /// Compute threads per rank for the local hot loops (move scan, modularity
  /// reduction, rebuild) -- the OpenMP half of the paper's MPI+OpenMP hybrid.
  /// Results are bitwise identical at any value (see util/parallel.hpp for
  /// the determinism contract); <= 0 picks the hardware concurrency.
  int threads_per_rank{1};

  /// Phase-boundary checkpointing for crash recovery (core/checkpoint.hpp).
  /// An empty dir disables it. `every` = checkpoint before phases k where
  /// k % every == 0 (k >= 1). `resume` restarts from the newest valid
  /// checkpoint in dir instead of phase 0.
  struct CheckpointConfig {
    std::string dir;
    int every{1};
    bool resume{false};
  };
  CheckpointConfig checkpoint;

  /// Phase-boundary dynamic load re-balancing (core/rebalance.hpp). When
  /// enabled, each rebuild screens the arc-count imbalance lambda = max/mean
  /// of the NEW coarse graph under its default even-vertex split and, at
  /// lambda >= threshold, re-cuts the 1D range boundaries edge-balanced
  /// before the coarse graph is shipped. The decision is rank-identical
  /// (allreduced integer inputs, deterministic tie-breaks), so runs stay
  /// bitwise-reproducible across thread counts and fault injection; an
  /// ENGAGED migration changes the partition, and therefore the sweep order,
  /// exactly like resuming a checkpoint at a different rank count does --
  /// same clustering quality, different bits (see checkpoint.hpp). Mixed
  /// into the checkpoint config fingerprint only when enabled, so disabled
  /// configs keep their pre-existing fingerprints.
  struct RebalanceConfig {
    bool enabled{false};
    /// Engage at lambda_pre >= threshold (>= 1; max/mean is never below 1).
    double threshold{1.5};
  };
  RebalanceConfig rebalance;

  // -- named constructors matching the paper's legend ---------------------
  static DistConfig baseline() { return {}; }

  static DistConfig threshold_cycling() {
    DistConfig cfg;
    cfg.variant = Variant::kThresholdCycling;
    return cfg;
  }

  static DistConfig et(double alpha) {
    DistConfig cfg;
    cfg.variant = Variant::kEt;
    cfg.base.early_termination = true;
    cfg.base.et_alpha = alpha;
    return cfg;
  }

  static DistConfig etc(double alpha) {
    DistConfig cfg = et(alpha);
    cfg.variant = Variant::kEtc;
    return cfg;
  }

  /// Is ET machinery active for this config?
  [[nodiscard]] bool uses_et() const {
    return variant == Variant::kEt || variant == Variant::kEtc;
  }

  /// Does tau vary per phase?
  [[nodiscard]] bool uses_cycling() const {
    return variant == Variant::kThresholdCycling || add_threshold_cycling;
  }

  /// tau in effect for `phase` (0-based).
  [[nodiscard]] double threshold_for_phase(int phase) const;

  /// The smallest threshold in the schedule (the forced final tau).
  [[nodiscard]] double min_threshold() const;
};

}  // namespace dlouvain::core
