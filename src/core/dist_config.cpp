#include "core/dist_config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace dlouvain::core {

std::string variant_label(Variant variant, double alpha) {
  char buf[64];
  switch (variant) {
    case Variant::kBaseline:
      return "Baseline";
    case Variant::kThresholdCycling:
      return "Threshold Cycling";
    case Variant::kEt:
      std::snprintf(buf, sizeof buf, "ET(%.2f)", alpha);
      return buf;
    case Variant::kEtc:
      std::snprintf(buf, sizeof buf, "ETC(%.2f)", alpha);
      return buf;
  }
  return "?";
}

std::optional<Variant> parse_variant(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "baseline") return Variant::kBaseline;
  if (lower == "tc" || lower == "threshold-cycling") return Variant::kThresholdCycling;
  if (lower == "et") return Variant::kEt;
  if (lower == "etc") return Variant::kEtc;
  return std::nullopt;
}

double DistConfig::threshold_for_phase(int phase) const {
  if (!uses_cycling()) return base.threshold;
  if (cycle_thresholds.empty() || cycle_thresholds.size() != cycle_lengths.size())
    throw std::logic_error("DistConfig: malformed threshold cycle");
  const int cycle_total = std::accumulate(cycle_lengths.begin(), cycle_lengths.end(), 0);
  if (cycle_total <= 0) throw std::logic_error("DistConfig: empty threshold cycle");
  int pos = phase % cycle_total;
  for (std::size_t i = 0; i < cycle_lengths.size(); ++i) {
    if (pos < cycle_lengths[i]) return cycle_thresholds[i];
    pos -= cycle_lengths[i];
  }
  return cycle_thresholds.back();
}

double DistConfig::min_threshold() const {
  if (!uses_cycling()) return base.threshold;
  return *std::min_element(cycle_thresholds.begin(), cycle_thresholds.end());
}

}  // namespace dlouvain::core
