// Measured cost model behind `--overlap=auto` (ISSUE 8).
//
// PR 5 proved the interior-first overlap schedule can HIDE a large fraction
// of the exchange latency and still LOSE wall-clock (BENCH_PR5: 2.25 s
// overlap-on vs 1.96 s off at 1 ms simulated latency) -- the scheduling
// overhead (split sweep, in-flight bookkeeping, later absorb) can cost more
// than the hidden latency is worth. The old kAuto ("on whenever ranks > 1")
// ignored that entirely.
//
// This model replaces it with a two-stage measured probe, run during the
// first iterations of a kAuto run:
//
//   stage 1 (OFF probe) -- until the model warms up, auto runs with overlap
//     OFF (the measured-faster default per BENCH_PR5). Each probe iteration
//     samples the real blocked exchange latency (ghost + delta collective
//     wall) and the interior-sweep compute time. After `probe_iterations`
//     samples the model predicts the hidable time per iteration:
//         predicted_hidden = min(mean latency, mean interior compute)
//     (the schedule can only hide latency behind interior compute, and only
//     as much latency as there is). If predicted_hidden < min_hidden_s the
//     model DECLINES without ever switching overlap on -- there is nothing
//     worth hiding (single rank, zero-latency wire, tiny interiors).
//
//   stage 2 (ON probe) -- otherwise the next `probe_iterations` iterations
//     run with overlap ON, sampling the actually-hidden latency and the
//     iteration wall. The decision then compares measured walls:
//         engage  <=>  mean on-wall < mean off-wall
//     i.e. overlap is engaged exactly when the hidden time exceeds the
//     scheduling overhead it buys (overhead = on_wall - (off_wall -
//     hidden)). Once decided, the verdict holds for the rest of the run;
//     each phase records whether it ran engaged or declined.
//
// Determinism: the model consumes only rank-identical aggregate samples
// (the caller allreduces the per-rank measurements first), its state
// advances one step per iteration, and iteration counts are collective --
// so every rank takes the same branch on the same iteration, keeping the
// collectives aligned. Overlap itself NEVER changes results (only the
// position of the blocking wait moves; see core/overlap_mode.hpp), so
// switching per iteration is bitwise-safe.
//
// The decision and its inputs land in the run manifest's "overlap" object
// (new in manifest v4; docs/OBSERVABILITY.md).
#pragma once

#include <algorithm>
#include <string>

#include "core/overlap_mode.hpp"

namespace dlouvain::core {

/// One probe iteration's measurements, aggregated to be identical on every
/// rank (mean over ranks) before they reach the model.
struct OverlapSample {
  double latency_s{0};   ///< blocked exchange wall: ghost + delta collectives
  double interior_s{0};  ///< interior micro-batch sweep wall
  double hidden_s{0};    ///< latency hidden behind compute (ON iterations)
  double wall_s{0};      ///< whole-iteration wall
};

/// The manifest v4 "overlap" object: which mode the run was configured
/// with, what it ended up doing, and the model inputs that decided it.
struct OverlapTelemetry {
  std::string mode{"auto"};     ///< the configured knob (off | on | auto)
  std::string decision{"off"};  ///< what the run settled on (off | on)
  bool decided{false};          ///< model reached a verdict (always true forced)
  int probe_iterations_off{0};  ///< OFF-probe samples consumed
  int probe_iterations_on{0};   ///< ON-probe samples consumed
  double predicted_hidden_s{0};  ///< min(mean latency, mean interior), OFF probe
  double measured_latency_s{0};  ///< mean blocked exchange wall, OFF probe
  double measured_interior_s{0};  ///< mean interior sweep wall, OFF probe
  double off_wall_s{0};           ///< mean iteration wall, OFF probe
  double on_wall_s{0};            ///< mean iteration wall, ON probe
  double measured_hidden_s{0};    ///< mean actually-hidden latency, ON probe
  int phases_engaged{0};   ///< phases that ran >= 1 overlapped iteration
  int phases_declined{0};  ///< phases that ran fully blocking
};

/// Cost-model knobs (DistConfig::overlap_probe_iters / overlap_min_hidden_s).
struct OverlapModelConfig {
  /// Probe iterations per stage (OFF, then ON). At least 1.
  int probe_iterations{2};
  /// Engagement floor: an OFF probe predicting less hidable time than this
  /// per iteration declines without running the ON probe. Covers
  /// single-rank worlds and zero-latency wires, where even a free schedule
  /// could hide nothing worth measuring.
  double min_hidden_s{100e-6};
};

class OverlapCostModel {
 public:
  using Config = OverlapModelConfig;

  explicit OverlapCostModel(Config cfg = {}) : cfg_(cfg) {
    if (cfg_.probe_iterations < 1) cfg_.probe_iterations = 1;
  }

  /// Should the NEXT iteration run with overlap on? Until the model warms
  /// up, auto runs OFF (stage 1); stage 2 probes ON; after the verdict this
  /// is the verdict.
  [[nodiscard]] bool want_overlap() const {
    return state_ == State::kProbeOn || (state_ == State::kDecided && engage_);
  }

  /// True while the model still wants probe samples recorded.
  [[nodiscard]] bool probing() const { return state_ != State::kDecided; }

  [[nodiscard]] bool decided() const { return state_ == State::kDecided; }
  [[nodiscard]] bool engaged() const { return decided() && engage_; }

  /// Feed one probe iteration's rank-identical aggregate sample. The sample
  /// must describe an iteration run in the mode want_overlap() returned
  /// when the iteration started. No-op once decided.
  void record(const OverlapSample& s) {
    switch (state_) {
      case State::kProbeOff: {
        ++t_.probe_iterations_off;
        off_latency_ += s.latency_s;
        off_interior_ += s.interior_s;
        off_wall_ += s.wall_s;
        if (t_.probe_iterations_off < cfg_.probe_iterations) return;
        const auto n = static_cast<double>(t_.probe_iterations_off);
        t_.measured_latency_s = off_latency_ / n;
        t_.measured_interior_s = off_interior_ / n;
        t_.off_wall_s = off_wall_ / n;
        t_.predicted_hidden_s =
            std::min(t_.measured_latency_s, t_.measured_interior_s);
        if (t_.predicted_hidden_s < cfg_.min_hidden_s) {
          decide(false);  // nothing worth hiding: decline without an ON probe
        } else {
          state_ = State::kProbeOn;
        }
        return;
      }
      case State::kProbeOn: {
        ++t_.probe_iterations_on;
        on_hidden_ += s.hidden_s;
        on_wall_ += s.wall_s;
        if (t_.probe_iterations_on < cfg_.probe_iterations) return;
        const auto n = static_cast<double>(t_.probe_iterations_on);
        t_.on_wall_s = on_wall_ / n;
        t_.measured_hidden_s = on_hidden_ / n;
        // Engage exactly when the measured hidden time beats the schedule's
        // measured overhead -- equivalently, when ON iterations are faster.
        decide(t_.on_wall_s < t_.off_wall_s);
        return;
      }
      case State::kDecided: return;
    }
  }

  /// Phase bookkeeping: call once per finished phase with whether any of
  /// its iterations ran overlapped.
  void note_phase(bool ran_overlapped) {
    if (ran_overlapped) {
      ++t_.phases_engaged;
    } else {
      ++t_.phases_declined;
    }
  }

  /// Telemetry snapshot for the manifest; `mode` is the configured knob's
  /// label. An undecided model (run converged before the probe finished)
  /// reports decision "off" -- auto never engaged.
  [[nodiscard]] OverlapTelemetry telemetry(const std::string& mode) const {
    OverlapTelemetry out = t_;
    out.mode = mode;
    out.decided = decided();
    out.decision = want_overlap() && decided() ? "on" : "off";
    return out;
  }

 private:
  enum class State { kProbeOff, kProbeOn, kDecided };

  void decide(bool engage) {
    engage_ = engage;
    state_ = State::kDecided;
  }

  Config cfg_;
  State state_{State::kProbeOff};
  bool engage_{false};
  OverlapTelemetry t_;
  double off_latency_{0};
  double off_interior_{0};
  double off_wall_{0};
  double on_hidden_{0};
  double on_wall_{0};
};

}  // namespace dlouvain::core
