// Distributed graph reconstruction between Louvain phases (paper Fig. 1,
// steps 1-7): communities become meta-vertices, intra-community weight
// becomes a self loop, inter-community weight is aggregated, and the new
// graph is redistributed so every rank owns an (almost) equal number of the
// new vertices.
#pragma once

#include <span>

#include "comm/comm.hpp"
#include "core/community_state.hpp"
#include "core/dist_config.hpp"
#include "core/ghost_exchange.hpp"
#include "core/rebalance.hpp"
#include "graph/dist_graph.hpp"
#include "util/parallel.hpp"

namespace dlouvain::core {

struct RebuildOutput {
  /// The coarsened, redistributed graph for the next phase.
  graph::DistGraph graph;
  /// For each CURRENT owned vertex (local index): the id of the meta-vertex
  /// it collapsed into. This is what lets the driver maintain the
  /// original-vertex -> current-vertex chain across phases.
  std::vector<VertexId> new_vertex_of_current;
  VertexId new_global_n{0};
  /// The load re-balancing verdict taken at this boundary (ISSUE 10):
  /// default-constructed (not evaluated, even-vertex split kept) when
  /// re-balancing is disabled or the graph was not built.
  RebalanceDecision rebalance;
};

/// Collective. `owned_community[lv]` is the final community of each owned
/// vertex; `ghosts` must reflect a completed exchange of those finals (the
/// driver re-pushes after the last iteration); `ledger` carries the
/// authoritative sizes used to detect surviving communities.
///
/// `pool` (optional) threads the two O(arcs) passes -- the resolved
/// edge-list emission here and the CSR sort/assembly inside
/// DistGraph::build -- without changing the output: arcs are written at
/// precomputed CSR offsets and the sort is deterministic-stable (see
/// util/parallel.hpp), so the rebuilt graph is identical at any thread
/// count.
///
/// `build_graph = false` runs only the renumbering (steps 1-4 + the
/// current->meta mapping), leaving `graph` default-constructed -- the two
/// O(arcs) passes and the coarse DistGraph::build collective are skipped.
/// Used by the warm-start driver on its exit phase, where the coarse graph
/// would be built only to be thrown away (docs/STREAMING.md); the flag must
/// be collectively identical, since it changes which collectives run.
///
/// `rebalance` (collectively identical, like `build_graph`) lets the
/// re-balancer re-cut the new graph's range boundaries before the step 6-7
/// shipment (core/rebalance.hpp); its sampling allreduces run only when
/// enabled, and their traffic is reclassified into the rebalance.* counters.
/// `phase` labels the "rebalance" trace span.
RebuildOutput rebuild(comm::Comm& comm, const graph::DistGraph& g,
                      std::span<const CommunityId> owned_community,
                      const GhostCommunities& ghosts, const CommunityLedger& ledger,
                      util::ThreadPool* pool = nullptr, bool build_graph = true,
                      const DistConfig::RebalanceConfig& rebalance = {},
                      int phase = 0);

}  // namespace dlouvain::core
