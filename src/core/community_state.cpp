#include "core/community_state.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace dlouvain::core {

namespace {

/// Wire record for refresh replies and dirty pushes.
struct InfoRecord {
  CommunityId community;
  Weight degree;
  std::int64_t size;
};

/// splitmix64 finalizer: the table's id hash.
std::size_t mix(CommunityId c) {
  auto x = static_cast<std::uint64_t>(c) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

}  // namespace

CommunityLedger::CommunityLedger(const graph::DistGraph& g)
    : graph_(&g),
      local_n_(g.local_count()),
      sub_words_((static_cast<std::size_t>(g.num_ranks()) + 63) / 64) {
  owned_.resize(static_cast<std::size_t>(local_n_));
  for (VertexId lv = 0; lv < local_n_; ++lv) {
    owned_[static_cast<std::size_t>(lv)] =
        CommunityInfo{g.weighted_degree(g.to_global(lv)), 1};
  }
  owned_dirty_.assign(static_cast<std::size_t>(local_n_), 0);
  subscribers_.assign(static_cast<std::size_t>(local_n_) * sub_words_, 0);
}

std::int64_t CommunityLedger::find_ghost(CommunityId c) const {
  if (table_.empty()) return -1;
  std::size_t b = mix(c) & table_mask_;
  while (table_[b] >= 0) {
    if (ghost_ids_[static_cast<std::size_t>(table_[b])] == c) return table_[b];
    b = (b + 1) & table_mask_;
  }
  return -1;
}

void CommunityLedger::grow_table() {
  const std::size_t capacity = std::max<std::size_t>(16, table_.size() * 2);
  table_.assign(capacity, -1);
  table_mask_ = capacity - 1;
  for (std::size_t i = 0; i < ghost_ids_.size(); ++i) {
    std::size_t b = mix(ghost_ids_[i]) & table_mask_;
    while (table_[b] >= 0) b = (b + 1) & table_mask_;
    table_[b] = static_cast<std::int64_t>(i);
  }
}

std::int64_t CommunityLedger::create_ghost(CommunityId c) {
  const auto idx = static_cast<std::int64_t>(ghost_ids_.size());
  ghost_ids_.push_back(c);
  ghost_info_.push_back(CommunityInfo{});
  ghost_refcount_.push_back(0);
  ghost_live_.push_back(0);
  pending_degree_.push_back(0);
  pending_size_.push_back(0);
  pending_flag_.push_back(0);
  fetch_flag_.push_back(0);
  unsub_flag_.push_back(0);
  // Keep load factor under 1/2.
  if (table_.empty() || 2 * ghost_ids_.size() > table_.size()) {
    grow_table();
  } else {
    std::size_t b = mix(c) & table_mask_;
    while (table_[b] >= 0) b = (b + 1) & table_mask_;
    table_[b] = idx;
  }
  return idx;
}

std::int64_t CommunityLedger::slot_of(CommunityId c) const {
  if (graph_->owns(c)) return graph_->to_local(c);
  const auto idx = find_ghost(c);
  return idx < 0 ? -1 : local_n_ + idx;
}

const CommunityInfo& CommunityLedger::info(CommunityId c) const {
  if (graph_->owns(c)) return owned_[static_cast<std::size_t>(graph_->to_local(c))];
  const auto idx = find_ghost(c);
  if (idx < 0 || !ghost_live_[static_cast<std::size_t>(idx)])
    throw std::out_of_range("CommunityLedger: community not in ghost cache");
  return ghost_info_[static_cast<std::size_t>(idx)];
}

void CommunityLedger::retain_idx(std::int64_t idx) {
  const auto i = static_cast<std::size_t>(idx);
  if (++ghost_refcount_[i] == 1 && !ghost_live_[i] && !fetch_flag_[i]) {
    fetch_flag_[i] = 1;
    maybe_fetch_.push_back(idx);
  }
}

void CommunityLedger::release_idx(std::int64_t idx) {
  const auto i = static_cast<std::size_t>(idx);
  assert(ghost_refcount_[i] > 0);
  if (--ghost_refcount_[i] == 0 && ghost_live_[i] && !unsub_flag_[i]) {
    unsub_flag_[i] = 1;
    maybe_unsub_.push_back(idx);
  }
}

std::int64_t CommunityLedger::retain(CommunityId c) {
  if (graph_->owns(c)) return graph_->to_local(c);
  auto idx = find_ghost(c);
  if (idx < 0) idx = create_ghost(c);
  retain_idx(idx);
  return local_n_ + idx;
}

void CommunityLedger::release(CommunityId c) {
  if (graph_->owns(c)) return;
  const auto idx = find_ghost(c);
  assert(idx >= 0 && "CommunityLedger::release: never retained");
  release_idx(idx);
}

void CommunityLedger::retain_slot(std::int64_t slot) {
  if (slot < local_n_) return;
  retain_idx(slot - local_n_);
}

void CommunityLedger::release_slot(std::int64_t slot) {
  if (slot < local_n_) return;
  release_idx(slot - local_n_);
}

void CommunityLedger::mark_dirty(std::int64_t lc) {
  const auto i = static_cast<std::size_t>(lc);
  if (!owned_dirty_[i]) {
    owned_dirty_[i] = 1;
    dirty_list_.push_back(lc);
  }
}

void CommunityLedger::touch_slot(std::int64_t slot, Weight dk, std::int64_t dsize) {
  if (slot < local_n_) {
    auto& entry = owned_[static_cast<std::size_t>(slot)];
    entry.degree += dk;
    entry.size += dsize;
    mark_dirty(slot);
    return;
  }
  const auto idx = static_cast<std::size_t>(slot - local_n_);
  auto& entry = ghost_info_[idx];
  entry.degree += dk;
  entry.size += dsize;
  if (!pending_flag_[idx]) {
    pending_flag_[idx] = 1;
    pending_touched_.push_back(static_cast<std::int64_t>(idx));
  }
  pending_degree_[idx] += dk;
  pending_size_[idx] += dsize;
}

void CommunityLedger::apply_move_slots(std::int64_t from_slot, std::int64_t to_slot,
                                       Weight k) {
  touch_slot(from_slot, -k, -1);
  touch_slot(to_slot, k, 1);
}

void CommunityLedger::apply_move(CommunityId from, CommunityId to, Weight k) {
  const auto from_slot = slot_of(from);
  const auto to_slot = slot_of(to);
  if (from_slot < 0 || to_slot < 0)
    throw std::out_of_range("CommunityLedger: move touches unknown ghost community");
  apply_move_slots(from_slot, to_slot, k);
}

void CommunityLedger::refresh(comm::Comm& comm) {
  const int p = comm.size();
  const Rank me = comm.rank();

  // Filter the candidate lists down to real transitions (an id can bounce
  // refcount 0 <-> 1 between refreshes and end up needing nothing).
  std::vector<std::int64_t> fetch_idx;
  for (const auto idx : maybe_fetch_) {
    const auto i = static_cast<std::size_t>(idx);
    fetch_flag_[i] = 0;
    if (ghost_refcount_[i] > 0 && !ghost_live_[i]) fetch_idx.push_back(idx);
  }
  maybe_fetch_.clear();
  std::vector<std::int64_t> unsub_idx;
  for (const auto idx : maybe_unsub_) {
    const auto i = static_cast<std::size_t>(idx);
    unsub_flag_[i] = 0;
    if (ghost_live_[i] && ghost_refcount_[i] == 0) {
      unsub_idx.push_back(idx);
      ghost_live_[i] = 0;  // lazy eviction: slot stays, record goes stale
    }
  }
  maybe_unsub_.clear();
  const auto by_id = [&](std::int64_t a, std::int64_t b) {
    return ghost_ids_[static_cast<std::size_t>(a)] <
           ghost_ids_[static_cast<std::size_t>(b)];
  };
  std::sort(fetch_idx.begin(), fetch_idx.end(), by_id);
  std::sort(unsub_idx.begin(), unsub_idx.end(), by_id);

  // Request wire format per owner: [n_req, n_unsub, req ids..., unsub ids...]
  // (empty message == nothing to say).
  std::vector<std::vector<CommunityId>> requests(static_cast<std::size_t>(p));
  {
    std::vector<std::size_t> nreq(static_cast<std::size_t>(p), 0);
    std::vector<std::size_t> nunsub(static_cast<std::size_t>(p), 0);
    for (const auto idx : fetch_idx)
      ++nreq[static_cast<std::size_t>(graph_->owner(ghost_ids_[static_cast<std::size_t>(idx)]))];
    for (const auto idx : unsub_idx)
      ++nunsub[static_cast<std::size_t>(graph_->owner(ghost_ids_[static_cast<std::size_t>(idx)]))];
    for (int r = 0; r < p; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (nreq[ri] == 0 && nunsub[ri] == 0) continue;
      requests[ri].reserve(2 + nreq[ri] + nunsub[ri]);
      requests[ri].push_back(static_cast<CommunityId>(nreq[ri]));
      requests[ri].push_back(static_cast<CommunityId>(nunsub[ri]));
    }
    for (const auto idx : fetch_idx) {
      const CommunityId c = ghost_ids_[static_cast<std::size_t>(idx)];
      requests[static_cast<std::size_t>(graph_->owner(c))].push_back(c);
    }
    // Unsub ids trail the request ids; the two runs are recovered from the
    // header counts on the owner side.
    std::vector<std::vector<CommunityId>> unsubs(static_cast<std::size_t>(p));
    for (const auto idx : unsub_idx) {
      const CommunityId c = ghost_ids_[static_cast<std::size_t>(idx)];
      unsubs[static_cast<std::size_t>(graph_->owner(c))].push_back(c);
    }
    for (int r = 0; r < p; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      requests[ri].insert(requests[ri].end(), unsubs[ri].begin(), unsubs[ri].end());
    }
  }

  const auto incoming = comm.alltoallv<CommunityId>(std::move(requests));

  // Owner side. Order matters for the push set: cancellations first, then
  // dirty pushes against the PRE-request subscriber masks (a brand-new
  // subscriber gets its record via the reply, not the push), then the
  // replies which also register the new subscriptions.
  const auto word_of = [&](std::int64_t lc, int r) {
    return static_cast<std::size_t>(lc) * sub_words_ +
           static_cast<std::size_t>(r) / 64;
  };
  const auto bit_of = [](int r) {
    return std::uint64_t{1} << (static_cast<unsigned>(r) % 64);
  };
  const auto parse = [&](int r) {
    const auto& msg = incoming[static_cast<std::size_t>(r)];
    struct View {
      std::span<const CommunityId> req;
      std::span<const CommunityId> unsub;
    } view;
    if (msg.empty()) return view;
    if (msg.size() < 2)
      throw std::logic_error("CommunityLedger::refresh: truncated request");
    const auto nreq = static_cast<std::size_t>(msg[0]);
    const auto nunsub = static_cast<std::size_t>(msg[1]);
    if (msg.size() != 2 + nreq + nunsub)
      throw std::logic_error("CommunityLedger::refresh: request length mismatch");
    view.req = std::span<const CommunityId>(msg).subspan(2, nreq);
    view.unsub = std::span<const CommunityId>(msg).subspan(2 + nreq, nunsub);
    return view;
  };

  for (int r = 0; r < p; ++r) {
    for (const CommunityId c : parse(r).unsub) {
      if (!graph_->owns(c))
        throw std::logic_error("CommunityLedger::refresh: unsubscribe for a community we don't own");
      subscribers_[word_of(graph_->to_local(c), r)] &= ~bit_of(r);
    }
  }

  std::vector<std::vector<InfoRecord>> outbox(static_cast<std::size_t>(p));
  std::sort(dirty_list_.begin(), dirty_list_.end());
  for (const auto lc : dirty_list_) {
    owned_dirty_[static_cast<std::size_t>(lc)] = 0;
    const auto& entry = owned_[static_cast<std::size_t>(lc)];
    const InfoRecord rec{graph_->to_global(static_cast<VertexId>(lc)), entry.degree,
                         entry.size};
    for (std::size_t w = 0; w < sub_words_; ++w) {
      std::uint64_t bits = subscribers_[static_cast<std::size_t>(lc) * sub_words_ + w];
      while (bits != 0) {
        const int r = static_cast<int>(w) * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        outbox[static_cast<std::size_t>(r)].push_back(rec);
      }
    }
  }
  dirty_list_.clear();

  for (int r = 0; r < p; ++r) {
    for (const CommunityId c : parse(r).req) {
      if (!graph_->owns(c))
        throw std::logic_error("CommunityLedger::refresh: asked for a community we don't own");
      const auto lc = graph_->to_local(c);
      const auto& entry = owned_[static_cast<std::size_t>(lc)];
      outbox[static_cast<std::size_t>(r)].push_back(
          InfoRecord{c, entry.degree, entry.size});
      if (r != me) subscribers_[word_of(lc, r)] |= bit_of(r);
    }
  }

  {
    std::int64_t records = 0;
    for (const auto& slot : outbox) records += static_cast<std::int64_t>(slot.size());
    comm.counters()[util::Counter::kLedgerRefreshRecords] += records;
  }
  const auto answers = comm.alltoallv<InfoRecord>(std::move(outbox));

  for (const auto& from_rank : answers) {
    for (const auto& rec : from_rank) {
      const auto idx = find_ghost(rec.community);
      if (idx < 0)
        throw std::logic_error("CommunityLedger::refresh: unsolicited record");
      ghost_info_[static_cast<std::size_t>(idx)] = CommunityInfo{rec.degree, rec.size};
      ghost_live_[static_cast<std::size_t>(idx)] = 1;
    }
  }
}

void CommunityLedger::flush_deltas(comm::Comm& comm) {
  flush_deltas_begin(comm, /*overlap=*/false);
  flush_deltas_finish(comm);
}

void CommunityLedger::flush_deltas_begin(comm::Comm& comm, bool overlap) {
  if (pending_flush_.has_value())
    throw std::logic_error("CommunityLedger: delta flush already in flight");
  const int p = comm.size();
  std::vector<std::vector<LedgerDeltaRecord>> outbox(static_cast<std::size_t>(p));
  for (const auto idx : pending_touched_) {
    const auto i = static_cast<std::size_t>(idx);
    const CommunityId c = ghost_ids_[i];
    outbox[static_cast<std::size_t>(graph_->owner(c))].push_back(
        LedgerDeltaRecord{c, pending_degree_[i], pending_size_[i]});
    pending_degree_[i] = 0;
    pending_size_[i] = 0;
    pending_flag_[i] = 0;
  }
  pending_touched_.clear();

  {
    std::int64_t records = 0;
    for (const auto& slot : outbox) records += static_cast<std::int64_t>(slot.size());
    comm.counters()[util::Counter::kLedgerDeltaRecords] += records;
  }
  pending_flush_.emplace(comm.ialltoallv<LedgerDeltaRecord>(std::move(outbox)));
  if (!overlap) pending_flush_->wait();
}

void CommunityLedger::flush_deltas_finish(comm::Comm& comm) {
  (void)comm;  // collective symmetry with _begin; completion is local
  if (!pending_flush_.has_value())
    throw std::logic_error("CommunityLedger: no delta flush in flight");
  pending_flush_->wait();
  flush_wait_seconds_ = pending_flush_->wait_seconds();
  flush_hidden_seconds_ = pending_flush_->hidden_seconds();
  const auto inbox = pending_flush_->take();
  // Fixed rank order regardless of arrival order: owned_ accumulation stays
  // deterministic (Weight is integral today, but keep the order contract).
  for (const auto& from_rank : inbox) {
    for (const auto& rec : from_rank) {
      const auto lc = graph_->to_local(rec.community);
      auto& entry = owned_[static_cast<std::size_t>(lc)];
      entry.degree += rec.degree;
      entry.size += rec.size;
      mark_dirty(lc);
    }
  }
  pending_flush_.reset();
}

Weight CommunityLedger::owned_degree_term() const {
  Weight term = 0;
  for (const auto& entry : owned_) term += entry.degree * entry.degree;
  return term;
}

VertexId CommunityLedger::owned_survivors() const {
  VertexId count = 0;
  for (const auto& entry : owned_) count += entry.size > 0 ? 1 : 0;
  return count;
}

}  // namespace dlouvain::core
