#include "core/community_state.hpp"

#include <stdexcept>

namespace dlouvain::core {

namespace {

/// Wire record for the refresh reply.
struct InfoRecord {
  CommunityId community;
  Weight degree;
  std::int64_t size;
};

/// Wire record for the delta flush.
struct DeltaRecord {
  CommunityId community;
  Weight degree;
  std::int64_t size;
};

}  // namespace

CommunityLedger::CommunityLedger(const graph::DistGraph& g) : graph_(&g) {
  owned_.resize(static_cast<std::size_t>(g.local_count()));
  for (VertexId lv = 0; lv < g.local_count(); ++lv) {
    owned_[static_cast<std::size_t>(lv)] =
        CommunityInfo{g.weighted_degree(g.to_global(lv)), 1};
  }
}

const CommunityInfo& CommunityLedger::info(CommunityId c) const {
  if (graph_->owns(c)) return owned_[static_cast<std::size_t>(graph_->to_local(c))];
  const auto it = ghost_cache_.find(c);
  if (it == ghost_cache_.end())
    throw std::out_of_range("CommunityLedger: community not in ghost cache");
  return it->second;
}

void CommunityLedger::apply_move(CommunityId from, CommunityId to, Weight k) {
  const auto touch = [&](CommunityId c, Weight dk, std::int64_t dsize) {
    if (graph_->owns(c)) {
      auto& entry = owned_[static_cast<std::size_t>(graph_->to_local(c))];
      entry.degree += dk;
      entry.size += dsize;
    } else {
      const auto it = ghost_cache_.find(c);
      if (it == ghost_cache_.end())
        throw std::out_of_range("CommunityLedger: move touches unknown ghost community");
      it->second.degree += dk;
      it->second.size += dsize;
      auto& delta = pending_[c];
      delta.community = c;
      delta.degree += dk;
      delta.size += dsize;
    }
  };
  touch(from, -k, -1);
  touch(to, k, 1);
}

void CommunityLedger::refresh(comm::Comm& comm, std::span<const CommunityId> needed) {
  const int p = comm.size();
  std::vector<std::vector<CommunityId>> requests(static_cast<std::size_t>(p));
  for (const CommunityId c : needed) {
    if (!graph_->owns(c))
      requests[static_cast<std::size_t>(graph_->owner(c))].push_back(c);
  }

  const auto incoming = comm.alltoallv<CommunityId>(requests);

  // Answer each requester with authoritative records for the ids it asked.
  std::vector<std::vector<InfoRecord>> replies(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    replies[static_cast<std::size_t>(r)].reserve(incoming[static_cast<std::size_t>(r)].size());
    for (const CommunityId c : incoming[static_cast<std::size_t>(r)]) {
      if (!graph_->owns(c))
        throw std::logic_error("CommunityLedger::refresh: asked for a community we don't own");
      const auto& entry = owned_[static_cast<std::size_t>(graph_->to_local(c))];
      replies[static_cast<std::size_t>(r)].push_back(
          InfoRecord{c, entry.degree, entry.size});
    }
  }

  const auto answers = comm.alltoallv<InfoRecord>(std::move(replies));

  ghost_cache_.clear();
  for (const auto& from_rank : answers) {
    for (const auto& rec : from_rank)
      ghost_cache_[rec.community] = CommunityInfo{rec.degree, rec.size};
  }
}

void CommunityLedger::flush_deltas(comm::Comm& comm) {
  const int p = comm.size();
  std::vector<std::vector<DeltaRecord>> outbox(static_cast<std::size_t>(p));
  for (const auto& [c, delta] : pending_) {
    outbox[static_cast<std::size_t>(graph_->owner(c))].push_back(
        DeltaRecord{delta.community, delta.degree, delta.size});
  }
  pending_.clear();

  const auto inbox = comm.alltoallv<DeltaRecord>(std::move(outbox));
  for (const auto& from_rank : inbox) {
    for (const auto& rec : from_rank) {
      auto& entry = owned_[static_cast<std::size_t>(graph_->to_local(rec.community))];
      entry.degree += rec.degree;
      entry.size += rec.size;
    }
  }
}

Weight CommunityLedger::owned_degree_term() const {
  Weight term = 0;
  for (const auto& entry : owned_) term += entry.degree * entry.degree;
  return term;
}

VertexId CommunityLedger::owned_survivors() const {
  VertexId count = 0;
  for (const auto& entry : owned_) count += entry.size > 0 ? 1 : 0;
  return count;
}

}  // namespace dlouvain::core
