#include "core/coloring.hpp"

#include <algorithm>

#include "core/ghost_exchange.hpp"
#include "util/prng.hpp"

namespace dlouvain::core {

namespace {

constexpr std::int64_t kUncolored = -1;

/// Total priority order: pseudo-random primary key, vertex id tiebreak.
/// Stateless, so every rank evaluates any vertex's priority locally.
bool higher_priority(std::uint64_t seed, VertexId a, VertexId b) {
  const auto pa = util::mix64(seed ^ static_cast<std::uint64_t>(a));
  const auto pb = util::mix64(seed ^ static_cast<std::uint64_t>(b));
  return pa != pb ? pa > pb : a > b;
}

/// Smallest colour not present in `used` (sorted not required).
std::int64_t smallest_free_color(std::vector<std::int64_t>& used) {
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  std::int64_t color = 0;
  for (const auto c : used) {
    if (c < 0) continue;
    if (c != color) break;
    ++color;
  }
  return color;
}

}  // namespace

ColoringResult distance1_coloring(comm::Comm& comm, const graph::DistGraph& g,
                                  std::uint64_t seed) {
  const VertexId local_n = g.local_count();

  ColoringResult result;
  result.color.assign(static_cast<std::size_t>(local_n), kUncolored);
  GhostField<std::int64_t> ghost_colors(g, kUncolored);

  std::vector<std::int64_t> used;
  std::int64_t local_uncolored = local_n;

  for (;;) {
    std::int64_t global_uncolored = comm.allreduce_sum(local_uncolored);
    if (global_uncolored == 0) break;
    ++result.rounds;

    ghost_colors.exchange(comm, result.color);

    // Round-start snapshot of which LOCAL vertices are uncolored: maxima are
    // judged against the state every rank sees at the round boundary, so the
    // no-adjacent-winners guarantee holds globally.
    std::vector<char> was_uncolored(static_cast<std::size_t>(local_n), 0);
    for (VertexId lv = 0; lv < local_n; ++lv)
      was_uncolored[static_cast<std::size_t>(lv)] =
          result.color[static_cast<std::size_t>(lv)] == kUncolored ? 1 : 0;

    for (VertexId lv = 0; lv < local_n; ++lv) {
      if (!was_uncolored[static_cast<std::size_t>(lv)]) continue;
      const VertexId gv = g.to_global(lv);

      bool is_max = true;
      used.clear();
      for (const auto& e : g.local().neighbors(lv)) {
        if (e.dst == gv) continue;
        std::int64_t neighbor_color;
        bool neighbor_uncolored_at_round_start;
        if (g.owns(e.dst)) {
          const auto nlv = static_cast<std::size_t>(g.to_local(e.dst));
          neighbor_color = result.color[nlv];
          neighbor_uncolored_at_round_start = was_uncolored[nlv] != 0;
        } else {
          neighbor_color = ghost_colors.of(e.dst);
          neighbor_uncolored_at_round_start = neighbor_color == kUncolored;
        }
        if (neighbor_uncolored_at_round_start && higher_priority(seed, e.dst, gv)) {
          is_max = false;
          break;
        }
        used.push_back(neighbor_color);
      }
      if (!is_max) continue;

      result.color[static_cast<std::size_t>(lv)] = smallest_free_color(used);
      --local_uncolored;
    }
  }

  std::int64_t local_max = -1;
  for (const auto c : result.color) local_max = std::max(local_max, c);
  result.num_colors = comm.allreduce_max(local_max) + 1;
  return result;
}

ColoringResult distance1_coloring_serial(const graph::Csr& g) {
  ColoringResult result;
  result.color.assign(static_cast<std::size_t>(g.num_vertices()), kUncolored);
  result.rounds = 1;
  std::vector<std::int64_t> used;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    used.clear();
    for (const auto& e : g.neighbors(v)) {
      if (e.dst == v) continue;
      used.push_back(result.color[static_cast<std::size_t>(e.dst)]);
    }
    result.color[static_cast<std::size_t>(v)] = smallest_free_color(used);
  }
  std::int64_t max_color = -1;
  for (const auto c : result.color) max_color = std::max(max_color, c);
  result.num_colors = max_color + 1;
  return result;
}

}  // namespace dlouvain::core
