#include "core/exchange_mode.hpp"

#include <algorithm>
#include <cctype>

namespace dlouvain::core {

std::optional<GhostExchangeMode> parse_exchange_mode(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "dense") return GhostExchangeMode::kDense;
  if (lower == "delta") return GhostExchangeMode::kDelta;
  if (lower == "auto") return GhostExchangeMode::kAuto;
  return std::nullopt;
}

std::string exchange_mode_label(GhostExchangeMode mode) {
  switch (mode) {
    case GhostExchangeMode::kDense: return "dense";
    case GhostExchangeMode::kDelta: return "delta";
    case GhostExchangeMode::kAuto: return "auto";
  }
  return "?";
}

}  // namespace dlouvain::core
