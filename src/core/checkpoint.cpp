#include "core/checkpoint.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "graph/binary_io.hpp"
#include "util/crc32.hpp"
#include "util/prng.hpp"

namespace dlouvain::core {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kMetaMagic = 0x444c434b4d455431ULL;   // "DLCKMET1"
constexpr std::uint64_t kChainMagic = 0x444c434b43484e31ULL;  // "DLCKCHN1"
constexpr std::uint64_t kCountersMagic = 0x444c434b43545231ULL;  // "DLCKCTR1"
// v2 (ISSUE 4): adds the sibling counters.bin file. The meta.bin field
// layout is unchanged, so v1 checkpoints stay readable -- they simply have
// no counters file and resume with zero restored counters.
// v3 (ISSUE 10): meta.bin appends the active vertex-range ownership map
// (the coarse graph's partition split points). The phase-boundary
// re-balancer can migrate ranges, making the partition no longer derivable
// from the rank count alone; resuming onto the wrong partition at the same
// p would silently change sweep orders. v1/v2 checkpoints (no map) resume
// on the even-vertices split, which is what every pre-rebalance rebuild
// used.
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kMinVersion = 1;

// ---- CRC-sealed little record files ------------------------------------

/// Append-only buffer writer; write() seals the file with a trailing CRC32.
class ByteWriter {
 public:
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof v); }
  void put_i32(std::int32_t v) { put_raw(&v, sizeof v); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u8(std::uint8_t v) { put_raw(&v, sizeof v); }
  void put_f64_bits(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  void write(const fs::path& path) const {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("checkpoint: cannot create " + path.string());
    file.write(reinterpret_cast<const char*>(buffer_.data()),
               static_cast<std::streamsize>(buffer_.size()));
    const std::uint32_t crc = util::crc32(buffer_.data(), buffer_.size());
    file.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    if (!file) throw std::runtime_error("checkpoint: write failed for " + path.string());
  }

 private:
  void put_raw(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::byte*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
  }
  std::vector<std::byte> buffer_;
};

/// Whole-file reader that verifies the trailing CRC32 before any field is
/// parsed. `ok()` is false (never throws) on missing/short/corrupt files so
/// validation can fall back to an older checkpoint.
class ByteReader {
 public:
  explicit ByteReader(const fs::path& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) return;
    buffer_.assign(std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>());
    if (buffer_.size() < sizeof(std::uint32_t)) return;
    std::uint32_t stored = 0;
    std::memcpy(&stored, buffer_.data() + buffer_.size() - sizeof stored, sizeof stored);
    buffer_.resize(buffer_.size() - sizeof stored);
    ok_ = stored == util::crc32(buffer_.data(), buffer_.size());
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }

  std::uint64_t get_u64() { return get_raw<std::uint64_t>(); }
  std::int64_t get_i64() { return get_raw<std::int64_t>(); }
  std::int32_t get_i32() { return get_raw<std::int32_t>(); }
  std::uint32_t get_u32() { return get_raw<std::uint32_t>(); }
  std::uint8_t get_u8() { return get_raw<std::uint8_t>(); }
  double get_f64_bits() { return std::bit_cast<double>(get_u64()); }

 private:
  template <typename T>
  T get_raw() {
    if (cursor_ + sizeof(T) > buffer_.size()) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, buffer_.data() + cursor_, sizeof v);
    cursor_ += sizeof v;
    return v;
  }
  std::vector<char> buffer_;
  std::size_t cursor_{0};
  bool ok_{false};
};

// ---- checkpoint pieces --------------------------------------------------

struct MetaInfo {
  int ranks{0};
  VertexId orig_global_n{0};
  CheckpointState state;
  std::uint64_t fingerprint{0};
  /// v3: the coarse graph's partition split points (ranks+1 entries), the
  /// EXPLICIT ownership map. Empty for v1/v2 checkpoints.
  std::vector<VertexId> starts;
};

std::optional<MetaInfo> read_meta(const fs::path& path) {
  ByteReader in(path);
  if (!in.ok()) return std::nullopt;
  if (in.get_u64() != kMetaMagic) return std::nullopt;
  const std::uint32_t version = in.get_u32();
  if (version < kMinVersion || version > kVersion) return std::nullopt;
  MetaInfo meta;
  meta.ranks = in.get_i32();
  meta.state.next_phase = in.get_i32();
  meta.state.phases_done = in.get_i32();
  meta.state.iterations_done = in.get_i64();
  meta.orig_global_n = in.get_i64();
  meta.state.prev_outer_mod = in.get_f64_bits();
  meta.state.forced_final = in.get_u8() != 0;
  meta.fingerprint = in.get_u64();
  if (!in.ok() || meta.ranks <= 0 || meta.state.next_phase < 0 || meta.orig_global_n < 0)
    return std::nullopt;
  if (version >= 3) {
    const std::int64_t count = in.get_i64();
    if (!in.ok() || count != meta.ranks + 1) return std::nullopt;
    meta.starts.resize(static_cast<std::size_t>(count));
    for (auto& s : meta.starts) s = in.get_i64();
    if (!in.ok() || meta.starts.front() != 0) return std::nullopt;
    for (std::size_t i = 1; i < meta.starts.size(); ++i) {
      if (meta.starts[i] < meta.starts[i - 1]) return std::nullopt;
    }
  }
  return meta;
}

std::optional<std::vector<VertexId>> read_chain(const fs::path& path) {
  ByteReader in(path);
  if (!in.ok()) return std::nullopt;
  if (in.get_u64() != kChainMagic) return std::nullopt;
  const std::int64_t n = in.get_i64();
  if (!in.ok() || n < 0) return std::nullopt;
  std::vector<VertexId> chain(static_cast<std::size_t>(n));
  for (auto& v : chain) v = in.get_i64();
  if (!in.ok()) return std::nullopt;
  return chain;
}

/// Best-effort read of the v2 counters sidecar: zeros (never nullopt-like
/// failure) when the file is absent, short or corrupt, so a v1 checkpoint or
/// a damaged sidecar degrades to "no restored counters" instead of refusing
/// to resume.
RunCounters read_counters(const fs::path& path) {
  ByteReader in(path);
  if (!in.ok()) return {};
  if (in.get_u64() != kCountersMagic) return {};
  RunCounters c;
  c.seconds = in.get_f64_bits();
  c.messages = in.get_i64();
  c.bytes = in.get_i64();
  if (!in.ok() || c.messages < 0 || c.bytes < 0) return {};
  return c;
}

bool graph_file_valid(const fs::path& path) {
  try {
    return graph::verify_binary_crc(path.string());
  } catch (const std::exception&) {
    return false;
  }
}

/// Phase indices of `dir`'s phase_<k> subdirectories, newest first. Does not
/// validate contents.
std::vector<int> candidate_phases(const std::string& dir) {
  std::vector<int> phases;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "phase_";
    if (name.rfind(prefix, 0) != 0) continue;
    int k = -1;
    const auto* begin = name.data() + prefix.size();
    const auto* end = name.data() + name.size();
    if (std::from_chars(begin, end, k).ptr != end || k < 0) continue;
    phases.push_back(k);
  }
  std::sort(phases.rbegin(), phases.rend());
  return phases;
}

fs::path phase_dir(const std::string& dir, int phase) {
  return fs::path(dir) / ("phase_" + std::to_string(phase));
}

/// Full structural validation (meta + chain CRCs, graph file CRC).
std::optional<MetaInfo> validate_checkpoint(const std::string& dir, int phase) {
  const fs::path base = phase_dir(dir, phase);
  auto meta = read_meta(base / "meta.bin");
  if (!meta) return std::nullopt;
  ByteReader chain_probe(base / "chain.bin");
  if (!chain_probe.ok()) return std::nullopt;
  if (!graph_file_valid(base / "graph.dlel")) return std::nullopt;
  return meta;
}

}  // namespace

std::uint64_t config_fingerprint(const DistConfig& cfg) {
  // Only fields that change the trajectory of the run; telemetry/threading
  // knobs are deliberately absent (results are identical across them), as
  // are ghost_exchange_mode / delta_exchange_crossover (wire format only)
  // and overlap (only moves the blocking waits) -- a checkpoint written
  // under any setting of those resumes under any other.
  std::uint64_t h = 0x646c6f75636b7074ULL;  // "dlouckpt"
  const auto mix = [&h](std::uint64_t v) { h = util::hash_combine(h, v); };
  const auto mix_f = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };

  mix(cfg.base.seed);
  mix_f(cfg.base.threshold);
  mix(static_cast<std::uint64_t>(cfg.base.max_phases));
  mix(static_cast<std::uint64_t>(cfg.base.max_iterations_per_phase));
  mix_f(cfg.base.resolution);
  mix(cfg.base.early_termination ? 1 : 0);
  mix_f(cfg.base.et_alpha);
  mix_f(cfg.base.et_inactive_cutoff);
  mix(cfg.base.vertex_following ? 1 : 0);
  mix(static_cast<std::uint64_t>(cfg.variant));
  mix(cfg.add_threshold_cycling ? 1 : 0);
  for (const double tau : cfg.cycle_thresholds) mix_f(tau);
  for (const int len : cfg.cycle_lengths) mix(static_cast<std::uint64_t>(len));
  mix_f(cfg.etc_exit_fraction);
  mix(cfg.use_neighbor_exchange ? 1 : 0);
  mix(cfg.use_coloring ? 1 : 0);
  // An ENABLED re-balancer changes which partitions later phases run on,
  // and sweep orders are partition-keyed -- trajectory-relevant. Disabled,
  // the fields are deliberately not mixed, so every config written before
  // the knob existed keeps its fingerprint.
  if (cfg.rebalance.enabled) {
    mix(0x726562616c616e63ULL);  // "rebalanc"
    mix_f(cfg.rebalance.threshold);
  }
  return h;
}

void checkpoint_save(comm::Comm& comm, const std::string& dir,
                     const graph::DistGraph& g, std::span<const VertexId> orig_to_cur,
                     VertexId orig_global_n, const CheckpointState& state,
                     std::uint64_t fingerprint) {
  // All comm traffic below (chain gather, barriers, collective graph write)
  // is checkpoint I/O, not algorithm work: reclassify it so Result::messages
  // and Result::bytes mean the same thing with and without checkpointing.
  const util::TrafficReclassScope reclass(comm.counters(),
                                          util::Counter::kCheckpointMessages,
                                          util::Counter::kCheckpointBytes);
  // Rank-order concatenation of the per-rank slices IS the global array
  // (the chain lives on contiguous partitions).
  const auto chain = comm.gatherv<VertexId>(
      std::vector<VertexId>(orig_to_cur.begin(), orig_to_cur.end()), 0);

  const fs::path tmp = fs::path(dir) / (".tmp_phase_" + std::to_string(state.next_phase));
  if (comm.rank() == 0) {
    fs::create_directories(dir);
    fs::remove_all(tmp);
    fs::create_directories(tmp);
  }
  comm.barrier();  // tmp dir exists before the collective graph write

  graph::write_distributed(comm, g, (tmp / "graph.dlel").string());

  if (comm.rank() == 0) {
    ByteWriter meta;
    meta.put_u64(kMetaMagic);
    meta.put_u32(kVersion);
    meta.put_i32(comm.size());
    meta.put_i32(state.next_phase);
    meta.put_i32(state.phases_done);
    meta.put_i64(state.iterations_done);
    meta.put_i64(orig_global_n);
    meta.put_f64_bits(state.prev_outer_mod);
    meta.put_u8(state.forced_final ? 1 : 0);
    meta.put_u64(fingerprint);
    // v3: the ACTIVE ownership map (split points of the coarse graph's
    // partition, identical on every rank) -- not derivable from comm.size()
    // once the re-balancer has migrated ranges.
    const auto& starts = g.partition().starts();
    meta.put_i64(static_cast<std::int64_t>(starts.size()));
    for (const VertexId s : starts) meta.put_i64(s);
    meta.write(tmp / "meta.bin");

    ByteWriter chain_out;
    chain_out.put_u64(kChainMagic);
    chain_out.put_i64(static_cast<std::int64_t>(chain.size()));
    for (const VertexId v : chain) chain_out.put_i64(v);
    chain_out.write(tmp / "chain.bin");

    ByteWriter counters_out;
    counters_out.put_u64(kCountersMagic);
    counters_out.put_f64_bits(state.counters.seconds);
    counters_out.put_i64(state.counters.messages);
    counters_out.put_i64(state.counters.bytes);
    counters_out.write(tmp / "counters.bin");

    // Commit: tmp -> phase_<k>, then drop superseded checkpoints. A crash
    // before the rename leaves the previous checkpoint untouched.
    const fs::path final_dir = phase_dir(dir, state.next_phase);
    fs::remove_all(final_dir);
    fs::rename(tmp, final_dir);
    {
      std::ofstream latest(fs::path(dir) / "LATEST", std::ios::trunc);
      latest << final_dir.filename().string() << '\n';
    }
    for (const int k : candidate_phases(dir)) {
      if (k != state.next_phase) fs::remove_all(phase_dir(dir, k));
    }

    std::error_code ec;
    std::int64_t file_bytes = 0;
    for (const auto& entry : fs::directory_iterator(final_dir, ec)) {
      if (entry.is_regular_file(ec))
        file_bytes += static_cast<std::int64_t>(entry.file_size(ec));
    }
    comm.counters()[util::Counter::kCheckpointFileBytes] += file_bytes;
  }
  comm.barrier();  // checkpoint committed before any rank proceeds
}

std::optional<ResumedState> checkpoint_load(comm::Comm& comm, const std::string& dir,
                                            std::uint64_t fingerprint) {
  // Load traffic is checkpoint I/O, same as save (see checkpoint_save).
  const util::TrafficReclassScope reclass(comm.counters(),
                                          util::Counter::kCheckpointMessages,
                                          util::Counter::kCheckpointBytes);
  // Rank 0 picks the newest structurally-valid checkpoint; everyone agrees
  // on the verdict before any collective I/O.
  enum : std::int64_t { kNone = 0, kOk = 1, kConfigMismatch = 2 };
  std::vector<std::int64_t> header(11, 0);
  std::vector<VertexId> stored_starts;  // v3 ownership map; empty for v1/v2
  if (comm.rank() == 0) {
    for (const int k : candidate_phases(dir)) {
      const auto meta = validate_checkpoint(dir, k);
      if (!meta) continue;  // corrupt/incomplete: fall back to an older one
      if (meta->fingerprint != fingerprint) {
        header[0] = kConfigMismatch;
        break;
      }
      stored_starts = meta->starts;
      const RunCounters counters = read_counters(phase_dir(dir, k) / "counters.bin");
      header = {kOk,
                k,
                meta->state.next_phase,
                meta->state.phases_done,
                meta->state.iterations_done,
                meta->orig_global_n,
                static_cast<std::int64_t>(
                    std::bit_cast<std::uint64_t>(meta->state.prev_outer_mod)),
                meta->state.forced_final ? 1 : 0,
                static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(counters.seconds)),
                counters.messages,
                counters.bytes};
      break;
    }
  }
  header = comm.broadcast(std::move(header));
  stored_starts = comm.broadcast(std::move(stored_starts));

  if (header[0] == kConfigMismatch)
    throw std::runtime_error(
        "checkpoint_load: checkpoint in " + dir +
        " was written with a different configuration; refusing to resume "
        "(delete the directory to start fresh)");
  if (header[0] == kNone) return std::nullopt;

  const int chosen = static_cast<int>(header[1]);
  ResumedState resumed;
  resumed.state.next_phase = static_cast<int>(header[2]);
  resumed.state.phases_done = static_cast<int>(header[3]);
  resumed.state.iterations_done = header[4];
  resumed.orig_global_n = header[5];
  resumed.state.prev_outer_mod =
      std::bit_cast<double>(static_cast<std::uint64_t>(header[6]));
  resumed.state.forced_final = header[7] != 0;
  resumed.state.counters.seconds =
      std::bit_cast<double>(static_cast<std::uint64_t>(header[8]));
  resumed.state.counters.messages = header[9];
  resumed.state.counters.bytes = header[10];

  // Coarse-graph partition: v3 checkpoints carry the active ownership map
  // explicitly (the phase-boundary re-balancer may have migrated ranges, so
  // the partition is no longer derivable from the rank count). Same rank
  // count -> load onto the recorded map, reproducing the exact partition.
  // Different rank count, or a v1/v2 checkpoint with no map -> even-vertices
  // split: exact for any never-rebalanced run, and a valid repartition
  // otherwise (different-p resume was never bitwise anyway; see the
  // determinism contract in checkpoint.hpp).
  const fs::path graph_path = phase_dir(dir, chosen) / "graph.dlel";
  if (static_cast<int>(stored_starts.size()) == comm.size() + 1) {
    resumed.graph = graph::load_distributed(
        comm, graph_path.string(), graph::Partition1D(std::move(stored_starts)));
  } else {
    resumed.graph = graph::load_distributed(comm, graph_path.string(),
                                            graph::PartitionKind::kEvenVertices);
  }

  // Chain: rank 0 rereads, everyone takes its contiguous slice. Slice
  // boundaries only need to concatenate in rank order; the even split works
  // at any rank count.
  std::vector<VertexId> chain;
  if (comm.rank() == 0) {
    auto loaded = read_chain(phase_dir(dir, chosen) / "chain.bin");
    if (!loaded || static_cast<VertexId>(loaded->size()) != resumed.orig_global_n)
      throw std::runtime_error("checkpoint_load: chain.bin of " + dir +
                               " changed underneath us");
    chain = std::move(*loaded);
  }
  chain = comm.broadcast(std::move(chain));
  const auto part = graph::partition_even_vertices(resumed.orig_global_n, comm.size());
  resumed.orig_to_cur.assign(
      chain.begin() + part.begin(comm.rank()), chain.begin() + part.end(comm.rank()));
  return resumed;
}

std::optional<int> checkpoint_latest_phase(const std::string& dir) {
  for (const int k : candidate_phases(dir)) {
    if (validate_checkpoint(dir, k)) return k;
  }
  return std::nullopt;
}

std::optional<RunCounters> checkpoint_latest_counters(const std::string& dir) {
  for (const int k : candidate_phases(dir)) {
    if (validate_checkpoint(dir, k))
      return read_counters(phase_dir(dir, k) / "counters.bin");
  }
  return std::nullopt;
}

// ---- checkpoint directory ownership ------------------------------------

namespace {

/// Is the pid named in a LOCK line still running? EPERM means "alive but
/// not ours", which still counts as alive; only a confirmed ESRCH (or an
/// unparseable line, which we treat as live to stay safe) frees the lock.
bool lock_owner_alive(const std::string& line) {
  const std::string_view prefix = "pid ";
  if (line.rfind(prefix, 0) != 0) return true;
  int pid = 0;
  const char* first = line.data() + prefix.size();
  const auto [ptr, ec] = std::from_chars(first, line.data() + line.size(), pid);
  if (ec != std::errc{} || ptr == first || pid <= 0) return true;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

}  // namespace

CheckpointDirLock::CheckpointDirLock(std::string dir, std::string owner_tag) {
  fs::create_directories(dir);
  const fs::path path = fs::path(dir) / "LOCK";
  owner_line_ = "pid " + std::to_string(static_cast<long>(::getpid())) +
                " session " + std::move(owner_tag);
  // O_EXCL creation is the atomic claim; a stale lock (holder pid gone) is
  // unlinked and re-raced -- if two reclaimers race, one loses the O_EXCL
  // and re-reads the winner's fresh line.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const auto written =
          ::write(fd, owner_line_.data(), owner_line_.size());
      ::close(fd);
      if (written != static_cast<ssize_t>(owner_line_.size())) {
        ::unlink(path.c_str());
        throw std::runtime_error("checkpoint: cannot write " + path.string());
      }
      path_ = path.string();
      return;
    }
    if (errno != EEXIST)
      throw std::runtime_error("checkpoint: cannot create " + path.string());
    std::string holder;
    {
      std::ifstream in(path);
      std::getline(in, holder);
    }
    // A vanished or empty file means the holder released (or is mid-write)
    // between our open and read; retry the claim.
    if (!holder.empty() && lock_owner_alive(holder))
      throw CheckpointDirBusy(holder, dir);
    ::unlink(path.c_str());
  }
  throw std::runtime_error("checkpoint: could not claim " + path.string() +
                           " (lock churn)");
}

CheckpointDirLock::~CheckpointDirLock() { release(); }

CheckpointDirLock::CheckpointDirLock(CheckpointDirLock&& other) noexcept
    : path_(std::move(other.path_)), owner_line_(std::move(other.owner_line_)) {
  other.path_.clear();
}

CheckpointDirLock& CheckpointDirLock::operator=(CheckpointDirLock&& other) noexcept {
  if (this != &other) {
    release();
    path_ = std::move(other.path_);
    owner_line_ = std::move(other.owner_line_);
    other.path_.clear();
  }
  return *this;
}

void CheckpointDirLock::release() noexcept {
  if (!path_.empty()) ::unlink(path_.c_str());
  path_.clear();
}

}  // namespace dlouvain::core
