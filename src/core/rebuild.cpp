#include "core/rebuild.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace dlouvain::core {

namespace {

struct ResolveRecord {
  CommunityId old_id;
  VertexId new_id;
};

}  // namespace

RebuildOutput rebuild(comm::Comm& comm, const graph::DistGraph& g,
                      std::span<const CommunityId> owned_community,
                      const GhostCommunities& ghosts, const CommunityLedger& ledger,
                      util::ThreadPool* pool, bool build_graph,
                      const DistConfig::RebalanceConfig& rebalance, int phase) {
  const int p = comm.size();

  // Steps 1-2: surviving local communities, renumbered 0..n_i-1 in ascending
  // old-id order. A community survives iff it still has members anywhere;
  // the ledger's delta-maintained sizes are authoritative at its owner.
  std::unordered_map<CommunityId, VertexId> new_id;  // owned survivors only
  {
    VertexId next = 0;
    for (VertexId lc = 0; lc < g.local_count(); ++lc) {
      if (ledger.owned()[static_cast<std::size_t>(lc)].size > 0)
        new_id[g.to_global(lc)] = next++;
    }
  }
  const auto local_survivors = static_cast<VertexId>(new_id.size());

  // Step 3: global renumbering via parallel prefix sum.
  const VertexId offset = comm.exscan_sum(local_survivors);
  const VertexId new_global_n = comm.allreduce_sum(local_survivors);
  for (auto& [old_id, id] : new_id) id += offset;

  // Step 4: resolve old->new ids for every community our edge lists touch.
  // Collect the needed set: communities of owned vertices and of ghosts.
  std::vector<CommunityId> needed(owned_community.begin(), owned_community.end());
  needed.insert(needed.end(), ghosts.values().begin(), ghosts.values().end());
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  std::vector<std::vector<CommunityId>> requests(static_cast<std::size_t>(p));
  for (const CommunityId c : needed) {
    if (!g.owns(c)) requests[static_cast<std::size_t>(g.owner(c))].push_back(c);
  }
  const auto incoming = comm.alltoallv<CommunityId>(requests);

  std::vector<std::vector<ResolveRecord>> replies(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (const CommunityId c : incoming[static_cast<std::size_t>(r)]) {
      const auto it = new_id.find(c);
      if (it == new_id.end())
        throw std::logic_error("rebuild: peer referenced a dead community");
      replies[static_cast<std::size_t>(r)].push_back(ResolveRecord{c, it->second});
    }
  }
  const auto answers = comm.alltoallv<ResolveRecord>(std::move(replies));

  std::unordered_map<CommunityId, VertexId> resolve = new_id;  // owned + remote
  for (const auto& from_rank : answers)
    for (const auto& rec : from_rank) resolve.emplace(rec.old_id, rec.new_id);

  const auto resolve_or_throw = [&](CommunityId c) {
    const auto it = resolve.find(c);
    if (it == resolve.end()) throw std::logic_error("rebuild: unresolved community id");
    return it->second;
  };

  RebuildOutput out;
  out.new_global_n = new_global_n;
  out.new_vertex_of_current.resize(static_cast<std::size_t>(g.local_count()));
  for (VertexId lv = 0; lv < g.local_count(); ++lv)
    out.new_vertex_of_current[static_cast<std::size_t>(lv)] =
        resolve_or_throw(owned_community[static_cast<std::size_t>(lv)]);
  if (!build_graph) return out;

  // Step 5: partial new edge lists. Weight conventions (see louvain/coarsen
  // for the serial twin): an intra-community arc between DISTINCT vertices
  // is emitted at half weight toward the meta self loop -- both directions
  // exist somewhere in the distributed graph, so the halves sum back to the
  // full pair weight -- while an existing self loop keeps face value.
  //
  // O(arcs) pass #1, threaded: vertex lv's arcs land at its CSR offset, so
  // every thread writes a disjoint slice and the emitted array is identical
  // to a serial walk. The resolve map is read-only here.
  std::vector<Edge> arcs(static_cast<std::size_t>(g.local().num_arcs()));
  const auto& row_offsets = g.local().offsets();
  const auto& dst_slot = g.dst_slots();
  const auto& ghost_comm = ghosts.values();
  const auto local_n = static_cast<std::int64_t>(g.local_count());
  util::parallel_for(pool, g.local_count(), [&](int, std::int64_t begin,
                                                std::int64_t end) {
    for (VertexId lv = begin; lv < end; ++lv) {
      const VertexId gv = g.to_global(lv);
      const VertexId nsrc =
          resolve_or_throw(owned_community[static_cast<std::size_t>(lv)]);
      auto pos = static_cast<std::size_t>(row_offsets[static_cast<std::size_t>(lv)]);
      for (const auto& e : g.local().neighbors(lv)) {
        const std::int64_t d = dst_slot[pos];  // pos tracks the arc index
        const CommunityId cu =
            d < local_n ? owned_community[static_cast<std::size_t>(d)]
                        : ghost_comm[static_cast<std::size_t>(d - local_n)];
        const VertexId ndst = resolve_or_throw(cu);
        if (nsrc == ndst) {
          arcs[pos++] = {nsrc, ndst, e.dst == gv ? e.weight : e.weight / 2};
        } else {
          arcs[pos++] = {nsrc, ndst, e.weight};
        }
      }
    }
  });

  // ISSUE 10: pick the new graph's range boundaries before the step 6-7
  // shipment. The even-vertex split is the incumbent; when re-balancing is
  // enabled, screen the allreduced arc-count imbalance and, past the
  // threshold, re-cut edge-balanced boundaries (core/rebalance.hpp). The
  // verdict is computed from allreduced integers, so it is identical on
  // every rank and the build below stays collectively aligned. Sampling
  // traffic is model overhead, not algorithm work: reclassified (like the
  // overlap probes) so comm.messages stays comparable on vs off.
  graph::Partition1D part;
  if (rebalance.enabled) {
    const util::TraceSpan span(comm.trace(), "rebalance", "collective", phase);
    const util::TrafficReclassScope reclass(comm.counters(),
                                            util::Counter::kRebalanceMessages,
                                            util::Counter::kRebalanceBytes);
    // Step-1 screen, O(p): per-rank arc counts under the even split. `arcs`
    // is pre-coalesce (duplicate u->v pairs not yet merged), which tracks
    // both shipment cost and sweep cost closely enough for a screen.
    const auto even = graph::partition_even_vertices(new_global_n, p);
    std::vector<std::int64_t> local_loads(static_cast<std::size_t>(p), 0);
    for (const Edge& a : arcs)
      ++local_loads[static_cast<std::size_t>(even.owner(a.src))];
    const auto loads = comm.allreduce_sum_vec<std::int64_t>(local_loads);
    const double lambda_pre = load_imbalance(loads);
    if (lambda_pre < rebalance.threshold) {
      out.rebalance.evaluated = true;
      out.rebalance.lambda_pre = out.rebalance.lambda_post = lambda_pre;
      out.rebalance.partition = even;
    } else {
      // Step 2, O(n_coarse): the per-new-vertex arc histogram, then the
      // pure decision (which may still decline on no-strict-improvement).
      // The histogram is LOCALLY DEDUPED first: a big community collapses
      // thousands of parallel (u,v) arcs into one coalesced arc, so raw
      // multiplicities over-weight heavy coarse vertices by orders of
      // magnitude and the min-max cut would balance shipment cost instead
      // of next-phase sweep cost. Per-rank dedup (sort + unique, no extra
      // traffic) removes the dominant within-rank multiplicity; the
      // residual across-rank copies over-count a pair at most p-fold.
      std::vector<std::pair<VertexId, VertexId>> pairs;
      pairs.reserve(arcs.size());
      for (const Edge& a : arcs) pairs.emplace_back(a.src, a.dst);
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
      std::vector<std::int64_t> hist(static_cast<std::size_t>(new_global_n), 0);
      for (const auto& [src, dst] : pairs) ++hist[static_cast<std::size_t>(src)];
      hist = comm.allreduce_sum_vec<std::int64_t>(hist);
      out.rebalance = decide_rebalance(new_global_n, p, rebalance.threshold, hist);
    }
    part = out.rebalance.partition;
  } else {
    part = graph::partition_even_vertices(new_global_n, p);
  }
  out.graph = graph::DistGraph::build(comm, part, std::move(arcs), /*symmetrize=*/false,
                                      pool);
  return out;
}

}  // namespace dlouvain::core
