// CommunityLedger: the distributed community bookkeeping of paper
// Algorithm 3.
//
// Community ids live in the vertex-id space and are co-partitioned with
// vertices, so the owner of community c is the owner of vertex c. Each rank
// stores, for its OWNED communities, the authoritative incident degree a_c
// and member count; for remote ("ghost") communities its vertices reference,
// a cached copy plus a running delta queue of local moves whose
// source/target communities are owned elsewhere -- flushed to the owners at
// the end of every iteration ("send updated information on ghost communities
// to owner processes").
//
// -- The compact slot index ------------------------------------------------
// Every community this rank can currently see has a SLOT: owned community c
// sits at slot to_local(c) in [0, local_count()); ghost communities get
// slots local_count() + i, handed out once on first retain() and stable for
// the rest of the phase (evictions are lazy -- a dead entry keeps its slot
// and revives on re-retain). The hot loops work entirely in slot space --
// info_by_slot(), apply_move_slots(), retain_slot()/release_slot() are plain
// array reads -- so the per-edge/per-move hash lookups of the id-keyed API
// disappear from the sweep. The id -> slot map behind retain()/slot_of() is
// a small open-addressing table probed only when a NEW community id shows up
// (a few per iteration, not a few per edge).
//
// -- Incremental refresh (subscriber push) ---------------------------------
// The seed implementation refetched every needed ghost community each
// iteration. This ledger instead keeps a refcount per ghost community --
// how many local slots (owned vertices, ghost mirrors) currently reference
// it, maintained by retain()/release() from the move log and the ghost-
// exchange change log -- and each owner tracks which ranks subscribe to each
// of its communities. refresh() then ships only what changed:
//   * subscribers request ids whose refcount just went positive (and aren't
//     cached), and cancel ids whose refcount hit zero;
//   * owners push fresh records for DIRTY communities (touched since the
//     last refresh by a local move or an incoming delta) to their current
//     subscribers, plus replies for the new requests.
// A community nobody touched is pushed to nobody: the subscriber's cached
// record and the owner's authoritative one are still bitwise identical, so
// every info() read returns exactly what a full refetch would have -- the
// refresh is an optimization, not a semantic change.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "graph/dist_graph.hpp"
#include "util/types.hpp"

namespace dlouvain::core {

struct CommunityInfo {
  Weight degree{0};   ///< a_c: summed weighted degree of members
  VertexId size{0};   ///< member count
};

/// Wire record of the iteration-end delta flush (in the header so the
/// ledger can hold an in-flight PendingAlltoallv of them).
struct LedgerDeltaRecord {
  CommunityId community;
  Weight degree;
  std::int64_t size;
};

class CommunityLedger {
 public:
  /// Initialize for a fresh phase over `g`: every vertex in its own
  /// community (a_c = k_c, size 1).
  explicit CommunityLedger(const graph::DistGraph& g);

  /// Authoritative or cached info for community c. c must be either owned or
  /// a live cached ghost (retained and refreshed); anything else throws
  /// std::out_of_range -- a protocol bug. Id-keyed convenience for tests and
  /// cold paths; hot loops use info_by_slot().
  [[nodiscard]] const CommunityInfo& info(CommunityId c) const;

  [[nodiscard]] bool owns(CommunityId c) const { return graph_->owns(c); }

  // -- compact slot index -------------------------------------------------
  /// One past the largest slot currently handed out (owned + ghost).
  [[nodiscard]] std::int64_t slot_count() const noexcept {
    return local_n_ + static_cast<std::int64_t>(ghost_ids_.size());
  }

  /// Slot of community c: to_local(c) when owned, the stable ghost slot when
  /// previously retained, -1 otherwise.
  [[nodiscard]] std::int64_t slot_of(CommunityId c) const;

  /// Global community id sitting at `slot`.
  [[nodiscard]] CommunityId id_of_slot(std::int64_t slot) const {
    assert(slot >= 0 && slot < slot_count());
    return slot < local_n_
               ? graph_->to_global(static_cast<VertexId>(slot))
               : ghost_ids_[static_cast<std::size_t>(slot - local_n_)];
  }

  /// Info record at `slot` (no liveness check -- hot path; the sweep only
  /// holds slots whose records the last refresh made authoritative).
  [[nodiscard]] const CommunityInfo& info_by_slot(std::int64_t slot) const {
    assert(slot >= 0 && slot < slot_count());
    return slot < local_n_
               ? owned_[static_cast<std::size_t>(slot)]
               : ghost_info_[static_cast<std::size_t>(slot - local_n_)];
  }

  // -- reference counting (drives the incremental refresh) ----------------
  /// A local slot now references community c: bump its refcount (creating
  /// its ghost entry on first sight) and return its slot. Owned communities
  /// are always available and not counted.
  std::int64_t retain(CommunityId c);
  /// A local slot stopped referencing community c.
  void release(CommunityId c);
  /// Slot-keyed twins for the sweep's apply loop (no id hashing).
  void retain_slot(std::int64_t slot);
  void release_slot(std::int64_t slot);

  // -- Alg. 3 line 9: apply a vertex move locally and immediately ---------
  /// Owned communities update in place; remote communities update the
  /// cached copy AND queue a delta for the owner.
  void apply_move_slots(std::int64_t from_slot, std::int64_t to_slot, Weight k);
  /// Id-keyed convenience (tests, cold paths): throws std::out_of_range if
  /// either community is an unknown ghost.
  void apply_move(CommunityId from, CommunityId to, Weight k);

  /// Iteration-start refresh: request newly-needed ghost records, cancel
  /// dropped subscriptions, push dirty owned records to subscribers.
  /// Collective.
  void refresh(comm::Comm& comm);

  /// Iteration-end flush: ship queued deltas to community owners and apply
  /// the incoming ones. Collective.
  void flush_deltas(comm::Comm& comm);

  /// Split flush (ISSUE 5): _begin deposits the outgoing deltas and posts
  /// the receives; with `overlap` the collective stays in flight while the
  /// caller computes (anything that reads no ledger state), else it blocks
  /// in place. _finish completes the exchange and applies incoming deltas
  /// in fixed rank order. flush_deltas == begin(false) + finish.
  void flush_deltas_begin(comm::Comm& comm, bool overlap);
  void flush_deltas_finish(comm::Comm& comm);

  /// Wait/hidden timing of the last completed flush (overlap telemetry).
  [[nodiscard]] double flush_wait_seconds() const noexcept { return flush_wait_seconds_; }
  [[nodiscard]] double flush_hidden_seconds() const noexcept {
    return flush_hidden_seconds_;
  }

  /// Sum of a_c^2 over OWNED communities (the local share of the modularity
  /// degree term).
  [[nodiscard]] Weight owned_degree_term() const;

  /// Number of owned communities with at least one member (the surviving
  /// local clusters counted during graph reconstruction).
  [[nodiscard]] VertexId owned_survivors() const;

  /// Owned community info by local index (for the rebuild's renumbering).
  [[nodiscard]] const std::vector<CommunityInfo>& owned() const { return owned_; }

 private:
  [[nodiscard]] std::int64_t find_ghost(CommunityId c) const;
  std::int64_t create_ghost(CommunityId c);
  void grow_table();
  void retain_idx(std::int64_t idx);
  void release_idx(std::int64_t idx);
  void touch_slot(std::int64_t slot, Weight dk, std::int64_t dsize);
  void mark_dirty(std::int64_t lc);

  const graph::DistGraph* graph_;
  std::int64_t local_n_{0};

  // Owned communities (authoritative), by local index.
  std::vector<CommunityInfo> owned_;
  std::vector<char> owned_dirty_;          ///< touched since the last refresh
  std::vector<std::int64_t> dirty_list_;   ///< local indices, deduped
  std::size_t sub_words_{0};               ///< subscriber bitmask words/comm
  std::vector<std::uint64_t> subscribers_; ///< local_n * sub_words_ bits

  // Ghost communities, by ghost index (slot - local_n_). Parallel arrays.
  std::vector<CommunityId> ghost_ids_;
  std::vector<CommunityInfo> ghost_info_;
  std::vector<std::int64_t> ghost_refcount_;
  std::vector<char> ghost_live_;           ///< cached record is authoritative
  // Pending deltas of local moves against ghost communities (flat
  // scatter: touched list + per-entry accumulators).
  std::vector<Weight> pending_degree_;
  std::vector<std::int64_t> pending_size_;
  std::vector<char> pending_flag_;
  std::vector<std::int64_t> pending_touched_;
  // Refresh candidates, appended on refcount edges, filtered at refresh().
  std::vector<char> fetch_flag_;
  std::vector<char> unsub_flag_;
  std::vector<std::int64_t> maybe_fetch_;
  std::vector<std::int64_t> maybe_unsub_;

  // Open-addressing id -> ghost index table (linear probing, insert-only;
  // lazy eviction keeps dead entries resident).
  std::vector<std::int64_t> table_;
  std::size_t table_mask_{0};

  // In-flight delta flush between flush_deltas_begin and _finish.
  std::optional<comm::PendingAlltoallv<LedgerDeltaRecord>> pending_flush_;
  double flush_wait_seconds_{0};
  double flush_hidden_seconds_{0};
};

}  // namespace dlouvain::core
