// CommunityLedger: the distributed community bookkeeping of paper
// Algorithm 3.
//
// Community ids live in the vertex-id space and are co-partitioned with
// vertices, so the owner of community c is the owner of vertex c. Each rank
// stores, for its OWNED communities, the authoritative incident degree a_c
// and member count; for remote ("ghost") communities its vertices reference,
// it keeps a cached copy refreshed at the top of every iteration (the
// request/reply step), plus a running delta queue of local moves whose
// source/target communities are owned elsewhere -- flushed to the owners at
// the end of every iteration ("send updated information on ghost communities
// to owner processes").
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "comm/comm.hpp"
#include "graph/dist_graph.hpp"
#include "util/types.hpp"

namespace dlouvain::core {

struct CommunityInfo {
  Weight degree{0};   ///< a_c: summed weighted degree of members
  VertexId size{0};   ///< member count
};

class CommunityLedger {
 public:
  /// Initialize for a fresh phase over `g`: every vertex in its own
  /// community (a_c = k_c, size 1).
  explicit CommunityLedger(const graph::DistGraph& g);

  /// Authoritative or cached info for community c. c must be either owned or
  /// present in the ghost cache (i.e. in the `needed` set of the last
  /// refresh); anything else throws std::out_of_range -- a protocol bug.
  [[nodiscard]] const CommunityInfo& info(CommunityId c) const;

  [[nodiscard]] bool owns(CommunityId c) const { return graph_->owns(c); }

  /// Apply a vertex move locally and immediately (paper Alg. 3 line 9):
  /// owned communities update in place; remote communities update the cached
  /// copy AND queue a delta for the owner.
  void apply_move(CommunityId from, CommunityId to, Weight k);

  /// Iteration-start refresh: fetch authoritative info for every unowned
  /// community in `needed` (sorted unique ids; owned entries are ignored).
  /// Collective. Clears the previous cache.
  void refresh(comm::Comm& comm, std::span<const CommunityId> needed);

  /// Iteration-end flush: ship queued deltas to community owners and apply
  /// the incoming ones. Collective.
  void flush_deltas(comm::Comm& comm);

  /// Sum of a_c^2 over OWNED communities (the local share of the modularity
  /// degree term).
  [[nodiscard]] Weight owned_degree_term() const;

  /// Number of owned communities with at least one member (the surviving
  /// local clusters counted during graph reconstruction).
  [[nodiscard]] VertexId owned_survivors() const;

  /// Owned community info by local index (for the rebuild's renumbering).
  [[nodiscard]] const std::vector<CommunityInfo>& owned() const { return owned_; }

 private:
  struct Delta {
    CommunityId community;
    Weight degree;
    std::int64_t size;
  };

  const graph::DistGraph* graph_;
  std::vector<CommunityInfo> owned_;  ///< by local community index
  std::unordered_map<CommunityId, CommunityInfo> ghost_cache_;
  std::unordered_map<CommunityId, Delta> pending_;  ///< keyed by community
};

}  // namespace dlouvain::core
