#include "core/components.hpp"

#include <algorithm>
#include <numeric>

#include "core/ghost_exchange.hpp"

namespace dlouvain::core {

DistComponentsResult dist_connected_components(comm::Comm& comm,
                                               const graph::DistGraph& g) {
  const VertexId local_n = g.local_count();

  DistComponentsResult result;
  result.component.resize(static_cast<std::size_t>(local_n));
  std::iota(result.component.begin(), result.component.end(), g.v_begin());
  auto ghost_labels = GhostField<VertexId>::identity(g);

  for (;;) {
    ghost_labels.exchange(comm, result.component);

    // Local sweeps to a LOCAL fixed point before the next exchange: label
    // drops propagate through the local subgraph at full speed and only
    // cross-rank hops pay a communication round.
    std::int64_t local_changes = 0;
    bool swept_changes = true;
    while (swept_changes) {
      swept_changes = false;
      for (VertexId lv = 0; lv < local_n; ++lv) {
        const VertexId gv = g.to_global(lv);
        VertexId label = result.component[static_cast<std::size_t>(lv)];
        for (const auto& e : g.local().neighbors(lv)) {
          if (e.dst == gv) continue;
          const VertexId other =
              g.owns(e.dst)
                  ? result.component[static_cast<std::size_t>(g.to_local(e.dst))]
                  : ghost_labels.of(e.dst);
          label = std::min(label, other);
        }
        if (label < result.component[static_cast<std::size_t>(lv)]) {
          result.component[static_cast<std::size_t>(lv)] = label;
          swept_changes = true;
          ++local_changes;
        }
      }
    }

    ++result.rounds;
    if (comm.allreduce_sum(local_changes) == 0) break;
  }

  // A component is counted by the rank owning its label (the smallest
  // member id, which the owner of that vertex always holds).
  VertexId local_roots = 0;
  for (VertexId lv = 0; lv < local_n; ++lv) {
    if (result.component[static_cast<std::size_t>(lv)] == g.to_global(lv)) ++local_roots;
  }
  result.count = comm.allreduce_sum(local_roots);
  return result;
}

}  // namespace dlouvain::core
