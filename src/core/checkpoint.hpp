// Phase-boundary checkpoints for crash-recovery restart (ISSUE 2, part 3).
//
// The distributed Louvain outer loop is a chain of phases; everything a
// resumed run needs at the top of phase k is (a) the current coarse graph,
// (b) each original vertex's current meta-vertex id (the orig_to_cur chain),
// and (c) a handful of scalars (phase index, outer-loop modularity watermark,
// forced-final flag, cumulative counters). All other per-phase state --
// ghosts, community ledger, ET probabilities, sweep-order PRNG -- is
// reconstructed from scratch at each phase start by run_phase, keyed only on
// (config seed, partition, phase), so a checkpoint at a phase boundary is
// sufficient for bitwise-identical continuation at the same rank count.
//
// On-disk layout (one directory per job):
//   <dir>/phase_<k>/meta.bin      scalars + config fingerprint + (v3) the
//                                 active vertex-range ownership map,
//                                 CRC32-sealed
//   <dir>/phase_<k>/graph.dlel    coarse graph via graph::write_distributed
//   <dir>/phase_<k>/chain.bin     global orig_to_cur array, CRC32-sealed
//   <dir>/phase_<k>/counters.bin  cumulative run counters (v2), CRC32-sealed
//   <dir>/LATEST                  name of the newest complete checkpoint
//
// counters.bin is deliberately a SEPARATE file: meta/graph/chain stay
// byte-identical across ghost-exchange wire modes (a PR3 invariant), while
// the counters legitimately differ (delta mode ships fewer bytes) and the
// elapsed-seconds field is wall-clock. A missing or corrupt counters.bin
// never invalidates a checkpoint -- resume proceeds with zero restored
// counters, exactly the v1 behaviour.
//
// Writes are atomic: everything lands in a tmp directory that is renamed
// into place before LATEST is updated, so a crash mid-checkpoint leaves the
// previous checkpoint intact. Loads validate magic, version, CRC and the
// config fingerprint; structural corruption falls back to an older
// checkpoint (or none), while a fingerprint mismatch -- resuming with a
// DIFFERENT config, which would silently produce wrong results -- throws.
//
// Determinism contract: resuming at the SAME rank count reproduces the
// uninterrupted run bit for bit (test_robustness.cpp proves it for every
// kill point). v3 checkpoints make that hold even after the phase-boundary
// re-balancer (core/rebalance.hpp) has migrated vertex ranges: meta.bin
// records the ACTIVE ownership map explicitly, and same-p loads resume onto
// it verbatim instead of assuming the even-vertices split. Resuming at a
// DIFFERENT rank count is supported -- the graph is repartitioned on load
// -- and yields a valid clustering with exact bookkeeping, but not the same
// bits: sweep orders are keyed on partition offsets, so the move sequence
// legitimately differs.
//
// Different-p resume is also the machinery behind the rung-3 shrink
// (docs/FAULT_TOLERANCE.md): when a rank is declared DEAD, the Session
// recovery driver resumes from the newest checkpoint at p-1 ranks. Nothing
// here is shrink-specific -- the config fingerprint deliberately excludes
// the rank count, so a p-rank checkpoint loads at any p' >= 1, and a shrink
// resume is bit-for-bit the same computation as a user-initiated clean
// resume at p-1 (test_recovery_soak.cpp proves that equivalence).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "core/dist_config.hpp"
#include "graph/dist_graph.hpp"
#include "util/types.hpp"

namespace dlouvain::core {

/// Thrown when a checkpoint directory is already owned by another live run.
/// Two concurrent runs checkpointing into the same directory silently
/// interleave phase files (each prunes and overwrites the other's
/// checkpoints), so ownership is exclusive per directory. `owner` is the
/// LOCK file's contents describing the current holder.
class CheckpointDirBusy : public std::runtime_error {
 public:
  CheckpointDirBusy(std::string owner_line, const std::string& dir)
      : std::runtime_error("checkpoint directory '" + dir +
                           "' is in use by " + owner_line),
        owner(std::move(owner_line)) {}
  std::string owner;
};

/// Exclusive advisory ownership of one checkpoint directory, held for the
/// lifetime of the run (Session) that checkpoints into it. Implemented as an
/// O_CREAT|O_EXCL `<dir>/LOCK` pidfile recording "pid <pid> session <tag>";
/// a lock whose pid no longer exists (crashed process) is stale and is
/// reclaimed, so recovery-by-resume after a hard crash still works. Throws
/// CheckpointDirBusy when the directory is owned by a live holder -- either
/// another process, or another Session in THIS process (same pid, different
/// tag). Move-only; releases (unlinks) on destruction.
class CheckpointDirLock {
 public:
  CheckpointDirLock(std::string dir, std::string owner_tag);
  ~CheckpointDirLock();
  CheckpointDirLock(CheckpointDirLock&& other) noexcept;
  CheckpointDirLock& operator=(CheckpointDirLock&& other) noexcept;
  CheckpointDirLock(const CheckpointDirLock&) = delete;
  CheckpointDirLock& operator=(const CheckpointDirLock&) = delete;

  /// The "pid <pid> session <tag>" line this lock wrote.
  [[nodiscard]] const std::string& owner_line() const noexcept { return owner_line_; }

 private:
  void release() noexcept;

  std::string path_;  ///< empty after move-out / release
  std::string owner_line_;
};

/// Cumulative global run counters at a phase boundary: wall seconds elapsed
/// and ALGORITHM messages/bytes (checkpoint I/O excluded) since the original
/// job start, summed over all ranks. Persisted so a resumed run reports
/// whole-job totals, consistent with phases/total_iterations (the satellite-3
/// fix; the reporting rule is documented in core/telemetry.hpp).
struct RunCounters {
  double seconds{0};
  std::int64_t messages{0};
  std::int64_t bytes{0};
};

/// Outer-loop scalars saved at a phase boundary ("about to run next_phase").
struct CheckpointState {
  int next_phase{0};
  int phases_done{0};
  std::int64_t iterations_done{0};
  Weight prev_outer_mod{0};  ///< stored as raw bits, restored exactly
  bool forced_final{false};
  RunCounters counters;  ///< cumulative totals at this boundary (v2; zero in v1)
};

/// Everything checkpoint_load reconstructs for this rank.
struct ResumedState {
  graph::DistGraph graph;              ///< repartitioned for the CURRENT p
  std::vector<VertexId> orig_to_cur;   ///< this rank's contiguous chain slice
  VertexId orig_global_n{0};
  CheckpointState state;
};

/// Hash of every config field that influences the trajectory of a run.
/// Stored in each checkpoint and required to match on resume.
std::uint64_t config_fingerprint(const DistConfig& cfg);

/// Collective: write the checkpoint for `state.next_phase` into `dir`
/// (created if needed). `orig_to_cur` is this rank's slice, concatenating in
/// rank order to the full original-vertex array. Older checkpoints in `dir`
/// are pruned once the new one is committed.
void checkpoint_save(comm::Comm& comm, const std::string& dir,
                     const graph::DistGraph& g, std::span<const VertexId> orig_to_cur,
                     VertexId orig_global_n, const CheckpointState& state,
                     std::uint64_t fingerprint);

/// Collective: load the newest valid checkpoint from `dir`, or nullopt if
/// none exists (start fresh). Rank 0 picks and validates the checkpoint and
/// every rank agrees on the outcome. Throws if the stored config fingerprint
/// does not match `fingerprint`.
std::optional<ResumedState> checkpoint_load(comm::Comm& comm, const std::string& dir,
                                            std::uint64_t fingerprint);

/// Non-collective peek (for the recovery driver between attempts): the phase
/// index of the newest structurally-valid checkpoint in `dir`, if any.
std::optional<int> checkpoint_latest_phase(const std::string& dir);

/// Non-collective peek at the newest valid checkpoint's persisted run
/// counters. nullopt when there is no valid checkpoint; zeros when the
/// checkpoint predates v2 or its counters.bin is missing/corrupt. The
/// recovery driver uses before/after deltas of this to split a failed
/// attempt's traffic into salvaged (checkpointed) and wasted.
std::optional<RunCounters> checkpoint_latest_counters(const std::string& dir);

}  // namespace dlouvain::core
