#include "core/overlap_mode.hpp"

#include <algorithm>
#include <cctype>

namespace dlouvain::core {

std::optional<OverlapMode> parse_overlap_mode(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "off") return OverlapMode::kOff;
  if (lower == "on") return OverlapMode::kOn;
  if (lower == "auto") return OverlapMode::kAuto;
  return std::nullopt;
}

std::string overlap_mode_label(OverlapMode mode) {
  switch (mode) {
    case OverlapMode::kOff: return "off";
    case OverlapMode::kOn: return "on";
    case OverlapMode::kAuto: return "auto";
  }
  return "?";
}

}  // namespace dlouvain::core
