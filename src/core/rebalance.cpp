#include "core/rebalance.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlouvain::core {

namespace {

template <typename T>
double imbalance_of(std::span<const T> loads) {
  if (loads.empty()) return 1.0;
  double sum = 0;
  double max = 0;
  for (const T v : loads) {
    if (v < T{0}) throw std::invalid_argument("load_imbalance: negative load");
    sum += static_cast<double>(v);
    max = std::max(max, static_cast<double>(v));
  }
  if (sum <= 0) return 1.0;
  const double mean = sum / static_cast<double>(loads.size());
  return max / mean;
}

/// Can [0, n) be cut into at most p contiguous ranges, each carrying at most
/// `cap` arcs? Greedy first-fit is exact for contiguous partitions.
bool feasible_cap(std::span<const std::int64_t> hist, int p, std::int64_t cap) {
  int parts = 1;
  std::int64_t cur = 0;
  for (const std::int64_t h : hist) {
    if (h > cap) return false;
    if (cur + h > cap) {
      if (++parts > p) return false;
      cur = 0;
    }
    cur += h;
  }
  return true;
}

/// The MIN-MAX contiguous partition of the arc histogram: binary-search the
/// smallest per-rank capacity any p-way contiguous split can achieve, then
/// materialise cuts with it. Exact (this is the classic linear-partition
/// problem), deterministic, and O(n log total) -- cheap at coarse-graph
/// sizes. Beats the quantile cut of partition_even_edges, whose greedy
/// "split after crossing k/p" can overshoot by a whole heavy vertex per
/// rank.
graph::Partition1D partition_min_max(VertexId n, int p,
                                     std::span<const std::int64_t> hist) {
  std::int64_t lo = 0;  // max single vertex: no cap below this is feasible
  std::int64_t total = 0;
  for (const std::int64_t h : hist) {
    lo = std::max(lo, h);
    total += h;
  }
  std::int64_t hi = total;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (feasible_cap(hist, p, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // Materialise with the optimal cap; surplus ranks (greedy may need fewer
  // than p) become empty tail ranges, which cannot raise the max.
  std::vector<VertexId> starts;
  starts.reserve(static_cast<std::size_t>(p) + 1);
  starts.push_back(0);
  std::int64_t cur = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::int64_t h = hist[static_cast<std::size_t>(v)];
    if (cur + h > lo && static_cast<int>(starts.size()) <= p - 1) {
      starts.push_back(v);
      cur = 0;
    }
    cur += h;
  }
  while (static_cast<int>(starts.size()) < p) starts.push_back(n);
  starts.push_back(n);
  return graph::Partition1D(std::move(starts));
}

}  // namespace

double load_imbalance(std::span<const std::int64_t> loads) {
  return imbalance_of(loads);
}

double load_imbalance(std::span<const double> loads) { return imbalance_of(loads); }

std::vector<std::int64_t> partition_loads(const graph::Partition1D& part,
                                          std::span<const std::int64_t> arcs_per_vertex) {
  if (part.num_vertices() != static_cast<VertexId>(arcs_per_vertex.size()))
    throw std::invalid_argument("partition_loads: histogram length != partition size");
  std::vector<std::int64_t> loads(static_cast<std::size_t>(part.num_ranks()), 0);
  for (int r = 0; r < part.num_ranks(); ++r) {
    std::int64_t acc = 0;
    for (VertexId v = part.begin(r); v < part.end(r); ++v)
      acc += arcs_per_vertex[static_cast<std::size_t>(v)];
    loads[static_cast<std::size_t>(r)] = acc;
  }
  return loads;
}

MigrationStats migration_stats(const graph::Partition1D& from,
                               const graph::Partition1D& to,
                               std::span<const std::int64_t> arcs_per_vertex) {
  if (from.num_ranks() != to.num_ranks())
    throw std::invalid_argument("migration_stats: rank counts differ");
  if (from.num_vertices() != to.num_vertices())
    throw std::invalid_argument("migration_stats: vertex counts differ");
  MigrationStats stats;
  const int p = from.num_ranks();
  for (int r = 0; r < p; ++r) {
    if (from.begin(r) != to.begin(r) || from.end(r) != to.end(r)) ++stats.ranges_moved;
    // Vertices rank r owned before but not after: the two intervals are
    // contiguous, so the difference is (at most) a prefix and a suffix.
    const VertexId lo = std::max(from.begin(r), to.begin(r));
    const VertexId hi = std::min(from.end(r), to.end(r));
    const VertexId kept = hi > lo ? hi - lo : 0;
    const VertexId lost = from.count(r) - kept;
    stats.vertices_migrated += lost;
    for (VertexId v = from.begin(r); v < std::min(from.end(r), lo); ++v)
      stats.arcs_migrated += arcs_per_vertex[static_cast<std::size_t>(v)];
    for (VertexId v = std::max(from.begin(r), hi); v < from.end(r); ++v)
      stats.arcs_migrated += arcs_per_vertex[static_cast<std::size_t>(v)];
  }
  return stats;
}

RebalanceDecision decide_rebalance(VertexId n, int p, double threshold,
                                   std::span<const std::int64_t> arcs_per_vertex) {
  if (static_cast<VertexId>(arcs_per_vertex.size()) != n)
    throw std::invalid_argument("decide_rebalance: histogram length != n");
  RebalanceDecision d;
  d.evaluated = true;
  {
    std::int64_t mx = 0;
    std::int64_t total = 0;
    for (const std::int64_t h : arcs_per_vertex) {
      mx = std::max(mx, h);
      total += h;
    }
    if (total > 0)
      d.lambda_floor = static_cast<double>(mx) * p / static_cast<double>(total);
  }
  auto even = graph::partition_even_vertices(n, p);
  const auto even_loads = partition_loads(even, arcs_per_vertex);
  d.lambda_pre = load_imbalance(even_loads);
  d.lambda_post = d.lambda_pre;
  d.partition = std::move(even);
  if (d.lambda_pre < threshold) return d;  // balanced enough: decline

  auto candidate = partition_min_max(n, p, arcs_per_vertex);
  const auto cand_loads = partition_loads(candidate, arcs_per_vertex);
  const double lambda_cand = load_imbalance(cand_loads);
  if (lambda_cand >= d.lambda_pre) return d;  // no strict improvement: decline

  d.engaged = true;
  d.lambda_post = lambda_cand;
  d.stats = migration_stats(d.partition, candidate, arcs_per_vertex);
  d.partition = std::move(candidate);
  return d;
}

}  // namespace dlouvain::core
