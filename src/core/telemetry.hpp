// Telemetry for the distributed Louvain run: per-iteration modularity
// evolution (the raw series behind paper Figs. 5-6), per-phase timings split
// into the compute / communication buckets of the paper's Section V-A
// HPCToolkit analysis, and global traffic counters.
#pragma once

#include <cstdint>
#include <vector>

#include "core/overlap_model.hpp"
#include "util/metrics.hpp"
#include "util/types.hpp"

namespace dlouvain::core {

struct IterationTelemetry {
  int iteration{0};
  Weight modularity{0};
  std::int64_t active_vertices{0};   ///< vertices that participated
  std::int64_t moved_vertices{0};    ///< vertices that changed community
  std::int64_t inactive_vertices{0}; ///< ET-labelled inactive (global)
};

/// Wall-time split for one phase, mirroring the paper's breakdown: ghost
/// community exchange + community-info refresh + delta shipping are the
/// "communicating community related information" share, the all-reduce is
/// reported separately, and the per-vertex scan is "computation".
struct TimeBreakdown {
  double ghost_exchange{0};
  double community_info{0};
  double compute{0};
  double delta_exchange{0};
  double allreduce{0};
  double rebuild{0};

  /// Summed per-thread seconds the rank's compute pool spent inside the
  /// local-move scan. Equals `compute` on one thread; `compute_busy /
  /// compute` is the scan's effective parallelism. NOT part of total():
  /// these seconds overlap the `compute` wall time.
  double compute_busy{0};

  /// Exchange latency (ghost + delta collectives) that elapsed while this
  /// rank was computing instead of blocked waiting -- what the overlap
  /// schedule actually hid (ISSUE 5). Summed PER PEER BUFFER: each incoming
  /// buffer contributes its in-flight span from the collective's launch to
  /// the earlier of its delivery and the blocking wait (so it can exceed the
  /// compute wall when many peers' latency is hidden at once). ~0 with
  /// overlap off. NOT part of total(): these seconds overlap the compute
  /// wall time by definition.
  double comm_hidden{0};

  [[nodiscard]] double total() const {
    return ghost_exchange + community_info + compute + delta_exchange + allreduce +
           rebuild;
  }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    ghost_exchange += other.ghost_exchange;
    community_info += other.community_info;
    compute += other.compute;
    delta_exchange += other.delta_exchange;
    allreduce += other.allreduce;
    rebuild += other.rebuild;
    compute_busy += other.compute_busy;
    comm_hidden += other.comm_hidden;
    return *this;
  }
};

/// The re-balancing verdict taken at one phase's END -- it chose the NEXT
/// phase's partition (ISSUE 10). All-default when --rebalance is off or the
/// phase exited without building a coarse graph.
struct PhaseRebalanceRecord {
  bool evaluated{false};    ///< the enabled-path screen ran at this boundary
  bool engaged{false};      ///< a migrated partition was chosen
  double lambda_pre{1.0};   ///< next graph's arc lambda under the even split
  double lambda_post{1.0};  ///< under the chosen split (== pre when declined)
  /// Structural balance limit max(vertex arcs)/(total/p): no partition can
  /// beat it. 1.0 unless the step-2 histogram was gathered.
  double lambda_floor{1.0};
  int ranges_moved{0};
  std::int64_t vertices_migrated{0};
  std::int64_t arcs_migrated{0};
};

struct PhaseTelemetry {
  int phase{0};
  int iterations{0};
  int threads{1};  ///< compute threads per rank during this phase
  VertexId graph_vertices{0};  ///< size of this phase's (coarsened) graph
  EdgeId graph_arcs{0};
  Weight modularity_after{0};
  double threshold_used{0};
  double seconds{0};
  TimeBreakdown breakdown;
  /// Arc-count load imbalance (max/mean over ranks of owned arcs) of the
  /// partition this phase actually ran on. Sampled on EVERY run -- with
  /// --rebalance off this is how the skew stays observable (ISSUE 10).
  double load_lambda{1.0};
  /// Measured wall-time imbalance (per-rank compute + rebuild seconds,
  /// max/mean). Observability only: scheduler-noise-dependent, so it is
  /// NEVER a decision input (the decision uses allreduced arc counts).
  double time_lambda{1.0};
  PhaseRebalanceRecord rebalance;
  std::vector<IterationTelemetry> iteration_detail;
};

/// Cumulative streaming-update telemetry of one Session (the manifest v2
/// "updates" section; docs/STREAMING.md). All zero for a one-shot run --
/// the section is always emitted so v2 consumers never branch on presence.
struct UpdateTelemetry {
  std::int64_t batches_applied{0};
  std::int64_t edges_added{0};
  std::int64_t edges_removed{0};
  /// Vertices the warm starts reactivated, summed over batches (global).
  std::int64_t vertices_reactivated{0};
  /// Iterations the warm phase-0 re-convergences ran, summed over batches.
  std::int64_t reconverge_iterations{0};
  /// Batches whose warm result drifted past the fallback threshold and were
  /// recomputed from scratch.
  std::int64_t fallback_to_full{0};
};

/// Result of a distributed Louvain run. Collective-produced: identical on
/// every rank.
struct DistResult {
  /// Final community per ORIGINAL vertex, compact ids [0, num_communities).
  std::vector<CommunityId> community;
  Weight modularity{0};  ///< exact (computed on the final coarse graph)
  CommunityId num_communities{0};
  int phases{0};
  long total_iterations{0};
  double seconds{0};
  std::vector<PhaseTelemetry> phase_telemetry;
  TimeBreakdown breakdown;      ///< summed over phases

  // -- counter semantics (the satellite-3 rule) ---------------------------
  // seconds/messages/bytes are WHOLE-JOB totals: on a resumed run they equal
  // restored pre-checkpoint counters (persisted in the checkpoint's
  // counters.bin, v2) PLUS what this process measured -- the same rule
  // phases/total_iterations always followed. `restored` holds the restored
  // addend so callers can recover the this-process-only portion by
  // subtraction. messages/bytes count ALGORITHM traffic only; checkpoint
  // save/load I/O is reclassified into the checkpoint.* counters (see
  // `counters` and util/metrics.hpp), so totals are comparable across runs
  // with and without checkpointing.
  std::int64_t messages{0};     ///< global algorithm message count (all ranks)
  std::int64_t bytes{0};        ///< global algorithm payload bytes (all ranks)

  /// Pre-checkpoint totals restored on resume (all zero for a fresh run).
  /// Already INCLUDED in seconds/messages/bytes above.
  struct RestoredCounters {
    double seconds{0};
    std::int64_t messages{0};
    std::int64_t bytes{0};
  };
  RestoredCounters restored;

  /// Global (allreduced, identical on every rank) named-counter totals for
  /// the EXECUTED portion of this run -- the full catalog from
  /// util/metrics.hpp plus pool busy-seconds. Restored pre-checkpoint
  /// history is NOT folded in here; only messages/bytes/seconds above carry
  /// restored history, because only they are persisted.
  util::MetricsSnapshot counters;

  /// How the communication/compute overlap knob resolved (the manifest v4
  /// "overlap" object): the configured mode, the decision the run settled
  /// on, and the cost-model inputs that decided it (overlap_model.hpp).
  OverlapTelemetry overlap;

  /// Run-level roll-up of the phase-boundary load re-balancer (the manifest
  /// v5 "rebalance" object; per-boundary detail rides phase_telemetry).
  struct RebalanceTelemetry {
    bool enabled{false};
    double threshold{1.5};
    int phases_evaluated{0};  ///< boundaries where the enabled screen ran
    int phases_engaged{0};
    int phases_declined{0};
    int ranges_moved{0};
    std::int64_t vertices_migrated{0};
    std::int64_t arcs_migrated{0};
    double max_lambda_pre{1.0};   ///< worst even-split lambda seen at a boundary
    double max_lambda_post{1.0};  ///< worst lambda actually accepted
    /// An enabled run "decided" once at least one boundary was screened.
    [[nodiscard]] bool decided() const { return phases_evaluated > 0; }
  };
  RebalanceTelemetry rebalance;

  /// Phase the run was resumed from (DistConfig::checkpoint.resume with a
  /// valid checkpoint on disk); -1 when the run started fresh. When >= 0,
  /// phases/total_iterations/seconds/messages/bytes cover the whole job
  /// (restored + replayed) while phase_telemetry covers only replayed phases
  /// (per-phase detail of checkpointed phases is not persisted).
  int resumed_from_phase{-1};

  /// Populated only when DistConfig::gather_quality is set, and only on rank
  /// 0 (the paper's Section V-D mode): element [ph] is the full
  /// original-vertex community assignment after phase ph, enabling per-phase
  /// precision/recall/F-score tracking against ground truth.
  std::vector<std::vector<CommunityId>> phase_assignments;
};

}  // namespace dlouvain::core
