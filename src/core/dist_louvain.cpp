#include "core/dist_louvain.hpp"

#include <algorithm>
#include <numeric>

#include "core/checkpoint.hpp"
#include "core/coloring.hpp"
#include "core/community_state.hpp"
#include "core/ghost_exchange.hpp"
#include "core/overlap_model.hpp"
#include "core/rebuild.hpp"
#include "louvain/early_term.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/prng.hpp"
#include "util/segmented.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace dlouvain::core {

namespace {

using louvain::EtState;

/// Fixed number of bulk-synchronous micro-batches each sweep group is cut
/// into. Independent of the thread count (that's the determinism contract);
/// large enough that within-sweep propagation approaches the asynchronous
/// serial sweep, small enough that the per-batch join overhead stays
/// negligible. On groups smaller than this, batches degrade to single
/// vertices and the sweep IS the serial asynchronous sweep.
constexpr std::int64_t kSweepBatches = 64;

/// Local share of the intra-community arc weight (both directions globally;
/// each directed arc is counted once, by its source's owner). Threaded over
/// the fixed-chunk deterministic reduction, so the value -- and therefore
/// every modularity bit -- is identical at any thread count.
///
/// `row_mask`, when non-null, restricts the sum to rows whose flag equals
/// `masked_value` -- the warm-start split: rows no phase-0 move can touch
/// (vertex and all neighbours frozen) contribute a constant, computed once,
/// while only the affected rows are rescanned per iteration.
Weight local_intra_weight(util::ThreadPool& pool, const graph::DistGraph& g,
                          std::span<const CommunityId> owned_community,
                          const GhostCommunities& ghosts,
                          const std::vector<char>* row_mask = nullptr,
                          bool masked_value = true) {
  const auto& row = g.local().offsets();
  const auto& arcs = g.local().edges();
  const auto& dst_slot = g.dst_slots();
  const auto& ghost_comm = ghosts.values();
  const auto local_n = static_cast<std::int64_t>(g.local_count());
  return util::parallel_reduce(
      &pool, g.local_count(), [&](std::int64_t begin, std::int64_t end) {
        Weight intra = 0;
        for (VertexId lv = begin; lv < end; ++lv) {
          if (row_mask != nullptr &&
              ((*row_mask)[static_cast<std::size_t>(lv)] != 0) != masked_value)
            continue;
          const VertexId gv = g.to_global(lv);
          const CommunityId cv = owned_community[static_cast<std::size_t>(lv)];
          const auto a_end = static_cast<std::size_t>(row[static_cast<std::size_t>(lv) + 1]);
          for (auto a = static_cast<std::size_t>(row[static_cast<std::size_t>(lv)]);
               a < a_end; ++a) {
            const auto& e = arcs[a];
            if (e.dst == gv) {
              intra += 2 * e.weight;  // self loop: A_vv = 2w, always intra
              continue;
            }
            const std::int64_t d = dst_slot[a];
            const CommunityId cu =
                d < local_n ? owned_community[static_cast<std::size_t>(d)]
                            : ghost_comm[static_cast<std::size_t>(d - local_n)];
            if (cu == cv) intra += e.weight;
          }
        }
        return intra;
      });
}

/// Per-phase breakdown timers. Owned by dist_louvain and REUSED across
/// phases; clear() at the top of run_phase is load-bearing -- timers that
/// survive a phase un-cleared would silently fold phases 0..N-1 into phase
/// N's breakdown (the satellite-2 bug class). test_telemetry pins
/// sum over phases of PhaseTelemetry::breakdown == DistResult::breakdown and
/// each phase's breakdown.total() <= its wall seconds.
struct PhaseTimers {
  util::AccumTimer ghost;
  util::AccumTimer cinfo;
  util::AccumTimer compute;
  util::AccumTimer delta;
  util::AccumTimer allreduce;
  double compute_busy{0};
  double comm_hidden{0};

  void clear() {
    ghost.clear();
    cinfo.clear();
    compute.clear();
    delta.clear();
    allreduce.clear();
    compute_busy = 0;
    comm_hidden = 0;
  }
};

/// One Louvain phase on the current distributed graph. Returns the final
/// owned assignment (by local vertex index) and the phase's exact final
/// modularity, with telemetry filled in.
struct PhaseResult {
  std::vector<CommunityId> owned_community;
  GhostCommunities ghosts;
  CommunityLedger ledger;
  Weight final_modularity{0};
  /// Modularity of the partition the phase STARTED from: the singleton
  /// partition normally, the adopted/seeded partition under a warm start.
  /// The warm driver measures its outer convergence against this.
  Weight initial_modularity{0};
};

PhaseResult run_phase(comm::Comm& comm, const graph::DistGraph& g,
                      const DistConfig& cfg, int phase, double tau,
                      util::ThreadPool& pool, PhaseTimers& timers,
                      PhaseTelemetry& telemetry,
                      OverlapCostModel* overlap_model = nullptr,
                      const WarmStart* warm = nullptr) {
  const VertexId local_n = g.local_count();
  const VertexId global_n = g.global_n();
  const Weight two_m = g.total_weight();
  const Weight m = two_m / 2;
  const double gamma = cfg.base.resolution;

  PhaseResult state{std::vector<CommunityId>(static_cast<std::size_t>(local_n)),
                    GhostCommunities(g), CommunityLedger(g), 0};
  for (VertexId lv = 0; lv < local_n; ++lv)
    state.owned_community[static_cast<std::size_t>(lv)] = g.to_global(lv);

  // Warm-started phases (incremental updates) drive the sweep gate through
  // the SAME activity machinery ET uses -- reactivated vertices start at
  // P = 1, frozen ones at P = 0 -- so the hot loop has exactly one "does
  // this vertex participate" test. Non-ET variants run the warm phase with
  // alpha 0 (the reactivated set never decays); ET variants keep their
  // configured decay on top of the seeded activity.
  EtState et(cfg.uses_et() || warm != nullptr ? static_cast<std::size_t>(local_n) : 0,
             warm != nullptr && !cfg.uses_et() ? 0.0 : cfg.base.et_alpha,
             cfg.base.et_inactive_cutoff, cfg.base.seed);
  if (warm != nullptr) et.seed_activity(warm->reactivated);
  std::vector<char> moved(static_cast<std::size_t>(local_n), 0);

  timers.clear();  // this phase's breakdown starts from zero, every phase
  util::TraceBuffer* tb = comm.trace();
  const util::TraceSpan phase_span(tb, "phase", "phase", phase);

  // Per-vertex move proposals for the current sweep group:
  // kInvalidCommunity = did not participate (ET-inactive), otherwise the
  // proposed community (own id = participated but stays), with the matching
  // ledger slot carried alongside so the apply loop never hashes.
  std::vector<CommunityId> proposed(static_cast<std::size_t>(local_n),
                                    kInvalidCommunity);
  std::vector<std::int64_t> proposed_slot(static_cast<std::size_t>(local_n), -1);

  // Ledger-slot mirrors of the two community arrays the sweep reads through:
  // owned_comm_slot[lv] = slot of owned_community[lv], ghost_comm_slot[s] =
  // slot of ghosts.values()[s]. Updated only when the underlying value
  // changes (a move, or a ghost-exchange delta), so the per-edge community
  // lookup in the scan is two array reads -- no id hashing anywhere in the
  // hot loop. Retaining every ghost's initial self-community here also
  // seeds the ledger's refcounts: from now on they track exactly which
  // communities some local slot still references.
  std::vector<std::int64_t> owned_comm_slot(static_cast<std::size_t>(local_n));
  std::iota(owned_comm_slot.begin(), owned_comm_slot.end(), std::int64_t{0});
  std::vector<std::int64_t> ghost_comm_slot(g.ghosts().size());
  for (std::size_t s = 0; s < g.ghosts().size(); ++s)
    ghost_comm_slot[s] = state.ledger.retain(g.ghosts()[s]);

  const auto& row = g.local().offsets();
  const auto& arcs = g.local().edges();
  const auto& dst_slot = g.dst_slots();

  // One segmented e_{v -> c} reduction per pool thread, keyed by ledger
  // slot and reused across vertices, batches and iterations. The lane is
  // captured once per phase (mid-run overrides land on the next phase);
  // every lane is bitwise identical to the historical flat scatter
  // (util/segmented.hpp).
  const util::SweepLane lane = util::sweep_lane();
  std::vector<util::SegmentedAccumulator<Weight>> scatter(
      static_cast<std::size_t>(pool.num_threads()));

  // Resolve the overlap knob per ITERATION: forced modes are constant,
  // kAuto asks the measured cost model (overlap_model.hpp) -- OFF until the
  // model warms up (the measured-faster default per BENCH_PR5), an ON probe
  // only when the OFF samples predict hidable time, then the locked
  // verdict. Never changes results (see overlap_mode.hpp); the schedule
  // below is identical either way, only the waits move, so per-iteration
  // switching is bitwise-safe.
  const auto overlap_now = [&cfg, overlap_model] {
    switch (cfg.overlap) {
      case OverlapMode::kOn: return true;
      case OverlapMode::kOff: return false;
      case OverlapMode::kAuto:
        return overlap_model != nullptr && overlap_model->want_overlap();
    }
    return false;
  };
  const auto make_xcfg = [&cfg](bool on) {
    return GhostExchangeConfig{cfg.use_neighbor_exchange, cfg.ghost_exchange_mode,
                               cfg.delta_exchange_crossover, on};
  };
  // The warm-adoption exchanges before the loop and the phase-final push
  // after it pair begin+finish back to back, so the flag is inert there;
  // they reuse whatever the current resolution is.
  GhostExchangeConfig xcfg = make_xcfg(overlap_now());
  bool phase_ran_overlap = false;

  // -- Warm start (incremental updates): adopt the seeded assignment -------
  // Every vertex moves from its singleton into its seed community through
  // the ordinary ledger protocol (apply + delta flush + refresh), serially
  // in ascending local order so the floating-point accumulation sequence --
  // and with it every modularity bit -- is fixed at any thread count. After
  // the adoption the phase runs the unmodified iteration protocol; frozen
  // vertices are simply never active.
  //
  // `affected` rows (vertex or some neighbour reactivated) are the only rows
  // whose intra-community weight can change during this phase; the
  // complement contributes a constant computed once at first use
  // (static_intra), which turns the per-iteration O(arcs) modularity scan
  // into O(affected arcs).
  std::vector<char> affected;
  Weight static_intra = 0;
  bool static_intra_done = false;
  Weight prev_mod;
  if (warm != nullptr) {
    for (VertexId lv = 0; lv < local_n; ++lv) {
      const auto lvi = static_cast<std::size_t>(lv);
      const VertexId gv = g.to_global(lv);
      const CommunityId target = warm->seed_community[lvi];
      if (target == gv) continue;
      const std::int64_t own_slot = owned_comm_slot[lvi];
      const std::int64_t to_slot = state.ledger.retain(target);
      state.ledger.apply_move_slots(own_slot, to_slot, g.weighted_degree(gv));
      state.ledger.release_slot(own_slot);
      state.owned_community[lvi] = target;
      owned_comm_slot[lvi] = to_slot;
    }
    {
      util::ScopedAccum scope(timers.delta);
      const util::TraceSpan span(tb, "warm_adopt", "collective", phase);
      state.ledger.flush_deltas(comm);
    }
    // Publish the adopted assignment to ghost mirrors and retarget their
    // slots -- the same absorb/retarget/refresh protocol an iteration runs,
    // done once here so iteration 0 starts from a fully consistent view.
    {
      util::ScopedAccum scope(timers.ghost);
      const util::TraceSpan span(tb, "warm_ghost", "collective", phase);
      state.ghosts.exchange(comm, state.owned_community, xcfg);
    }
    {
      util::ScopedAccum scope(timers.cinfo);
      const util::TraceSpan span(tb, "warm_refresh", "collective", phase);
      for (const auto& change : state.ghosts.last_changes()) {
        state.ledger.release(change.old_value);
        ghost_comm_slot[static_cast<std::size_t>(change.slot)] = state.ledger.retain(
            state.ghosts.values()[static_cast<std::size_t>(change.slot)]);
      }
      state.ledger.refresh(comm);
    }

    // Affected-row mask: reactivated, or adjacent to a reactivated vertex
    // (locally or across a rank boundary -- one dense flag exchange).
    GhostField<std::int64_t> ghost_active(g, 0);
    {
      std::vector<std::int64_t> owned_active(static_cast<std::size_t>(local_n), 0);
      for (VertexId lv = 0; lv < local_n; ++lv)
        owned_active[static_cast<std::size_t>(lv)] =
            warm->reactivated[static_cast<std::size_t>(lv)] != 0 ? 1 : 0;
      util::ScopedAccum scope(timers.ghost);
      ghost_active.exchange(comm, owned_active, xcfg);
    }
    affected.assign(static_cast<std::size_t>(local_n), 0);
    for (VertexId lv = 0; lv < local_n; ++lv) {
      const auto lvi = static_cast<std::size_t>(lv);
      if (warm->reactivated[lvi] != 0) {
        affected[lvi] = 1;
        continue;
      }
      const auto a_end = static_cast<std::size_t>(row[lvi + 1]);
      for (auto a = static_cast<std::size_t>(row[lvi]); a < a_end; ++a) {
        const std::int64_t d = dst_slot[a];
        const bool nbr_active =
            d < local_n
                ? warm->reactivated[static_cast<std::size_t>(d)] != 0
                : ghost_active.values()[static_cast<std::size_t>(d - local_n)] != 0;
        if (nbr_active) {
          affected[lvi] = 1;
          break;
        }
      }
    }

    // Phase-initial modularity of the SEEDED partition (not the singleton
    // one): the warm phase's convergence checks measure gain over what the
    // previous converged state is worth on the updated graph.
    util::ScopedAccum scope(timers.allreduce);
    const Weight intra =
        local_intra_weight(pool, g, state.owned_community, state.ghosts);
    const Weight degree_term = state.ledger.owned_degree_term();
    const auto sums = comm.allreduce_sum_vec<Weight>({intra, degree_term});
    prev_mod = two_m > 0 ? sums[0] / two_m - gamma * sums[1] / (two_m * two_m) : 0.0;
  } else {
    // Phase-initial modularity: singleton partition of the current graph --
    // by the coarsening invariance this equals the previous phase's final
    // modularity, so the convergence checks line up across phases.
    const Weight intra =
        local_intra_weight(pool, g, state.owned_community, state.ghosts);
    const Weight degree_term = state.ledger.owned_degree_term();
    const auto sums = comm.allreduce_sum_vec<Weight>({intra, degree_term});
    prev_mod = two_m > 0 ? sums[0] / two_m - gamma * sums[1] / (two_m * two_m) : 0.0;
  }
  state.initial_modularity = prev_mod;

  // Sweep groups. Without coloring there is ONE group holding every local
  // vertex (paper Algorithm 3 as published). With cfg.use_coloring, vertices
  // are grouped by a distributed distance-1 coloring and the groups are
  // processed color by color with fresh ghost/community state between them,
  // so the set of vertices deciding concurrently (across ranks) is always an
  // independent set -- the paper's Section VI convergence heuristic.
  // Every rank loops over the same (global) group count so the collectives
  // inside stay aligned.
  std::vector<std::vector<VertexId>> groups;
  if (cfg.use_coloring) {
    const auto coloring = distance1_coloring(
        comm, g, util::hash_combine(cfg.base.seed, static_cast<std::uint64_t>(phase)));
    groups.resize(static_cast<std::size_t>(coloring.num_colors));
    for (VertexId lv = 0; lv < local_n; ++lv)
      groups[static_cast<std::size_t>(coloring.color[static_cast<std::size_t>(lv)])]
          .push_back(lv);
  } else {
    groups.resize(1);
    groups[0].resize(static_cast<std::size_t>(local_n));
    std::iota(groups[0].begin(), groups[0].end(), VertexId{0});
  }

  // Seeded-random sweep order within each group, reshuffled per iteration
  // (see louvain/serial.cpp: index-order sweeps drain id-correlated graphs
  // into one community). Keyed per rank so runs are reproducible at any p --
  // and crucially NOT keyed on the thread count: the shuffle fixes which
  // vertex lands in which micro-batch below, so the threaded sweep visits
  // the exact same sequence at --threads 1 and --threads N.
  util::Xoshiro256StarStar order_rng(
      util::hash_combine(cfg.base.seed, static_cast<std::uint64_t>(g.v_begin())) ^
      static_cast<std::uint64_t>(phase) * 0x9e3779b97f4a7c15ULL);

  for (int iter = 0; iter < cfg.base.max_iterations_per_phase; ++iter) {
    // Deterministic crash trigger: a FaultPlan entry pinned to this rank at
    // (phase, iter) fires here, before any of the iteration's collectives.
    comm.fault_point(phase, iter);
    const util::TraceSpan iter_span(tb, "iteration", "iteration", phase, iter);
    // This iteration's overlap resolution, and -- while the kAuto model is
    // still warming up -- the probe instrumentation feeding it: blocked
    // exchange wall (latency), interior sweep wall, hidden latency, and the
    // iteration wall, each as a delta over this iteration.
    const bool overlap_on = overlap_now();
    xcfg = make_xcfg(overlap_on);
    phase_ran_overlap = phase_ran_overlap || overlap_on;
    const bool probing = overlap_model != nullptr && overlap_model->probing();
    const util::WallTimer probe_wall;
    const double probe_ghost0 = timers.ghost.seconds();
    const double probe_delta0 = timers.delta.seconds();
    const double probe_hidden0 = timers.comm_hidden;
    double probe_interior = 0;
    std::int64_t local_active = 0;
    std::int64_t local_moved = 0;
    std::fill(moved.begin(), moved.end(), 0);

    for (auto& order : groups) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[order_rng.next_below(i)]);
    // Interior-first schedule (ISSUE 5): stable-partition the shuffled order
    // so vertices with no ghost neighbour come first, preserving the shuffled
    // relative order within each class. The split point is a graph property
    // -- independent of the thread count AND of the overlap knob -- so every
    // configuration sweeps the exact same sequence. On one rank there are no
    // ghosts, every vertex is interior and the partition is a no-op.
    const auto interior_end = std::stable_partition(
        order.begin(), order.end(),
        [&g](VertexId lv) { return !g.is_boundary(lv); });
    const auto n_interior = static_cast<std::int64_t>(interior_end - order.begin());
    const auto group_n = static_cast<std::int64_t>(order.size());
    // First micro-batch that contains a boundary vertex. Batches before it
    // read no ghost state and may run while the exchange is in flight; the
    // straddling batch and everything after wait for the absorb + refresh.
    std::int64_t split_batch = 0;
    while (split_batch < kSweepBatches &&
           util::fixed_chunk(group_n, split_batch, kSweepBatches).second <= n_interior)
      ++split_batch;

    // (i) launch the push of current community assignments for all ghost
    // vertices (Alg. 3 l.4-5). With overlap on, the collective stays in
    // flight through the interior batches below; off blocks right here. The
    // payload snapshots owned_community NOW, before any of this iteration's
    // moves, in both modes.
    {
      util::ScopedAccum scope(timers.ghost);
      const util::TraceSpan span(tb, "ghost_exchange", "collective", phase, iter);
      state.ghosts.exchange_begin(comm, state.owned_community, xcfg);
    }

    // Local move computation (Alg. 3 l.6-9), threaded as a sequence of
    // bulk-synchronous MICRO-BATCHES. The sweep is cut into kSweepBatches
    // fixed slices (boundaries depend only on the group size, never on the
    // thread count). Within a batch, decisions are computed in parallel
    // against the batch-start state -- owned_community / ghosts / ledger are
    // not mutated until every thread is done, so each vertex's proposal is
    // independent of the scan's partitioning across threads. The batch is
    // then applied serially in ascending vertex order before the next batch
    // begins, so moves still propagate WITHIN a sweep (the asynchronous
    // behaviour the Louvain local phase converges fast on) at 1/kSweepBatches
    // granularity. Both halves are deterministic, which is what makes
    // `--threads N` bitwise reproducible. Vertices inside one batch decide
    // against slightly stale neighbour state -- the same staleness the
    // algorithm already tolerates ACROSS ranks every iteration.
    //
    // `slot_cap` is the ledger slot-space bound the scatter arrays are sized
    // to. Interior batches run against the PRE-absorb cap: their arcs only
    // reference owned destinations, whose community slots were all handed
    // out before this iteration (new slots appear only in the absorb /
    // retarget below). Boundary batches re-read the cap after the refresh.
    const auto run_batches = [&](std::int64_t first_batch, std::int64_t end_batch,
                                 std::size_t slot_cap) {
      for (std::int64_t batch = first_batch; batch < end_batch; ++batch) {
        const auto [batch_begin, batch_end] =
            util::fixed_chunk(group_n, batch, kSweepBatches);
        if (batch_begin >= batch_end) continue;

        util::parallel_for(&pool, batch_end - batch_begin,
                           [&, batch_begin](int tid, std::int64_t begin,
                                            std::int64_t end) {
          auto& nbr_weight = scatter[static_cast<std::size_t>(tid)];
          for (std::int64_t i = begin; i < end; ++i) {
            const VertexId lv =
                order[static_cast<std::size_t>(batch_begin + i)];
            const auto lvi = static_cast<std::size_t>(lv);
            const VertexId gv = g.to_global(lv);

            if (et.size() != 0 && !et.is_active(lvi, gv, phase, iter)) {
              proposed[lvi] = kInvalidCommunity;
              continue;
            }

            const CommunityId own = state.owned_community[lvi];
            const std::int64_t own_slot = owned_comm_slot[lvi];
            const Weight kv = g.weighted_degree(gv);

            // e_{v -> c} over ledger slots: per arc, two array reads (the
            // precomputed destination slot, then its community's slot
            // mirror) and a stamped segmented accumulate -- arcs group by
            // destination-community slot in first-touch order, each
            // segment summed in scan order (bitwise == the flat path).
            nbr_weight.reset(slot_cap);
            const auto a_end = static_cast<std::size_t>(row[lvi + 1]);
            for (auto a = static_cast<std::size_t>(row[lvi]); a < a_end; ++a) {
              const auto& e = arcs[a];
              if (e.dst == gv) continue;
              const std::int64_t d = dst_slot[a];
              nbr_weight.add(
                  d < local_n ? owned_comm_slot[static_cast<std::size_t>(d)]
                              : ghost_comm_slot[static_cast<std::size_t>(d - local_n)],
                  e.weight);
            }

            const Weight e_own = nbr_weight.sum_of(own_slot);
            const Weight a_own_less_v =
                state.ledger.info_by_slot(own_slot).degree - kv;

            // ∆Q argmax over the dense segment arrays. The selection (max
            // gain, strictly positive, smallest community id on ties) does
            // not depend on visit order, so every lane picks the same
            // winner the hash-map iteration did.
            const auto pick = util::best_segment(
                lane, nbr_weight, nbr_weight.segment_of(own_slot), e_own,
                a_own_less_v, kv, m, gamma,
                [&](std::int64_t slot) {
                  return state.ledger.info_by_slot(slot).degree;
                },
                [&](std::int64_t slot) { return state.ledger.id_of_slot(slot); });
            CommunityId best = own;
            std::int64_t best_slot = own_slot;
            if (pick.segment >= 0) {
              best_slot = nbr_weight.slots()[static_cast<std::size_t>(pick.segment)];
              best = state.ledger.id_of_slot(best_slot);
            }

            // Singleton-swap guard (same rationale as the shared-memory
            // comparator): concurrent decisions working from the same
            // snapshot would otherwise swap two singleton vertices back and
            // forth forever.
            if (best != own && state.ledger.info_by_slot(own_slot).size == 1 &&
                state.ledger.info_by_slot(best_slot).size == 1 && best > own) {
              best = own;
              best_slot = own_slot;
            }

            proposed[lvi] = best;
            proposed_slot[lvi] = best_slot;
          }
        });

        // Apply the batch serially in sweep (slot) order. The assignment
        // outcome is order-independent (each vertex lands on its own
        // proposal); the fixed order pins the floating-point accumulation
        // sequence in the ledger so a_c stays bitwise identical across
        // thread counts. Slot-keyed throughout: the ledger update, the
        // refcount handoff and the slot-mirror write are all array ops.
        for (std::int64_t i = batch_begin; i < batch_end; ++i) {
          const VertexId lv = order[static_cast<std::size_t>(i)];
          const auto lvi = static_cast<std::size_t>(lv);
          const CommunityId best = proposed[lvi];
          if (best == kInvalidCommunity) continue;
          ++local_active;
          const CommunityId own = state.owned_community[lvi];
          if (best == own) continue;
          const std::int64_t own_slot = owned_comm_slot[lvi];
          const std::int64_t to_slot = proposed_slot[lvi];
          state.ledger.apply_move_slots(own_slot, to_slot,
                                        g.weighted_degree(g.to_global(lv)));
          state.ledger.release_slot(own_slot);
          state.ledger.retain_slot(to_slot);
          state.owned_community[lvi] = best;
          owned_comm_slot[lvi] = to_slot;
          moved[lvi] = 1;
          ++local_moved;
        }
      }
    };

    // (ii) interior micro-batches, overlapped with the in-flight exchange.
    {
      util::ScopedAccum scope(timers.compute);
      const util::TraceSpan span(tb, "overlap_interior", "overlap", phase, iter);
      const util::WallTimer interior_timer;
      pool.reset_busy();
      run_batches(0, split_batch, static_cast<std::size_t>(state.ledger.slot_count()));
      const double busy = pool.busy_seconds();
      timers.compute_busy += busy;
      comm.counters().busy_seconds += busy;
      probe_interior += interior_timer.seconds();
    }

    // (iii) complete the exchange: drain peer buffers in arrival order,
    // absorb into the ghost slots in fixed rank order (identical in both
    // overlap modes -- see ghost_exchange.hpp). The transfer seconds that
    // elapsed while (ii) computed are the latency the schedule hid.
    {
      util::ScopedAccum scope(timers.ghost);
      const util::TraceSpan span(tb, "ghost_wait", "wait", phase, iter);
      state.ghosts.exchange_finish(comm);
      timers.comm_hidden += state.ghosts.last_exchange_stats().hidden_seconds;
    }

    // (iv) authoritative a_c / |c| for every community our vertices or their
    // neighbours might target. The needed set is maintained incrementally:
    // the exchange's change log retargets the refcounts (and the slot
    // mirror), then the subscriber-push refresh fetches only what this rank
    // newly needs and absorbs owners' pushes for records that changed.
    {
      util::ScopedAccum scope(timers.cinfo);
      const util::TraceSpan span(tb, "community_info", "collective", phase, iter);
      for (const auto& change : state.ghosts.last_changes()) {
        state.ledger.release(change.old_value);
        ghost_comm_slot[static_cast<std::size_t>(change.slot)] = state.ledger.retain(
            state.ghosts.values()[static_cast<std::size_t>(change.slot)]);
      }
      state.ledger.refresh(comm);
    }

    // (v) boundary micro-batches, against the refreshed ghost state. The
    // slot cap is re-read: the absorb/refresh may have slotted new
    // communities these vertices can now target.
    {
      util::ScopedAccum scope(timers.compute);
      const util::TraceSpan span(tb, "compute", "compute", phase, iter);
      pool.reset_busy();
      run_batches(split_batch, kSweepBatches,
                  static_cast<std::size_t>(state.ledger.slot_count()));
      const double busy = pool.busy_seconds();
      timers.compute_busy += busy;
      comm.counters().busy_seconds += busy;
    }

    // (vi) ship community deltas to their owners (Alg. 3 l.10-11). Only the
    // LAST group's flush may stay in flight: the intra-weight pass in the
    // modularity step reads no ledger state, but an earlier group's refresh
    // would.
    {
      util::ScopedAccum scope(timers.delta);
      const util::TraceSpan span(tb, "delta_exchange", "collective", phase, iter);
      const bool last_group = &order == &groups.back();
      state.ledger.flush_deltas_begin(comm, overlap_on && last_group);
      if (!last_group) state.ledger.flush_deltas_finish(comm);
    }
    }  // group loop

    // (vii) global modularity (Alg. 3 l.12-13). The intra-weight pass runs
    // first -- it reads communities and ghost values, never ledger records --
    // so with overlap on it executes while the last group's delta flush is
    // still in flight. The flush then completes (absorbing incoming deltas in
    // fixed rank order, same point in both modes) before the owned degree
    // term is read.
    Weight curr_mod;
    std::int64_t global_moved;
    Weight intra;
    {
      util::ScopedAccum scope(timers.allreduce);
      const util::TraceSpan span(tb, "overlap_delta", "overlap", phase, iter);
      if (warm != nullptr) {
        // Only affected rows can have changed; the frozen remainder is a
        // constant, computed once against the post-adoption state (valid at
        // any iteration: neither those rows' communities nor any of their
        // neighbours' ever change within the warm phase).
        if (!static_intra_done) {
          static_intra = local_intra_weight(pool, g, state.owned_community,
                                            state.ghosts, &affected, false);
          static_intra_done = true;
        }
        intra = static_intra + local_intra_weight(pool, g, state.owned_community,
                                                  state.ghosts, &affected, true);
      } else {
        intra = local_intra_weight(pool, g, state.owned_community, state.ghosts);
      }
    }
    {
      util::ScopedAccum scope(timers.delta);
      const util::TraceSpan span(tb, "delta_wait", "wait", phase, iter);
      state.ledger.flush_deltas_finish(comm);
      timers.comm_hidden += state.ledger.flush_hidden_seconds();
    }
    {
      util::ScopedAccum scope(timers.allreduce);
      const util::TraceSpan span(tb, "allreduce", "collective", phase, iter);
      const Weight degree_term = state.ledger.owned_degree_term();
      const auto sums = comm.allreduce_sum_vec<Weight>(
          {intra, degree_term, static_cast<Weight>(local_moved),
           static_cast<Weight>(local_active)});
      curr_mod = two_m > 0 ? sums[0] / two_m - gamma * sums[1] / (two_m * two_m) : 0.0;
      global_moved = static_cast<std::int64_t>(sums[2]);
      if (cfg.record_iterations) {
        IterationTelemetry it;
        it.iteration = iter;
        it.modularity = curr_mod;
        it.moved_vertices = global_moved;
        it.active_vertices = static_cast<std::int64_t>(sums[3]);
        telemetry.iteration_detail.push_back(it);
      }
    }

    // Feed the kAuto cost model one rank-identical aggregate sample (mean
    // over ranks) of this iteration's measurements. Bounded work: at most
    // 2 * overlap_probe_iters iterations per run ever take this collective,
    // after which probing() stays false for good.
    if (probing) {
      util::ScopedAccum scope(timers.allreduce);
      const util::TraceSpan span(tb, "overlap_probe", "overlap", phase, iter);
      // Probe traffic is model overhead, not algorithm work: reclassify it
      // (like checkpoint I/O) so Result::messages/bytes stay comparable
      // across modes and across clean vs resumed runs (a resume re-probes).
      const util::TrafficReclassScope reclass(
          comm.counters(), util::Counter::kOverlapProbeMessages,
          util::Counter::kOverlapProbeBytes);
      const double latency = (timers.ghost.seconds() - probe_ghost0) +
                             (timers.delta.seconds() - probe_delta0);
      const auto sums = comm.allreduce_sum_vec<double>(
          {latency, probe_interior, timers.comm_hidden - probe_hidden0,
           probe_wall.seconds()});
      const auto nr = static_cast<double>(comm.size());
      overlap_model->record(OverlapSample{sums[0] / nr, sums[1] / nr,
                                          sums[2] / nr, sums[3] / nr});
    }

    // ET probability updates (Eq. 3) happen after the iteration's outcome is
    // known, for every vertex -- participation does not matter, staying put
    // does. (With warm alpha 0 this is a no-op for the frozen set and keeps
    // the reactivated set at P = 1.)
    if (et.size() != 0) {
      for (VertexId lv = 0; lv < local_n; ++lv)
        et.update(static_cast<std::size_t>(lv), moved[static_cast<std::size_t>(lv)] != 0);
    }

    ++telemetry.iterations;

    // (vi) exit checks. All variants keep the tau test; ETC adds the global
    // inactive-fraction vote (its "extra remote communication"), which in
    // structured graphs fires well before tau does -- the paper's 1.25-2.3x
    // over plain ET. (Without the tau guard, a phase with a few persistent
    // oscillators would never reach 90% inactivity and spin to the iteration
    // cap.) A globally quiescent iteration always ends the phase.
    bool exit_phase = global_moved == 0 || curr_mod - prev_mod <= tau;
    // The ETC inactive-fraction vote is skipped for a warm phase: the frozen
    // set is inactive by construction, so the vote would fire on iteration 0
    // regardless of whether the reactivated region has settled. The skip is
    // keyed on `warm`, identical on every rank, so the collectives stay
    // aligned.
    if (cfg.variant == Variant::kEtc && warm == nullptr) {
      util::ScopedAccum scope(timers.allreduce);
      const util::TraceSpan span(tb, "allreduce", "collective", phase, iter);
      const auto global_inactive = comm.allreduce_sum<std::int64_t>(et.inactive_count());
      if (cfg.record_iterations)
        telemetry.iteration_detail.back().inactive_vertices = global_inactive;
      if (static_cast<double>(global_inactive) >=
          cfg.etc_exit_fraction * static_cast<double>(global_n))
        exit_phase = true;
    }
    prev_mod = std::max(prev_mod, curr_mod);
    if (exit_phase) break;
  }

  // Exact phase-final modularity: one more ghost push so every rank sees the
  // final assignments, then the same reduction. (The change log is not
  // consumed -- no sweep reads the ledger after this point.)
  {
    util::ScopedAccum scope(timers.ghost);
    const util::TraceSpan span(tb, "ghost_exchange", "collective", phase);
    state.ghosts.exchange(comm, state.owned_community, xcfg);
  }
  {
    util::ScopedAccum scope(timers.allreduce);
    const util::TraceSpan span(tb, "allreduce", "collective", phase);
    const Weight intra = local_intra_weight(pool, g, state.owned_community, state.ghosts);
    const Weight degree_term = state.ledger.owned_degree_term();
    const auto sums = comm.allreduce_sum_vec<Weight>({intra, degree_term});
    state.final_modularity =
        two_m > 0 ? sums[0] / two_m - gamma * sums[1] / (two_m * two_m) : 0.0;
  }

  telemetry.phase = phase;
  telemetry.threads = pool.num_threads();
  telemetry.graph_vertices = global_n;
  telemetry.graph_arcs = g.global_arcs();
  telemetry.threshold_used = tau;
  telemetry.modularity_after = state.final_modularity;
  telemetry.breakdown.ghost_exchange = timers.ghost.seconds();
  telemetry.breakdown.community_info = timers.cinfo.seconds();
  telemetry.breakdown.compute = timers.compute.seconds();
  telemetry.breakdown.compute_busy = timers.compute_busy;
  telemetry.breakdown.delta_exchange = timers.delta.seconds();
  telemetry.breakdown.allreduce = timers.allreduce.seconds();
  telemetry.breakdown.comm_hidden = timers.comm_hidden;
  if (overlap_model != nullptr) overlap_model->note_phase(phase_ran_overlap);
  return state;
}

}  // namespace

DistResult dist_louvain(comm::Comm& comm, graph::DistGraph graph, const DistConfig& cfg,
                        std::atomic<int>* phase_progress, const WarmStart* warm) {
  util::WallTimer total_timer;
  // This rank's counter block and its entry snapshot: everything this run
  // reports is a delta against the snapshot, so back-to-back runs on one
  // World (or discarded recovery attempts -- the satellite-1 fix) never
  // leak traffic into each other.
  util::CounterBlock& ctr = comm.counters();
  const util::CounterBlock start_ctr = ctr;
  util::TraceBuffer* tb = comm.trace();

  // The rank's compute pool, shared by every phase's move scan, modularity
  // reduction, and rebuild (the per-rank half of the MPI+OpenMP hybrid).
  util::ThreadPool pool(cfg.threads_per_rank);

  // kAuto's measured overlap cost model: one model per run, warmed during
  // the first phases' iterations; forced modes bypass it entirely.
  OverlapCostModel overlap_model(
      OverlapCostModel::Config{cfg.overlap_probe_iters, cfg.overlap_min_hidden_s});
  OverlapCostModel* const overlap_model_ptr =
      cfg.overlap == OverlapMode::kAuto ? &overlap_model : nullptr;

  if (warm != nullptr &&
      (warm->seed_community.size() != static_cast<std::size_t>(graph.local_count()) ||
       warm->reactivated.size() != warm->seed_community.size()))
    throw std::invalid_argument(
        "dist_louvain: WarmStart arrays must cover the rank's owned vertices");

  DistResult result;

  // original-vertex -> current-meta-vertex chain, held by the ORIGINAL
  // owner of each vertex (the original partition never changes).
  std::vector<VertexId> orig_to_cur(static_cast<std::size_t>(graph.local_count()));
  std::iota(orig_to_cur.begin(), orig_to_cur.end(), graph.v_begin());
  VertexId orig_global_n = graph.global_n();

  const std::uint64_t fingerprint =
      cfg.checkpoint.dir.empty() ? 0 : config_fingerprint(cfg);

  Weight prev_outer_mod = 0;
  bool forced_final = false;  // run once more at the minimum tau (cycling)
  int start_phase = 0;
  bool resumed = false;

  if (cfg.checkpoint.resume && !cfg.checkpoint.dir.empty()) {
    const util::TraceSpan span(tb, "checkpoint_load", "checkpoint");
    if (auto loaded = checkpoint_load(comm, cfg.checkpoint.dir, fingerprint)) {
      graph = std::move(loaded->graph);
      orig_to_cur = std::move(loaded->orig_to_cur);
      orig_global_n = loaded->orig_global_n;
      start_phase = loaded->state.next_phase;
      prev_outer_mod = loaded->state.prev_outer_mod;
      forced_final = loaded->state.forced_final;
      result.phases = loaded->state.phases_done;
      result.total_iterations = loaded->state.iterations_done;
      result.resumed_from_phase = start_phase;
      // Satellite-3 fix: the checkpoint also restores the cumulative
      // seconds/messages/bytes of the pre-checkpoint portion, so the final
      // result covers the whole job -- the rule phases/total_iterations just
      // above always followed (documented in telemetry.hpp).
      result.restored.seconds = loaded->state.counters.seconds;
      result.restored.messages = loaded->state.counters.messages;
      result.restored.bytes = loaded->state.counters.bytes;
      resumed = true;
    }
  }

  if (!resumed) {
    // Initial modularity of the singleton partition (needed for the first
    // outer convergence check). Skipped on resume: the checkpoint restored
    // the exact outer-loop watermark instead.
    Weight degree_term = 0;
    Weight intra = 0;
    for (VertexId lv = 0; lv < graph.local_count(); ++lv) {
      const VertexId gv = graph.to_global(lv);
      const Weight k = graph.weighted_degree(gv);
      degree_term += k * k;
      for (const auto& e : graph.local().neighbors(lv))
        if (e.dst == gv) intra += 2 * e.weight;
    }
    const auto sums = comm.allreduce_sum_vec<Weight>({intra, degree_term});
    const Weight two_m = graph.total_weight();
    prev_outer_mod = two_m > 0 ? sums[0] / two_m -
                                     cfg.base.resolution * sums[1] / (two_m * two_m)
                               : 0.0;
  }

  const double tau_min = cfg.min_threshold();

  // Set when a warm-start run exits via the renumber-only rebuild (no
  // coarse graph to recompute the final modularity from).
  bool warm_exit = false;
  Weight warm_exit_modularity = 0;
  VertexId warm_exit_communities = 0;

  // Breakdown timers live OUTSIDE the phase loop (one allocation, reused)
  // but are cleared by run_phase at every phase start -- see PhaseTimers.
  PhaseTimers timers;

  for (int phase = start_phase; phase < cfg.base.max_phases; ++phase) {
    if (phase_progress != nullptr && comm.rank() == 0)
      phase_progress->store(phase, std::memory_order_relaxed);

    // Phase-boundary checkpoint: everything needed to re-enter THIS phase.
    // Skipped right after a resume (the checkpoint on disk already is this
    // boundary) and at phase 0 (a fresh start needs no checkpoint).
    if (!cfg.checkpoint.dir.empty() && phase > 0 &&
        phase % std::max(1, cfg.checkpoint.every) == 0 &&
        !(resumed && phase == start_phase)) {
      // The whole block -- including the counter allreduce below -- is
      // checkpoint overhead. The reclassification must cover the allreduce:
      // a resumed run SKIPS this block at its start phase, so any of its
      // traffic left in kMessages would make a crashed-and-resumed run
      // report different algorithm traffic than a clean one.
      const util::TrafficReclassScope reclass(ctr, util::Counter::kCheckpointMessages,
                                              util::Counter::kCheckpointBytes);
      const util::TraceSpan span(tb, "checkpoint_save", "checkpoint", phase);
      CheckpointState st{phase, result.phases,
                         static_cast<std::int64_t>(result.total_iterations),
                         prev_outer_mod, forced_final, {}};
      // Cumulative whole-job algorithm totals at this boundary: restored
      // history plus the global sum of per-rank deltas since run start. The
      // delta vector is built before the allreduce call, so the allreduce's
      // own traffic is excluded on every rank symmetrically.
      const auto sums = comm.allreduce_sum_vec<std::int64_t>(
          {ctr[util::Counter::kMessages] - start_ctr[util::Counter::kMessages],
           ctr[util::Counter::kBytes] - start_ctr[util::Counter::kBytes]});
      st.counters.seconds = result.restored.seconds + total_timer.seconds();
      st.counters.messages = result.restored.messages + sums[0];
      st.counters.bytes = result.restored.bytes + sums[1];
      checkpoint_save(comm, cfg.checkpoint.dir, graph, orig_to_cur, orig_global_n, st,
                      fingerprint);
    }

    const double tau = forced_final ? tau_min : cfg.threshold_for_phase(phase);

    util::WallTimer phase_timer;
    PhaseTelemetry telemetry;
    // The warm seed applies to the FINE graph only: phase 0 of a fresh run.
    // A checkpoint resume supplies its own (coarsened) state instead, and
    // every later phase runs on a graph the seed's indices no longer match.
    const WarmStart* phase_warm = (phase == 0 && !resumed) ? warm : nullptr;
    auto phase_state = run_phase(comm, graph, cfg, phase, tau, pool, timers,
                                 telemetry, overlap_model_ptr, phase_warm);

    // The exit decision depends only on collectively-identical modularities,
    // so it can be taken BEFORE the rebuild: a warm-start run that is about
    // to exit skips the coarse-graph construction entirely (renumber only)
    // -- the coarse graph of the exit phase is used for nothing but the
    // final singleton-modularity recomputation, and run_phase already
    // reports that phase's exact final modularity. Cold runs keep the full
    // rebuild so their output stays bitwise identical to the pre-Session
    // driver.
    // A warm phase 0 measures its gain over the SEEDED partition's
    // modularity on the updated graph, not over the singleton baseline --
    // a small batch that locally re-converged exits right here, and only
    // a batch that genuinely moved modularity escalates into coarsening.
    const Weight base_mod =
        phase_warm != nullptr ? phase_state.initial_modularity : prev_outer_mod;
    const Weight gain = phase_state.final_modularity - base_mod;
    const double tau_exit =
        phase_warm != nullptr ? std::max(tau, phase_warm->exit_threshold) : tau;
    const bool exits_now =
        gain <= tau_exit && !(cfg.uses_cycling() && tau > tau_min && !forced_final);
    const bool renumber_only = warm != nullptr && exits_now;

    // Graph reconstruction + assignment-chain update. Always performed so
    // the final phase's moves are reflected in the output mapping.
    util::WallTimer rebuild_timer;
    const util::TraceSpan rebuild_span(tb, "rebuild", "collective", phase);
    auto next = rebuild(comm, graph, phase_state.owned_community, phase_state.ghosts,
                        phase_state.ledger, &pool, /*build_graph=*/!renumber_only,
                        cfg.rebalance, phase);

    // Route each original vertex's current id to the rank owning it in the
    // CURRENT partition; owners answer with the collapsed meta-vertex id.
    {
      const int p = comm.size();
      std::vector<std::vector<VertexId>> requests(static_cast<std::size_t>(p));
      for (const VertexId cur : orig_to_cur)
        requests[static_cast<std::size_t>(graph.owner(cur))].push_back(cur);
      const auto incoming = comm.alltoallv<VertexId>(requests);
      std::vector<std::vector<VertexId>> replies(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        replies[static_cast<std::size_t>(r)].reserve(incoming[static_cast<std::size_t>(r)].size());
        for (const VertexId cur : incoming[static_cast<std::size_t>(r)])
          replies[static_cast<std::size_t>(r)].push_back(
              next.new_vertex_of_current[static_cast<std::size_t>(graph.to_local(cur))]);
      }
      const auto answers = comm.alltoallv<VertexId>(std::move(replies));
      // Answers arrive per rank in the same order we asked; walk both.
      std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
      for (auto& cur : orig_to_cur) {
        const auto owner = static_cast<std::size_t>(graph.owner(cur));
        cur = answers[owner][cursor[owner]++];
      }
    }
    telemetry.breakdown.rebuild = rebuild_timer.seconds();
    telemetry.seconds = phase_timer.seconds();

    // Per-phase load-imbalance lambdas (ISSUE 10), sampled on EVERY run so
    // the coarsening skew is observable even with re-balancing off. One
    // O(p) allgather per phase: this rank's owned-arc count of the graph
    // the phase just ran on (the partition-quality lambda) and its measured
    // compute + rebuild wall (the observability lambda; scheduler-dependent,
    // so it is never a decision input). Sampling traffic is reclassified so
    // comm.messages stays comparable with and without the sampling.
    {
      const util::TraceSpan span(tb, "rebalance", "collective", phase);
      const util::TrafficReclassScope reclass(ctr, util::Counter::kRebalanceMessages,
                                              util::Counter::kRebalanceBytes);
      struct LoadSample {
        std::int64_t arcs;
        double seconds;
      };
      const auto samples = comm.allgather(LoadSample{
          static_cast<std::int64_t>(graph.local().num_arcs()),
          telemetry.breakdown.compute + telemetry.breakdown.rebuild});
      std::vector<std::int64_t> arcs(samples.size());
      std::vector<double> walls(samples.size());
      for (std::size_t i = 0; i < samples.size(); ++i) {
        arcs[i] = samples[i].arcs;
        walls[i] = samples[i].seconds;
      }
      telemetry.load_lambda = load_imbalance(arcs);
      telemetry.time_lambda = load_imbalance(walls);
    }
    // The boundary's re-balancing verdict (all-default when off): fold into
    // the per-phase record and the run-level v5 roll-up.
    telemetry.rebalance.evaluated = next.rebalance.evaluated;
    telemetry.rebalance.engaged = next.rebalance.engaged;
    telemetry.rebalance.lambda_pre = next.rebalance.lambda_pre;
    telemetry.rebalance.lambda_post = next.rebalance.lambda_post;
    telemetry.rebalance.lambda_floor = next.rebalance.lambda_floor;
    telemetry.rebalance.ranges_moved = next.rebalance.stats.ranges_moved;
    telemetry.rebalance.vertices_migrated = next.rebalance.stats.vertices_migrated;
    telemetry.rebalance.arcs_migrated = next.rebalance.stats.arcs_migrated;
    if (next.rebalance.evaluated) {
      ++result.rebalance.phases_evaluated;
      if (next.rebalance.engaged) {
        ++result.rebalance.phases_engaged;
      } else {
        ++result.rebalance.phases_declined;
      }
      result.rebalance.ranges_moved += next.rebalance.stats.ranges_moved;
      result.rebalance.vertices_migrated += next.rebalance.stats.vertices_migrated;
      result.rebalance.arcs_migrated += next.rebalance.stats.arcs_migrated;
      result.rebalance.max_lambda_pre =
          std::max(result.rebalance.max_lambda_pre, next.rebalance.lambda_pre);
      result.rebalance.max_lambda_post =
          std::max(result.rebalance.max_lambda_post, next.rebalance.lambda_post);
    }

    // Section V-D quality-assessment mode: gather the per-phase vertex-
    // community associations of the ORIGINAL graph at the root ("extra
    // collective operations per Louvain method phase").
    if (cfg.gather_quality) {
      auto gathered = comm.gatherv<CommunityId>(
          std::vector<CommunityId>(orig_to_cur.begin(), orig_to_cur.end()), 0);
      if (comm.rank() == 0) result.phase_assignments.push_back(std::move(gathered));
    }

    result.phase_telemetry.push_back(telemetry);
    result.breakdown += telemetry.breakdown;
    ++result.phases;
    result.total_iterations += telemetry.iterations;

    prev_outer_mod = std::max(prev_outer_mod, phase_state.final_modularity);
    if (renumber_only) {
      // Warm exit without a coarse graph: the phase's exact final
      // modularity and the renumbering's community count stand in for the
      // final-graph recomputation below.
      warm_exit_modularity = phase_state.final_modularity;
      warm_exit_communities = next.new_global_n;
      warm_exit = true;
      break;
    }
    graph = std::move(next.graph);

    if (gain <= tau) {
      if (cfg.uses_cycling() && tau > tau_min && !forced_final) {
        // Converged at a relaxed tau: force one more phase at the strictest
        // threshold to secure acceptable modularity (paper Section V-C-a).
        forced_final = true;
        continue;
      }
      break;
    }
    forced_final = false;
  }

  // Final exact modularity: singleton partition of the final coarse graph
  // -- except after a warm renumber-only exit, where the coarse graph was
  // never built and the last phase's exact modularity is the same quantity.
  if (warm_exit) {
    result.modularity = warm_exit_modularity;
  } else {
    Weight intra = 0;
    Weight degree_term = 0;
    for (VertexId lv = 0; lv < graph.local_count(); ++lv) {
      const VertexId gv = graph.to_global(lv);
      const Weight k = graph.weighted_degree(gv);
      degree_term += k * k;
      for (const auto& e : graph.local().neighbors(lv))
        if (e.dst == gv) intra += 2 * e.weight;
    }
    const auto sums = comm.allreduce_sum_vec<Weight>({intra, degree_term});
    const Weight two_m = graph.total_weight();
    result.modularity = two_m > 0 ? sums[0] / two_m -
                                        cfg.base.resolution * sums[1] / (two_m * two_m)
                                  : 0.0;
  }

  // Final assignment for all original vertices: original partition slices
  // concatenate in rank order to the full array.
  result.community = comm.allgatherv<CommunityId>(
      std::vector<CommunityId>(orig_to_cur.begin(), orig_to_cur.end()));
  result.num_communities = warm_exit ? warm_exit_communities : graph.global_n();
  result.seconds = result.restored.seconds + total_timer.seconds();

  // Global executed-portion counter totals, identical on every rank: sum the
  // per-rank deltas since run start. The delta vectors are built before the
  // allreduce calls, so the reduction's own traffic is excluded on every
  // rank symmetrically (and deterministically).
  {
    std::vector<std::int64_t> delta(util::kNumCounters);
    for (std::size_t i = 0; i < util::kNumCounters; ++i)
      delta[i] = ctr.values[i] - start_ctr.values[i];
    const auto sums = comm.allreduce_sum_vec<std::int64_t>(delta);
    for (std::size_t i = 0; i < util::kNumCounters; ++i)
      result.counters.values[i] = sums[i];
    const auto busy = comm.allreduce_sum_vec<double>(
        {ctr.busy_seconds - start_ctr.busy_seconds});
    result.counters.busy_seconds = busy[0];
  }
  result.messages =
      result.restored.messages + result.counters[util::Counter::kMessages];
  result.bytes = result.restored.bytes + result.counters[util::Counter::kBytes];

  // Manifest v4 "overlap" object: what the knob was, what the run did, and
  // (kAuto) the cost-model inputs behind the decision. Forced modes report
  // their constant; executed phases only (phase_telemetry, not restored).
  if (cfg.overlap == OverlapMode::kAuto) {
    result.overlap = overlap_model.telemetry(overlap_mode_label(cfg.overlap));
  } else {
    const bool on = cfg.overlap == OverlapMode::kOn;
    result.overlap.mode = overlap_mode_label(cfg.overlap);
    result.overlap.decision = on ? "on" : "off";
    result.overlap.decided = true;
    const auto executed = static_cast<int>(result.phase_telemetry.size());
    (on ? result.overlap.phases_engaged : result.overlap.phases_declined) = executed;
  }
  result.rebalance.enabled = cfg.rebalance.enabled;
  result.rebalance.threshold = cfg.rebalance.threshold;
  return result;
}

DistResult dist_louvain_inprocess(int nranks, const graph::Csr& global,
                                  const DistConfig& cfg, graph::PartitionKind kind,
                                  const comm::RunOptions& options,
                                  std::atomic<int>* phase_progress) {
  DistResult result;
  comm::run(
      nranks,
      [&](comm::Comm& comm) {
        auto dist = graph::DistGraph::from_replicated(comm, global, kind);
        auto local_result = dist_louvain(comm, std::move(dist), cfg, phase_progress);
        if (comm.rank() == 0) result = std::move(local_result);
      },
      options);
  return result;
}

}  // namespace dlouvain::core
