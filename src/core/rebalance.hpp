// Phase-boundary dynamic load re-balancing (ISSUE 10).
//
// Louvain coarsening skews per-rank load: communities collapse unevenly, so
// the even-vertex split of each coarse graph can leave one rank owning a
// multiple of the mean arc count. This header is the PURE half of the
// re-balancer -- the surplus/deficit model that turns allreduced per-rank
// load samples into a migration decision -- with no communication, so it is
// unit-testable with hand-built load vectors.
//
// Decision inputs are OWNED-ARC COUNTS, never measured wall times: arc
// counts are collectively identical on every rank (they come out of one
// allreduce of deterministic integers), so the verdict is rank-identical and
// reproducible across thread counts and fault injection. Measured per-rank
// seconds ARE sampled each phase, but only for the manifest's observability
// lambda -- a time-based decision would make the partition (and therefore
// the sweep order) depend on scheduler noise.
//
// Two-step screen (the PR 8 cost-model pattern -- cheap test first, model
// only when it might engage):
//   1. O(p): lambda_pre = max/mean of per-rank arc counts under the default
//      even-vertex split of the NEW coarse graph. Below threshold -> done.
//   2. O(n_coarse): allreduce the per-new-vertex arc histogram, re-cut the
//      1D range boundaries at the exact MIN-MAX contiguous partition (binary
//      search over the per-rank capacity + greedy feasibility -- the classic
//      linear-partition problem), and engage only when the candidate
//      strictly improves lambda. Migration is "free": rebuild() reships the
//      whole coarse graph anyway, so choosing different range boundaries
//      before that shipment moves vertices without a second data movement.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/partition.hpp"
#include "util/types.hpp"

namespace dlouvain::core {

/// max/mean of a non-negative load vector. 1.0 (perfect balance) for empty
/// vectors or all-zero loads -- a graph with no arcs cannot be imbalanced.
[[nodiscard]] double load_imbalance(std::span<const std::int64_t> loads);
[[nodiscard]] double load_imbalance(std::span<const double> loads);

/// Per-rank arc loads of `part` given the global per-vertex arc histogram.
[[nodiscard]] std::vector<std::int64_t> partition_loads(
    const graph::Partition1D& part, std::span<const std::int64_t> arcs_per_vertex);

/// What a chosen partition moves relative to the incumbent: ranks whose
/// interval changed, and the vertices/arcs whose owner changed.
struct MigrationStats {
  int ranges_moved{0};
  std::int64_t vertices_migrated{0};
  std::int64_t arcs_migrated{0};
};

[[nodiscard]] MigrationStats migration_stats(
    const graph::Partition1D& from, const graph::Partition1D& to,
    std::span<const std::int64_t> arcs_per_vertex);

/// One phase boundary's re-balancing verdict plus everything the manifest
/// reports about it (the v5 per-phase "rebalance" record).
struct RebalanceDecision {
  bool evaluated{false};  ///< the enabled-path screen ran at this boundary
  bool engaged{false};    ///< a migrated partition was chosen
  double lambda_pre{1.0};   ///< arc lambda under the even-vertex split
  double lambda_post{1.0};  ///< arc lambda under the chosen split (== pre when declined)
  /// The structural balance limit, max(hist) / (total / p): no partition --
  /// contiguous or otherwise -- can push lambda below the heaviest single
  /// vertex's share of a mean rank. On tiny late coarse graphs this floor
  /// exceeds any fixed target; the min-max candidate is exact, so
  /// lambda_post == floor there means the optimum was reached. 1.0 when the
  /// step-2 histogram was never gathered (disabled or screened out).
  double lambda_floor{1.0};
  MigrationStats stats;
  graph::Partition1D partition;  ///< the partition rebuild() must use
};

/// The pure decision: given the allreduced per-vertex arc histogram of the
/// new coarse graph, pick the partition for the next phase. Deterministic,
/// and identical on every rank because the inputs are. Declines (keeps the
/// even-vertex split) below `threshold`, and also when the min-max
/// candidate does not STRICTLY improve lambda -- so a pathological histogram
/// can never make things worse, only leave them unchanged.
[[nodiscard]] RebalanceDecision decide_rebalance(
    VertexId n, int p, double threshold,
    std::span<const std::int64_t> arcs_per_vertex);

}  // namespace dlouvain::core
