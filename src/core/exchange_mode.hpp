// Ghost-exchange wire modes (dense vs delta), shared between the GhostField
// implementation, DistConfig and the CLI so spellings cannot drift.
//
// Every iteration each rank pushes the current community of its mirrored
// vertices to the ranks ghosting them. Late in a phase most vertices stop
// moving, so most of a dense update message repeats what the receiver
// already holds. Delta mode ships only the changed entries as (index, value)
// pairs against the shared mirror list; the payload is self-describing (a
// one-element header tags the format), so the sender may pick per
// destination and per round. Results are identical in every mode -- the
// receiver ends up with the same ghost values either way.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace dlouvain::core {

enum class GhostExchangeMode {
  kDense,  ///< always ship the full mirror list (the seed's format)
  kDelta,  ///< always ship (index, value) pairs of changed entries
  kAuto,   ///< per destination: delta when few enough entries changed
};

/// CLI spelling ("dense" / "delta" / "auto", case-insensitive); nullopt for
/// anything else -- callers own the error message.
std::optional<GhostExchangeMode> parse_exchange_mode(std::string_view name);

/// Inverse of parse_exchange_mode, for labels and telemetry dumps.
std::string exchange_mode_label(GhostExchangeMode mode);

}  // namespace dlouvain::core
