// Communication/compute overlap modes, shared between DistConfig, the sweep
// scheduler and the CLI so spellings cannot drift.
//
// With overlap on, each iteration launches the ghost exchange without
// blocking, sweeps the interior micro-batches (vertices with no ghost
// neighbours) while the messages are in flight, and only completes the
// exchange before the first boundary batch; the community-delta ship at
// iteration end overlaps the modularity bookkeeping the same way. The
// schedule is identical in both modes -- only the position of the blocking
// wait moves -- so overlap NEVER changes results (bitwise, at any thread
// count). See DESIGN.md "Interior/boundary overlap".
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace dlouvain::core {

enum class OverlapMode {
  kOff,   ///< block on the exchange where it is launched (the seed's order)
  kOn,    ///< sweep interior batches while the exchange is in flight
  kAuto,  ///< measured cost model (core/overlap_model.hpp): off until the
          ///< model warms up, then engaged only when the probed hidden time
          ///< beats the schedule's measured overhead
};

/// CLI spelling ("off" / "on" / "auto", case-insensitive); nullopt for
/// anything else -- callers own the error message.
std::optional<OverlapMode> parse_overlap_mode(std::string_view name);

/// Inverse of parse_overlap_mode, for labels and telemetry dumps.
std::string overlap_mode_label(OverlapMode mode);

}  // namespace dlouvain::core
