// Distributed distance-1 graph coloring -- the acceleration heuristic the
// paper names as future work ("the use of distance-1 coloring to ensure that
// the set of vertices that are processed in parallel ... are mutually
// non-adjacent and hence independent. This may lead to faster convergence"),
// adopted from the shared-memory Grappolo [22].
//
// The implementation is Jones-Plassmann over the comm substrate: every
// vertex gets a stateless pseudo-random priority keyed on (seed, id); in
// each round, an uncolored vertex whose priority is a strict maximum among
// its uncolored neighbours takes the smallest colour unused by its coloured
// neighbours. Adjacent vertices can never colour in the same round (the
// priority order is total), so no conflict resolution pass is needed. Ghost
// colours travel through a GhostField per round.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/comm.hpp"
#include "graph/dist_graph.hpp"
#include "graph/csr.hpp"

namespace dlouvain::core {

struct ColoringResult {
  /// Colour of each OWNED vertex (by local index), in [0, num_colors).
  std::vector<std::int64_t> color;
  std::int64_t num_colors{0};  ///< global colour count
  int rounds{0};               ///< Jones-Plassmann rounds to completion
};

/// Collective: colour the distributed graph so that no two adjacent vertices
/// share a colour. Deterministic for a given seed at any rank count.
ColoringResult distance1_coloring(comm::Comm& comm, const graph::DistGraph& g,
                                  std::uint64_t seed = 31337);

/// Serial greedy reference (vertices in id order, smallest available
/// colour); used as the test oracle for validity and colour-count sanity.
ColoringResult distance1_coloring_serial(const graph::Csr& g);

}  // namespace dlouvain::core
