#include "core/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace dlouvain::core {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_counters_json(std::string& out, const util::MetricsSnapshot& counters) {
  out += '{';
  for (std::size_t i = 0; i < util::kNumCounters; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += counter_name(static_cast<util::Counter>(i));
    out += "\":";
    out += std::to_string(counters.values[i]);
  }
  out += ",\"pool.busy_seconds\":" + json_number(counters.busy_seconds);
  out += '}';
}

void append_breakdown_json(std::string& out, const TimeBreakdown& b) {
  out += "{\"ghost_exchange\":" + json_number(b.ghost_exchange) +
         ",\"community_info\":" + json_number(b.community_info) +
         ",\"compute\":" + json_number(b.compute) +
         ",\"delta_exchange\":" + json_number(b.delta_exchange) +
         ",\"allreduce\":" + json_number(b.allreduce) +
         ",\"rebuild\":" + json_number(b.rebuild) +
         ",\"compute_busy\":" + json_number(b.compute_busy) +
         ",\"comm_hidden\":" + json_number(b.comm_hidden) + '}';
}

void append_updates_json(std::string& out, const UpdateTelemetry& u) {
  out += "{\"batches_applied\":" + std::to_string(u.batches_applied) +
         ",\"edges_added\":" + std::to_string(u.edges_added) +
         ",\"edges_removed\":" + std::to_string(u.edges_removed) +
         ",\"vertices_reactivated\":" + std::to_string(u.vertices_reactivated) +
         ",\"reconverge_iterations\":" + std::to_string(u.reconverge_iterations) +
         ",\"fallback_to_full\":" + std::to_string(u.fallback_to_full) + '}';
}

void append_overlap_json(std::string& out, const OverlapTelemetry& o) {
  out += "{\"mode\":\"" + json_escape(o.mode) + '\"';
  out += ",\"decision\":\"" + json_escape(o.decision) + '\"';
  out += ",\"decided\":";
  out += o.decided ? "true" : "false";
  out += ",\"probe_iterations_off\":" + std::to_string(o.probe_iterations_off);
  out += ",\"probe_iterations_on\":" + std::to_string(o.probe_iterations_on);
  out += ",\"predicted_hidden_s\":" + json_number(o.predicted_hidden_s);
  out += ",\"measured_latency_s\":" + json_number(o.measured_latency_s);
  out += ",\"measured_interior_s\":" + json_number(o.measured_interior_s);
  out += ",\"off_wall_s\":" + json_number(o.off_wall_s);
  out += ",\"on_wall_s\":" + json_number(o.on_wall_s);
  out += ",\"measured_hidden_s\":" + json_number(o.measured_hidden_s);
  out += ",\"phases_engaged\":" + std::to_string(o.phases_engaged);
  out += ",\"phases_declined\":" + std::to_string(o.phases_declined);
  out += '}';
}

void append_rebalance_json(std::string& out, const DistResult::RebalanceTelemetry& r) {
  out += "{\"enabled\":";
  out += r.enabled ? "true" : "false";
  out += ",\"threshold\":" + json_number(r.threshold);
  out += ",\"decided\":";
  out += r.decided() ? "true" : "false";
  out += ",\"phases_evaluated\":" + std::to_string(r.phases_evaluated);
  out += ",\"phases_engaged\":" + std::to_string(r.phases_engaged);
  out += ",\"phases_declined\":" + std::to_string(r.phases_declined);
  out += ",\"ranges_moved\":" + std::to_string(r.ranges_moved);
  out += ",\"vertices_migrated\":" + std::to_string(r.vertices_migrated);
  out += ",\"arcs_migrated\":" + std::to_string(r.arcs_migrated);
  out += ",\"max_lambda_pre\":" + json_number(r.max_lambda_pre);
  out += ",\"max_lambda_post\":" + json_number(r.max_lambda_post);
  out += '}';
}

void append_service_json(std::string& out, const ServiceTelemetry& s) {
  out += "{\"job_id\":" + std::to_string(s.job_id);
  out += ",\"cache_hit\":";
  out += s.cache_hit ? "true" : "false";
  out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
  out += ",\"jobs_served\":" + std::to_string(s.jobs_served);
  out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(s.cache_misses);
  out += ",\"rejected\":" + std::to_string(s.rejected);
  out += ",\"sessions_open\":" + std::to_string(s.sessions_open);
  out += ",\"drain\":\"" + json_escape(s.drain) + "\"}";
}

std::string dist_result_to_json(const DistResult& r) {
  std::string out;
  out.reserve(1024 + 512 * r.phase_telemetry.size());
  out += "{\"schema\":\"";
  out += kManifestSchema;
  out += "\",\"engine\":\"distributed\"";
  out += ",\"modularity\":" + json_number(r.modularity);
  out += ",\"num_communities\":" + std::to_string(r.num_communities);
  out += ",\"phases\":" + std::to_string(r.phases);
  out += ",\"total_iterations\":" + std::to_string(r.total_iterations);
  out += ",\"seconds\":" + json_number(r.seconds);
  out += ",\"messages\":" + std::to_string(r.messages);
  out += ",\"bytes\":" + std::to_string(r.bytes);
  out += ",\"resumed_from_phase\":" + std::to_string(r.resumed_from_phase);
  out += ",\"restored\":{\"seconds\":" + json_number(r.restored.seconds) +
         ",\"messages\":" + std::to_string(r.restored.messages) +
         ",\"bytes\":" + std::to_string(r.restored.bytes) + '}';
  out += ",\"counters\":";
  append_counters_json(out, r.counters);
  out += ",\"breakdown\":";
  append_breakdown_json(out, r.breakdown);
  out += ",\"overlap\":";
  append_overlap_json(out, r.overlap);
  out += ",\"rebalance\":";
  append_rebalance_json(out, r.rebalance);
  out += ",\"phases_detail\":[";
  for (std::size_t i = 0; i < r.phase_telemetry.size(); ++i) {
    const auto& ph = r.phase_telemetry[i];
    if (i != 0) out += ',';
    out += "{\"phase\":" + std::to_string(ph.phase);
    out += ",\"iterations\":" + std::to_string(ph.iterations);
    out += ",\"threads\":" + std::to_string(ph.threads);
    out += ",\"graph_vertices\":" + std::to_string(ph.graph_vertices);
    out += ",\"graph_arcs\":" + std::to_string(ph.graph_arcs);
    out += ",\"modularity_after\":" + json_number(ph.modularity_after);
    out += ",\"threshold_used\":" + json_number(ph.threshold_used);
    out += ",\"seconds\":" + json_number(ph.seconds);
    out += ",\"breakdown\":";
    append_breakdown_json(out, ph.breakdown);
    out += ",\"load_lambda\":" + json_number(ph.load_lambda);
    out += ",\"time_lambda\":" + json_number(ph.time_lambda);
    out += ",\"rebalance\":{\"evaluated\":";
    out += ph.rebalance.evaluated ? "true" : "false";
    out += ",\"engaged\":";
    out += ph.rebalance.engaged ? "true" : "false";
    out += ",\"lambda_pre\":" + json_number(ph.rebalance.lambda_pre);
    out += ",\"lambda_post\":" + json_number(ph.rebalance.lambda_post);
    out += ",\"lambda_floor\":" + json_number(ph.rebalance.lambda_floor);
    out += ",\"ranges_moved\":" + std::to_string(ph.rebalance.ranges_moved);
    out += ",\"vertices_migrated\":" + std::to_string(ph.rebalance.vertices_migrated);
    out += ",\"arcs_migrated\":" + std::to_string(ph.rebalance.arcs_migrated);
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace dlouvain::core
