// The distributed Louvain algorithm -- the paper's primary contribution
// (Algorithms 2 and 3 plus the Section IV-B heuristics).
//
// Collective: every rank of `comm` calls dist_louvain with its slice of the
// same DistGraph and an identical config; every rank returns an identical
// DistResult. The communication protocol per iteration is exactly the
// paper's: ghost community push, community-info request/reply, local move
// computation with immediate local updates, community-delta flush to owners,
// and a modularity all-reduce; phases end with the distributed rebuild.
#pragma once

#include <atomic>

#include "comm/comm.hpp"
#include "core/dist_config.hpp"
#include "core/telemetry.hpp"
#include "graph/dist_graph.hpp"

namespace dlouvain::core {

/// Run distributed Louvain over `graph` (consumed: coarsening replaces it
/// phase by phase). With DistConfig::checkpoint configured, phase-boundary
/// checkpoints are written (and resumed from) per core/checkpoint.hpp.
/// `phase_progress`, when non-null, is updated by rank 0 with the index of
/// each phase as it starts -- the recovery driver's window into how far an
/// attempt got before it failed.
DistResult dist_louvain(comm::Comm& comm, graph::DistGraph graph,
                        const DistConfig& config = {},
                        std::atomic<int>* phase_progress = nullptr);

/// Convenience wrapper for tests/examples: distribute a replicated CSR over
/// `nranks` in-process ranks and run. Returns the (rank-identical) result.
/// `options` configures the comm runtime (receive deadline, fault plan).
DistResult dist_louvain_inprocess(int nranks, const graph::Csr& global,
                                  const DistConfig& config = {},
                                  graph::PartitionKind kind = graph::PartitionKind::kEvenEdges,
                                  const comm::RunOptions& options = {},
                                  std::atomic<int>* phase_progress = nullptr);

}  // namespace dlouvain::core
