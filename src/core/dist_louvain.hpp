// The distributed Louvain algorithm -- the paper's primary contribution
// (Algorithms 2 and 3 plus the Section IV-B heuristics).
//
// Collective: every rank of `comm` calls dist_louvain with its slice of the
// same DistGraph and an identical config; every rank returns an identical
// DistResult. The communication protocol per iteration is exactly the
// paper's: ghost community push, community-info request/reply, local move
// computation with immediate local updates, community-delta flush to owners,
// and a modularity all-reduce; phases end with the distributed rebuild.
#pragma once

#include <atomic>

#include "comm/comm.hpp"
#include "core/dist_config.hpp"
#include "core/telemetry.hpp"
#include "graph/dist_graph.hpp"

namespace dlouvain::core {

/// Warm-start seed for an incremental re-clustering run (the streaming
/// Session's batch updates; docs/STREAMING.md). Per OWNED vertex of the
/// rank's fine-graph slice, in local-index order:
///   * seed_community[lv]: the community (vertex-id space) the vertex starts
///     phase 0 in, instead of its own singleton -- typically the previous
///     converged assignment mapped through per-community representative
///     vertices;
///   * reactivated[lv]: nonzero iff the vertex is free to move during phase
///     0. Frozen vertices keep their seed community for the whole warm
///     phase; later phases (on the coarsened graph) run unrestricted.
/// Every rank must pass masks consistent with the same global seed
/// assignment; determinism is unchanged (the seed is data, not schedule).
struct WarmStart {
  std::vector<CommunityId> seed_community;
  std::vector<char> reactivated;
  /// Escalation threshold for the warm phase 0: when the re-convergence
  /// moves modularity (vs the seeded partition) by no more than
  /// max(exit_threshold, tau), the run exits at phase 0 via the
  /// renumber-only rebuild instead of coarsening -- the coarse chain's
  /// merges are already encoded in the seed communities, so re-running it
  /// buys ~nothing for small batches. 0 keeps the configured tau only.
  double exit_threshold{0};
};

/// Run distributed Louvain over `graph` (consumed: coarsening replaces it
/// phase by phase). With DistConfig::checkpoint configured, phase-boundary
/// checkpoints are written (and resumed from) per core/checkpoint.hpp.
/// `phase_progress`, when non-null, is updated by rank 0 with the index of
/// each phase as it starts -- the recovery driver's window into how far an
/// attempt got before it failed. `warm`, when non-null, seeds phase 0 from
/// a previous assignment and restricts its sweeps to the reactivated set
/// (ignored when a checkpoint resume supplies the state instead).
DistResult dist_louvain(comm::Comm& comm, graph::DistGraph graph,
                        const DistConfig& config = {},
                        std::atomic<int>* phase_progress = nullptr,
                        const WarmStart* warm = nullptr);

/// Convenience wrapper for tests/examples: distribute a replicated CSR over
/// `nranks` in-process ranks and run. Returns the (rank-identical) result.
/// `options` configures the comm runtime (receive deadline, fault plan).
DistResult dist_louvain_inprocess(int nranks, const graph::Csr& global,
                                  const DistConfig& config = {},
                                  graph::PartitionKind kind = graph::PartitionKind::kEvenEdges,
                                  const comm::RunOptions& options = {},
                                  std::atomic<int>* phase_progress = nullptr);

}  // namespace dlouvain::core
