// The distributed Louvain algorithm -- the paper's primary contribution
// (Algorithms 2 and 3 plus the Section IV-B heuristics).
//
// Collective: every rank of `comm` calls dist_louvain with its slice of the
// same DistGraph and an identical config; every rank returns an identical
// DistResult. The communication protocol per iteration is exactly the
// paper's: ghost community push, community-info request/reply, local move
// computation with immediate local updates, community-delta flush to owners,
// and a modularity all-reduce; phases end with the distributed rebuild.
#pragma once

#include "comm/comm.hpp"
#include "core/dist_config.hpp"
#include "core/telemetry.hpp"
#include "graph/dist_graph.hpp"

namespace dlouvain::core {

/// Run distributed Louvain over `graph` (consumed: coarsening replaces it
/// phase by phase).
DistResult dist_louvain(comm::Comm& comm, graph::DistGraph graph,
                        const DistConfig& config = {});

/// Convenience wrapper for tests/examples: distribute a replicated CSR over
/// `nranks` in-process ranks and run. Returns the (rank-identical) result.
DistResult dist_louvain_inprocess(int nranks, const graph::Csr& global,
                                  const DistConfig& config = {},
                                  graph::PartitionKind kind = graph::PartitionKind::kEvenEdges);

}  // namespace dlouvain::core
