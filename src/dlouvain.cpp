#include "dlouvain.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "core/checkpoint.hpp"
#include "louvain/serial.hpp"
#include "louvain/shared.hpp"

namespace dlouvain {

louvain::LouvainConfig Plan::base_config() const {
  louvain::LouvainConfig cfg;
  cfg.threshold = threshold_;
  cfg.max_phases = max_phases_;
  cfg.max_iterations_per_phase = max_iterations_;
  cfg.resolution = resolution_;
  cfg.early_termination = variant_ == Variant::kEt || variant_ == Variant::kEtc;
  cfg.et_alpha = alpha_;
  cfg.vertex_following = vertex_following_;
  cfg.seed = seed_;
  return cfg;
}

core::DistConfig Plan::dist_config() const {
  core::DistConfig cfg;
  cfg.base = base_config();
  cfg.base.vertex_following = false;  // a serial/shared-only preprocessing
  cfg.variant = variant_;
  cfg.add_threshold_cycling = cycling_;
  cfg.use_coloring = coloring_;
  cfg.record_iterations = record_iterations_;
  cfg.ghost_exchange_mode = exchange_mode_;
  cfg.delta_exchange_crossover = exchange_crossover_;
  cfg.threads_per_rank = threads_;
  cfg.checkpoint.dir = checkpoint_dir_;
  cfg.checkpoint.every = checkpoint_every_;
  cfg.checkpoint.resume = resume_;
  return cfg;
}

Result Plan::run(const graph::Csr& g) const {
  Result out;
  out.engine = engine_;
  switch (engine_) {
    case Engine::kSerial: {
      auto r = louvain::louvain_serial(g, base_config());
      out.community = r.community;
      out.modularity = r.modularity;
      out.num_communities = r.num_communities;
      out.phases = r.phases;
      out.total_iterations = r.total_iterations;
      out.seconds = r.seconds;
      out.local = std::move(r);
      break;
    }
    case Engine::kShared: {
      auto r = louvain::louvain_shared(g, base_config(), threads_);
      out.community = r.community;
      out.modularity = r.modularity;
      out.num_communities = r.num_communities;
      out.phases = r.phases;
      out.total_iterations = r.total_iterations;
      out.seconds = r.seconds;
      out.local = std::move(r);
      break;
    }
    case Engine::kDistributed: {
      auto cfg = dist_config();

      comm::RunOptions options;
      options.timeout_seconds = comm_timeout_;
      // One injector for all attempts: crash triggers are one-shot, so a
      // restarted run proceeds past the failure it is recovering from.
      if (faults_) options.faults = std::make_shared<comm::FaultInjector>(*faults_);

      // Recovery driver: on any detectable communication failure, restart --
      // from the newest checkpoint when checkpointing is on, from scratch
      // otherwise -- up to max_restarts_ extra attempts.
      std::atomic<int> progress{-1};
      for (int attempt = 0;; ++attempt) {
        progress.store(-1, std::memory_order_relaxed);
        try {
          auto r = core::dist_louvain_inprocess(ranks_, g, cfg, partition_, options,
                                                &progress);
          out.recovery.attempts = attempt + 1;
          out.recovery.resumed_from_phase = r.resumed_from_phase;
          out.community = r.community;
          out.modularity = r.modularity;
          out.num_communities = r.num_communities;
          out.phases = r.phases;
          out.total_iterations = r.total_iterations;
          out.seconds = r.seconds;
          out.distributed = std::move(r);
          break;
        } catch (const comm::CommFailure&) {
          if (attempt >= max_restarts_) throw;
          const int next_resume =
              cfg.checkpoint.dir.empty()
                  ? 0
                  : core::checkpoint_latest_phase(cfg.checkpoint.dir).value_or(0);
          // Phases [next_resume, progress] ran this attempt and will run
          // again on the next one.
          out.recovery.phases_replayed +=
              std::max(0, progress.load(std::memory_order_relaxed) + 1 - next_resume);
          cfg.checkpoint.resume = !cfg.checkpoint.dir.empty();
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace dlouvain
