#include "dlouvain.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <functional>
#include <memory>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "core/metrics.hpp"
#include "louvain/serial.hpp"
#include "louvain/shared.hpp"
#include "util/trace.hpp"

namespace dlouvain {

namespace {

void write_text_file(const std::string& path, const std::string& what,
                     const std::function<void(std::ofstream&)>& emit) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + what + " output " + path);
  emit(out);
  if (!out) throw std::runtime_error("failed writing " + what + " output " + path);
}

}  // namespace

louvain::LouvainConfig Plan::base_config() const {
  louvain::LouvainConfig cfg;
  cfg.threshold = threshold_;
  cfg.max_phases = max_phases_;
  cfg.max_iterations_per_phase = max_iterations_;
  cfg.resolution = resolution_;
  cfg.early_termination = variant_ == Variant::kEt || variant_ == Variant::kEtc;
  cfg.et_alpha = alpha_;
  cfg.vertex_following = vertex_following_;
  cfg.seed = seed_;
  return cfg;
}

core::DistConfig Plan::dist_config() const {
  core::DistConfig cfg;
  cfg.base = base_config();
  cfg.base.vertex_following = false;  // a serial/shared-only preprocessing
  cfg.variant = variant_;
  cfg.add_threshold_cycling = cycling_;
  cfg.use_coloring = coloring_;
  cfg.record_iterations = record_iterations_;
  cfg.ghost_exchange_mode = exchange_mode_;
  cfg.delta_exchange_crossover = exchange_crossover_;
  cfg.overlap = overlap_;
  cfg.threads_per_rank = threads_;
  cfg.checkpoint.dir = checkpoint_dir_;
  cfg.checkpoint.every = checkpoint_every_;
  cfg.checkpoint.resume = resume_;
  return cfg;
}

Result Plan::run(const graph::Csr& g) const {
  Result out;
  out.engine = engine_;
  switch (engine_) {
    case Engine::kSerial: {
      auto r = louvain::louvain_serial(g, base_config());
      out.community = r.community;
      out.modularity = r.modularity;
      out.num_communities = r.num_communities;
      out.phases = r.phases;
      out.total_iterations = r.total_iterations;
      out.seconds = r.seconds;
      out.local = std::move(r);
      break;
    }
    case Engine::kShared: {
      auto r = louvain::louvain_shared(g, base_config(), threads_);
      out.community = r.community;
      out.modularity = r.modularity;
      out.num_communities = r.num_communities;
      out.phases = r.phases;
      out.total_iterations = r.total_iterations;
      out.seconds = r.seconds;
      out.local = std::move(r);
      break;
    }
    case Engine::kDistributed: {
      auto cfg = dist_config();

      comm::RunOptions options;
      options.timeout_seconds = comm_timeout_;
      // One injector for all attempts: crash triggers are one-shot, so a
      // restarted run proceeds past the failure it is recovering from.
      if (faults_) options.faults = std::make_shared<comm::FaultInjector>(*faults_);
      // One trace store for all attempts: failed-attempt spans stay in the
      // rings and flush alongside the successful run's -- exactly what you
      // want when debugging why an attempt died.
      if (!trace_path_.empty())
        options.trace = std::make_shared<util::TraceStore>(ranks_);

      // What the newest on-disk checkpoint has banked so far (zero without
      // checkpointing). Per-attempt deltas of this split a failed attempt's
      // traffic into salvaged (resumable) and wasted.
      core::RunCounters banked;
      if (!cfg.checkpoint.dir.empty()) {
        banked = core::checkpoint_latest_counters(cfg.checkpoint.dir)
                     .value_or(core::RunCounters{});
      }

      // Recovery driver: on any detectable communication failure, restart --
      // from the newest checkpoint when checkpointing is on, from scratch
      // otherwise -- up to max_restarts_ extra attempts.
      std::atomic<int> progress{-1};
      for (int attempt = 0;; ++attempt) {
        progress.store(-1, std::memory_order_relaxed);
        // A FRESH registry per attempt: a discarded attempt's traffic is
        // accounted to recovery.wasted_*, never carried into the next
        // attempt's counters (the satellite-1 fix).
        options.metrics = std::make_shared<util::MetricsRegistry>(ranks_);
        try {
          auto r = core::dist_louvain_inprocess(ranks_, g, cfg, partition_, options,
                                                &progress);
          out.recovery.attempts = attempt + 1;
          out.recovery.resumed_from_phase = r.resumed_from_phase;
          out.community = r.community;
          out.modularity = r.modularity;
          out.num_communities = r.num_communities;
          out.phases = r.phases;
          out.total_iterations = r.total_iterations;
          out.seconds = r.seconds;
          out.distributed = std::move(r);
          break;
        } catch (const comm::CommFailure&) {
          if (attempt >= max_restarts_) throw;
          const int next_resume =
              cfg.checkpoint.dir.empty()
                  ? 0
                  : core::checkpoint_latest_phase(cfg.checkpoint.dir).value_or(0);
          // Phases [next_resume, progress] ran this attempt and will run
          // again on the next one.
          out.recovery.phases_replayed +=
              std::max(0, progress.load(std::memory_order_relaxed) + 1 - next_resume);

          // Wasted = everything this attempt sent (algorithm + checkpoint
          // I/O) minus what it banked into a checkpoint -- the banked part
          // re-enters the final result through its restored counters.
          const util::MetricsSnapshot spent = options.metrics->total();
          core::RunCounters now;
          if (!cfg.checkpoint.dir.empty()) {
            now = core::checkpoint_latest_counters(cfg.checkpoint.dir)
                      .value_or(core::RunCounters{});
          }
          const std::int64_t banked_messages =
              std::max<std::int64_t>(0, now.messages - banked.messages);
          const std::int64_t banked_bytes =
              std::max<std::int64_t>(0, now.bytes - banked.bytes);
          out.recovery.wasted_messages += std::max<std::int64_t>(
              0, spent[util::Counter::kMessages] +
                     spent[util::Counter::kCheckpointMessages] - banked_messages);
          out.recovery.wasted_bytes += std::max<std::int64_t>(
              0, spent[util::Counter::kBytes] +
                     spent[util::Counter::kCheckpointBytes] - banked_bytes);
          banked = now;

          cfg.checkpoint.resume = !cfg.checkpoint.dir.empty();
        }
      }

      if (options.faults) {
        out.recovery.injected_delays = options.faults->delayed.load();
        out.recovery.injected_duplicates = options.faults->duplicated.load();
        out.recovery.injected_corruptions = options.faults->corrupted.load();
        out.recovery.injected_crashes = options.faults->crashes_fired.load();
      }

      if (options.trace) {
        write_text_file(trace_path_, "trace", [&](std::ofstream& f) {
          options.trace->write_chrome_trace(f);
        });
      }
      break;
    }
  }

  // Serial/shared runs still honour --trace-out: an empty-but-valid trace
  // (process metadata only) beats a confusing missing file.
  if (engine_ != Engine::kDistributed && !trace_path_.empty()) {
    const util::TraceStore empty(1);
    write_text_file(trace_path_, "trace",
                    [&](std::ofstream& f) { empty.write_chrome_trace(f); });
  }
  if (!metrics_path_.empty()) {
    write_text_file(metrics_path_, "metrics",
                    [&](std::ofstream& f) { f << out.to_json() << '\n'; });
  }
  return out;
}

std::string Result::to_json() const {
  std::string out;
  if (engine == Engine::kDistributed && distributed) {
    out = core::dist_result_to_json(*distributed);
    out.pop_back();  // reopen the object to append the driver-level section
  } else {
    out = "{\"schema\":\"";
    out += core::kManifestSchema;
    out += "\",\"engine\":\"";
    out += engine == Engine::kSerial ? "serial" : "shared";
    out += '"';
    out += ",\"modularity\":" + core::json_number(modularity);
    out += ",\"num_communities\":" + std::to_string(num_communities);
    out += ",\"phases\":" + std::to_string(phases);
    out += ",\"total_iterations\":" + std::to_string(total_iterations);
    out += ",\"seconds\":" + core::json_number(seconds);
  }
  out += ",\"recovery\":{\"attempts\":" + std::to_string(recovery.attempts);
  out += ",\"phases_replayed\":" + std::to_string(recovery.phases_replayed);
  out += ",\"resumed_from_phase\":" + std::to_string(recovery.resumed_from_phase);
  out += ",\"wasted_messages\":" + std::to_string(recovery.wasted_messages);
  out += ",\"wasted_bytes\":" + std::to_string(recovery.wasted_bytes);
  out += ",\"injected_delays\":" + std::to_string(recovery.injected_delays);
  out += ",\"injected_duplicates\":" + std::to_string(recovery.injected_duplicates);
  out += ",\"injected_corruptions\":" + std::to_string(recovery.injected_corruptions);
  out += ",\"injected_crashes\":" + std::to_string(recovery.injected_crashes);
  out += "}}";
  return out;
}

}  // namespace dlouvain
