#include "dlouvain.hpp"

#include "louvain/serial.hpp"
#include "louvain/shared.hpp"

namespace dlouvain {

louvain::LouvainConfig Plan::base_config() const {
  louvain::LouvainConfig cfg;
  cfg.threshold = threshold_;
  cfg.max_phases = max_phases_;
  cfg.max_iterations_per_phase = max_iterations_;
  cfg.resolution = resolution_;
  cfg.early_termination = variant_ == Variant::kEt || variant_ == Variant::kEtc;
  cfg.et_alpha = alpha_;
  cfg.vertex_following = vertex_following_;
  cfg.seed = seed_;
  return cfg;
}

core::DistConfig Plan::dist_config() const {
  core::DistConfig cfg;
  cfg.base = base_config();
  cfg.base.vertex_following = false;  // a serial/shared-only preprocessing
  cfg.variant = variant_;
  cfg.add_threshold_cycling = cycling_;
  cfg.use_coloring = coloring_;
  cfg.record_iterations = record_iterations_;
  cfg.threads_per_rank = threads_;
  return cfg;
}

Result Plan::run(const graph::Csr& g) const {
  Result out;
  out.engine = engine_;
  switch (engine_) {
    case Engine::kSerial: {
      auto r = louvain::louvain_serial(g, base_config());
      out.community = r.community;
      out.modularity = r.modularity;
      out.num_communities = r.num_communities;
      out.phases = r.phases;
      out.total_iterations = r.total_iterations;
      out.seconds = r.seconds;
      out.local = std::move(r);
      break;
    }
    case Engine::kShared: {
      auto r = louvain::louvain_shared(g, base_config(), threads_);
      out.community = r.community;
      out.modularity = r.modularity;
      out.num_communities = r.num_communities;
      out.phases = r.phases;
      out.total_iterations = r.total_iterations;
      out.seconds = r.seconds;
      out.local = std::move(r);
      break;
    }
    case Engine::kDistributed: {
      auto r = core::dist_louvain_inprocess(ranks_, g, dist_config(), partition_);
      out.community = r.community;
      out.modularity = r.modularity;
      out.num_communities = r.num_communities;
      out.phases = r.phases;
      out.total_iterations = r.total_iterations;
      out.seconds = r.seconds;
      out.distributed = std::move(r);
      break;
    }
  }
  return out;
}

}  // namespace dlouvain
