#include "dlouvain.hpp"

#include <string>
#include <utility>

#include "core/metrics.hpp"

namespace dlouvain {

namespace {

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::kSerial: return "serial";
    case Engine::kShared: return "shared";
    case Engine::kDistributed: return "distributed";
  }
  return "?";
}

}  // namespace

louvain::LouvainConfig Plan::base_config() const {
  louvain::LouvainConfig cfg;
  cfg.threshold = threshold_;
  cfg.max_phases = max_phases_;
  cfg.max_iterations_per_phase = max_iterations_;
  cfg.resolution = resolution_;
  cfg.early_termination = variant_ == Variant::kEt || variant_ == Variant::kEtc;
  cfg.et_alpha = alpha_;
  cfg.vertex_following = vertex_following_;
  cfg.seed = seed_;
  return cfg;
}

core::DistConfig Plan::dist_config() const {
  core::DistConfig cfg;
  cfg.base = base_config();
  cfg.base.vertex_following = false;  // a serial/shared-only preprocessing
  cfg.variant = variant_;
  cfg.add_threshold_cycling = cycling_;
  cfg.use_coloring = coloring_;
  cfg.record_iterations = record_iterations_;
  cfg.ghost_exchange_mode = exchange_mode_;
  cfg.delta_exchange_crossover = exchange_crossover_;
  cfg.overlap = overlap_;
  cfg.overlap_probe_iters = overlap_probe_iters_;
  cfg.overlap_min_hidden_s = overlap_min_hidden_s_;
  cfg.rebalance.enabled = rebalance_;
  cfg.rebalance.threshold = rebalance_threshold_;
  cfg.threads_per_rank = threads_;
  // Effective checkpoint directory: checkpointing() wins when both are set
  // (validate() rejects two DIFFERENT directories); resume() alone keeps
  // checkpointing into the directory it resumes from.
  cfg.checkpoint.dir = !checkpoint_dir_.empty() ? checkpoint_dir_ : resume_dir_;
  cfg.checkpoint.every = checkpoint_every_;
  cfg.checkpoint.resume = resume_;
  return cfg;
}

void Plan::validate() const {
  const auto fail = [](std::string msg) { throw PlanError(std::move(msg)); };

  // -- engine-independent ranges ------------------------------------------
  if (threshold_ < 0) fail("threshold() must be >= 0");
  if (resolution_ <= 0) fail("resolution() must be > 0");
  if (max_phases_ < 1) fail("max_phases() must be >= 1");
  if (max_iterations_ < 1) fail("max_iterations() must be >= 1");
  if (update_fallback_ < 0) fail("update_fallback() must be >= 0");
  if ((variant_ == Variant::kEt || variant_ == Variant::kEtc) &&
      (alpha_ <= 0 || alpha_ > 1)) {
    fail("alpha() must be in (0, 1] for the ET/ETC variants");
  }
  if (!checkpoint_dir_.empty() && checkpoint_every_ < 1)
    fail("checkpointing() interval must be >= 1");
  if (retransmit_max_ < 0) fail("retransmit() attempts must be >= 0");
  if (retransmit_max_ > 0 && !(retransmit_backoff_ms_ > 0))
    fail("retransmit() backoff must be > 0 ms");
  if (rebalance_ && !(rebalance_threshold_ >= 1.0))
    fail("rebalance() threshold must be >= 1 (lambda = max/mean is never below 1)");
  if (resume_ && resume_dir_.empty())
    fail("resume() needs a checkpoint directory");
  if (resume_ && !checkpoint_dir_.empty() && resume_dir_ != checkpoint_dir_) {
    fail("checkpointing(\"" + checkpoint_dir_ + "\") and resume(\"" + resume_dir_ +
         "\") name different directories; use one directory (or drop one call)");
  }

  // -- engine/knob compatibility ------------------------------------------
  if (engine_ == Engine::kDistributed) {
    if (ranks_ < 1) fail("distributed() needs at least 1 rank");
    if (vertex_following_) {
      fail("vertex_following() is a serial/shared-only preprocessing; the "
           "distributed engine does not support it");
    }
    return;
  }
  const auto dist_only = [&](const char* what) {
    fail(std::string(what) + " needs the distributed engine (this plan is " +
         engine_name(engine_) + ")");
  };
  if (coloring_) dist_only("coloring()");
  if (cycling_) dist_only("threshold_cycling()");
  if (!checkpoint_dir_.empty()) dist_only("checkpointing()");
  if (resume_) dist_only("resume()");
  if (faults_) dist_only("inject_faults()");
  if (comm_timeout_ > 0) dist_only("comm_timeout()");
  if (max_restarts_ > 0) dist_only("max_restarts()");
  if (retransmit_max_ > 0) dist_only("retransmit()");
  if (shrink_on_rank_loss_) dist_only("shrink_on_rank_loss()");
  if (exchange_mode_ != GhostExchangeMode::kAuto) dist_only("exchange()");
  if (overlap_ != OverlapMode::kAuto) dist_only("overlap()");
  if (rebalance_) dist_only("rebalance()");
  if (partition_ != graph::PartitionKind::kEvenEdges) dist_only("partition()");
}

Result Plan::run(const graph::Csr& g) const {
  Session session = open(g);
  return std::move(session.result_);
}

Session Plan::open(const graph::Csr& g) const {
  validate();
  Session session(*this);
  session.run_initial(g);
  return session;
}

std::string Result::to_json() const {
  std::string out;
  if (engine == Engine::kDistributed && distributed) {
    out = core::dist_result_to_json(*distributed);
    out.pop_back();  // reopen the object to append the driver-level sections
  } else {
    out = "{\"schema\":\"";
    out += core::kManifestSchema;
    out += "\",\"engine\":\"";
    out += engine == Engine::kSerial ? "serial" : "shared";
    out += '"';
    out += ",\"modularity\":" + core::json_number(modularity);
    out += ",\"num_communities\":" + std::to_string(num_communities);
    out += ",\"phases\":" + std::to_string(phases);
    out += ",\"total_iterations\":" + std::to_string(total_iterations);
    out += ",\"seconds\":" + core::json_number(seconds);
  }
  out += ",\"updates\":";
  core::append_updates_json(out, updates);
  out += ",\"recovery\":{\"attempts\":" + std::to_string(recovery.attempts);
  out += ",\"phases_replayed\":" + std::to_string(recovery.phases_replayed);
  out += ",\"resumed_from_phase\":" + std::to_string(recovery.resumed_from_phase);
  out += ",\"wasted_messages\":" + std::to_string(recovery.wasted_messages);
  out += ",\"wasted_bytes\":" + std::to_string(recovery.wasted_bytes);
  out += ",\"injected_delays\":" + std::to_string(recovery.injected_delays);
  out += ",\"injected_duplicates\":" + std::to_string(recovery.injected_duplicates);
  out += ",\"injected_corruptions\":" + std::to_string(recovery.injected_corruptions);
  out += ",\"injected_crashes\":" + std::to_string(recovery.injected_crashes);
  out += ",\"injected_losses\":" + std::to_string(recovery.injected_losses);
  // The graduated-ladder telemetry (schema v3; docs/FAULT_TOLERANCE.md):
  // rung 1 = link repair, rung 2 = verdicts, rung 3 = shrink-to-survivors.
  out += ",\"ladder\":{\"nacks\":" + std::to_string(recovery.nacks);
  out += ",\"retransmits\":" + std::to_string(recovery.retransmits);
  out += ",\"backoff_ms\":" + std::to_string(recovery.backoff_ms);
  out += ",\"escalations\":" + std::to_string(recovery.escalations);
  out += ",\"slow_verdict_extensions\":" + std::to_string(recovery.slow_verdict_extensions);
  out += ",\"verdicts_dead\":" + std::to_string(recovery.verdicts_dead);
  out += ",\"shrinks\":" + std::to_string(recovery.shrinks);
  out += ",\"final_ranks\":" + std::to_string(recovery.final_ranks);
  out += "}}}";
  return out;
}

}  // namespace dlouvain
