#include "quality/fscore.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dlouvain::quality {

namespace {

std::uint64_t pair_key(CommunityId x, CommunityId y) {
  // Labels are hashed to 32-bit slots; collisions are astronomically
  // unlikely for community counts below 2^32 (same scheme as nmi.cpp).
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
         static_cast<std::uint32_t>(y);
}

}  // namespace

QualityScores compare_to_ground_truth(std::span<const CommunityId> detected,
                                      std::span<const CommunityId> truth) {
  if (detected.size() != truth.size())
    throw std::invalid_argument("compare_to_ground_truth: size mismatch");
  if (detected.empty())
    throw std::invalid_argument("compare_to_ground_truth: empty input");

  std::unordered_map<CommunityId, double> detected_size;
  std::unordered_map<CommunityId, double> truth_size;
  // One flat table keyed by the packed (truth, detected) pair instead of a
  // map of maps: overlap[(g, d)] = #common vertices.
  std::unordered_map<std::uint64_t, double> overlap;
  for (std::size_t v = 0; v < truth.size(); ++v) {
    ++detected_size[detected[v]];
    ++truth_size[truth[v]];
    ++overlap[pair_key(truth[v], detected[v])];
  }

  // Best-matching detected community per ground-truth community. The
  // predicate (most common vertices, then smallest detected id) is
  // iteration-order independent.
  std::unordered_map<CommunityId, std::pair<double, CommunityId>> best;
  for (const auto& [key, common] : overlap) {
    const auto g = static_cast<CommunityId>(static_cast<std::int32_t>(key >> 32));
    const auto d =
        static_cast<CommunityId>(static_cast<std::int32_t>(key & 0xffffffffu));
    const auto it = best.find(g);
    if (it == best.end() || common > it->second.first ||
        (common == it->second.first && d < it->second.second)) {
      best[g] = {common, d};
    }
  }

  // Accumulate in ascending ground-truth id order so the floating-point sums
  // are deterministic across library hash implementations.
  std::vector<CommunityId> ground_truth_ids;
  ground_truth_ids.reserve(best.size());
  for (const auto& [g, match] : best) ground_truth_ids.push_back(g);
  std::sort(ground_truth_ids.begin(), ground_truth_ids.end());

  double precision_sum = 0;
  double recall_sum = 0;
  double f_sum = 0;
  double weight_sum = 0;
  for (const CommunityId g : ground_truth_ids) {
    const auto& [best_common, best_d] = best.at(g);
    const double g_size = truth_size.at(g);
    const double d_size = detected_size.at(best_d);
    const double precision = best_common / d_size;
    const double recall = best_common / g_size;
    const double f =
        precision + recall > 0 ? 2 * precision * recall / (precision + recall) : 0.0;
    precision_sum += g_size * precision;
    recall_sum += g_size * recall;
    f_sum += g_size * f;
    weight_sum += g_size;
  }

  QualityScores scores;
  scores.precision = precision_sum / weight_sum;
  scores.recall = recall_sum / weight_sum;
  scores.f_score = f_sum / weight_sum;
  scores.ground_truth_communities = best.size();
  scores.detected_communities = detected_size.size();
  return scores;
}

}  // namespace dlouvain::quality
