#include "quality/fscore.hpp"

#include <stdexcept>
#include <unordered_map>

namespace dlouvain::quality {

QualityScores compare_to_ground_truth(std::span<const CommunityId> detected,
                                      std::span<const CommunityId> truth) {
  if (detected.size() != truth.size())
    throw std::invalid_argument("compare_to_ground_truth: size mismatch");
  if (detected.empty())
    throw std::invalid_argument("compare_to_ground_truth: empty input");

  std::unordered_map<CommunityId, double> detected_size;
  std::unordered_map<CommunityId, double> truth_size;
  // overlap[g] = (detected community -> #common vertices)
  std::unordered_map<CommunityId, std::unordered_map<CommunityId, double>> overlap;
  for (std::size_t v = 0; v < truth.size(); ++v) {
    ++detected_size[detected[v]];
    ++truth_size[truth[v]];
    ++overlap[truth[v]][detected[v]];
  }

  double precision_sum = 0;
  double recall_sum = 0;
  double f_sum = 0;
  double weight_sum = 0;
  for (const auto& [g, matches] : overlap) {
    // Best-matching detected community for this ground-truth community.
    CommunityId best = -1;
    double best_common = -1;
    for (const auto& [d, common] : matches) {
      if (common > best_common || (common == best_common && d < best)) {
        best = d;
        best_common = common;
      }
    }
    const double g_size = truth_size.at(g);
    const double d_size = detected_size.at(best);
    const double precision = best_common / d_size;
    const double recall = best_common / g_size;
    const double f =
        precision + recall > 0 ? 2 * precision * recall / (precision + recall) : 0.0;
    precision_sum += g_size * precision;
    recall_sum += g_size * recall;
    f_sum += g_size * f;
    weight_sum += g_size;
  }

  QualityScores scores;
  scores.precision = precision_sum / weight_sum;
  scores.recall = recall_sum / weight_sum;
  scores.f_score = f_sum / weight_sum;
  scores.ground_truth_communities = overlap.size();
  scores.detected_communities = detected_size.size();
  return scores;
}

}  // namespace dlouvain::quality
