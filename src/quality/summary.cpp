#include "quality/summary.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace dlouvain::quality {

std::vector<CommunitySummary> summarize_communities(
    const graph::Csr& g, std::span<const CommunityId> community) {
  const VertexId n = g.num_vertices();
  if (community.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("summarize_communities: assignment size mismatch");

  std::unordered_map<CommunityId, CommunitySummary> map;
  for (VertexId v = 0; v < n; ++v) {
    const CommunityId cv = community[static_cast<std::size_t>(v)];
    auto& s = map[cv];
    s.id = cv;
    ++s.size;
    s.total_degree += g.weighted_degree(v);
    for (const auto& e : g.neighbors(v)) {
      if (e.dst == v) {
        s.internal_weight += e.weight;  // self loop: one edge, full weight
        continue;
      }
      if (community[static_cast<std::size_t>(e.dst)] == cv) {
        s.internal_weight += e.weight / 2;  // both arcs visit; half each
      } else {
        s.boundary_weight += e.weight;
      }
    }
  }

  const Weight two_m = g.total_arc_weight();
  std::vector<CommunitySummary> out;
  out.reserve(map.size());
  for (auto& [id, s] : map) {
    const Weight volume = s.total_degree;
    const Weight denom = std::min(volume, two_m - volume);
    s.conductance = denom > 0 ? s.boundary_weight / denom : 0.0;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const CommunitySummary& a, const CommunitySummary& b) {
    return a.size != b.size ? a.size > b.size : a.id < b.id;
  });
  return out;
}

double coverage(const graph::Csr& g, std::span<const CommunityId> community) {
  const Weight two_m = g.total_arc_weight();
  if (two_m <= 0) return 0.0;
  Weight intra = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const CommunityId cv = community[static_cast<std::size_t>(v)];
    for (const auto& e : g.neighbors(v)) {
      if (e.dst == v) {
        intra += 2 * e.weight;
      } else if (community[static_cast<std::size_t>(e.dst)] == cv) {
        intra += e.weight;
      }
    }
  }
  return intra / two_m;
}

}  // namespace dlouvain::quality
