// Community quality against ground truth: precision / recall / F-score,
// following the methodology the paper adopts from Halappanavar et al. [14]
// (Section V-D): each ground-truth community is matched to the detected
// community holding the largest share of its members; per-community
// precision |g ∩ d| / |d| and recall |g ∩ d| / |g| are averaged weighted by
// community size. When Louvain merges ground-truth communities (the typical
// resolution-limit behaviour) recall stays 1.0 while precision drops --
// exactly the signature of the paper's Table VII.
#pragma once

#include <cstddef>
#include <span>

#include "util/types.hpp"

namespace dlouvain::quality {

struct QualityScores {
  double precision{0};
  double recall{0};
  double f_score{0};
  std::size_t ground_truth_communities{0};
  std::size_t detected_communities{0};
};

/// `detected` and `truth` map each vertex to a community id (arbitrary ids).
/// Throws std::invalid_argument on length mismatch or empty input.
QualityScores compare_to_ground_truth(std::span<const CommunityId> detected,
                                      std::span<const CommunityId> truth);

}  // namespace dlouvain::quality
