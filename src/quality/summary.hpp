// Per-community structural summaries of a detected partition -- the
// post-processing view users want after community detection: how big is each
// community, how dense inside, how leaky at the boundary.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace dlouvain::quality {

struct CommunitySummary {
  CommunityId id{0};
  VertexId size{0};
  Weight internal_weight{0};   ///< sum of intra-community edge weight (each edge once)
  Weight boundary_weight{0};   ///< sum of edge weight crossing the boundary
  Weight total_degree{0};      ///< a_c: summed weighted degrees of members
  /// cut / min(vol, 2m - vol); 0 for isolated communities, low = well separated.
  double conductance{0};
};

/// Summaries for every community in `community` (arbitrary ids), ordered by
/// descending size (ties by ascending id). O(n + arcs).
std::vector<CommunitySummary> summarize_communities(
    const graph::Csr& g, std::span<const CommunityId> community);

/// Weighted coverage: fraction of total edge weight that is intra-community.
double coverage(const graph::Csr& g, std::span<const CommunityId> community);

}  // namespace dlouvain::quality
