#include "quality/nmi.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace dlouvain::quality {

namespace {

std::uint64_t pair_key(CommunityId x, CommunityId y) {
  // Labels are hashed to 32-bit slots; collisions are astronomically
  // unlikely for community counts below 2^32.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
         static_cast<std::uint32_t>(y);
}

}  // namespace

double normalized_mutual_information(std::span<const CommunityId> a,
                                     std::span<const CommunityId> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("normalized_mutual_information: size mismatch");
  if (a.empty()) throw std::invalid_argument("normalized_mutual_information: empty input");

  const double n = static_cast<double>(a.size());
  std::unordered_map<CommunityId, double> count_a;
  std::unordered_map<CommunityId, double> count_b;
  std::unordered_map<std::uint64_t, double> joint;
  for (std::size_t v = 0; v < a.size(); ++v) {
    ++count_a[a[v]];
    ++count_b[b[v]];
    ++joint[pair_key(a[v], b[v])];
  }

  const auto entropy = [&](const std::unordered_map<CommunityId, double>& counts) {
    double h = 0;
    for (const auto& [label, c] : counts) {
      const double p = c / n;
      h -= p * std::log(p);
    }
    return h;
  };
  const double h_a = entropy(count_a);
  const double h_b = entropy(count_b);
  if (h_a + h_b == 0.0) return 1.0;  // both trivial partitions agree

  double mutual = 0;
  for (const auto& [key, c] : joint) {
    const auto label_a = static_cast<CommunityId>(static_cast<std::int32_t>(key >> 32));
    const auto label_b = static_cast<CommunityId>(static_cast<std::int32_t>(key & 0xffffffffu));
    const double p_joint = c / n;
    const double p_a = count_a.at(label_a) / n;
    const double p_b = count_b.at(label_b) / n;
    mutual += p_joint * std::log(p_joint / (p_a * p_b));
  }
  return 2.0 * mutual / (h_a + h_b);
}

}  // namespace dlouvain::quality
