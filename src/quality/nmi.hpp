// Normalized Mutual Information between two community assignments -- the
// other standard agreement score in the community-detection literature
// (Lancichinetti & Fortunato use it to evaluate LFR results), complementing
// the F-score methodology of the paper's Section V-D.
#pragma once

#include <span>

#include "util/types.hpp"

namespace dlouvain::quality {

/// NMI(X;Y) = 2 I(X;Y) / (H(X) + H(Y)), computed from the label count
/// tables. 1.0 for identical partitions (up to relabeling), ~0 for
/// independent ones. Both-trivial partitions (single community each)
/// conventionally score 1.0. Throws std::invalid_argument on length
/// mismatch or empty input.
double normalized_mutual_information(std::span<const CommunityId> a,
                                     std::span<const CommunityId> b);

}  // namespace dlouvain::quality
