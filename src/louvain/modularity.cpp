#include "louvain/modularity.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace dlouvain::louvain {

Weight modularity(const graph::Csr& g, std::span<const CommunityId> community,
                  double resolution) {
  const VertexId n = g.num_vertices();
  if (community.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("modularity: assignment size != num vertices");

  const Weight two_m = g.total_arc_weight();
  if (two_m <= 0) return 0.0;

  // E = sum of intra-community arc weight (both directions; self loops 2w).
  Weight intra = 0;
  std::unordered_map<CommunityId, Weight> a_c;
  a_c.reserve(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    const CommunityId cv = community[static_cast<std::size_t>(v)];
    a_c[cv] += g.weighted_degree(v);
    for (const auto& e : g.neighbors(v)) {
      if (community[static_cast<std::size_t>(e.dst)] == cv)
        intra += e.dst == v ? 2 * e.weight : e.weight;
    }
  }

  Weight degree_term = 0;
  for (const auto& [c, a] : a_c) degree_term += a * a;
  return intra / two_m - resolution * degree_term / (two_m * two_m);
}

Weight modularity_reference(const graph::Csr& g, std::span<const CommunityId> community,
                            double resolution) {
  const VertexId n = g.num_vertices();
  if (community.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("modularity_reference: assignment size mismatch");

  // Accumulate per-community sums separately, then evaluate Eq. 2 term by
  // term -- deliberately a different code path from modularity().
  std::unordered_map<CommunityId, Weight> e_cc;  // intra arc weight, both dirs
  std::unordered_map<CommunityId, Weight> a_c;   // incident degree
  Weight two_m = 0;
  for (VertexId v = 0; v < n; ++v) {
    const CommunityId cv = community[static_cast<std::size_t>(v)];
    for (const auto& e : g.neighbors(v)) {
      const Weight w = e.dst == v ? 2 * e.weight : e.weight;
      two_m += w;
      a_c[cv] += w;
      if (community[static_cast<std::size_t>(e.dst)] == cv) e_cc[cv] += w;
    }
  }
  if (two_m <= 0) return 0.0;

  Weight q = 0;
  for (const auto& [c, a] : a_c) {
    const auto it = e_cc.find(c);
    const Weight e = it == e_cc.end() ? 0.0 : it->second;
    q += e / two_m - resolution * (a / two_m) * (a / two_m);
  }
  return q;
}

}  // namespace dlouvain::louvain
