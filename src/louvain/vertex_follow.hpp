// Vertex following -- a Grappolo preprocessing heuristic [Lu et al. 2015]
// the paper cites among "a different set of heuristics such as coloring and
// vertex following" deployed by its shared-memory comparator: a degree-1
// vertex ("satellite") can never profitably sit anywhere except its sole
// neighbour's community, so it is merged into that neighbour BEFORE Louvain
// starts, shrinking the first (most expensive) phase.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace dlouvain::louvain {

/// The follow assignment in vertex-id space: each degree-1 vertex maps to its
/// sole neighbour's id (two mutually-degree-1 vertices collapse onto the
/// smaller id); every other vertex maps to itself. Feeding this to coarsen()
/// yields the VF-compacted graph with all weight conventions intact.
/// Degree counts distinct non-self neighbours.
std::vector<CommunityId> vertex_follow_assignment(const graph::Csr& g);

/// Number of vertices a follow assignment eliminates.
VertexId followed_count(std::span<const CommunityId> assignment);

}  // namespace dlouvain::louvain
