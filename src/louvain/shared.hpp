// Shared-memory multithreaded Louvain -- the project's comparator standing in
// for Grappolo [Lu, Halappanavar, Kalyanaraman 2015], which the paper uses
// as its shared-memory baseline (Tables I and III).
//
// The sweep runs on the project thread pool (util/parallel.hpp) as a
// sequence of bulk-synchronous micro-batches: within a batch, move decisions
// are computed in parallel against the batch-start community state (like
// Grappolo, a decision never observes a same-batch move), then the batch is
// applied serially in a fixed order before the next begins. Batch boundaries
// depend only on the vertex count, so -- unlike Grappolo's benignly racy
// asynchronous sweep -- results here are DETERMINISTIC and bitwise identical
// at any thread count. The singleton-swap guard ("a vertex in a singleton
// community may move to another singleton community only if that community's
// id is smaller") prevents the classic two-vertex oscillation of snapshot
// label updates.
//
// Supports the ET heuristic (paper Table I modified Grappolo exactly this
// way) via LouvainConfig::early_termination / et_alpha.
#pragma once

#include "graph/csr.hpp"
#include "louvain/config.hpp"

namespace dlouvain::louvain {

/// Run pool-threaded Louvain with `num_threads` compute threads (<=0 = the
/// hardware concurrency). The result -- community assignment and every
/// modularity bit -- is identical for every value of `num_threads`.
LouvainResult louvain_shared(const graph::Csr& g, const LouvainConfig& config = {},
                             int num_threads = 0);

}  // namespace dlouvain::louvain
