// Shared-memory multithreaded Louvain -- the project's comparator standing in
// for Grappolo [Lu, Halappanavar, Kalyanaraman 2015], which the paper uses
// as its shared-memory baseline (Tables I and III).
//
// Like Grappolo, move decisions within an iteration are taken against the
// PREVIOUS iteration's community state, so all vertices can be processed in
// parallel; the singleton-swap guard ("a vertex in a singleton community may
// move to another singleton community only if that community's id is
// smaller") prevents the classic two-vertex oscillation of synchronous label
// updates. Results are deterministic and independent of thread count.
//
// Supports the ET heuristic (paper Table I modified Grappolo exactly this
// way) via LouvainConfig::early_termination / et_alpha.
#pragma once

#include "graph/csr.hpp"
#include "louvain/config.hpp"

namespace dlouvain::louvain {

/// Run synchronous parallel Louvain with `num_threads` OpenMP threads
/// (<=0 = library default). Falls back to one thread when built without
/// OpenMP.
LouvainResult louvain_shared(const graph::Csr& g, const LouvainConfig& config = {},
                             int num_threads = 0);

}  // namespace dlouvain::louvain
