// State for the Early Termination (ET) heuristic -- paper Section IV-B-b.
//
// Every vertex carries an activity probability P. While a vertex keeps its
// community across consecutive iterations, P decays geometrically by
// (1 - alpha); the moment it moves, P resets to 1 (paper Equation 3). A
// vertex participates in an iteration with probability P, drawn with a
// counter-based hash keyed on (seed, vertex, phase, iteration) so the
// outcome is identical at any thread or rank count. Once P falls below the
// cutoff (paper: 2%), the vertex is labelled inactive outright.
#pragma once

#include <cstdint>
#include <vector>

#include "util/prng.hpp"
#include "util/types.hpp"

namespace dlouvain::louvain {

class EtState {
 public:
  EtState() = default;

  EtState(std::size_t count, double alpha, double cutoff, std::uint64_t seed)
      : alpha_(alpha), cutoff_(cutoff), seed_(seed), prob_(count, 1.0) {}

  /// Number of vertices tracked.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Is `idx` (keyed by global id `key`) active this (phase, iteration)?
  /// Inactive-labelled vertices are never active again within the phase.
  [[nodiscard]] bool is_active(std::size_t idx, VertexId key, int phase, int iter) const {
    const double p = prob_[idx];
    if (p < cutoff_) return false;
    if (p >= 1.0) return true;
    return util::hash_rand_unit(seed_, static_cast<std::uint64_t>(key),
                                static_cast<std::uint64_t>(phase),
                                static_cast<std::uint64_t>(iter)) < p;
  }

  /// Apply Equation 3 after the vertex's move decision.
  void update(std::size_t idx, bool moved) {
    if (moved) {
      prob_[idx] = 1.0;
    } else {
      prob_[idx] *= 1.0 - alpha_;
    }
  }

  /// Warm-start seeding (incremental updates): vertices flagged in `active`
  /// start fully active (P = 1), everything else starts frozen (P = 0, i.e.
  /// below any positive cutoff, so is_active() stays false for the rest of
  /// the phase). With alpha 0 the active set never decays -- how the
  /// non-ET variants keep every reactivated vertex live through the warm
  /// phase.
  void seed_activity(const std::vector<char>& active) {
    for (std::size_t i = 0; i < prob_.size() && i < active.size(); ++i)
      prob_[i] = active[i] != 0 ? 1.0 : 0.0;
  }

  /// Count of vertices labelled inactive (P below cutoff) -- the quantity the
  /// ETC variant sums globally.
  [[nodiscard]] std::int64_t inactive_count() const {
    std::int64_t count = 0;
    for (const double p : prob_) count += p < cutoff_ ? 1 : 0;
    return count;
  }

  [[nodiscard]] double cutoff() const noexcept { return cutoff_; }

 private:
  double alpha_{0};
  double cutoff_{0.02};
  std::uint64_t seed_{0};
  std::vector<double> prob_;
};

}  // namespace dlouvain::louvain
