#include "louvain/vertex_follow.hpp"

#include <numeric>

namespace dlouvain::louvain {

std::vector<CommunityId> vertex_follow_assignment(const graph::Csr& g) {
  const VertexId n = g.num_vertices();
  std::vector<CommunityId> assignment(static_cast<std::size_t>(n));
  std::iota(assignment.begin(), assignment.end(), CommunityId{0});

  // Distinct non-self neighbour; kInvalidVertex when degree != 1.
  const auto sole_neighbor = [&](VertexId v) {
    VertexId found = kInvalidVertex;
    for (const auto& e : g.neighbors(v)) {
      if (e.dst == v) continue;
      if (found != kInvalidVertex && found != e.dst) return kInvalidVertex;
      found = e.dst;
    }
    return found;
  };

  for (VertexId v = 0; v < n; ++v) {
    const VertexId host = sole_neighbor(v);
    if (host == kInvalidVertex) continue;
    if (sole_neighbor(host) != kInvalidVertex) {
      // Mutually-degree-1 pair: collapse onto the smaller id (doing it from
      // both sides is idempotent).
      assignment[static_cast<std::size_t>(v)] = std::min(v, host);
    } else {
      assignment[static_cast<std::size_t>(v)] = host;
    }
  }
  return assignment;
}

VertexId followed_count(std::span<const CommunityId> assignment) {
  VertexId count = 0;
  for (std::size_t v = 0; v < assignment.size(); ++v)
    count += assignment[v] != static_cast<CommunityId>(v) ? 1 : 0;
  return count;
}

}  // namespace dlouvain::louvain
