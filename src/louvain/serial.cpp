#include "louvain/serial.hpp"

#include <numeric>

#include "louvain/coarsen.hpp"
#include "louvain/modularity.hpp"
#include "louvain/vertex_follow.hpp"
#include "util/prng.hpp"
#include "util/segmented.hpp"
#include "util/timer.hpp"

namespace dlouvain::louvain {

namespace {

/// One phase of asynchronous Louvain over `g`. Returns the final assignment
/// (community ids in vertex-id space) and fills `stats`.
std::vector<CommunityId> run_phase(const graph::Csr& g, const LouvainConfig& cfg,
                                   PhaseStats& stats) {
  const VertexId n = g.num_vertices();
  const Weight two_m = g.total_arc_weight();
  const Weight m = two_m / 2;

  std::vector<CommunityId> community(static_cast<std::size_t>(n));
  std::iota(community.begin(), community.end(), CommunityId{0});
  std::vector<Weight> k(static_cast<std::size_t>(n));
  std::vector<Weight> a(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    k[static_cast<std::size_t>(v)] = g.weighted_degree(v);
    a[static_cast<std::size_t>(v)] = k[static_cast<std::size_t>(v)];
  }

  const double gamma = cfg.resolution;
  Weight prev_mod = modularity(g, community, gamma);
  // Segmented e_{v -> c} reduction, keyed directly by community id (ids
  // live in [0, n) on this engine); reused across every vertex of the
  // phase. All lanes are bitwise identical (util/segmented.hpp).
  const util::SweepLane lane = util::sweep_lane();
  util::SegmentedAccumulator<Weight> nbr_weight;

  // Vertices are swept in a seeded-random order, reshuffled every iteration.
  // Index-order sweeps are pathological for asynchronous Louvain on graphs
  // with id-correlated locality (e.g. banded meshes): the first community to
  // form drains every later vertex into it. Random order is the standard
  // Louvain remedy and keeps runs reproducible via cfg.seed.
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), VertexId{0});
  util::Xoshiro256StarStar order_rng(cfg.seed ^ 0x5bf0f3a1e5c9d2b7ULL);

  for (int iter = 0; iter < cfg.max_iterations_per_phase; ++iter) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[order_rng.next_below(i)]);
    for (const VertexId v : order) {
      const CommunityId own = community[static_cast<std::size_t>(v)];
      const Weight kv = k[static_cast<std::size_t>(v)];

      // e_{v -> c} for every neighbouring community (self loops excluded:
      // they move with v and cancel in all gain comparisons).
      nbr_weight.reset(static_cast<std::size_t>(n));
      for (const auto& e : g.neighbors(v)) {
        if (e.dst == v) continue;
        nbr_weight.add(community[static_cast<std::size_t>(e.dst)], e.weight);
      }

      const Weight e_own = nbr_weight.sum_of(own);
      const Weight a_own_less_v = a[static_cast<std::size_t>(own)] - kv;

      // ∆Q argmax over the distinct neighbouring communities (strictly
      // positive gain, ties toward the smaller id -- the lane-shared rule).
      const auto pick = util::best_segment(
          lane, nbr_weight, nbr_weight.segment_of(own), e_own, a_own_less_v, kv,
          m, gamma,
          [&](std::int64_t slot) { return a[static_cast<std::size_t>(slot)]; },
          [](std::int64_t slot) { return static_cast<CommunityId>(slot); });
      const CommunityId best =
          pick.segment >= 0 ? nbr_weight.slots()[static_cast<std::size_t>(pick.segment)]
                            : own;

      if (best != own) {
        a[static_cast<std::size_t>(own)] -= kv;
        a[static_cast<std::size_t>(best)] += kv;
        community[static_cast<std::size_t>(v)] = best;
      }
    }

    ++stats.iterations;
    const Weight curr_mod = modularity(g, community, gamma);
    if (curr_mod - prev_mod <= cfg.threshold) {
      prev_mod = std::max(prev_mod, curr_mod);
      break;
    }
    prev_mod = curr_mod;
  }

  stats.modularity_after = prev_mod;
  stats.graph_vertices = n;
  stats.graph_arcs = g.num_arcs();
  stats.threshold_used = cfg.threshold;
  return community;
}

}  // namespace

LouvainResult louvain_serial(const graph::Csr& g, const LouvainConfig& cfg) {
  util::WallTimer total_timer;

  if (cfg.vertex_following) {
    // Collapse degree-1 vertices into their hosts, run on the compacted
    // graph, then re-expand the assignment to the original vertex set.
    const auto vf = vertex_follow_assignment(g);
    const auto pre = coarsen(g, vf);
    LouvainConfig inner = cfg;
    inner.vertex_following = false;
    auto result = louvain_serial(pre.graph, inner);
    result.community = compose(pre.old_to_new, result.community);
    result.seconds = total_timer.seconds();
    return result;
  }

  LouvainResult result;
  result.community.resize(static_cast<std::size_t>(g.num_vertices()));
  std::iota(result.community.begin(), result.community.end(), CommunityId{0});

  graph::Csr current = g;  // phase-local copy; coarsens each phase
  Weight prev_mod = modularity(current, result.community, cfg.resolution);

  for (int phase = 0; phase < cfg.max_phases; ++phase) {
    util::WallTimer phase_timer;
    PhaseStats stats;
    const auto assignment = run_phase(current, cfg, stats);
    stats.seconds = phase_timer.seconds();
    result.phase_stats.push_back(stats);
    ++result.phases;
    result.total_iterations += stats.iterations;

    const auto coarse = coarsen(current, assignment);
    result.community = compose(result.community, coarse.old_to_new);

    if (stats.modularity_after - prev_mod <= cfg.threshold) break;
    prev_mod = stats.modularity_after;
    current = std::move(coarse.graph);
  }

  result.modularity = prev_mod;
  result.num_communities = compact_ids(result.community);
  result.seconds = total_timer.seconds();
  return result;
}

}  // namespace dlouvain::louvain
