#include "louvain/shared.hpp"

#include <numeric>

#include "louvain/coarsen.hpp"
#include "louvain/early_term.hpp"
#include "louvain/modularity.hpp"
#include "louvain/vertex_follow.hpp"
#include "util/parallel.hpp"
#include "util/prng.hpp"
#include "util/segmented.hpp"
#include "util/timer.hpp"

namespace dlouvain::louvain {

namespace {

/// Fixed number of bulk-synchronous micro-batches each sweep is cut into.
/// Independent of the thread count -- batch boundaries depend only on n --
/// which is what makes the threaded sweep bitwise identical to the
/// single-threaded one. Large enough that within-sweep propagation
/// approaches the asynchronous serial sweep; on graphs smaller than this,
/// batches degrade to single vertices and the sweep IS the serial sweep.
constexpr std::int64_t kSweepBatches = 64;

struct PhaseOutput {
  std::vector<CommunityId> community;
  std::int64_t inactive{0};
};

// One phase of pool-threaded Louvain, structured as a sequence of
// bulk-synchronous micro-batches (the same scheme as core/dist_louvain's
// within-rank sweep). The shuffled sweep order is cut into kSweepBatches
// fixed slices; within a batch every vertex's move DECISION is computed in
// parallel against the batch-start community state, then the batch is
// APPLIED serially in sweep order -- community aggregates (a_c, |c|), the
// incremental modularity trackers and the ET probabilities all update in a
// fixed sequence. Decisions read only snapshot state and apply order is
// pinned, so the phase's outcome (assignments AND every floating-point bit)
// is identical at any thread count -- unlike classic Grappolo's benignly
// racy asynchronous sweep, which this comparator previously imitated.
// Moves still propagate within a sweep at 1/kSweepBatches granularity, so
// convergence behaviour stays close to the asynchronous original. The
// per-iteration cost remains proportional to the ACTIVE vertex set -- the
// property the early-termination heuristic's Table I economics rely on.
PhaseOutput run_phase(const graph::Csr& g, const LouvainConfig& cfg, int phase,
                      util::ThreadPool& pool, PhaseStats& stats) {
  const VertexId n = g.num_vertices();
  const Weight two_m = g.total_arc_weight();
  const Weight m = two_m / 2;

  std::vector<CommunityId> curr(static_cast<std::size_t>(n));
  std::iota(curr.begin(), curr.end(), CommunityId{0});

  std::vector<Weight> k(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) k[static_cast<std::size_t>(v)] = g.weighted_degree(v);
  std::vector<Weight> a = k;                                   // community degree
  std::vector<VertexId> size(static_cast<std::size_t>(n), 1);  // community sizes

  EtState et(cfg.early_termination ? static_cast<std::size_t>(n) : 0, cfg.et_alpha,
             cfg.et_inactive_cutoff, cfg.seed);

  // Incrementally maintained modularity state. Initially every vertex is a
  // singleton: intra weight is just the self loops (A_vv = 2w), degree term
  // is sum k^2.
  Weight intra = 0;
  Weight degree_term = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree_term += k[static_cast<std::size_t>(v)] * k[static_cast<std::size_t>(v)];
    for (const auto& e : g.neighbors(v))
      if (e.dst == v) intra += 2 * e.weight;
  }
  const double gamma = cfg.resolution;
  const auto q_of = [&] {
    return two_m > 0 ? intra / two_m - gamma * degree_term / (two_m * two_m) : 0.0;
  };
  Weight prev_mod = q_of();

  // Seeded-random sweep order, reshuffled per iteration: index-order sweeps
  // let the first-formed community drain every later vertex on graphs with
  // id-correlated locality (see louvain/serial.cpp for the full rationale).
  // The shuffle also fixes which vertex lands in which micro-batch, and its
  // seed never involves the thread count.
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), VertexId{0});
  util::Xoshiro256StarStar order_rng(cfg.seed ^ 0x9d2c5680aa3b1e4fULL);

  // Per-vertex move proposals for the current sweep: kInvalidCommunity =
  // did not participate (ET-inactive), own id = participated but stays.
  // delta_e[v] carries (best_e - e_own) from the decision scan to the
  // serial apply, for the incremental intra tracker.
  std::vector<CommunityId> proposed(static_cast<std::size_t>(n), kInvalidCommunity);
  std::vector<Weight> delta_e(static_cast<std::size_t>(n), 0);

  // One segmented e_{v -> c} reduction per pool thread (community ids live
  // in [0, n) on this engine), reused across vertices and batches. Each
  // thread only ever touches its own accumulator, so the decision scan
  // stays race-free. The lane is captured once per phase; all lanes are
  // bitwise identical (util/segmented.hpp).
  const util::SweepLane lane = util::sweep_lane();
  std::vector<util::SegmentedAccumulator<Weight>> scatter(
      static_cast<std::size_t>(pool.num_threads()));

  for (int iter = 0; iter < cfg.max_iterations_per_phase; ++iter) {
    std::int64_t moved_count = 0;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[order_rng.next_below(i)]);

    for (std::int64_t batch = 0; batch < kSweepBatches; ++batch) {
      const auto [batch_begin, batch_end] =
          util::fixed_chunk(static_cast<std::int64_t>(n), batch, kSweepBatches);
      if (batch_begin >= batch_end) continue;

      // Parallel decision scan against the batch-start state. curr / a /
      // size / et probabilities are read-only until every thread is done, so
      // the scan's partitioning across threads cannot change any proposal.
      util::parallel_for(&pool, batch_end - batch_begin,
                         [&, batch_begin](int tid, std::int64_t begin,
                                          std::int64_t end) {
        auto& nbr_weight = scatter[static_cast<std::size_t>(tid)];
        for (std::int64_t i = begin; i < end; ++i) {
          const VertexId v = order[static_cast<std::size_t>(batch_begin + i)];
          const auto vi = static_cast<std::size_t>(v);
          if (cfg.early_termination && !et.is_active(vi, v, phase, iter)) {
            proposed[vi] = kInvalidCommunity;
            continue;
          }

          const CommunityId own = curr[vi];
          const Weight kv = k[vi];

          nbr_weight.reset(static_cast<std::size_t>(n));
          for (const auto& e : g.neighbors(v)) {
            if (e.dst == v) continue;
            nbr_weight.add(curr[static_cast<std::size_t>(e.dst)], e.weight);
          }
          const Weight e_own = nbr_weight.sum_of(own);
          const Weight a_own_less_v = a[static_cast<std::size_t>(own)] - kv;

          const auto pick = util::best_segment(
              lane, nbr_weight, nbr_weight.segment_of(own), e_own, a_own_less_v,
              kv, m, gamma,
              [&](std::int64_t slot) { return a[static_cast<std::size_t>(slot)]; },
              [](std::int64_t slot) { return static_cast<CommunityId>(slot); });
          CommunityId best = own;
          Weight best_e = e_own;
          if (pick.segment >= 0) {
            best = nbr_weight.slots()[static_cast<std::size_t>(pick.segment)];
            best_e = nbr_weight.sums()[static_cast<std::size_t>(pick.segment)];
          }

          // Singleton-swap guard: prevents two same-batch singleton vertices
          // (which decide from the same snapshot) from endlessly exchanging
          // communities; only the id-decreasing direction is allowed.
          if (best != own && size[static_cast<std::size_t>(own)] == 1 &&
              size[static_cast<std::size_t>(best)] == 1 && best > own) {
            best = own;
          }

          proposed[vi] = best;
          delta_e[vi] = best_e - e_own;
        }
      });

      // Serial apply in sweep (slot) order: the fixed sequence pins every
      // floating-point accumulation in the trackers, so modularity is
      // bitwise identical at any thread count. Same-batch neighbour moves
      // can make a delta_e increment stale -- deterministic, bounded drift;
      // the exact modularity is recomputed at phase end.
      for (std::int64_t i = batch_begin; i < batch_end; ++i) {
        const VertexId v = order[static_cast<std::size_t>(i)];
        const auto vi = static_cast<std::size_t>(v);
        const CommunityId best = proposed[vi];
        if (best == kInvalidCommunity) {
          if (cfg.early_termination) et.update(vi, false);
          continue;
        }
        const CommunityId own = curr[vi];
        const bool moved = best != own;
        if (moved) {
          const Weight kv = k[vi];
          const Weight a_s = a[static_cast<std::size_t>(own)];
          const Weight a_t = a[static_cast<std::size_t>(best)];
          degree_term += (a_s - kv) * (a_s - kv) - a_s * a_s +
                         (a_t + kv) * (a_t + kv) - a_t * a_t;
          a[static_cast<std::size_t>(own)] -= kv;
          a[static_cast<std::size_t>(best)] += kv;
          --size[static_cast<std::size_t>(own)];
          ++size[static_cast<std::size_t>(best)];
          intra += 2 * delta_e[vi];
          curr[vi] = best;
          ++moved_count;
        }
        if (cfg.early_termination) et.update(vi, moved);
      }
    }

    ++stats.iterations;
    const Weight curr_mod = q_of();
    const bool converged = curr_mod - prev_mod <= cfg.threshold;
    prev_mod = std::max(prev_mod, curr_mod);
    if (converged || moved_count == 0) break;
  }

  // The incremental tracker is exact when no same-batch neighbours moved and
  // drift-bounded otherwise; report the exactly recomputed value.
  stats.modularity_after = modularity(g, curr, gamma);
  stats.graph_vertices = n;
  stats.graph_arcs = g.num_arcs();
  stats.threshold_used = cfg.threshold;
  PhaseOutput out;
  out.community = std::move(curr);
  out.inactive = cfg.early_termination ? et.inactive_count() : 0;
  return out;
}

}  // namespace

LouvainResult louvain_shared(const graph::Csr& g, const LouvainConfig& cfg,
                             int num_threads) {
  util::WallTimer total_timer;

  if (cfg.vertex_following) {
    // Same preprocessing as the serial driver: collapse degree-1 vertices
    // into their hosts, solve the compacted graph, re-expand.
    const auto vf = vertex_follow_assignment(g);
    const auto pre = coarsen(g, vf);
    LouvainConfig inner = cfg;
    inner.vertex_following = false;
    auto result = louvain_shared(pre.graph, inner, num_threads);
    result.community = compose(pre.old_to_new, result.community);
    result.seconds = total_timer.seconds();
    return result;
  }

  // The run's compute pool (<=0 threads = hardware concurrency), shared by
  // every phase's decision scans.
  util::ThreadPool pool(num_threads);

  LouvainResult result;
  result.community.resize(static_cast<std::size_t>(g.num_vertices()));
  std::iota(result.community.begin(), result.community.end(), CommunityId{0});

  graph::Csr current = g;
  Weight prev_mod = modularity(current, result.community, cfg.resolution);

  for (int phase = 0; phase < cfg.max_phases; ++phase) {
    util::WallTimer phase_timer;
    PhaseStats stats;
    auto phase_out = run_phase(current, cfg, phase, pool, stats);
    stats.seconds = phase_timer.seconds();
    stats.inactive_vertices = phase_out.inactive;
    result.phase_stats.push_back(stats);
    ++result.phases;
    result.total_iterations += stats.iterations;

    const auto coarse = coarsen(current, phase_out.community);
    result.community = compose(result.community, coarse.old_to_new);

    if (stats.modularity_after - prev_mod <= cfg.threshold) break;
    prev_mod = stats.modularity_after;
    current = std::move(coarse.graph);
  }

  result.modularity = prev_mod;
  result.num_communities = compact_ids(result.community);
  result.seconds = total_timer.seconds();
  return result;
}

}  // namespace dlouvain::louvain
