// Graph coarsening: collapse each community into a meta-vertex (the
// between-phase "graph reconstruction" step of the Louvain method).
//
// Weight conventions (must stay consistent with Csr::weighted_degree, which
// counts a stored self loop twice):
//   * arcs between different communities keep their weight, one arc per
//     direction per (meta-src, meta-dst) pair after coalescing;
//   * intra-community weight collapses into ONE stored self loop of weight
//     (sum of intra arc weight between distinct members)/2
//     + (sum of stored member self-loop weights),
//     which makes the meta-vertex degree exactly the sum of member degrees.
// Under these rules modularity of any coarser assignment is preserved
// exactly -- property-tested in tests/test_louvain.cpp.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace dlouvain::louvain {

struct CoarsenResult {
  graph::Csr graph;                        ///< the meta graph
  std::vector<CommunityId> old_to_new;     ///< per old vertex: its meta-vertex id
  CommunityId num_meta_vertices{0};
};

/// Collapse `g` by `community` (arbitrary ids). Meta-vertex ids are assigned
/// compactly in order of first appearance by ascending community id.
CoarsenResult coarsen(const graph::Csr& g, std::span<const CommunityId> community);

/// Compose phase assignments: given the original->current mapping and the
/// current phase's community per current vertex, produce original->next.
std::vector<CommunityId> compose(std::span<const CommunityId> orig_to_curr,
                                 std::span<const CommunityId> curr_assignment);

/// Renumber arbitrary community ids to compact [0, k); returns k.
CommunityId compact_ids(std::vector<CommunityId>& community);

}  // namespace dlouvain::louvain
