// Serial Louvain (paper Algorithm 1 + between-phase coarsening): the
// reference implementation every parallel variant is validated against.
#pragma once

#include "graph/csr.hpp"
#include "louvain/config.hpp"

namespace dlouvain::louvain {

/// Run the classic asynchronous (in-sweep updates) Louvain method.
/// Deterministic: vertices are swept in id order and ties break toward the
/// smaller community id.
LouvainResult louvain_serial(const graph::Csr& g, const LouvainConfig& config = {});

}  // namespace dlouvain::louvain
