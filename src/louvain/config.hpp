// Shared configuration and result types for all Louvain implementations
// (serial, shared-memory comparator, distributed).
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace dlouvain::louvain {

/// Options common to every Louvain flavour.
struct LouvainConfig {
  /// Modularity-gain threshold tau: a phase ends when the per-iteration gain
  /// drops to tau or below, and the algorithm ends when the per-phase gain
  /// does (paper default 1e-6).
  double threshold{1e-6};

  /// Safety bounds; generous enough to never bind in practice.
  int max_phases{64};
  int max_iterations_per_phase{512};

  /// Resolution parameter gamma (Reichardt-Bornholdt): optimizes
  /// Q_gamma = sum_c [ E_c/2m - gamma (a_c/2m)^2 ]. gamma = 1 is classical
  /// modularity; larger gamma favours more, smaller communities -- the
  /// standard mitigation for the resolution limit the paper discusses in its
  /// introduction (Fortunato & Barthelemy [12], Traag et al. [30]).
  double resolution{1.0};

  /// Early-termination heuristic (paper Section IV-B-b). When enabled, each
  /// vertex carries an activity probability that decays by (1 - et_alpha)
  /// every iteration it stays put and resets to 1 when it moves; the vertex
  /// participates in an iteration with that probability. A vertex whose
  /// probability falls below et_inactive_cutoff is labelled inactive
  /// outright (the paper uses 2%).
  bool early_termination{false};
  double et_alpha{0.25};
  double et_inactive_cutoff{0.02};

  /// Vertex-following preprocessing (Grappolo heuristic): merge degree-1
  /// vertices into their sole neighbour before the first phase.
  bool vertex_following{false};

  /// Seed for the ET coin flips (keyed per (seed, vertex, phase, iteration),
  /// so results are independent of thread/rank counts).
  std::uint64_t seed{7777};
};

/// Per-phase telemetry, the raw material for the paper's convergence charts
/// (Figs. 5-6).
struct PhaseStats {
  int iterations{0};
  VertexId graph_vertices{0};   ///< vertices of the phase's (coarsened) graph
  EdgeId graph_arcs{0};
  Weight modularity_after{0};
  double seconds{0};
  double threshold_used{0};     ///< tau in effect (varies under cycling)
  std::int64_t inactive_vertices{0};  ///< ET bookkeeping at phase end
};

/// Result of a full Louvain run.
struct LouvainResult {
  /// Final community id per ORIGINAL vertex, compacted to [0, num_communities).
  std::vector<CommunityId> community;
  Weight modularity{0};
  CommunityId num_communities{0};
  int phases{0};
  long total_iterations{0};
  double seconds{0};
  std::vector<PhaseStats> phase_stats;
};

}  // namespace dlouvain::louvain
