// Modularity computation (Newman-Girvan), in the e_c / a_c form of the
// paper's Equation 2. Two independent implementations are provided so tests
// can cross-check the fast one against a from-the-definition one.
#pragma once

#include <span>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace dlouvain::louvain {

/// Q_gamma = sum_c [ E_c/(2m) - gamma (a_c/(2m))^2 ], where E_c counts
/// intra-community arc weight in both directions (self loops contribute 2w)
/// and a_c = sum of weighted degrees of c's members. gamma = 1 is classical
/// modularity (paper Eq. 2). Runs in O(n + arcs). `community` may use
/// arbitrary (non-compact) ids.
Weight modularity(const graph::Csr& g, std::span<const CommunityId> community,
                  double resolution = 1.0);

/// From-the-definition reference: builds the full per-community edge/degree
/// sums with hash maps and evaluates Equation 1 via Equation 2 term by term.
/// O(arcs) too but independently coded; used as the test oracle.
Weight modularity_reference(const graph::Csr& g, std::span<const CommunityId> community,
                            double resolution = 1.0);

}  // namespace dlouvain::louvain
