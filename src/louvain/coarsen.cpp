#include "louvain/coarsen.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlouvain::louvain {

CommunityId compact_ids(std::vector<CommunityId>& community) {
  // Sorted-unique id list = the ordered renumbering (stable compact ids),
  // flat instead of a node-based map.
  std::vector<CommunityId> ids(community);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (auto& c : community) {
    c = static_cast<CommunityId>(
        std::lower_bound(ids.begin(), ids.end(), c) - ids.begin());
  }
  return static_cast<CommunityId>(ids.size());
}

std::vector<CommunityId> compose(std::span<const CommunityId> orig_to_curr,
                                 std::span<const CommunityId> curr_assignment) {
  std::vector<CommunityId> out(orig_to_curr.size());
  for (std::size_t i = 0; i < orig_to_curr.size(); ++i) {
    const auto cur = orig_to_curr[i];
    if (cur < 0 || static_cast<std::size_t>(cur) >= curr_assignment.size())
      throw std::out_of_range("compose: mapping out of range");
    out[i] = curr_assignment[static_cast<std::size_t>(cur)];
  }
  return out;
}

CoarsenResult coarsen(const graph::Csr& g, std::span<const CommunityId> community) {
  const VertexId n = g.num_vertices();
  if (community.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("coarsen: assignment size != num vertices");

  CoarsenResult result;
  result.old_to_new.assign(community.begin(), community.end());
  result.num_meta_vertices = compact_ids(result.old_to_new);

  // Accumulate meta arcs. Distinct-member intra weight is summed into `intra`
  // (it double counts each undirected pair) and halved at the end; stored
  // member self loops land in `self` at face value. Inter-community arcs are
  // collected flat and merged by a stable sort -- O(E log E), no per-pair
  // node allocations -- which reproduces the ordered-map output exactly:
  // (src, dst)-sorted pairs, equal keys summed in edge-scan order.
  std::vector<Edge> inter;
  std::vector<Weight> intra(static_cast<std::size_t>(result.num_meta_vertices), 0.0);
  std::vector<Weight> self(static_cast<std::size_t>(result.num_meta_vertices), 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const CommunityId cv = result.old_to_new[static_cast<std::size_t>(v)];
    for (const auto& e : g.neighbors(v)) {
      const CommunityId cu = result.old_to_new[static_cast<std::size_t>(e.dst)];
      if (e.dst == v) {
        self[static_cast<std::size_t>(cv)] += e.weight;
      } else if (cu == cv) {
        intra[static_cast<std::size_t>(cv)] += e.weight;
      } else {
        inter.push_back({cv, cu, e.weight});
      }
    }
  }
  std::stable_sort(inter.begin(), inter.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });

  std::vector<Edge> arcs;
  arcs.reserve(inter.size() + static_cast<std::size_t>(result.num_meta_vertices));
  for (const auto& e : inter) {
    if (!arcs.empty() && arcs.back().src == e.src && arcs.back().dst == e.dst) {
      arcs.back().weight += e.weight;
    } else {
      arcs.push_back(e);
    }
  }
  for (CommunityId c = 0; c < result.num_meta_vertices; ++c) {
    const Weight loop = intra[static_cast<std::size_t>(c)] / 2 + self[static_cast<std::size_t>(c)];
    if (loop > 0) arcs.push_back({c, c, loop});
  }

  graph::BuildOptions opts;
  opts.symmetrize = false;  // both inter directions were accumulated already
  opts.coalesce = true;
  result.graph = graph::build_csr(result.num_meta_vertices, std::move(arcs), opts);
  return result;
}

}  // namespace dlouvain::louvain
