// dlouvain -- the library's single public front door.
//
// A `Plan` names an engine (serial, shared-memory threaded, or distributed)
// and carries every tunable as a fluent builder; `run()` dispatches to the
// right implementation and normalizes the outcome into one `Result` shape,
// so callers pick an engine the way they pick a parameter instead of
// learning three APIs:
//
//   #include "dlouvain.hpp"
//
//   auto result = dlouvain::Plan::distributed()
//                     .ranks(8)
//                     .threads(4)                       // per-rank pool
//                     .variant(dlouvain::Variant::kEtc)
//                     .alpha(0.25)
//                     .run(graph);
//   std::cout << result.modularity << '\n';
//
// The per-engine headers (louvain/serial.hpp, louvain/shared.hpp,
// core/dist_louvain.hpp) stay public and unchanged for callers that want
// the raw configs or the collective, real-Comm entry points; Plan is sugar
// over them, not a replacement. Engine-specific details (per-phase
// telemetry, traffic counters) remain available on Result::distributed /
// Result::local.
//
// Every engine honours the determinism contract: for a fixed Plan (minus
// `threads`), the assignment and every modularity bit are identical at any
// thread count. The distributed engine's results also depend on `ranks` --
// but not on how its per-rank work is threaded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "core/dist_config.hpp"
#include "core/dist_louvain.hpp"
#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "louvain/config.hpp"
#include "util/types.hpp"

namespace dlouvain {

/// Heuristic variants (paper Section V legend), re-exported so Plan users
/// never open the core namespace.
using core::Variant;

/// Ghost-exchange wire modes (core/exchange_mode.hpp), re-exported likewise.
using core::GhostExchangeMode;

/// Communication/compute overlap modes (core/overlap_mode.hpp), re-exported
/// likewise.
using core::OverlapMode;

/// Which implementation a Plan dispatches to.
enum class Engine {
  kSerial,       ///< single-threaded reference (louvain/serial.hpp)
  kShared,       ///< pool-threaded comparator (louvain/shared.hpp)
  kDistributed,  ///< in-process-ranks distributed algorithm (core/)
};

/// Engine-agnostic outcome of a Plan::run.
struct Result {
  /// Final community id per original vertex, compacted to
  /// [0, num_communities).
  std::vector<CommunityId> community;
  Weight modularity{0};
  CommunityId num_communities{0};
  int phases{0};
  long total_iterations{0};
  double seconds{0};
  Engine engine{Engine::kSerial};

  /// Full distributed result (telemetry, traffic counters, per-phase
  /// assignments) when engine == kDistributed.
  std::optional<core::DistResult> distributed;
  /// Full serial/shared result (per-phase stats) otherwise.
  std::optional<louvain::LouvainResult> local;

  /// How the distributed run survived failures (always populated by the
  /// distributed engine; attempts == 1 means it succeeded first try).
  struct Recovery {
    int attempts{1};            ///< runs launched, including the success
    int phases_replayed{0};     ///< phases re-run across all restarts
    int resumed_from_phase{-1}; ///< last restart's checkpoint phase, -1 fresh

    /// Traffic burned by DISCARDED attempts: each failed attempt's total
    /// messages/bytes (algorithm + checkpoint I/O) minus whatever that
    /// attempt banked into a checkpoint (which the final result re-counts
    /// via its restored counters). Zero on a clean first-try run. This is
    /// where restart traffic goes now -- it is never charged to the
    /// completed run's Result::messages/bytes (the satellite-1 fix).
    std::int64_t wasted_messages{0};
    std::int64_t wasted_bytes{0};

    /// Fault-injector event totals across all attempts (zero without
    /// Plan::inject_faults).
    std::int64_t injected_delays{0};
    std::int64_t injected_duplicates{0};
    std::int64_t injected_corruptions{0};
    std::int64_t injected_crashes{0};
  };
  Recovery recovery;

  /// Machine-readable run manifest (schema "dlouvain-run-manifest/1"; see
  /// docs/OBSERVABILITY.md). Valid JSON for every engine; the distributed
  /// engine adds counters, breakdown and per-phase detail. Same content
  /// `Plan::metrics(path)` writes to disk.
  [[nodiscard]] std::string to_json() const;
};

/// Fluent description of one community-detection run. Start from a named
/// engine constructor, chain setters, end with run(); plans are plain values
/// and can be stored, copied and reused.
class Plan {
 public:
  /// Single-threaded reference implementation.
  static Plan serial() { return Plan(Engine::kSerial); }

  /// Shared-memory threaded comparator; `threads` <= 0 = hardware
  /// concurrency.
  static Plan shared(int threads = 0) {
    Plan p(Engine::kShared);
    p.threads_ = threads;
    return p;
  }

  /// The paper's distributed algorithm over `ranks` in-process ranks.
  static Plan distributed(int ranks = 4) {
    Plan p(Engine::kDistributed);
    p.ranks_ = ranks;
    return p;
  }

  // -- engine shape -------------------------------------------------------
  /// In-process ranks (distributed engine only).
  Plan& ranks(int n) { ranks_ = n; return *this; }
  /// Compute threads: the whole pool (shared engine) or per rank
  /// (distributed engine). <= 0 = hardware concurrency; ignored by the
  /// serial engine. Never changes results (see util/parallel.hpp).
  Plan& threads(int n) { threads_ = n; return *this; }
  /// Initial partition of the input across ranks (distributed engine).
  Plan& partition(graph::PartitionKind kind) { partition_ = kind; return *this; }

  // -- algorithm ----------------------------------------------------------
  /// Heuristic variant (paper Section V). kEt/kEtc switch early termination
  /// on; pair with alpha().
  Plan& variant(Variant v) { variant_ = v; return *this; }
  /// ET aggressiveness (paper alpha; only meaningful with kEt/kEtc).
  Plan& alpha(double a) { alpha_ = a; return *this; }
  /// Modularity-gain convergence threshold tau.
  Plan& threshold(double tau) { threshold_ = tau; return *this; }
  /// Resolution parameter gamma (1 = classical modularity).
  Plan& resolution(double gamma) { resolution_ = gamma; return *this; }
  Plan& seed(std::uint64_t s) { seed_ = s; return *this; }
  Plan& max_phases(int n) { max_phases_ = n; return *this; }
  Plan& max_iterations(int n) { max_iterations_ = n; return *this; }
  /// Add the Fig. 2 threshold-cycling schedule on top of the variant (the
  /// paper's Table VI combination); implied by kThresholdCycling itself.
  Plan& threshold_cycling(bool on = true) { cycling_ = on; return *this; }
  /// Colour-constrained sweeps (distributed engine, paper Section VI).
  Plan& coloring(bool on = true) { coloring_ = on; return *this; }
  /// Vertex-following preprocessing (serial/shared engines).
  Plan& vertex_following(bool on = true) { vertex_following_ = on; return *this; }
  /// Record per-iteration telemetry (distributed engine, Figs. 5-6 series).
  Plan& record_iterations(bool on = true) { record_iterations_ = on; return *this; }
  /// Ghost-exchange wire format (distributed engine): dense mirror lists,
  /// changed-entries-only deltas, or a per-destination pick (the default).
  /// Never changes results -- a bandwidth knob.
  Plan& exchange(GhostExchangeMode mode) { exchange_mode_ = mode; return *this; }
  /// kAuto's delta crossover threshold (see DistConfig).
  Plan& exchange_crossover(double c) { exchange_crossover_ = c; return *this; }
  /// Overlap ghost/delta exchanges with interior compute (distributed
  /// engine). Never changes results -- only where the blocking waits sit.
  /// kAuto (the default) = on whenever there is more than one rank.
  Plan& overlap(OverlapMode mode) { overlap_ = mode; return *this; }

  // -- fault tolerance (distributed engine; see docs/FAULT_TOLERANCE.md) --
  /// Write phase-boundary checkpoints into `dir` (every `every` phases).
  Plan& checkpointing(std::string dir, int every = 1) {
    checkpoint_dir_ = std::move(dir);
    checkpoint_every_ = every;
    return *this;
  }
  /// Resume from the newest valid checkpoint in `dir` (and keep
  /// checkpointing there).
  Plan& resume(std::string dir) {
    checkpoint_dir_ = std::move(dir);
    resume_ = true;
    return *this;
  }
  /// Blocked receives throw (with a deadlock diagnostic) after `seconds`
  /// instead of hanging. <= 0 = wait forever.
  Plan& comm_timeout(double seconds) { comm_timeout_ = seconds; return *this; }
  /// Deterministic fault injection (crashes, message delay/duplication/
  /// corruption) for robustness testing.
  Plan& inject_faults(comm::FaultPlan plan) { faults_ = std::move(plan); return *this; }
  /// On a detectable communication failure (crash, timeout, corruption),
  /// restart up to `n` times -- from the newest checkpoint when
  /// checkpointing is on, from scratch otherwise. 0 = fail fast.
  Plan& max_restarts(int n) { max_restarts_ = n; return *this; }

  // -- observability (see docs/OBSERVABILITY.md) --------------------------
  /// Write a merged Chrome trace_event JSON file (one pid per simulated
  /// rank) to `path` after the run. Spans are ring-buffered per rank and
  /// drained outside timed regions; results are bitwise unaffected.
  Plan& trace(std::string path) { trace_path_ = std::move(path); return *this; }
  /// Write the run manifest (Result::to_json()) to `path` after the run.
  Plan& metrics(std::string path) { metrics_path_ = std::move(path); return *this; }

  // -- materialized configs (for callers dropping to the raw APIs) --------
  [[nodiscard]] Engine engine() const { return engine_; }
  [[nodiscard]] int num_ranks() const { return ranks_; }
  [[nodiscard]] int num_threads() const { return threads_; }
  /// The LouvainConfig this plan describes (serial/shared engines; also the
  /// `base` of dist_config()).
  [[nodiscard]] louvain::LouvainConfig base_config() const;
  /// The DistConfig this plan describes (distributed engine).
  [[nodiscard]] core::DistConfig dist_config() const;

  /// Execute the plan on `g` (an undirected graph as a symmetric CSR).
  [[nodiscard]] Result run(const graph::Csr& g) const;

 private:
  explicit Plan(Engine engine) : engine_(engine) {}

  Engine engine_;
  int ranks_{4};
  int threads_{1};
  graph::PartitionKind partition_{graph::PartitionKind::kEvenEdges};
  Variant variant_{Variant::kBaseline};
  double alpha_{0.25};
  double threshold_{1e-6};
  double resolution_{1.0};
  std::uint64_t seed_{7777};
  int max_phases_{64};
  int max_iterations_{512};
  bool cycling_{false};
  bool coloring_{false};
  bool vertex_following_{false};
  bool record_iterations_{true};
  GhostExchangeMode exchange_mode_{GhostExchangeMode::kAuto};
  double exchange_crossover_{0.5};
  OverlapMode overlap_{OverlapMode::kAuto};
  std::string checkpoint_dir_;
  int checkpoint_every_{1};
  bool resume_{false};
  double comm_timeout_{0};
  std::optional<comm::FaultPlan> faults_;
  int max_restarts_{0};
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace dlouvain
