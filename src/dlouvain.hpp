// dlouvain -- the library's single public front door.
//
// A `Plan` names an engine (serial, shared-memory threaded, or distributed)
// and carries every tunable as a fluent builder; `run()` dispatches to the
// right implementation and normalizes the outcome into one `Result` shape,
// so callers pick an engine the way they pick a parameter instead of
// learning three APIs:
//
//   #include "dlouvain.hpp"
//
//   auto result = dlouvain::Plan::distributed()
//                     .ranks(8)
//                     .threads(4)                       // per-rank pool
//                     .variant(dlouvain::Variant::kEtc)
//                     .alpha(0.25)
//                     .run(graph);
//   std::cout << result.modularity << '\n';
//
// For streaming graphs, `open()` returns a re-entrant Session that retains
// the converged state and re-clusters incrementally as edges arrive
// (docs/STREAMING.md): batch-touched vertices and their neighbourhoods are
// reactivated and re-converged warm, everything else stays frozen, and a
// configurable modularity-drift threshold triggers a full recompute.
// `run(g)` is exactly `open(g)` + take the result:
//
//   auto session = dlouvain::Plan::distributed(8).open(graph);
//   auto stats = session.update(dlouvain::EdgeBatch()
//                                   .add(17, 4242, 1.0)
//                                   .remove(9, 13));
//   std::cout << session.result().modularity << '\n';
//
// Plans are validated before anything runs: run()/open() first call
// validate(), which throws a single PlanError naming the offending setting
// (e.g. coloring() on the serial engine, or checkpointing() and resume()
// pointed at different directories).
//
// The per-engine headers (louvain/serial.hpp, louvain/shared.hpp,
// core/dist_louvain.hpp) stay public and unchanged for callers that want
// the raw configs or the collective, real-Comm entry points; Plan is sugar
// over them, not a replacement. base_config()/dist_config() are the single
// materialization point: run()/open() execute exactly the config those
// return, so dropping down to the raw engines with them reproduces a
// Plan-driven run bit for bit. Engine-specific details (per-phase
// telemetry, traffic counters) remain available on Result::distributed /
// Result::local.
//
// Every engine honours the determinism contract: for a fixed Plan (minus
// `threads`), the assignment and every modularity bit are identical at any
// thread count. The distributed engine's results also depend on `ranks` --
// but not on how its per-rank work is threaded. A Session extends the
// contract to streams: a fixed (Plan, batch sequence) yields bitwise-
// identical assignments at any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "core/dist_config.hpp"
#include "core/dist_louvain.hpp"
#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "louvain/config.hpp"
#include "util/types.hpp"

namespace dlouvain {

/// A Plan that cannot run: conflicting or out-of-range settings, reported
/// by Plan::validate() (called by run()/open() before anything executes).
/// One error, one clear message naming the offending setting -- the CLI
/// surfaces it verbatim as its one-line failure.
class PlanError : public std::invalid_argument {
 public:
  explicit PlanError(const std::string& what) : std::invalid_argument(what) {}
};

/// A Session whose world is permanently degraded (a rank died during an
/// update and the per-rank graph slices are partitioned for a world that no
/// longer exists). Thrown by Session::update()/result() on every call after
/// the poisoning failure; the message names the original cause. Re-open the
/// plan on the current graph to continue. Transient failures (a CommFailure
/// that exhausted max_restarts) do NOT poison: updates mutate copies and
/// commit only on success, so the session recovers cleanly on the next call.
class SessionPoisoned : public std::runtime_error {
 public:
  explicit SessionPoisoned(const std::string& what) : std::runtime_error(what) {}
};

/// A batch of undirected edge mutations for Session::update. Fluent like
/// Plan; order matters only between a remove and an add of the SAME edge
/// (removals resolve against the pre-batch graph, additions apply after).
/// Duplicate changes follow the same rule: adding the same edge twice sums
/// the weights (on top of the pre-batch weight when the edge exists and is
/// not removed in this batch), while removing the same edge twice is an
/// error -- the second removal names an edge the pre-batch graph holds only
/// once. These semantics are engine-independent (test_incremental pins the
/// serial and distributed engines to the same behaviour).
class EdgeBatch {
 public:
  /// Add weight `w` (> 0) to edge {u, v}, creating it if absent.
  EdgeBatch& add(VertexId u, VertexId v, Weight w = 1.0) {
    changes_.push_back(graph::EdgeChange{u, v, w, false});
    return *this;
  }
  /// Remove edge {u, v} entirely (it must exist in the pre-batch graph).
  EdgeBatch& remove(VertexId u, VertexId v) {
    changes_.push_back(graph::EdgeChange{u, v, 0.0, true});
    return *this;
  }

  [[nodiscard]] std::size_t size() const noexcept { return changes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return changes_.empty(); }
  [[nodiscard]] const std::vector<graph::EdgeChange>& changes() const noexcept {
    return changes_;
  }

 private:
  std::vector<graph::EdgeChange> changes_;
};

/// What one Session::update did (per-batch view; Result::updates carries the
/// cumulative totals the manifest reports).
struct UpdateStats {
  std::int64_t edges_added{0};
  std::int64_t edges_removed{0};
  /// Vertices the warm start reactivated (global; 0 for an empty batch and
  /// for serial/shared sessions, which recompute in full).
  std::int64_t vertices_reactivated{0};
  /// Iterations the warm phase-0 re-convergence ran.
  std::int64_t reconverge_iterations{0};
  /// True when the warm result drifted past Plan::update_fallback and the
  /// batch was recomputed from scratch (always true for serial/shared).
  bool fell_back_to_full{false};
  double seconds{0};
};

/// Heuristic variants (paper Section V legend), re-exported so Plan users
/// never open the core namespace.
using core::Variant;

/// Ghost-exchange wire modes (core/exchange_mode.hpp), re-exported likewise.
using core::GhostExchangeMode;

/// Communication/compute overlap modes (core/overlap_mode.hpp), re-exported
/// likewise.
using core::OverlapMode;

/// Which implementation a Plan dispatches to.
enum class Engine {
  kSerial,       ///< single-threaded reference (louvain/serial.hpp)
  kShared,       ///< pool-threaded comparator (louvain/shared.hpp)
  kDistributed,  ///< in-process-ranks distributed algorithm (core/)
};

/// Engine-agnostic outcome of a Plan::run.
struct Result {
  /// Final community id per original vertex, compacted to
  /// [0, num_communities).
  std::vector<CommunityId> community;
  Weight modularity{0};
  CommunityId num_communities{0};
  int phases{0};
  long total_iterations{0};
  double seconds{0};
  Engine engine{Engine::kSerial};

  /// Full distributed result (telemetry, traffic counters, per-phase
  /// assignments) when engine == kDistributed.
  std::optional<core::DistResult> distributed;
  /// Full serial/shared result (per-phase stats) otherwise.
  std::optional<louvain::LouvainResult> local;

  /// How the distributed run survived failures (always populated by the
  /// distributed engine; attempts == 1 means it succeeded first try).
  struct Recovery {
    int attempts{1};            ///< runs launched, including the success
    int phases_replayed{0};     ///< phases re-run across all restarts
    int resumed_from_phase{-1}; ///< last restart's checkpoint phase, -1 fresh

    /// Traffic burned by DISCARDED attempts: each failed attempt's total
    /// messages/bytes (algorithm + checkpoint I/O) minus whatever that
    /// attempt banked into a checkpoint (which the final result re-counts
    /// via its restored counters). Zero on a clean first-try run. This is
    /// where restart traffic goes now -- it is never charged to the
    /// completed run's Result::messages/bytes (the satellite-1 fix).
    std::int64_t wasted_messages{0};
    std::int64_t wasted_bytes{0};

    /// Fault-injector event totals across all attempts (zero without
    /// Plan::inject_faults).
    std::int64_t injected_delays{0};
    std::int64_t injected_duplicates{0};
    std::int64_t injected_corruptions{0};
    std::int64_t injected_crashes{0};
    std::int64_t injected_losses{0};

    /// The recovery ladder's own telemetry (manifest "recovery.ladder";
    /// docs/FAULT_TOLERANCE.md). Rung 1 -- link-level repair, summed over
    /// every attempt (successful and discarded): NACKs issued, payload
    /// copies retransmitted, backoff milliseconds scheduled, and messages
    /// whose retry budget ran out (each escalation surfaces as a
    /// CommFailure and costs a restart).
    std::int64_t nacks{0};
    std::int64_t retransmits{0};
    std::int64_t backoff_ms{0};
    std::int64_t escalations{0};
    /// Rung 2 -- verdicts: receive deadlines extended on slow-not-dead
    /// evidence, and rank-dead verdicts the recovery driver received.
    std::int64_t slow_verdict_extensions{0};
    int verdicts_dead{0};
    /// Rung 3 -- shrink-to-survivors: times the world shrank by one rank,
    /// and the rank count that finished the job (== Plan::ranks when no
    /// shrink happened; 0 for non-distributed engines).
    int shrinks{0};
    int final_ranks{0};
  };
  Recovery recovery;

  /// Cumulative streaming-update telemetry (all zero for a one-shot run;
  /// maintained by Session::update). The manifest's v2 "updates" section.
  core::UpdateTelemetry updates;

  /// Machine-readable run manifest (schema "dlouvain-run-manifest/5"; see
  /// docs/OBSERVABILITY.md). Valid JSON for every engine; the distributed
  /// engine adds counters, breakdown and per-phase detail. Same content
  /// `Plan::metrics(path)` writes to disk.
  [[nodiscard]] std::string to_json() const;
};

class Session;

/// Fluent description of one community-detection run. Start from a named
/// engine constructor, chain setters, end with run(); plans are plain values
/// and can be stored, copied and reused.
class Plan {
 public:
  /// Single-threaded reference implementation.
  static Plan serial() { return Plan(Engine::kSerial); }

  /// Shared-memory threaded comparator; `threads` <= 0 = hardware
  /// concurrency.
  static Plan shared(int threads = 0) {
    Plan p(Engine::kShared);
    p.threads_ = threads;
    return p;
  }

  /// The paper's distributed algorithm over `ranks` in-process ranks.
  static Plan distributed(int ranks = 4) {
    Plan p(Engine::kDistributed);
    p.ranks_ = ranks;
    return p;
  }

  // -- engine shape -------------------------------------------------------
  /// In-process ranks (distributed engine only).
  Plan& ranks(int n) { ranks_ = n; return *this; }
  /// Compute threads: the whole pool (shared engine) or per rank
  /// (distributed engine). <= 0 = hardware concurrency; ignored by the
  /// serial engine. Never changes results (see util/parallel.hpp).
  Plan& threads(int n) { threads_ = n; return *this; }
  /// Initial partition of the input across ranks (distributed engine).
  Plan& partition(graph::PartitionKind kind) { partition_ = kind; return *this; }

  // -- algorithm ----------------------------------------------------------
  /// Heuristic variant (paper Section V). kEt/kEtc switch early termination
  /// on; pair with alpha().
  Plan& variant(Variant v) { variant_ = v; return *this; }
  /// ET aggressiveness (paper alpha; only meaningful with kEt/kEtc).
  Plan& alpha(double a) { alpha_ = a; return *this; }
  /// Modularity-gain convergence threshold tau.
  Plan& threshold(double tau) { threshold_ = tau; return *this; }
  /// Resolution parameter gamma (1 = classical modularity).
  Plan& resolution(double gamma) { resolution_ = gamma; return *this; }
  Plan& seed(std::uint64_t s) { seed_ = s; return *this; }
  Plan& max_phases(int n) { max_phases_ = n; return *this; }
  Plan& max_iterations(int n) { max_iterations_ = n; return *this; }
  /// Add the Fig. 2 threshold-cycling schedule on top of the variant (the
  /// paper's Table VI combination); implied by kThresholdCycling itself.
  Plan& threshold_cycling(bool on = true) { cycling_ = on; return *this; }
  /// Colour-constrained sweeps (distributed engine, paper Section VI).
  Plan& coloring(bool on = true) { coloring_ = on; return *this; }
  /// Vertex-following preprocessing (serial/shared engines).
  Plan& vertex_following(bool on = true) { vertex_following_ = on; return *this; }
  /// Record per-iteration telemetry (distributed engine, Figs. 5-6 series).
  Plan& record_iterations(bool on = true) { record_iterations_ = on; return *this; }
  /// Ghost-exchange wire format (distributed engine): dense mirror lists,
  /// changed-entries-only deltas, or a per-destination pick (the default).
  /// Never changes results -- a bandwidth knob.
  Plan& exchange(GhostExchangeMode mode) { exchange_mode_ = mode; return *this; }
  /// kAuto's delta crossover threshold (see DistConfig).
  Plan& exchange_crossover(double c) { exchange_crossover_ = c; return *this; }
  /// Overlap ghost/delta exchanges with interior compute (distributed
  /// engine). Never changes results -- only where the blocking waits sit.
  /// kAuto (the default) runs OFF until a measured cost model warms up,
  /// then engages only when the probed hidden time beats the schedule's
  /// measured overhead (core/overlap_model.hpp); the verdict and its inputs
  /// land in the manifest's "overlap" object.
  Plan& overlap(OverlapMode mode) { overlap_ = mode; return *this; }
  /// kAuto cost-model knobs: probe iterations sampled per stage and the
  /// minimum predicted-hidable seconds below which auto declines without an
  /// ON probe (see DistConfig). Never change results.
  Plan& overlap_probe(int iters, double min_hidden_s = 100e-6) {
    overlap_probe_iters_ = iters;
    overlap_min_hidden_s_ = min_hidden_s;
    return *this;
  }
  /// Phase-boundary dynamic load re-balancing (distributed engine,
  /// core/rebalance.hpp): at each rebuild, when the new coarse graph's
  /// arc-count imbalance lambda = max/mean under the default even-vertex
  /// split reaches `threshold` (>= 1), re-cut edge-balanced range
  /// boundaries before the coarse graph is shipped -- migration rides the
  /// rebuild's existing redistribution, no second data movement. The
  /// decision is deterministic and rank-identical (allreduced arc counts;
  /// measured times are observability-only), so runs are bitwise-
  /// reproducible across thread counts and fault injection; a boundary
  /// that DECLINES leaves the run bitwise identical to rebalance-off,
  /// while an ENGAGED migration changes the partition and therefore the
  /// bits -- same quality, different partition, exactly like resuming at a
  /// different rank count (see docs/PERFORMANCE.md section 8).
  Plan& rebalance(double threshold = 1.5) {
    rebalance_ = true;
    rebalance_threshold_ = threshold;
    return *this;
  }

  // -- fault tolerance (distributed engine; see docs/FAULT_TOLERANCE.md) --
  /// Write phase-boundary checkpoints into `dir` (every `every` phases).
  Plan& checkpointing(std::string dir, int every = 1) {
    checkpoint_dir_ = std::move(dir);
    checkpoint_every_ = every;
    return *this;
  }
  /// Resume from the newest valid checkpoint in `dir` (and keep
  /// checkpointing there, unless checkpointing() names its own directory --
  /// naming two DIFFERENT directories is a validate() error; the old
  /// behaviour silently overwrote whichever was set last).
  Plan& resume(std::string dir) {
    resume_dir_ = std::move(dir);
    resume_ = true;
    return *this;
  }
  /// Blocked receives throw (with a deadlock diagnostic) after `seconds`
  /// instead of hanging. <= 0 = wait forever.
  Plan& comm_timeout(double seconds) { comm_timeout_ = seconds; return *this; }
  /// Deterministic fault injection (crashes, message delay/duplication/
  /// corruption) for robustness testing.
  Plan& inject_faults(comm::FaultPlan plan) { faults_ = std::move(plan); return *this; }
  /// On a detectable communication failure (crash, timeout, corruption),
  /// restart up to `n` times -- from the newest checkpoint when
  /// checkpointing is on, from scratch otherwise. 0 = fail fast.
  Plan& max_restarts(int n) { max_restarts_ = n; return *this; }
  /// Rung-1 link-level ARQ (docs/FAULT_TOLERANCE.md): retransmit a lost or
  /// corrupted message up to `max` times per message, first retry after
  /// `backoff_ms` (doubling per attempt, capped), before the link escalates
  /// to a whole-run failure. 0 disables (detection-only, the old
  /// behaviour). Never changes results: retransmitted copies are absorbed
  /// by the sequence-number dedup layer bitwise-identically.
  Plan& retransmit(int max, double backoff_ms = 1.0) {
    retransmit_max_ = max;
    retransmit_backoff_ms_ = backoff_ms;
    return *this;
  }
  /// Rung-3 response to a rank-dead verdict: instead of retrying at the
  /// same world size (which a permanently dead rank re-fails forever),
  /// shrink to the survivors and resume at ranks-1 from the newest
  /// checkpoint (from scratch without checkpointing). Each death consumes
  /// one restart from the max_restarts() budget.
  Plan& shrink_on_rank_loss(bool on = true) {
    shrink_on_rank_loss_ = on;
    return *this;
  }

  // -- streaming updates (see docs/STREAMING.md) --------------------------
  /// Fallback threshold for Session::update: when a warm re-convergence
  /// lands more than `drift` BELOW the session's previous modularity, the
  /// batch is recomputed from scratch instead (the frozen skeleton no
  /// longer fits the graph). 0 falls back on any drop; must be >= 0.
  Plan& update_fallback(double drift) { update_fallback_ = drift; return *this; }

  // -- observability (see docs/OBSERVABILITY.md) --------------------------
  /// Write a merged Chrome trace_event JSON file (one pid per simulated
  /// rank) to `path` after the run. Spans are ring-buffered per rank and
  /// drained outside timed regions; results are bitwise unaffected.
  Plan& trace(std::string path) { trace_path_ = std::move(path); return *this; }
  /// Write the run manifest (Result::to_json()) to `path` after the run.
  Plan& metrics(std::string path) { metrics_path_ = std::move(path); return *this; }

  // -- materialized configs (for callers dropping to the raw APIs) --------
  [[nodiscard]] Engine engine() const { return engine_; }
  [[nodiscard]] int num_ranks() const { return ranks_; }
  [[nodiscard]] int num_threads() const { return threads_; }
  /// The LouvainConfig this plan describes (serial/shared engines; also the
  /// `base` of dist_config()). THE materialization point: run()/open()'s
  /// serial/shared branches execute exactly this config.
  [[nodiscard]] louvain::LouvainConfig base_config() const;
  /// The DistConfig this plan describes. THE materialization point: the
  /// distributed engine executes exactly this config, so
  /// core::dist_louvain_inprocess(num_ranks(), g, plan.dist_config(), ...)
  /// reproduces plan.run(g) bit for bit (test_incremental pins this).
  [[nodiscard]] core::DistConfig dist_config() const;

  /// Check the plan for conflicting or out-of-range settings; throws one
  /// PlanError naming the first offender. Called by run()/open() before
  /// anything executes; public so callers can fail fast at build time.
  void validate() const;

  /// Execute the plan on `g` (an undirected graph as a symmetric CSR).
  /// Exactly open(g) + take the result.
  [[nodiscard]] Result run(const graph::Csr& g) const;

  /// Execute the plan on `g` and keep the converged state resident for
  /// incremental re-clustering: the returned Session owns the partitioned
  /// graph, the converged assignment and the update telemetry, and its
  /// update(EdgeBatch) re-converges warm (docs/STREAMING.md).
  [[nodiscard]] Session open(const graph::Csr& g) const;

 private:
  friend class Session;
  explicit Plan(Engine engine) : engine_(engine) {}

  Engine engine_;
  int ranks_{4};
  int threads_{1};
  graph::PartitionKind partition_{graph::PartitionKind::kEvenEdges};
  Variant variant_{Variant::kBaseline};
  double alpha_{0.25};
  double threshold_{1e-6};
  double resolution_{1.0};
  std::uint64_t seed_{7777};
  int max_phases_{64};
  int max_iterations_{512};
  bool cycling_{false};
  bool coloring_{false};
  bool vertex_following_{false};
  bool record_iterations_{true};
  GhostExchangeMode exchange_mode_{GhostExchangeMode::kAuto};
  double exchange_crossover_{0.5};
  OverlapMode overlap_{OverlapMode::kAuto};
  int overlap_probe_iters_{2};
  double overlap_min_hidden_s_{100e-6};
  bool rebalance_{false};
  double rebalance_threshold_{1.5};
  std::string checkpoint_dir_;
  int checkpoint_every_{1};
  std::string resume_dir_;
  bool resume_{false};
  double update_fallback_{0.02};
  double comm_timeout_{0};
  std::optional<comm::FaultPlan> faults_;
  int max_restarts_{0};
  int retransmit_max_{0};
  double retransmit_backoff_ms_{1.0};
  bool shrink_on_rank_loss_{false};
  std::string trace_path_;
  std::string metrics_path_;
};

/// A resident clustering over one evolving graph: Plan::open(g) converges
/// from scratch and keeps the per-rank partitioned graphs and the converged
/// assignment in memory; each update(batch) mutates the graph in place and
/// re-converges warm -- only batch-touched vertices and their
/// neighbourhoods move, the rest of the assignment is frozen -- falling
/// back to a full recompute when modularity drifts past
/// Plan::update_fallback. result() always reflects the CURRENT graph and
/// has the exact shape Plan::run returns (manifest included).
///
/// Determinism: a fixed (Plan, batch sequence) yields bitwise-identical
/// assignments and modularity at any thread count. Move-only (owns the
/// partitioned graph state). Serial/shared sessions are supported but not
/// incremental: every update recomputes in full (and says so in its stats).
class Session {
 public:
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The clustering of the graph as currently updated. Same shape and
  /// manifest as Plan::run's result; Result::updates carries the session's
  /// cumulative update telemetry. Throws SessionPoisoned after a rank died
  /// during an update (the resident state no longer matches a runnable
  /// world).
  [[nodiscard]] const Result& result() const {
    if (!poisoned_.empty()) throw SessionPoisoned(poisoned_);
    return result_;
  }

  /// Apply `batch` to the graph and re-cluster. Collective over the same
  /// in-process ranks as the initial run; throws std::invalid_argument on a
  /// malformed batch (out-of-range endpoint, self loop, removal of an
  /// absent edge) WITHOUT modifying the session. An empty batch is a no-op.
  ///
  /// Failure lifecycle: a transient CommFailure that exhausts
  /// Plan::max_restarts propagates, but leaves the session on its pre-batch
  /// state (updates mutate per-rank copies and commit only on success) --
  /// the next update() starts clean with a fresh restart budget. A RankDead
  /// verdict instead POISONS the session (the world lost a rank for good;
  /// retrying at the old size can only re-fail): the original exception
  /// propagates, and every later update()/result() throws SessionPoisoned
  /// naming it. Re-open the plan to continue at the surviving size.
  UpdateStats update(const EdgeBatch& batch);

  /// Non-empty after a poisoning failure: the message every subsequent
  /// update()/result() throws as SessionPoisoned.
  [[nodiscard]] const std::string& poisoned() const noexcept { return poisoned_; }

  /// Number of update() calls that mutated the graph.
  [[nodiscard]] int updates_applied() const noexcept {
    return static_cast<int>(result_.updates.batches_applied);
  }

  /// The plan this session runs under (immutable once opened).
  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }

 private:
  friend class Plan;
  explicit Session(const Plan& plan) : plan_(plan) {}

  void run_initial(const graph::Csr& g);
  UpdateStats update_distributed(const EdgeBatch& batch);
  UpdateStats update_local(const EdgeBatch& batch);
  void write_artifacts() const;

  Plan plan_;
  Result result_;
  /// Why this session is unusable; empty while healthy. Set when a rank
  /// died during an update (see update()'s failure-lifecycle contract).
  std::string poisoned_;
  /// Exclusive ownership of the plan's checkpoint directory for the
  /// session's lifetime (core::CheckpointDirLock behind a type-erased
  /// pointer so this header stays checkpoint-free). Null when the plan
  /// neither checkpoints nor resumes. Two live sessions pointed at the same
  /// directory would interleave phase files; the second open() throws
  /// PlanError naming both owners instead.
  std::shared_ptr<void> checkpoint_lock_;
  /// Ranks currently running the session: Plan::ranks at open, decremented
  /// by every rung-3 shrink. Updates run at this size too.
  int active_ranks_{0};
  /// Distributed engine: each rank's slice of the CURRENT fine graph,
  /// mutated in place by update(); index = rank (re-sized on shrink).
  std::vector<graph::DistGraph> rank_graphs_;
  /// Serial/shared engines: the current graph, rebuilt per update.
  graph::Csr csr_;
  /// Session-lifetime run options: the fault injector (crash triggers stay
  /// one-shot across the whole stream) and the trace store (update spans
  /// flush alongside the initial run's) persist; the metrics registry is
  /// replaced per attempt so discarded traffic stays attributable.
  comm::RunOptions options_;
};

}  // namespace dlouvain
