#include "service/endpoint.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace dlouvain::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, 64) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("listen(" + path + ")");
  }
  return fd;
}

int listen_tcp(int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

ServiceEndpoint::ServiceEndpoint(EndpointOptions opts, JobScheduler& scheduler)
    : opts_(std::move(opts)), scheduler_(scheduler) {
  if (!opts_.unix_path.empty())
    listen_fd_ = listen_unix(opts_.unix_path);
  else if (opts_.tcp_port >= 0)
    listen_fd_ = listen_tcp(opts_.tcp_port, port_);
  else
    throw std::runtime_error("endpoint needs a unix path or a tcp port");
}

ServiceEndpoint::~ServiceEndpoint() { stop(); }

void ServiceEndpoint::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServiceEndpoint::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // 1. No new connections: retire and close the listener; the blocked
  //    accept() fails and the accept loop exits.
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Every admitted job completes and every in-flight request gets its
  //    reply (connection threads are blocked on reply futures, not on us).
  scheduler_.drain();
  // 3. Unblock readers waiting for a next request that will never come,
  //    then join. shutdown() (not close()) so a thread mid-write still
  //    flushes; each thread closes its own fd on exit.
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  for (std::thread& t : conn_threads_) t.join();
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
}

void ServiceEndpoint::accept_loop() {
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;  // stop() retired the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal -- either way, stop accepting
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void ServiceEndpoint::serve_connection(int fd) {
  try {
    for (;;) {
      auto frame = read_frame(fd, opts_.max_payload);
      if (!frame) break;  // clean EOF
      dispatch(fd, *frame);
    }
  } catch (const ProtocolError& e) {
    // Best effort: name the problem before dropping the connection. The
    // stream may be unframed at this point, so failure to send is fine.
    try {
      write_all(fd, encode_frame(FrameType::kError, std::string_view(e.what())));
    } catch (...) {
    }
  }
  // Deregister before closing so stop() never shutdown()s a reused fd
  // number.
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    std::erase(conn_fds_, fd);
  }
  ::close(fd);
}

void ServiceEndpoint::dispatch(int fd, const Frame& frame) {
  std::future<Reply> pending;
  switch (frame.type) {
    case FrameType::kSubmit:
      pending = scheduler_.submit(decode_job_request(frame.payload));
      break;
    case FrameType::kOpenSession:
      pending = scheduler_.open_session(decode_job_request(frame.payload));
      break;
    case FrameType::kUpdate:
      pending = scheduler_.update_session(decode_update_request(frame.payload));
      break;
    case FrameType::kCloseSession: {
      WireReader r(frame.payload);
      const std::string name = r.get_string();
      r.expect_end();
      pending = scheduler_.close_session(name);
      break;
    }
    case FrameType::kStats: {
      std::promise<Reply> p;
      p.set_value(Reply{FrameType::kStatsReply, scheduler_.final_manifest()});
      pending = p.get_future();
      break;
    }
    default:
      throw ProtocolError("unexpected frame type " +
                          std::to_string(static_cast<std::uint32_t>(frame.type)) +
                          " from a client");
  }
  const Reply reply = pending.get();
  write_all(fd, encode_frame(reply.type, std::string_view(reply.body)));
}

// ---- ServiceClient ------------------------------------------------------

ServiceClient ServiceClient::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw ProtocolError("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ProtocolError(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    throw ProtocolError("connect(" + path + "): " + std::strerror(e));
  }
  return ServiceClient(fd);
}

ServiceClient ServiceClient::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ProtocolError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    throw ProtocolError("connect(127.0.0.1:" + std::to_string(port) +
                        "): " + std::strerror(e));
  }
  return ServiceClient(fd);
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame ServiceClient::call(FrameType type, std::span<const std::byte> payload) {
  write_all(fd_, encode_frame(type, payload));
  auto reply = read_frame(fd_);
  if (!reply) throw ProtocolError("connection closed before the reply frame");
  return std::move(*reply);
}

Frame ServiceClient::call(FrameType type, std::string_view payload) {
  return call(type, std::span<const std::byte>(
                        reinterpret_cast<const std::byte*>(payload.data()),
                        payload.size()));
}

}  // namespace dlouvain::service
