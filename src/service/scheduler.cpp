#include "service/scheduler.hpp"

#include <cstring>
#include <utility>

#include "core/checkpoint.hpp"
#include "util/prng.hpp"

namespace dlouvain::service {

namespace {

/// 64-bit fingerprint of an inline graph: n folded with every (src, dst,
/// weight-bits) triple in request order. Clients ship canonical_edges()
/// normal form, so equal graphs hash equal regardless of which CSR they
/// came from.
std::uint64_t graph_fingerprint(VertexId n, const std::vector<Edge>& edges) {
  std::uint64_t h = util::hash_combine(0x646c7376'67726170ULL,  // "dlsvgrap"
                                       static_cast<std::uint64_t>(n));
  for (const Edge& e : edges) {
    std::uint64_t wbits;
    std::memcpy(&wbits, &e.weight, sizeof wbits);
    h = util::hash_combine(h, static_cast<std::uint64_t>(e.src));
    h = util::hash_combine(h, static_cast<std::uint64_t>(e.dst));
    h = util::hash_combine(h, wbits);
  }
  return h;
}

/// The Plan a JobConfig describes. The caller validates `variant` first.
Plan make_plan(const JobConfig& c) {
  return Plan::distributed(c.ranks)
      .threads(c.threads)
      .variant(static_cast<Variant>(c.variant))
      .alpha(c.alpha)
      .threshold(c.threshold)
      .resolution(c.resolution)
      .seed(c.seed)
      .max_phases(c.max_phases)
      .max_iterations(c.max_iterations);
}

std::future<Reply> ready_reply(Reply r) {
  std::promise<Reply> p;
  auto f = p.get_future();
  p.set_value(std::move(r));
  return f;
}

}  // namespace

/// A resident named streaming session. `mu` serializes the open and every
/// update; `ready` flips once the open job settled (updates admitted while
/// the open is still queued/running wait on `cv`).
struct JobScheduler::ResidentSession {
  std::mutex mu;
  std::condition_variable cv;
  enum class State { kPending, kReady, kFailed } state{State::kPending};
  std::optional<dlouvain::Session> session;
  std::string failure;  ///< why state == kFailed
};

struct JobScheduler::Job {
  enum class Kind { kCompute, kOpen, kUpdate, kClose };
  Kind kind{Kind::kCompute};
  JobRequest req;     ///< kCompute / kOpen
  UpdateRequest upd;  ///< kUpdate
  std::string close_name;  ///< kClose
  std::uint64_t key{0};
  bool cacheable{false};
  std::int64_t job_id{-1};
  std::promise<Reply> promise;
  /// Identical submissions that attached while this (leader) job was in
  /// flight; each carries its own admission id.
  std::vector<std::pair<std::int64_t, std::promise<Reply>>> waiters;
  std::shared_ptr<ResidentSession> session;  ///< kOpen / kUpdate
};

JobScheduler::JobScheduler(SchedulerOptions opts) : opts_(opts) {
  if (opts_.workers < 1) opts_.workers = 1;
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

JobScheduler::~JobScheduler() {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

core::ServiceTelemetry JobScheduler::snapshot_locked(std::int64_t job_id, bool cache_hit) {
  core::ServiceTelemetry t;
  t.job_id = job_id;
  t.cache_hit = cache_hit;
  t.queue_depth = static_cast<std::int64_t>(queue_.size());
  t.jobs_served = jobs_served_;
  t.cache_hits = cache_hits_;
  t.cache_misses = cache_misses_;
  t.rejected = rejected_;
  t.sessions_open = static_cast<std::int64_t>(sessions_.size());
  t.drain = drain_state_;
  return t;
}

std::string JobScheduler::splice_service(std::string manifest,
                                         const core::ServiceTelemetry& t) {
  std::string svc = ",\"service\":";
  core::append_service_json(svc, t);
  // Every manifest is one JSON object; grow it in place before the closing
  // brace so all responses for one cached result share a byte-identical
  // prefix up to the ","service"" key.
  manifest.insert(manifest.size() - 1, svc);
  return manifest;
}

std::string* JobScheduler::cache_get_locked(std::uint64_t key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // most-recently-used first
  return &it->second->second;
}

void JobScheduler::cache_put_locked(std::uint64_t key, std::string manifest) {
  if (auto it = cache_.find(key); it != cache_.end()) {
    it->second->second = std::move(manifest);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(manifest));
  cache_[key] = lru_.begin();
  while (cache_.size() > opts_.cache_capacity) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::future<Reply> JobScheduler::reject_now(const std::string& message) {
  ++rejected_;
  return ready_reply(Reply{FrameType::kError, message});
}

std::future<Reply> JobScheduler::admit(std::shared_ptr<Job> job) {
  auto f = job->promise.get_future();
  queue_.push_back(std::move(job));
  cv_work_.notify_one();
  return f;
}

std::future<Reply> JobScheduler::submit(JobRequest req) {
  std::lock_guard<std::mutex> lk(mu_);
  if (draining_) return reject_now("draining: the service is shutting down");
  if (req.config.ranks < 1 || req.config.ranks > opts_.max_ranks)
    return reject_now("ranks " + std::to_string(req.config.ranks) +
                      " outside the service limit [1, " +
                      std::to_string(opts_.max_ranks) + "]");
  if (static_cast<std::int64_t>(req.edges.size()) > opts_.max_edges)
    return reject_now("graph of " + std::to_string(req.edges.size()) +
                      " edges exceeds the service limit of " +
                      std::to_string(opts_.max_edges));
  if (req.config.variant > 3)
    return reject_now("unknown variant " + std::to_string(req.config.variant));
  Plan plan = make_plan(req.config);
  try {
    plan.validate();
  } catch (const PlanError& e) {
    return reject_now(std::string("invalid plan: ") + e.what());
  }

  const std::uint64_t key = util::hash_combine(
      util::hash_combine(graph_fingerprint(req.num_vertices, req.edges),
                         core::config_fingerprint(plan.dist_config())),
      static_cast<std::uint64_t>(req.config.ranks));
  const std::int64_t id = next_job_id_++;

  if (std::string* cached = cache_get_locked(key)) {
    ++cache_hits_;
    ++jobs_served_;
    return ready_reply(Reply{FrameType::kManifest,
                             splice_service(*cached, snapshot_locked(id, true))});
  }
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    ++cache_hits_;  // will be served from the leader's result
    it->second->waiters.emplace_back(id, std::promise<Reply>());
    return it->second->waiters.back().second.get_future();
  }
  if (queue_.size() >= opts_.max_queue)
    return reject_now("queue full (" + std::to_string(queue_.size()) + " jobs)");

  ++cache_misses_;
  auto job = std::make_shared<Job>();
  job->kind = Job::Kind::kCompute;
  job->req = std::move(req);
  job->key = key;
  job->cacheable = true;
  job->job_id = id;
  inflight_[key] = job;
  return admit(std::move(job));
}

std::future<Reply> JobScheduler::open_session(JobRequest req) {
  std::lock_guard<std::mutex> lk(mu_);
  if (draining_) return reject_now("draining: the service is shutting down");
  if (req.session_name.empty())
    return reject_now("open-session requires a non-empty session name");
  if (sessions_.count(req.session_name))
    return reject_now("session '" + req.session_name + "' already exists");
  if (req.config.ranks < 1 || req.config.ranks > opts_.max_ranks)
    return reject_now("ranks " + std::to_string(req.config.ranks) +
                      " outside the service limit [1, " +
                      std::to_string(opts_.max_ranks) + "]");
  if (static_cast<std::int64_t>(req.edges.size()) > opts_.max_edges)
    return reject_now("graph of " + std::to_string(req.edges.size()) +
                      " edges exceeds the service limit of " +
                      std::to_string(opts_.max_edges));
  if (req.config.variant > 3)
    return reject_now("unknown variant " + std::to_string(req.config.variant));
  try {
    make_plan(req.config).validate();
  } catch (const PlanError& e) {
    return reject_now(std::string("invalid plan: ") + e.what());
  }
  if (queue_.size() >= opts_.max_queue)
    return reject_now("queue full (" + std::to_string(queue_.size()) + " jobs)");

  auto job = std::make_shared<Job>();
  job->kind = Job::Kind::kOpen;
  job->session = std::make_shared<ResidentSession>();
  sessions_[req.session_name] = job->session;
  job->req = std::move(req);
  job->job_id = next_job_id_++;
  return admit(std::move(job));
}

std::future<Reply> JobScheduler::update_session(UpdateRequest req) {
  std::lock_guard<std::mutex> lk(mu_);
  if (draining_) return reject_now("draining: the service is shutting down");
  auto it = sessions_.find(req.session_name);
  if (it == sessions_.end())
    return reject_now("no session named '" + req.session_name + "'");
  if (queue_.size() >= opts_.max_queue)
    return reject_now("queue full (" + std::to_string(queue_.size()) + " jobs)");

  auto job = std::make_shared<Job>();
  job->kind = Job::Kind::kUpdate;
  job->session = it->second;
  job->upd = std::move(req);
  job->job_id = next_job_id_++;
  return admit(std::move(job));
}

std::future<Reply> JobScheduler::close_session(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (draining_) return reject_now("draining: the service is shutting down");
  auto it = sessions_.find(name);
  if (it == sessions_.end())
    return reject_now("no session named '" + name + "'");
  if (queue_.size() >= opts_.max_queue)
    return reject_now("queue full (" + std::to_string(queue_.size()) + " jobs)");

  auto job = std::make_shared<Job>();
  job->kind = Job::Kind::kClose;
  job->close_name = name;
  job->job_id = next_job_id_++;
  return admit(std::move(job));
}

core::ServiceTelemetry JobScheduler::stats() {
  std::lock_guard<std::mutex> lk(mu_);
  return snapshot_locked(-1, false);
}

std::string JobScheduler::final_manifest() {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"schema\":\"dlouvain-service-manifest/1\",\"service\":";
  core::append_service_json(out, snapshot_locked(-1, false));
  out += '}';
  return out;
}

void JobScheduler::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  if (drained_) return;
  draining_ = true;
  cv_drain_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
  sessions_.clear();
  drain_state_ = "clean";
  drained_ = true;
}

void JobScheduler::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    execute(job);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) cv_drain_.notify_all();
    }
  }
}

Reply JobScheduler::run_compute(Job& job) {
  try {
    const graph::Csr g = graph::from_edges(job.req.num_vertices, job.req.edges);
    const Result result = make_plan(job.req.config).run(g);
    return Reply{FrameType::kManifest, result.to_json()};
  } catch (const std::exception& e) {
    return Reply{FrameType::kError, std::string("job failed: ") + e.what()};
  }
}

void JobScheduler::execute(const std::shared_ptr<Job>& job) {
  switch (job->kind) {
    case Job::Kind::kCompute: {
      Reply raw = run_compute(*job);
      std::lock_guard<std::mutex> lk(mu_);
      inflight_.erase(job->key);
      if (raw.type == FrameType::kManifest) {
        cache_put_locked(job->key, raw.body);
        ++jobs_served_;
        job->promise.set_value(Reply{
            FrameType::kManifest,
            splice_service(raw.body, snapshot_locked(job->job_id, false))});
        for (auto& [wid, wp] : job->waiters) {
          ++jobs_served_;
          wp.set_value(Reply{FrameType::kManifest,
                             splice_service(raw.body, snapshot_locked(wid, true))});
        }
      } else {
        ++jobs_served_;
        job->promise.set_value(raw);
        for (auto& [wid, wp] : job->waiters) {
          (void)wid;
          ++jobs_served_;
          wp.set_value(raw);
        }
      }
      break;
    }
    case Job::Kind::kOpen: {
      Reply reply;
      {
        std::unique_lock<std::mutex> slk(job->session->mu);
        try {
          const graph::Csr g = graph::from_edges(job->req.num_vertices, job->req.edges);
          job->session->session.emplace(make_plan(job->req.config).open(g));
          job->session->state = ResidentSession::State::kReady;
          reply = Reply{FrameType::kManifest,
                        job->session->session->result().to_json()};
        } catch (const std::exception& e) {
          job->session->state = ResidentSession::State::kFailed;
          job->session->failure = e.what();
          reply = Reply{FrameType::kError,
                        std::string("open-session failed: ") + e.what()};
        }
      }
      job->session->cv.notify_all();
      std::lock_guard<std::mutex> lk(mu_);
      if (job->session->state == ResidentSession::State::kFailed) {
        // Drop the admission-time placeholder so the name can be reused
        // (only if a later open has not already replaced it).
        auto it = sessions_.find(job->req.session_name);
        if (it != sessions_.end() && it->second == job->session)
          sessions_.erase(it);
      }
      ++jobs_served_;
      if (reply.type == FrameType::kManifest)
        reply.body = splice_service(std::move(reply.body),
                                    snapshot_locked(job->job_id, false));
      job->promise.set_value(std::move(reply));
      break;
    }
    case Job::Kind::kUpdate: {
      Reply reply;
      {
        std::unique_lock<std::mutex> slk(job->session->mu);
        job->session->cv.wait(slk, [&] {
          return job->session->state != ResidentSession::State::kPending;
        });
        if (job->session->state == ResidentSession::State::kFailed) {
          reply = Reply{FrameType::kError, "session '" + job->upd.session_name +
                                               "' failed to open: " +
                                               job->session->failure};
        } else {
          try {
            EdgeBatch batch;
            for (const graph::EdgeChange& c : job->upd.changes) {
              if (c.remove)
                batch.remove(c.u, c.v);
              else
                batch.add(c.u, c.v, c.weight);
            }
            job->session->session->update(batch);
            reply = Reply{FrameType::kManifest,
                          job->session->session->result().to_json()};
          } catch (const std::exception& e) {
            reply = Reply{FrameType::kError, std::string("update failed: ") + e.what()};
          }
        }
      }
      std::lock_guard<std::mutex> lk(mu_);
      ++jobs_served_;
      if (reply.type == FrameType::kManifest)
        reply.body = splice_service(std::move(reply.body),
                                    snapshot_locked(job->job_id, false));
      job->promise.set_value(std::move(reply));
      break;
    }
    case Job::Kind::kClose: {
      std::lock_guard<std::mutex> lk(mu_);
      sessions_.erase(job->close_name);
      ++jobs_served_;
      std::string out = "{\"schema\":\"dlouvain-service-manifest/1\",\"service\":";
      core::append_service_json(out, snapshot_locked(job->job_id, false));
      out += '}';
      job->promise.set_value(Reply{FrameType::kStatsReply, std::move(out)});
      break;
    }
  }
}

}  // namespace dlouvain::service
