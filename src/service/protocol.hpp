// Wire protocol of the long-lived clustering service (dlouvaind; see
// docs/SERVICE.md).
//
// Every message is one length-prefixed, CRC-sealed frame, following the
// same versioned-header discipline as the .dlel graph format (magic with a
// version digit, little-endian fixed-width fields, util/crc32.hpp seal):
//
//   magic    u64  'DLSV0001'
//   type     u32  FrameType
//   length   u64  payload bytes (bounded by the endpoint's max_payload)
//   payload  length bytes
//   crc      u32  CRC32 of everything above (header + payload)
//
// The CRC covers the header too, so a flipped type or length is caught, not
// just payload rot. Request payloads are themselves versioned (a leading
// u32), so the frame layer never changes when a request grows fields.
//
// Request payloads (client -> daemon):
//   kSubmit       JobRequest -- one clustering job (cacheable)
//   kOpenSession  JobRequest with session_name set -- converge and keep the
//                 Session resident under that name
//   kUpdate       UpdateRequest -- EdgeBatch against a named session
//   kCloseSession session name -- drop the named session
//   kStats        empty -- daemon service counters
//
// Response payloads (daemon -> client):
//   kManifest     run-manifest JSON (v4 + "service" section)
//   kStatsReply   service-manifest JSON
//   kError        UTF-8 one-line message (admission refusal, bad request,
//                 draining)
//
// Exactly one response frame per request frame, in request order per
// connection. The codec is transport-agnostic: encode/decode work on byte
// buffers, and the fd helpers layer them over a blocking socket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "util/types.hpp"

namespace dlouvain::service {

inline constexpr std::uint64_t kFrameMagic = 0x313030305653'4c44ULL;  // "DLSV0001"
inline constexpr std::size_t kFrameHeaderBytes = 8 + 4 + 8;
inline constexpr std::size_t kFrameTrailerBytes = 4;
/// Default per-frame payload bound: a hostile length field must not drive an
/// allocation, and the service's operating envelope is graphs that fit one
/// node anyway.
inline constexpr std::size_t kDefaultMaxPayload = std::size_t{1} << 30;

enum class FrameType : std::uint32_t {
  kSubmit = 1,
  kOpenSession = 2,
  kUpdate = 3,
  kCloseSession = 4,
  kStats = 5,
  kManifest = 0x11,
  kError = 0x12,
  kStatsReply = 0x13,
};

/// A malformed, truncated, corrupt or oversized frame / payload. Connection
/// handlers answer with kError where possible and drop the connection.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

struct Frame {
  FrameType type{FrameType::kError};
  std::vector<std::byte> payload;
};

/// Little-endian append-only payload builder (mirrors checkpoint.cpp's
/// ByteWriter, public here because both daemon and clients encode).
class WireWriter {
 public:
  void put_u8(std::uint8_t v) { put_raw(&v, sizeof v); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_i32(std::int32_t v) { put_raw(&v, sizeof v); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v);
  void put_string(std::string_view s);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(buf_); }

 private:
  void put_raw(const void* data, std::size_t size) {
    const auto* b = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), b, b + size);
  }
  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian payload reader; every overrun or bad field
/// is a ProtocolError, never UB.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int32_t get_i32();
  std::int64_t get_i64();
  double get_f64();
  std::string get_string(std::size_t max_len = 1 << 20);

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// Throws unless the whole payload was consumed (catches trailing junk).
  void expect_end() const;

 private:
  void get_raw(void* out, std::size_t size);
  std::span<const std::byte> data_;
  std::size_t pos_{0};
};

// ---- frame codec --------------------------------------------------------

/// One full frame (header + payload + CRC), ready to write to a socket.
std::vector<std::byte> encode_frame(FrameType type, std::span<const std::byte> payload);
std::vector<std::byte> encode_frame(FrameType type, std::string_view payload);

/// Blocking exact-count I/O over a socket fd (EINTR-safe). read_exact
/// returns false on a clean EOF at byte 0 and throws on a mid-record EOF.
bool read_exact(int fd, void* out, std::size_t size);
void write_all(int fd, const void* data, std::size_t size);
inline void write_all(int fd, std::span<const std::byte> data) {
  write_all(fd, data.data(), data.size());
}

/// Read one frame from `fd`: nullopt on clean EOF (peer closed between
/// frames), ProtocolError on bad magic/oversized length/CRC mismatch/
/// truncation.
std::optional<Frame> read_frame(int fd, std::size_t max_payload = kDefaultMaxPayload);

/// Decode one frame from an in-memory buffer (for tests and fuzzing);
/// `consumed` receives the frame's full encoded size.
Frame decode_frame(std::span<const std::byte> buffer, std::size_t& consumed,
                   std::size_t max_payload = kDefaultMaxPayload);

// ---- request payloads ---------------------------------------------------

/// The Plan knobs a job may set (a deliberate subset: the service runs the
/// distributed engine, never checkpoints, and owns the fault-tolerance
/// policy). `threads` is accepted but excluded from the cache key -- the
/// determinism contract makes results thread-count-invariant.
struct JobConfig {
  std::int32_t ranks{4};
  std::int32_t threads{1};
  std::uint8_t variant{0};  ///< core::Variant as u8
  double alpha{0.25};
  double threshold{1e-6};
  double resolution{1.0};
  std::uint64_t seed{7777};
  std::int32_t max_phases{64};
  std::int32_t max_iterations{512};
};

/// One clustering job: a config plus the graph, inline as canonical
/// (src <= dst, coalesced) undirected edges. `session_name` is empty for a
/// one-shot kSubmit and names the resident Session for kOpenSession.
struct JobRequest {
  JobConfig config;
  std::string session_name;
  VertexId num_vertices{0};
  std::vector<Edge> edges;
};

/// An EdgeBatch against a named resident session.
struct UpdateRequest {
  std::string session_name;
  std::vector<graph::EdgeChange> changes;
};

std::vector<std::byte> encode_job_request(const JobRequest& req);
JobRequest decode_job_request(std::span<const std::byte> payload);

std::vector<std::byte> encode_update_request(const UpdateRequest& req);
UpdateRequest decode_update_request(std::span<const std::byte> payload);

/// Canonical undirected edge list of a CSR (each edge once, src <= dst, the
/// same normal form build_csr produces) -- what clients ship inline so that
/// equal graphs have equal bytes and therefore equal fingerprints.
std::vector<Edge> canonical_edges(const graph::Csr& g);

}  // namespace dlouvain::service
