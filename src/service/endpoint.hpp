// Socket transport of the long-lived clustering service (dlouvaind; see
// docs/SERVICE.md). A ServiceEndpoint owns the listening socket (Unix
// domain at a path, or TCP on loopback), the accept loop and one thread
// per connection; each connection thread reads DLSV frames, dispatches the
// decoded request to the JobScheduler, blocks on the reply future
// (backpressure: a connection carries one request at a time, replies
// return in request order) and writes the reply frame back.
//
// Shutdown sequencing (the drain contract, driven by the daemon's SIGTERM
// handler): stop() closes the listener so no new connections land, drains
// the scheduler -- every admitted job still gets its reply, admission
// during the drain answers kError "draining" -- then shuts down the
// per-connection sockets to unblock readers and joins every thread.
// Nothing is ever dropped without a response on an established connection.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/scheduler.hpp"

namespace dlouvain::service {

/// Where to listen. Exactly one of `unix_path` (preferred: no port
/// collisions in CI) or `tcp_port` (on 127.0.0.1; 0 = kernel-assigned,
/// read back via ServiceEndpoint::port()).
struct EndpointOptions {
  std::string unix_path;
  int tcp_port{-1};
  std::size_t max_payload{kDefaultMaxPayload};
};

class ServiceEndpoint {
 public:
  /// Binds and listens (throws std::runtime_error on failure); serving
  /// starts with start().
  ServiceEndpoint(EndpointOptions opts, JobScheduler& scheduler);
  ~ServiceEndpoint();
  ServiceEndpoint(const ServiceEndpoint&) = delete;
  ServiceEndpoint& operator=(const ServiceEndpoint&) = delete;

  /// Spawn the accept loop.
  void start();

  /// Graceful shutdown: close the listener, drain the scheduler, unblock
  /// and join every connection. Idempotent; called by the destructor.
  void stop();

  /// The bound TCP port (kernel-assigned when opts.tcp_port == 0); -1 for
  /// a Unix socket.
  [[nodiscard]] int port() const noexcept { return port_; }

  /// Connections accepted so far.
  [[nodiscard]] std::int64_t connections() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void dispatch(int fd, const Frame& frame);

  EndpointOptions opts_;
  JobScheduler& scheduler_;
  /// Atomic: stop() retires the fd (exchange to -1) while the accept loop
  /// reads it, and the exchange makes close() happen exactly once.
  std::atomic<int> listen_fd_{-1};
  int port_{-1};
  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> connections_{0};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;  ///< live connection sockets (for shutdown)
  std::vector<std::thread> conn_threads_;
};

/// Blocking client for one connection: sends a request frame, reads the
/// reply. Used by the CLI's --submit/--open/--update modes and the tests;
/// connect to a Unix path or a loopback port.
class ServiceClient {
 public:
  static ServiceClient connect_unix(const std::string& path);
  static ServiceClient connect_tcp(int port);
  ~ServiceClient();
  ServiceClient(ServiceClient&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  ServiceClient& operator=(ServiceClient&&) = delete;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// One round trip: write `frame`, read the reply frame. Throws
  /// ProtocolError on transport or framing failure.
  Frame call(FrameType type, std::span<const std::byte> payload);
  Frame call(FrameType type, std::string_view payload = {});

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}
  int fd_{-1};
};

}  // namespace dlouvain::service
