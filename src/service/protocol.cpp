#include "service/protocol.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/crc32.hpp"

namespace dlouvain::service {

namespace {

/// Request payloads lead with this version word; bump when a payload grows
/// fields (the frame layer never changes).
constexpr std::uint32_t kPayloadVersion = 1;

void append_le(std::vector<std::byte>& out, const void* data, std::size_t size) {
  const auto* b = static_cast<const std::byte*>(data);
  out.insert(out.end(), b, b + size);
}

}  // namespace

void WireWriter::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void WireWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_raw(s.data(), s.size());
}

void WireReader::get_raw(void* out, std::size_t size) {
  if (size > remaining())
    throw ProtocolError("payload truncated: need " + std::to_string(size) +
                        " bytes at offset " + std::to_string(pos_) + ", have " +
                        std::to_string(remaining()));
  std::memcpy(out, data_.data() + pos_, size);
  pos_ += size;
}

std::uint8_t WireReader::get_u8() {
  std::uint8_t v;
  get_raw(&v, sizeof v);
  return v;
}
std::uint32_t WireReader::get_u32() {
  std::uint32_t v;
  get_raw(&v, sizeof v);
  return v;
}
std::uint64_t WireReader::get_u64() {
  std::uint64_t v;
  get_raw(&v, sizeof v);
  return v;
}
std::int32_t WireReader::get_i32() {
  std::int32_t v;
  get_raw(&v, sizeof v);
  return v;
}
std::int64_t WireReader::get_i64() {
  std::int64_t v;
  get_raw(&v, sizeof v);
  return v;
}
double WireReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string WireReader::get_string(std::size_t max_len) {
  const std::uint32_t len = get_u32();
  if (len > max_len)
    throw ProtocolError("string field of " + std::to_string(len) +
                        " bytes exceeds the " + std::to_string(max_len) + " limit");
  std::string s(len, '\0');
  get_raw(s.data(), len);
  return s;
}

void WireReader::expect_end() const {
  if (remaining() != 0)
    throw ProtocolError(std::to_string(remaining()) +
                        " trailing bytes after the last payload field");
}

// ---- frame codec --------------------------------------------------------

std::vector<std::byte> encode_frame(FrameType type, std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  const std::uint64_t magic = kFrameMagic;
  const auto type_raw = static_cast<std::uint32_t>(type);
  const auto length = static_cast<std::uint64_t>(payload.size());
  append_le(out, &magic, sizeof magic);
  append_le(out, &type_raw, sizeof type_raw);
  append_le(out, &length, sizeof length);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = util::crc32(out.data(), out.size());
  append_le(out, &crc, sizeof crc);
  return out;
}

std::vector<std::byte> encode_frame(FrameType type, std::string_view payload) {
  return encode_frame(
      type, std::span<const std::byte>(reinterpret_cast<const std::byte*>(payload.data()),
                                       payload.size()));
}

bool read_exact(int fd, void* out, std::size_t size) {
  auto* dst = static_cast<std::byte*>(out);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, dst + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0) return false;  // clean EOF between frames
      throw ProtocolError("connection closed mid-frame (" + std::to_string(done) +
                          " of " + std::to_string(size) + " bytes read)");
    }
    if (errno == EINTR) continue;
    throw ProtocolError(std::string("read failed: ") + std::strerror(errno));
  }
  return true;
}

void write_all(int fd, const void* data, std::size_t size) {
  const auto* src = static_cast<const std::byte*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, src + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw ProtocolError(std::string("write failed: ") +
                        (n < 0 ? std::strerror(errno) : "short write"));
  }
}

namespace {

Frame finish_frame(std::uint32_t type_raw, std::vector<std::byte> payload,
                   std::uint32_t stored_crc, const util::Crc32& crc) {
  if (crc.value() != stored_crc)
    throw ProtocolError("frame CRC mismatch (stored " + std::to_string(stored_crc) +
                        ", computed " + std::to_string(crc.value()) + ")");
  Frame f;
  f.type = static_cast<FrameType>(type_raw);
  f.payload = std::move(payload);
  return f;
}

void check_header(std::uint64_t magic, std::uint64_t length, std::size_t max_payload) {
  if (magic != kFrameMagic)
    throw ProtocolError("bad frame magic (not a DLSV0001 stream)");
  if (length > max_payload)
    throw ProtocolError("frame payload of " + std::to_string(length) +
                        " bytes exceeds the " + std::to_string(max_payload) +
                        "-byte limit");
}

}  // namespace

std::optional<Frame> read_frame(int fd, std::size_t max_payload) {
  std::byte header[kFrameHeaderBytes];
  if (!read_exact(fd, header, sizeof header)) return std::nullopt;
  std::uint64_t magic;
  std::uint32_t type_raw;
  std::uint64_t length;
  std::memcpy(&magic, header, 8);
  std::memcpy(&type_raw, header + 8, 4);
  std::memcpy(&length, header + 12, 8);
  check_header(magic, length, max_payload);
  std::vector<std::byte> payload(static_cast<std::size_t>(length));
  if (length != 0) read_exact(fd, payload.data(), payload.size());
  std::uint32_t stored_crc;
  read_exact(fd, &stored_crc, sizeof stored_crc);
  util::Crc32 crc;
  crc.update(header, sizeof header);
  crc.update(payload.data(), payload.size());
  return finish_frame(type_raw, std::move(payload), stored_crc, crc);
}

Frame decode_frame(std::span<const std::byte> buffer, std::size_t& consumed,
                   std::size_t max_payload) {
  if (buffer.size() < kFrameHeaderBytes + kFrameTrailerBytes)
    throw ProtocolError("buffer shorter than a minimal frame");
  std::uint64_t magic;
  std::uint32_t type_raw;
  std::uint64_t length;
  std::memcpy(&magic, buffer.data(), 8);
  std::memcpy(&type_raw, buffer.data() + 8, 4);
  std::memcpy(&length, buffer.data() + 12, 8);
  check_header(magic, length, max_payload);
  const std::size_t total =
      kFrameHeaderBytes + static_cast<std::size_t>(length) + kFrameTrailerBytes;
  if (buffer.size() < total) throw ProtocolError("buffer truncated mid-frame");
  std::vector<std::byte> payload(buffer.begin() + kFrameHeaderBytes,
                                 buffer.begin() + kFrameHeaderBytes +
                                     static_cast<std::ptrdiff_t>(length));
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, buffer.data() + total - kFrameTrailerBytes, 4);
  util::Crc32 crc;
  crc.update(buffer.data(), total - kFrameTrailerBytes);
  consumed = total;
  return finish_frame(type_raw, std::move(payload), stored_crc, crc);
}

// ---- request payloads ---------------------------------------------------

std::vector<std::byte> encode_job_request(const JobRequest& req) {
  WireWriter w;
  w.put_u32(kPayloadVersion);
  w.put_i32(req.config.ranks);
  w.put_i32(req.config.threads);
  w.put_u8(req.config.variant);
  w.put_f64(req.config.alpha);
  w.put_f64(req.config.threshold);
  w.put_f64(req.config.resolution);
  w.put_u64(req.config.seed);
  w.put_i32(req.config.max_phases);
  w.put_i32(req.config.max_iterations);
  w.put_string(req.session_name);
  w.put_i64(req.num_vertices);
  w.put_u64(req.edges.size());
  for (const Edge& e : req.edges) {
    w.put_i64(e.src);
    w.put_i64(e.dst);
    w.put_f64(e.weight);
  }
  return w.take();
}

JobRequest decode_job_request(std::span<const std::byte> payload) {
  WireReader r(payload);
  const std::uint32_t version = r.get_u32();
  if (version != kPayloadVersion)
    throw ProtocolError("unsupported job-request payload version " +
                        std::to_string(version));
  JobRequest req;
  req.config.ranks = r.get_i32();
  req.config.threads = r.get_i32();
  req.config.variant = r.get_u8();
  req.config.alpha = r.get_f64();
  req.config.threshold = r.get_f64();
  req.config.resolution = r.get_f64();
  req.config.seed = r.get_u64();
  req.config.max_phases = r.get_i32();
  req.config.max_iterations = r.get_i32();
  req.session_name = r.get_string();
  req.num_vertices = r.get_i64();
  const std::uint64_t m = r.get_u64();
  // 24 bytes per edge remain in the payload; a hostile count is caught here
  // before the reserve, not by the per-edge reads (divide, don't multiply --
  // m * 24 could wrap).
  if (m > r.remaining() / 24)
    throw ProtocolError("edge count " + std::to_string(m) +
                        " inconsistent with payload size");
  req.edges.reserve(static_cast<std::size_t>(m));
  for (std::uint64_t i = 0; i < m; ++i) {
    Edge e;
    e.src = r.get_i64();
    e.dst = r.get_i64();
    e.weight = r.get_f64();
    req.edges.push_back(e);
  }
  r.expect_end();
  return req;
}

std::vector<std::byte> encode_update_request(const UpdateRequest& req) {
  WireWriter w;
  w.put_u32(kPayloadVersion);
  w.put_string(req.session_name);
  w.put_u64(req.changes.size());
  for (const graph::EdgeChange& c : req.changes) {
    w.put_i64(c.u);
    w.put_i64(c.v);
    w.put_f64(c.weight);
    w.put_u8(c.remove ? 1 : 0);
  }
  return w.take();
}

UpdateRequest decode_update_request(std::span<const std::byte> payload) {
  WireReader r(payload);
  const std::uint32_t version = r.get_u32();
  if (version != kPayloadVersion)
    throw ProtocolError("unsupported update-request payload version " +
                        std::to_string(version));
  UpdateRequest req;
  req.session_name = r.get_string();
  const std::uint64_t n = r.get_u64();
  if (n > r.remaining() / 25)
    throw ProtocolError("change count " + std::to_string(n) +
                        " inconsistent with payload size");
  req.changes.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    graph::EdgeChange c;
    c.u = r.get_i64();
    c.v = r.get_i64();
    c.weight = r.get_f64();
    c.remove = r.get_u8() != 0;
    req.changes.push_back(c);
  }
  r.expect_end();
  return req;
}

std::vector<Edge> canonical_edges(const graph::Csr& g) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_arcs()) / 2 + 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const HalfEdge& h : g.neighbors(v)) {
      if (h.dst < v) continue;  // keep one direction; self loops pass once
      edges.push_back(Edge{v, h.dst, h.weight});
    }
  }
  return edges;
}

}  // namespace dlouvain::service
