// Job scheduling for the long-lived clustering service (dlouvaind; see
// docs/SERVICE.md). Deliberately transport-free: the endpoint hands decoded
// requests in and writes the replies out; everything between -- admission,
// the bounded FIFO queue, the worker pool, the LRU result cache, in-flight
// de-duplication, named streaming sessions, and the drain contract -- lives
// here, so tests drive it without a socket.
//
// Cache key: (graph fingerprint, config fingerprint, ranks). The config
// fingerprint is core::config_fingerprint, which hashes every DistConfig
// field that influences the trajectory of a run -- and deliberately
// EXCLUDES the rank count (that exclusion is what makes shrink-resume
// work), so the key adds `ranks` explicitly: the distributed engine's
// results depend on it. `threads` stays excluded on purpose -- the
// determinism contract makes results thread-count-invariant, so jobs
// differing only in thread count share a cache line.
//
// In-flight de-duplication: the first submitter of a key becomes the
// leader and computes; identical submissions that arrive while the leader
// is queued or running become waiters on the same slot and are counted as
// cache hits -- N parallel identical jobs cost exactly 1 computation and
// produce N byte-identical manifests (modulo each response's own "service"
// section; test_service pins this).
//
// Drain contract: drain() stops admission (new submissions get an
// immediate kError "draining" reply -- still a reply; no request is ever
// left without a response), lets the workers finish every queued and
// running job, fulfils every waiter, closes resident sessions, and
// freezes the counters for final_manifest(). Idempotent.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/metrics.hpp"
#include "dlouvain.hpp"
#include "service/protocol.hpp"

namespace dlouvain::service {

/// Admission limits and sizing. Defaults suit the test harness; the CLI
/// exposes each as a flag.
struct SchedulerOptions {
  int workers{2};            ///< concurrent job executions
  std::size_t max_queue{64};     ///< queued-but-not-running bound (admission)
  std::size_t cache_capacity{32};  ///< LRU result-cache entries
  int max_ranks{64};         ///< per-job Plan limit (admission)
  std::int64_t max_edges{50'000'000};  ///< per-job graph size limit (admission)
};

/// One reply, ready for the endpoint to frame: a manifest (kManifest), a
/// service manifest (kStatsReply) or a one-line error (kError).
struct Reply {
  FrameType type{FrameType::kError};
  std::string body;
};

class JobScheduler {
 public:
  explicit JobScheduler(SchedulerOptions opts = {});
  ~JobScheduler();
  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admit one clustering job. Always returns a future that WILL be
  /// fulfilled: with kManifest on success (run manifest + "service"
  /// section), with kError on refusal (queue full, limits, invalid plan,
  /// draining) or compute failure. Identical jobs de-duplicate (see file
  /// comment).
  std::future<Reply> submit(JobRequest req);

  /// Converge `req` and keep the Session resident under req.session_name
  /// (which must be non-empty and not in use). The reply manifest reflects
  /// the initial convergence. Session jobs are never cached.
  std::future<Reply> open_session(JobRequest req);

  /// Apply an EdgeBatch to a named resident session and reply with the
  /// post-update manifest. Updates to the same session serialize in
  /// admission order.
  std::future<Reply> update_session(UpdateRequest req);

  /// Drop a named resident session; replies kStatsReply with the current
  /// service manifest as an acknowledgement.
  std::future<Reply> close_session(const std::string& name);

  /// Current service counters (job_id = -1: daemon-wide view).
  core::ServiceTelemetry stats();

  /// Stop admission, finish every queued and running job, fulfil every
  /// waiter, drop resident sessions. Idempotent; blocks until quiescent.
  void drain();

  /// The daemon's final "dlouvain-service-manifest/1" document (call after
  /// drain(); before it, a live snapshot).
  std::string final_manifest();

 private:
  struct Job;
  struct ResidentSession;

  void worker_loop();
  void execute(const std::shared_ptr<Job>& job);
  Reply run_compute(Job& job);
  std::future<Reply> admit(std::shared_ptr<Job> job);
  std::future<Reply> reject_now(const std::string& message);
  core::ServiceTelemetry snapshot_locked(std::int64_t job_id, bool cache_hit);
  void cache_put_locked(std::uint64_t key, std::string manifest);
  std::string* cache_get_locked(std::uint64_t key);
  static std::string splice_service(std::string manifest, const core::ServiceTelemetry& t);

  SchedulerOptions opts_;

  std::mutex mu_;
  std::condition_variable cv_work_;   ///< workers wait: queue non-empty or stopping
  std::condition_variable cv_drain_;  ///< drain() waits: queue empty and idle workers
  std::deque<std::shared_ptr<Job>> queue_;
  int running_{0};        ///< jobs currently executing on workers
  bool draining_{false};  ///< admission closed
  bool stopping_{false};  ///< workers told to exit once the queue is empty
  bool drained_{false};   ///< drain() completed (freezes final_manifest)

  /// LRU result cache: key -> raw run manifest (no "service" section).
  std::list<std::pair<std::uint64_t, std::string>> lru_;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, std::string>>::iterator>
      cache_;
  /// In-flight de-duplication: cacheable keys admitted but not yet cached.
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> inflight_;

  /// Named resident sessions. The per-session mutex serializes updates when
  /// two workers pick up jobs against the same session.
  std::unordered_map<std::string, std::shared_ptr<ResidentSession>> sessions_;

  std::int64_t next_job_id_{0};
  std::int64_t jobs_served_{0};
  std::int64_t cache_hits_{0};
  std::int64_t cache_misses_{0};
  std::int64_t rejected_{0};
  std::string drain_state_{"none"};

  std::vector<std::thread> workers_;
};

}  // namespace dlouvain::service
