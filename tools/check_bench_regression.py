#!/usr/bin/env python3
"""Guard the committed perf trail (BENCH_PR3.json and successors).

Runs the micro_kernels PR3 emitter (when --bench is given) on a small input,
then compares the fresh numbers against the committed baseline:

  * every kernel present in both files must not be more than --tolerance
    slower per arc than the baseline (faster is always fine);
  * the machine-independent speedup floor: the flat local-move kernel must
    stay at least --min-speedup x faster than the hash baseline measured in
    the SAME run (this is the PR3 acceptance bar and does not depend on what
    hardware recorded the baseline).

With --manifest, additionally validates a run manifest produced by
`dlouvain_cli --metrics-out` (or Plan::metrics): schema id, counter catalog
and internal consistency (whole-job totals == restored + executed).

When the current results carry an `overlap_ablation` section (the PR5 trail,
`micro_kernels --pr5_json=...`), it is validated too: the on/off runs must
have produced identical results, overlap-off must hide ~nothing, and the
hidden fraction (comm_hidden / total exchange latency of the overlap-on run)
must reach --min-hidden. Use --emit pr5 with --bench to produce the PR5
trail instead of the PR3 one (adds --ranks / --delay-ms knobs).

When the current results carry an `update` section (the PR6 trail, produced
by `micro_update --pr6_json=...` or `--emit pr6 --bench build/bench/
micro_update`), the streaming-session acceptance bar is checked instead of
the kernel table: Session::update must be at least --min-update-speedup x
faster than the from-scratch run on the same final graph, and the session's
modularity must sit within --mod-tolerance of the from-scratch result.

When the current results carry an `arq` section (the PR7 trail, produced by
`micro_comm --pr7_json=...` or `--emit pr7 --bench build/bench/micro_comm`),
the rung-1 link-layer contracts are checked: the ARQ-off baseline, ARQ-on
clean, 0.1%-loss and 0.1%-corruption runs must all have produced identical
bits, every injected fault must have been repaired by a retransmission, and
no message may have exhausted the retry budget at the sub-threshold rate.
Timing overheads are recorded in the trail but not asserted (wall clocks on
shared hosts are noise).

When the current results carry an `overlap_auto` section (the PR8 trail,
`micro_kernels --pr8_json=...` or `--emit pr8`), the sweep-lane and
cost-model acceptance bars are checked: the best segmented/SIMD lane must be
at least --min-lane-speedup x faster than the flat gather baseline measured
in the SAME run (interleaved reps, so the ratio is noise-robust), all six
overlap-mode runs must have produced identical results, and `--overlap=auto`
wall-clock must sit within --auto-tolerance of min(on, off) at both the
zero-latency and the delayed point, with the cost-model decision recorded.

When the current results carry a `rebalance` section (the PR10 trail,
`micro_rebalance --pr10_json=...` or `--emit pr10 --bench build/bench/
micro_rebalance`), the phase-boundary load re-balancer contracts are
checked: the decline path (enabled, unreachable threshold) must be bitwise
identical to rebalance-off, every run deterministic across reps, and each
boundary whose even-split lambda reached --lambda-pre-min must have engaged
and brought lambda down to max(--lambda-bar, the structural floor -- the
heaviest single coarse vertex over the mean rank load, which no partitioner
can beat). The decline-path wall must sit within --wall-tolerance of the
rebalance-off wall.

Exit code 0 = within bounds, 1 = regression or malformed input,
2 = missing input file (e.g. the baseline was never committed).

Usage:
  check_bench_regression.py --baseline BENCH_PR3.json \
      --bench build/bench/micro_kernels --scale 12 --dist-scale 10 --reps 3
  check_bench_regression.py --baseline BENCH_PR3.json --current fresh.json
  check_bench_regression.py --baseline BENCH_PR3.json --current fresh.json \
      --manifest run_manifest.json
  check_bench_regression.py --baseline BENCH_PR5.json --emit pr5 \
      --bench build/bench/micro_kernels --scale 12 --dist-scale 10 \
      --ranks 4 --reps 2 --min-hidden 0
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load(path, what):
    """Read a JSON file; exit 2 (not a traceback) when it is absent."""
    if not os.path.exists(path):
        print(f"MISSING: {what} file '{path}' does not exist.\n"
              f"  Generate it first (see --help), or point --{what} at the "
              f"committed copy.")
        sys.exit(2)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# Counters every "dlouvain-run-manifest/1" document must carry (the catalog
# in docs/OBSERVABILITY.md; keep the two in sync).
MANIFEST_COUNTERS = (
    "comm.messages", "comm.bytes", "comm.duplicates_dropped",
    "ghost.bytes_dense", "ghost.bytes_delta", "ghost.records_shipped",
    "ledger.refresh_records", "ledger.delta_records",
    "checkpoint.messages", "checkpoint.bytes", "checkpoint.file_bytes",
    "pool.busy_seconds",
)

# v3 adds the recovery-ladder catalog entries (rung-1 ARQ and the rung-2
# heartbeat lane); v1/v2 documents remain valid inputs without them.
MANIFEST_COUNTERS_V3 = (
    "arq.nacks", "arq.retransmits", "arq.backoff_ms", "arq.escalations",
    "heartbeat.slow_extensions",
)

# v4 adds the overlap cost-model probe reclassification counters (probe
# allreduce traffic is model overhead, not algorithm traffic); v1-v3
# documents remain valid inputs without them.
MANIFEST_COUNTERS_V4 = (
    "overlap.probe_messages", "overlap.probe_bytes",
)

# v5 adds the load re-balancer sampling reclassification counters (the
# step-1/step-2 allreduces are model overhead, not algorithm traffic); v1-v4
# documents remain valid inputs without them.
MANIFEST_COUNTERS_V5 = (
    "rebalance.messages", "rebalance.bytes",
)


# Keys the optional per-response "service" section carries when a manifest
# was replied by dlouvaind rather than written by the CLI (see
# docs/SERVICE.md; catalog in docs/OBSERVABILITY.md).
SERVICE_KEYS = (
    "job_id", "cache_hit", "queue_depth", "jobs_served", "cache_hits",
    "cache_misses", "rejected", "sessions_open", "drain",
)


def check_manifest(manifest, failures):
    """Validate a --metrics-out run manifest; append problems to failures."""
    schema = manifest.get("schema", "")
    if not schema.startswith("dlouvain-run-manifest/"):
        failures.append(f"manifest schema '{schema}' is not a run manifest")
        return
    # Optional service section: present only on manifests replied by the
    # dlouvaind daemon; when present it must carry the whole catalog.
    if "service" in manifest:
        service = manifest["service"]
        if not isinstance(service, dict):
            failures.append("manifest service section is not an object")
        else:
            for key in SERVICE_KEYS:
                if key not in service:
                    failures.append(f"manifest service section missing '{key}'")
            if service.get("drain") not in ("none", "draining", "clean"):
                failures.append(
                    f"manifest service drain state "
                    f"'{service.get('drain')}' is not none/draining/clean")
    engine = manifest.get("engine")
    recovery = manifest.get("recovery")
    if not isinstance(recovery, dict):
        failures.append("manifest carries no recovery object")
    # v2 adds the always-present streaming "updates" section; v1 documents
    # (no updates object) remain valid inputs.
    version = schema.rsplit("/", 1)[-1]
    if version.isdigit() and int(version) >= 2:
        if not isinstance(manifest.get("updates"), dict):
            failures.append("v2 manifest carries no updates object")
    if engine != "distributed":
        return  # serial/shared manifests carry no counters by design
    # v4 adds the always-present "overlap" object recording the kOff/kOn
    # constant or the kAuto cost-model decision + inputs.
    if version.isdigit() and int(version) >= 4 and engine == "distributed":
        overlap = manifest.get("overlap")
        if not isinstance(overlap, dict):
            failures.append("v4 distributed manifest carries no overlap object")
        else:
            for key in ("mode", "decision", "decided", "predicted_hidden_s",
                        "measured_latency_s", "phases_engaged",
                        "phases_declined"):
                if key not in overlap:
                    failures.append(f"manifest overlap object missing '{key}'")
            if overlap.get("decision") not in ("on", "off", "undecided"):
                failures.append(
                    f"manifest overlap decision "
                    f"'{overlap.get('decision')}' is not on/off/undecided")
    # v5 adds the always-present "rebalance" object (knob, per-boundary
    # verdict counts, worst lambdas) and per-phase load/time lambdas.
    if version.isdigit() and int(version) >= 5 and engine == "distributed":
        rebalance = manifest.get("rebalance")
        if not isinstance(rebalance, dict):
            failures.append("v5 distributed manifest carries no rebalance object")
        else:
            for key in ("enabled", "threshold", "decided", "phases_evaluated",
                        "phases_engaged", "phases_declined", "ranges_moved",
                        "vertices_migrated", "arcs_migrated",
                        "max_lambda_pre", "max_lambda_post"):
                if key not in rebalance:
                    failures.append(f"manifest rebalance object missing '{key}'")
        for ph in manifest.get("phases_detail", []):
            if "load_lambda" not in ph or "time_lambda" not in ph:
                failures.append("v5 phases_detail entry missing load/time lambda")
                break
    counters = manifest.get("counters", {})
    required = MANIFEST_COUNTERS
    if version.isdigit() and int(version) >= 3:
        required = required + MANIFEST_COUNTERS_V3
    if version.isdigit() and int(version) >= 4:
        required = required + MANIFEST_COUNTERS_V4
    if version.isdigit() and int(version) >= 5:
        required = required + MANIFEST_COUNTERS_V5
    for name in required:
        if name not in counters:
            failures.append(f"manifest counters missing '{name}'")
    restored = manifest.get("restored", {})
    executed = counters.get("comm.messages", 0)
    total = manifest.get("messages", 0)
    if restored.get("messages", 0) + executed != total:
        failures.append(
            f"manifest messages {total} != restored {restored.get('messages', 0)} "
            f"+ executed {executed} (counter-semantics contract broken)")
    print(f"manifest: {engine} run, {total} messages "
          f"({executed} executed, {restored.get('messages', 0)} restored): ok")


def check_overlap_ablation(ablation, min_hidden, failures):
    """Validate the PR5 overlap on/off ablation; append problems to failures.

    Three contracts: (1) overlap is a schedule change only, so the on and off
    runs must have produced bitwise-identical results; (2) with overlap off
    nothing is overlapped, so comm_hidden must be ~0; (3) with overlap on, the
    interior-first schedule must hide at least min_hidden of the total
    exchange latency (blocked wall + hidden) behind compute.
    """
    for key in ("identical", "off", "on", "hidden_fraction", "comm_hidden"):
        if key not in ablation:
            failures.append(f"overlap_ablation missing '{key}'")
            return
    if ablation["identical"] is not True:
        failures.append("overlap on/off runs did not produce identical results")
    off = ablation["off"]
    off_hidden = off.get("comm_hidden", 0.0)
    off_exchange = off.get("ghost_exchange", 0.0) + off.get("delta_exchange", 0.0)
    # Off-mode tolerance: the blocking wait can still observe a message that
    # arrived a hair before it began; anything beyond 1% of the exchange wall
    # means the off path is overlapping, which it must not.
    if off_hidden > 0.01 * max(off_exchange, 1e-9):
        failures.append(
            f"overlap-off run hid {off_hidden:.4f}s of {off_exchange:.4f}s "
            f"exchange latency (> 1%); off mode must not overlap")
    fraction = ablation["hidden_fraction"]
    print(f"overlap ablation: ranks={ablation.get('ranks')} "
          f"scale={ablation.get('scale')} delay={ablation.get('delay_ms')}ms  "
          f"hidden {ablation['comm_hidden']:.3f}s of "
          f"{ablation['comm_hidden'] + ablation.get('exchange_wall', 0.0):.3f}s "
          f"exchange latency ({fraction:.1%}, floor {min_hidden:.0%})")
    if fraction < min_hidden:
        failures.append(
            f"overlap hid only {fraction:.1%} of exchange latency "
            f"(floor {min_hidden:.0%})")


def check_arq_section(arq, failures):
    """Validate the PR7 rung-1 ARQ-overhead trail; append problems to failures.

    The contracts are structural, not timing-based (wall clocks on a loaded
    or single-core host are noise): (1) retransmission is a repair mechanism
    only, so all four runs -- ARQ off, ARQ on clean, lossy, corrupting --
    must have produced identical bits; (2) every injected drop costs at
    least one retransmission (repair, never a silent skip); (3) faults at
    the sub-threshold rate must never exhaust the retry budget.
    """
    for key in ("identical", "baseline_seconds", "clean_seconds",
                "loss_seconds", "corrupt_seconds", "injected_losses",
                "injected_corruptions", "retransmits_loss",
                "retransmits_corrupt", "escalations"):
        if key not in arq:
            failures.append(f"arq section missing '{key}'")
            return
    print(f"arq trail: ranks={arq.get('ranks')} "
          f"{arq.get('messages_per_rank')} msgs/rank  "
          f"baseline {arq['baseline_seconds']:.3f}s, clean "
          f"{arq['clean_seconds']:.3f}s, loss {arq['loss_seconds']:.3f}s "
          f"({arq['injected_losses']} drops / {arq['retransmits_loss']} "
          f"retransmits), corrupt {arq['corrupt_seconds']:.3f}s "
          f"({arq['injected_corruptions']} hits / {arq['retransmits_corrupt']} "
          f"retransmits)")
    if arq["identical"] is not True:
        failures.append("ARQ runs did not produce results identical to the "
                        "clean baseline")
    if arq["escalations"] != 0:
        failures.append(
            f"{arq['escalations']} message(s) exhausted the retransmit budget "
            f"at the sub-threshold fault rate")
    if arq["injected_losses"] > 0 and \
            arq["retransmits_loss"] < arq["injected_losses"]:
        failures.append(
            f"only {arq['retransmits_loss']} retransmit(s) for "
            f"{arq['injected_losses']} injected drop(s); every loss must be "
            f"repaired by the link layer")
    if arq["injected_corruptions"] > 0 and arq["retransmits_corrupt"] < 1:
        failures.append(
            f"{arq['injected_corruptions']} injected corruption(s) but no "
            f"retransmissions; the checksum lane is not catching them")
    if arq["injected_losses"] == 0 and arq["injected_corruptions"] == 0:
        failures.append("fault scenarios injected nothing; the trail proves "
                        "no repair happened (raise the stream volume)")


def check_overlap_auto(auto, tolerance, failures):
    """Validate the PR8 overlap cost-model trail; append problems to failures.

    Three contracts: (1) the overlap knob is a schedule change only, so all
    six runs (off/on/auto x zero-latency/delayed) must have produced
    identical results; (2) at each latency point, `--overlap=auto` must land
    within `tolerance` of min(on, off) wall-clock -- the cost model may not
    pick a mode that costs more than that over the best forced choice; (3)
    the model must actually have decided (decision on/off recorded, probes
    executed), not fallen through undecided.
    """
    if auto.get("identical") is not True:
        failures.append("overlap off/on/auto runs did not produce identical "
                        "results")
    for point in ("zero_latency", "delayed"):
        section = auto.get(point)
        if not isinstance(section, dict):
            failures.append(f"overlap_auto missing '{point}' section")
            continue
        missing = [k for k in ("off_seconds", "on_seconds", "auto_seconds",
                               "auto_decision", "auto_decided")
                   if k not in section]
        if missing:
            failures.append(f"overlap_auto.{point} missing {missing}")
            continue
        best = min(section["off_seconds"], section["on_seconds"])
        excess = section["auto_seconds"] / best - 1.0
        print(f"overlap auto [{point}]: off {section['off_seconds']:.4f}s, "
              f"on {section['on_seconds']:.4f}s, auto "
              f"{section['auto_seconds']:.4f}s ({excess:+.1%} vs best, "
              f"tol {tolerance:.0%}, decision '{section['auto_decision']}')")
        if excess > tolerance:
            failures.append(
                f"overlap_auto.{point}: auto {section['auto_seconds']:.4f}s "
                f"is {excess:.1%} over min(on, off) {best:.4f}s "
                f"(tolerance {tolerance:.0%})")
        if section["auto_decision"] not in ("on", "off"):
            failures.append(
                f"overlap_auto.{point}: cost model recorded decision "
                f"'{section['auto_decision']}', expected on/off")
        if section["auto_decided"] is not True:
            failures.append(
                f"overlap_auto.{point}: cost model never reached a decision")


def check_update_section(update, min_speedup, mod_tolerance, failures):
    """Validate the PR6 streaming-update trail; append problems to failures."""
    for key in ("speedup", "modularity_delta", "update_seconds_mean",
                "scratch_seconds", "touched_fraction"):
        if key not in update:
            failures.append(f"update section missing '{key}'")
            return
    print(f"update trail: ranks={update.get('ranks')} "
          f"batches={update.get('batches')}x{update.get('batch_edges')} edges  "
          f"update {update['update_seconds_mean']:.3f}s vs scratch "
          f"{update['scratch_seconds']:.3f}s = {update['speedup']:.2f}x "
          f"(floor {min_speedup:.2f}x), |dQ| {update['modularity_delta']:.2e} "
          f"(tol {mod_tolerance:.0e}), touched "
          f"{update['touched_fraction']:.2%}/batch, "
          f"{update.get('fallbacks', 0)} fallback(s)")
    if update["speedup"] < min_speedup:
        failures.append(
            f"Session::update only {update['speedup']:.2f}x faster than "
            f"from-scratch (floor {min_speedup:.2f}x)")
    if update["modularity_delta"] > mod_tolerance:
        failures.append(
            f"session modularity drifted {update['modularity_delta']:.2e} from "
            f"the from-scratch run (tolerance {mod_tolerance:.0e})")


def check_rebalance_section(reb, wall_tolerance, lambda_bar, lambda_pre_min,
                            mod_tolerance, failures):
    """Validate the PR10 load re-balancer trail; append problems to failures.

    Contracts: (1) the decline path (enabled but unreachable threshold) must
    be bitwise identical to rebalance-off, and every run deterministic across
    reps; (2) at every boundary where the even-split lambda_pre reached
    lambda_pre_min, the re-balancer must have engaged and brought lambda_post
    down to max(lambda_bar, lambda_floor) -- lambda_floor is the structural
    limit max(vertex arcs)/mean(rank arcs) that NO partitioner can beat, and
    the exact min-max cut hitting it IS the optimum (late tiny coarse graphs
    routinely have floors above any fixed bar); (3) the decline path's wall
    must sit within wall_tolerance of rebalance-off (the screen is O(p));
    (4) on-vs-off modularity within mod_tolerance (quality equivalence; the
    assignments legitimately differ because sweep order is partition-seeded).
    """
    for key in ("decline_identical", "deterministic", "wall_off", "wall_on",
                "wall_decline", "phases_on", "modularity_delta"):
        if key not in reb:
            failures.append(f"rebalance section missing '{key}'")
            return
    print(f"rebalance trail: ranks={reb.get('ranks')} "
          f"threshold={reb.get('threshold')}  wall off {reb['wall_off']:.3f}s, "
          f"on {reb['wall_on']:.3f}s, decline {reb['wall_decline']:.3f}s; "
          f"{reb.get('phases_engaged')}/{reb.get('phases_evaluated')} "
          f"boundaries engaged, {reb.get('vertices_migrated')} vertices moved, "
          f"|dQ| {reb['modularity_delta']:.2e}")
    if reb["decline_identical"] is not True:
        failures.append("decline-path run is not bitwise identical to "
                        "rebalance-off")
    if reb["deterministic"] is not True:
        failures.append("a run produced different bits across reps")
    for ph in reb["phases_on"]:
        if not ph.get("evaluated") or ph.get("lambda_pre", 0) < lambda_pre_min:
            continue
        bar = max(lambda_bar, ph.get("lambda_floor", 1.0) + 1e-9)
        post = ph.get("lambda_post", float("inf"))
        print(f"  boundary after phase {ph.get('phase')}: lambda "
              f"{ph.get('lambda_pre'):.3f} -> {post:.3f} "
              f"(floor {ph.get('lambda_floor', 1.0):.3f}, bar {bar:.3f}, "
              f"{'engaged' if ph.get('engaged') else 'declined'})")
        if not ph.get("engaged"):
            failures.append(
                f"boundary after phase {ph.get('phase')}: lambda_pre "
                f"{ph.get('lambda_pre'):.3f} >= {lambda_pre_min} but the "
                f"re-balancer declined")
        if post > bar:
            failures.append(
                f"boundary after phase {ph.get('phase')}: lambda_post "
                f"{post:.3f} > max(bar {lambda_bar}, floor "
                f"{ph.get('lambda_floor', 1.0):.3f})")
    excess = reb["wall_decline"] / max(reb["wall_off"], 1e-12) - 1.0
    if excess > wall_tolerance:
        failures.append(
            f"decline-path wall {reb['wall_decline']:.3f}s is "
            f"{excess:.1%} over rebalance-off {reb['wall_off']:.3f}s "
            f"(tolerance {wall_tolerance:.0%})")
    if reb["modularity_delta"] > mod_tolerance:
        failures.append(
            f"rebalance-on modularity drifted {reb['modularity_delta']:.2e} "
            f"from off (tolerance {mod_tolerance:.0e})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--current", help="fresh results JSON (skip running the bench)")
    parser.add_argument("--bench", help="micro_kernels binary to produce fresh results")
    parser.add_argument("--scale", type=int, default=12, help="RMAT scale for --bench")
    parser.add_argument("--dist-scale", type=int, default=10,
                        help="RMAT scale for the breakdown run")
    parser.add_argument("--reps", type=int, default=3, help="best-of repetitions")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed per-kernel slowdown vs baseline (0.25 = 25%%)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required hash/flat local-move ratio in the fresh run")
    parser.add_argument("--manifest",
                        help="also validate this --metrics-out run manifest")
    parser.add_argument("--emit",
                        choices=("pr3", "pr5", "pr6", "pr7", "pr8", "pr10"),
                        default="pr3",
                        help="which trail --bench should produce (default pr3)")
    parser.add_argument("--ranks", type=int, default=8,
                        help="ranks for the pr5 overlap ablation / pr6 session")
    parser.add_argument("--delay-ms", type=float, default=1.0,
                        help="simulated per-message wire latency for pr5")
    parser.add_argument("--min-hidden", type=float, default=0.30,
                        help="required hidden fraction of exchange latency "
                             "when an overlap_ablation section is present")
    parser.add_argument("--min-update-speedup", type=float, default=3.0,
                        help="required Session::update vs from-scratch speedup "
                             "when an update section is present")
    parser.add_argument("--mod-tolerance", type=float, default=1e-3,
                        help="allowed |session - scratch| modularity gap for "
                             "the update section")
    parser.add_argument("--auto-tolerance", type=float, default=0.05,
                        help="allowed --overlap=auto wall-clock excess over "
                             "min(on, off) when an overlap_auto section is "
                             "present (0.05 = 5%%)")
    parser.add_argument("--min-lane-speedup", type=float, default=1.05,
                        help="required flat/best-lane local-move ratio when "
                             "an overlap_auto (pr8) section is present")
    parser.add_argument("--wall-tolerance", type=float, default=0.10,
                        help="allowed decline-path wall excess over "
                             "rebalance-off when a rebalance (pr10) section "
                             "is present (0.10 = 10%%)")
    parser.add_argument("--lambda-bar", type=float, default=1.15,
                        help="required post-rebalance arc lambda (or the "
                             "structural floor, whichever is higher) at "
                             "engaged boundaries of the pr10 trail")
    parser.add_argument("--lambda-pre-min", type=float, default=1.5,
                        help="even-split lambda above which a pr10 boundary "
                             "must engage and meet --lambda-bar")
    args = parser.parse_args()

    if bool(args.current) == bool(args.bench):
        parser.error("pass exactly one of --current or --bench")

    if args.bench:
        fd, current_path = tempfile.mkstemp(suffix=".json",
                                            prefix=f"bench_{args.emit}_")
        os.close(fd)
        cmd = [
            args.bench,
            f"--{args.emit}_json={current_path}",
            f"--{args.emit}_scale={args.scale}",
            f"--{args.emit}_dist_scale={args.dist_scale}",
            f"--{args.emit}_reps={args.reps}",
        ]
        if args.emit == "pr5":
            cmd += [f"--pr5_ranks={args.ranks}",
                    f"--pr5_delay_ms={args.delay_ms}"]
        elif args.emit == "pr6":
            cmd += [f"--pr6_ranks={args.ranks}"]
        elif args.emit == "pr7":
            cmd += [f"--pr7_ranks={args.ranks}"]
        elif args.emit == "pr8":
            cmd += [f"--pr8_ranks={args.ranks}",
                    f"--pr8_delay_ms={args.delay_ms}"]
        elif args.emit == "pr10":
            cmd += [f"--pr10_ranks={args.ranks}"]
        print("+", " ".join(cmd), flush=True)
        result = subprocess.run(cmd)
        if result.returncode != 0:
            print(f"FAIL: bench exited with {result.returncode}")
            return 1
    else:
        current_path = args.current

    baseline = load(args.baseline, "baseline")
    current = load(current_path, "current")

    failures = []
    if args.manifest:
        check_manifest(load(args.manifest, "manifest"), failures)
    if "overlap_ablation" in current:
        check_overlap_ablation(current["overlap_ablation"], args.min_hidden,
                               failures)
    if "update" in current:
        check_update_section(current["update"], args.min_update_speedup,
                             args.mod_tolerance, failures)
    if "arq" in current:
        check_arq_section(current["arq"], failures)
    if "rebalance" in current:
        check_rebalance_section(current["rebalance"], args.wall_tolerance,
                                args.lambda_bar, args.lambda_pre_min,
                                args.mod_tolerance, failures)
    if "overlap_auto" in current:
        check_overlap_auto(current["overlap_auto"], args.auto_tolerance,
                           failures)
        lane_ratio = current.get("ratios", {}).get("flat_over_best_lane")
        if lane_ratio is None:
            failures.append("pr8 results carry no flat_over_best_lane ratio")
        else:
            print(f"sweep-lane speedup (flat/best-lane, same machine, "
                  f"interleaved reps): {lane_ratio:.2f}x "
                  f"(floor {args.min_lane_speedup:.2f}x)")
            if lane_ratio < args.min_lane_speedup:
                failures.append(
                    f"best sweep lane only {lane_ratio:.2f}x faster than the "
                    f"flat gather baseline "
                    f"(floor {args.min_lane_speedup:.2f}x)")
    base_kernels = baseline.get("kernels", {})
    curr_kernels = current.get("kernels", {})
    same_input = baseline.get("graph") == current.get("graph")
    for name in sorted(set(base_kernels) & set(curr_kernels)):
        base_ns = base_kernels[name]["ns_per_arc"]
        curr_ns = curr_kernels[name]["ns_per_arc"]
        slowdown = curr_ns / base_ns - 1.0
        status = "ok"
        # A smaller smoke input can legitimately be faster per arc (cache
        # residency); only a SLOWDOWN beyond tolerance fails.
        if slowdown > args.tolerance:
            status = "REGRESSION"
            failures.append(
                f"{name}: {curr_ns:.2f} ns/arc vs baseline {base_ns:.2f} "
                f"(+{100 * slowdown:.1f}% > {100 * args.tolerance:.0f}%)")
        note = "" if same_input else " [different input size]"
        print(f"{name}: {curr_ns:8.2f} ns/arc  baseline {base_ns:8.2f}  "
              f"({slowdown:+.1%}) {status}{note}")

    ratio = current.get("ratios", {}).get("local_move_hash_over_flat")
    if ratio is None:
        # The kernel-ratio floor applies to kernel trails (pr3/pr5); a pr6
        # update trail carries no kernel table by design.
        if "kernels" in current or "kernels" in baseline:
            failures.append("current results carry no local_move_hash_over_flat ratio")
    else:
        print(f"local-move speedup (hash/flat, same machine): {ratio:.2f}x "
              f"(floor {args.min_speedup:.2f}x)")
        if ratio < args.min_speedup:
            failures.append(
                f"flat local-move kernel only {ratio:.2f}x faster than the hash "
                f"baseline (floor {args.min_speedup:.2f}x)")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
