// dlouvaind -- the long-lived clustering service (docs/SERVICE.md), both
// sides of the socket in one binary:
//
//   daemon:  dlouvaind --serve --socket /tmp/dl.sock [--workers 2]
//                      [--max-queue 64] [--cache-capacity 32]
//                      [--ready-file ready.txt] [--final-manifest drain.json]
//   client:  dlouvaind --submit --socket /tmp/dl.sock --gen karate
//                      [--ranks 4] [--variant etc] [--alpha 0.25] ...
//            dlouvaind --open NAME  ... same graph/config flags ...
//            dlouvaind --update NAME --changes add:0:5:1.0,del:2:3
//            dlouvaind --close NAME
//            dlouvaind --stats
//
// The daemon listens on a Unix socket (--socket) or loopback TCP (--port; 0
// picks a free port), serves DLSV frames, and on SIGTERM/SIGINT drains
// gracefully: every admitted job still gets its reply, then the final
// service manifest ("dlouvain-service-manifest/1") goes to stdout (and
// --final-manifest's path). --ready-file is written AFTER the socket
// listens -- "<socket-or-port>\n" -- so harnesses can wait for it instead
// of polling connect.
//
// Client modes ship the graph inline (generated locally from --gen) and
// print the reply manifest JSON to stdout; a kError reply prints one line
// to stderr and exits 1. Exit codes: 0 success, 1 refused/failed, 2 usage.
#include <signal.h>

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "gen/simple.hpp"
#include "graph/csr.hpp"
#include "service/endpoint.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"
#include "util/cli.hpp"

namespace {

using namespace dlouvain;

int fail(const std::string& message) {
  std::cerr << "dlouvaind: " << message << '\n';
  return 1;
}

std::uint8_t parse_variant(const std::string& name, bool& ok) {
  ok = true;
  if (name == "baseline") return 0;
  if (name == "cycling") return 1;
  if (name == "et") return 2;
  if (name == "etc") return 3;
  ok = false;
  return 0;
}

/// `add:u:v[:w]` / `del:u:v`, comma-separated.
std::vector<graph::EdgeChange> parse_changes(const std::string& spec, bool& ok) {
  std::vector<graph::EdgeChange> changes;
  ok = true;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t end = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
    pos = end == std::string::npos ? spec.size() : end + 1;
    graph::EdgeChange c;
    char op[4] = {0};
    double w = 1.0;
    long long u = 0, v = 0;
    const int n = std::sscanf(item.c_str(), "%3[a-z]:%lld:%lld:%lf", op, &u, &v, &w);
    if (n < 3) {
      ok = false;
      return changes;
    }
    c.u = u;
    c.v = v;
    if (std::string(op) == "add") {
      c.weight = w;
      c.remove = false;
    } else if (std::string(op) == "del") {
      c.remove = true;
    } else {
      ok = false;
      return changes;
    }
    changes.push_back(c);
  }
  return changes;
}

/// Waits for SIGTERM/SIGINT with sigwait (signals are blocked first so no
/// handler races the accept/worker threads), then drains.
int run_daemon(service::SchedulerOptions sched_opts, service::EndpointOptions ep_opts,
               const std::string& ready_file, const std::string& final_manifest_path) {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  // Block BEFORE spawning any thread so every thread inherits the mask and
  // the signal is only ever consumed by sigwait below.
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  service::JobScheduler scheduler(sched_opts);
  service::ServiceEndpoint endpoint(ep_opts, scheduler);
  endpoint.start();

  if (!ready_file.empty()) {
    std::ofstream out(ready_file);
    if (!ep_opts.unix_path.empty())
      out << ep_opts.unix_path << '\n';
    else
      out << endpoint.port() << '\n';
  }

  int sig = 0;
  sigwait(&set, &sig);

  endpoint.stop();  // close listener, drain scheduler, join connections
  const std::string manifest = scheduler.final_manifest();
  if (!final_manifest_path.empty()) {
    std::ofstream out(final_manifest_path);
    out << manifest << '\n';
  }
  std::cout << manifest << '\n';
  return 0;
}

service::ServiceClient connect(const std::string& socket_path, int port) {
  if (!socket_path.empty()) return service::ServiceClient::connect_unix(socket_path);
  return service::ServiceClient::connect_tcp(port);
}

/// Print the reply: manifests to stdout, errors to stderr + exit 1.
int finish_reply(const service::Frame& reply) {
  const std::string body(reinterpret_cast<const char*>(reply.payload.data()),
                         reply.payload.size());
  if (reply.type == service::FrameType::kError) return fail("refused: " + body);
  std::cout << body << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);

  const bool serve = cli.get_flag("serve", false, "run the daemon");
  const bool submit = cli.get_flag("submit", false, "submit one job, print the manifest");
  const std::string open_name = cli.get_string("open", "", "open a named streaming session");
  const std::string update_name = cli.get_string("update", "", "update a named session");
  const std::string close_name = cli.get_string("close", "", "close a named session");
  const bool stats = cli.get_flag("stats", false, "print the live service manifest");

  const std::string socket_path =
      cli.get_string("socket", "", "unix socket path (daemon and clients)");
  const auto port = static_cast<int>(cli.get_int("port", -1, "loopback TCP port (0 = pick)"));

  // daemon knobs
  service::SchedulerOptions sched;
  sched.workers = static_cast<int>(cli.get_int("workers", 2, "concurrent job executions"));
  sched.max_queue =
      static_cast<std::size_t>(cli.get_int("max-queue", 64, "queued-job admission bound"));
  sched.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache-capacity", 32, "LRU result-cache entries"));
  sched.max_ranks = static_cast<int>(cli.get_int("max-ranks", 64, "per-job rank limit"));
  sched.max_edges = cli.get_int("max-edges", 50'000'000, "per-job edge-count limit");
  const std::string ready_file =
      cli.get_string("ready-file", "", "write socket/port here once listening");
  const std::string final_manifest_path =
      cli.get_string("final-manifest", "", "write the drain manifest here too");

  // client job knobs
  const std::string gen = cli.get_string("gen", "karate",
                                         "graph: karate | planted | cliques");
  const auto n = cli.get_int("n", 256, "planted: vertices");
  const auto blocks = static_cast<int>(cli.get_int("blocks", 8, "planted: communities"));
  const double p_in = cli.get_double("p-in", 0.3, "planted: intra-community edge prob");
  const double p_out = cli.get_double("p-out", 0.01, "planted: inter-community edge prob");
  const auto gseed = static_cast<std::uint64_t>(cli.get_int("gen-seed", 42, "generator seed"));
  const auto cliques = cli.get_int("cliques", 8, "cliques: count");
  const auto clique_size = cli.get_int("clique-size", 12, "cliques: size");

  service::JobConfig config;
  config.ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  config.threads = static_cast<int>(cli.get_int("threads", 1, "threads per rank"));
  const std::string variant_name =
      cli.get_string("variant", "baseline", "baseline | cycling | et | etc");
  config.alpha = cli.get_double("alpha", 0.25, "ET aggressiveness");
  config.threshold = cli.get_double("threshold", 1e-6, "convergence threshold");
  config.resolution = cli.get_double("resolution", 1.0, "resolution gamma");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7777, "algorithm seed"));
  config.max_phases = static_cast<int>(cli.get_int("max-phases", 64, ""));
  config.max_iterations = static_cast<int>(cli.get_int("max-iterations", 512, ""));

  const std::string changes_spec =
      cli.get_string("changes", "", "update batch: add:u:v[:w],del:u:v,...");

  if (!cli.finish()) return 2;

  const int modes = static_cast<int>(serve) + static_cast<int>(submit) +
                    static_cast<int>(!open_name.empty()) +
                    static_cast<int>(!update_name.empty()) +
                    static_cast<int>(!close_name.empty()) + static_cast<int>(stats);
  if (modes != 1) {
    std::cerr << "dlouvaind: pass exactly one of --serve, --submit, --open, "
                 "--update, --close, --stats\n";
    return 2;
  }
  if (socket_path.empty() && port < 0) {
    std::cerr << "dlouvaind: pass --socket PATH or --port N\n";
    return 2;
  }

  try {
    if (serve) {
      service::EndpointOptions ep;
      ep.unix_path = socket_path;
      ep.tcp_port = port;
      return run_daemon(sched, ep, ready_file, final_manifest_path);
    }

    auto client = connect(socket_path, port);

    if (stats) return finish_reply(client.call(service::FrameType::kStats));

    if (!close_name.empty()) {
      service::WireWriter w;
      w.put_string(close_name);
      return finish_reply(client.call(service::FrameType::kCloseSession,
                                      std::span<const std::byte>(w.bytes())));
    }

    if (!update_name.empty()) {
      bool ok = false;
      service::UpdateRequest req;
      req.session_name = update_name;
      req.changes = parse_changes(changes_spec, ok);
      if (!ok || req.changes.empty())
        return fail("--update needs --changes add:u:v[:w],del:u:v,...");
      const auto payload = service::encode_update_request(req);
      return finish_reply(client.call(service::FrameType::kUpdate, payload));
    }

    // --submit / --open: build the graph locally, ship it inline.
    bool variant_ok = false;
    service::JobRequest req;
    req.config = config;
    req.config.variant = parse_variant(variant_name, variant_ok);
    if (!variant_ok) return fail("unknown --variant '" + variant_name + "'");
    req.session_name = open_name;

    gen::GeneratedGraph g;
    if (gen == "karate")
      g = gen::karate_club();
    else if (gen == "planted")
      g = gen::planted_partition(n, blocks, p_in, p_out, gseed);
    else if (gen == "cliques")
      g = gen::clique_chain(cliques, clique_size);
    else
      return fail("unknown --gen '" + gen + "' (karate | planted | cliques)");

    // Normalize through a CSR so equal graphs ship equal bytes (equal
    // fingerprints) no matter how the generator ordered its edge list.
    const graph::Csr csr = graph::from_edges(g.num_vertices, g.edges);
    req.num_vertices = csr.num_vertices();
    req.edges = service::canonical_edges(csr);

    const auto payload = service::encode_job_request(req);
    return finish_reply(client.call(
        open_name.empty() ? service::FrameType::kSubmit : service::FrameType::kOpenSession,
        payload));
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}
