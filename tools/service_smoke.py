#!/usr/bin/env python3
"""End-to-end smoke of the dlouvaind clustering service (the service_smoke
ctest; see docs/SERVICE.md).

Starts the daemon on a Unix socket, then drives the full job lifecycle from
real client processes:

  * three CONCURRENT --submit clients, two of them identical jobs: every
    client must get back a valid v4 run manifest carrying a "service"
    section, exactly one of the three must be a cache hit, and the identical
    pair's manifests must be byte-identical once each response's own
    "service" section is stripped (the de-dup serves the leader's bytes);
  * a SIGTERM mid-life: the daemon must drain gracefully -- exit 0, no
    dropped replies -- and leave a final "dlouvain-service-manifest/1"
    document (stdout and --final-manifest) recording drain "clean" and the
    exact job accounting (3 served, 1 hit, 2 misses, 0 rejected).

Exit code 0 = all contracts hold, 1 = validation failure, 2 = the daemon or
a client itself failed.

Usage:
  service_smoke.py --daemon build/tools/dlouvaind [--timeout 60]
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


# Keys the per-response "service" section must carry (core/metrics
# append_service_json; keep in sync with docs/OBSERVABILITY.md).
SERVICE_KEYS = ("job_id", "cache_hit", "queue_depth", "jobs_served",
                "cache_hits", "cache_misses", "rejected", "sessions_open",
                "drain")


def check_job_manifest(name, text):
    """One client reply: a v4 run manifest with a well-formed service section."""
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as err:
        fail(f"{name}: reply is not JSON ({err}): {text[:200]}")
    schema = manifest.get("schema", "")
    if not schema.startswith("dlouvain-run-manifest/"):
        fail(f"{name}: schema '{schema}' is not a run manifest")
    version = schema.rsplit("/", 1)[-1]
    if not (version.isdigit() and int(version) >= 4):
        fail(f"{name}: service replies must be v4+ manifests, got '{schema}'")
    service = manifest.get("service")
    if not isinstance(service, dict):
        fail(f"{name}: manifest carries no service section")
    for key in SERVICE_KEYS:
        if key not in service:
            fail(f"{name}: service section missing '{key}'")
    if manifest.get("modularity", 0.0) <= 0.0:
        fail(f"{name}: clustering produced no modularity")
    return manifest


def strip_service(text):
    """The response bytes minus this response's own service section: all
    replies built from one cached result share this prefix byte-for-byte."""
    cut = text.find(',"service":')
    if cut < 0:
        fail(f"reply carries no spliced service section: {text[:200]}")
    return text[:cut]


def wait_for(path, deadline, what):
    while time.time() < deadline:
        if os.path.exists(path) and os.path.getsize(path) > 0:
            return
        time.sleep(0.05)
    fail(f"timed out waiting for {what} ({path})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--daemon", required=True, help="dlouvaind binary")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="overall deadline in seconds")
    args = parser.parse_args()
    deadline = time.time() + args.timeout

    with tempfile.TemporaryDirectory(prefix="dlouvaind_") as tmp:
        sock = os.path.join(tmp, "svc.sock")
        ready = os.path.join(tmp, "ready")
        drain = os.path.join(tmp, "drain.json")
        daemon = subprocess.Popen(
            [args.daemon, "--serve", "--socket", sock, "--workers", "2",
             "--ready-file", ready, "--final-manifest", drain],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            wait_for(ready, deadline, "daemon ready-file")

            # Three concurrent clients; A and B are the identical pair (same
            # graph, same config -> same cache key), C differs by seed.
            base = [args.daemon, "--submit", "--socket", sock,
                    "--gen", "karate", "--ranks", "2"]
            specs = {"job_a": base, "job_b": base,
                     "job_c": base + ["--seed", "1234"]}
            clients = {name: subprocess.Popen(
                cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True) for name, cmd in specs.items()}
            replies = {}
            for name, proc in clients.items():
                out, err = proc.communicate(timeout=args.timeout)
                if proc.returncode != 0:
                    print(f"FAIL: client {name} exited "
                          f"{proc.returncode}: {err.strip()}")
                    return 2
                replies[name] = out.strip()

            manifests = {name: check_job_manifest(name, text)
                         for name, text in replies.items()}
            hits = [name for name, m in manifests.items()
                    if m["service"]["cache_hit"]]
            if len(hits) != 1 or hits[0] == "job_c":
                fail(f"expected exactly one cache hit within the identical "
                     f"pair, got hits={hits}")
            if strip_service(replies["job_a"]) != strip_service(replies["job_b"]):
                fail("identical jobs returned different manifests "
                     "(modulo the per-response service section)")
            if strip_service(replies["job_a"]) == strip_service(replies["job_c"]):
                fail("distinct jobs returned the same manifest")
            job_ids = {m["service"]["job_id"] for m in manifests.values()}
            if len(job_ids) != 3:
                fail(f"job ids not unique across clients: {sorted(job_ids)}")
            print(f"jobs ok: 3 served, cache hit on {hits[0]}, "
                  f"identical pair byte-identical")

            # Graceful drain: SIGTERM, clean exit, final service manifest.
            daemon.send_signal(signal.SIGTERM)
            out, err = daemon.communicate(timeout=args.timeout)
            if daemon.returncode != 0:
                print(f"FAIL: daemon exited {daemon.returncode}: {err.strip()}")
                return 2
            final = json.loads(open(drain, encoding="utf-8").read())
            if json.loads(out.strip()) != final:
                fail("stdout and --final-manifest drain documents differ")
            if final.get("schema") != "dlouvain-service-manifest/1":
                fail(f"final manifest schema '{final.get('schema')}' wrong")
            service = final.get("service", {})
            expectations = {"drain": "clean", "jobs_served": 3,
                            "cache_hits": 1, "cache_misses": 2,
                            "rejected": 0, "queue_depth": 0,
                            "sessions_open": 0}
            for key, want in expectations.items():
                if service.get(key) != want:
                    fail(f"final manifest service.{key} = "
                         f"{service.get(key)!r}, expected {want!r}")
            print(f"drain ok: clean, {service['jobs_served']} jobs served, "
                  f"{service['cache_hits']} hit / "
                  f"{service['cache_misses']} misses")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
