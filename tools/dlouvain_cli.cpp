// dlouvain: the end-to-end command-line front door to the library.
//
// Modes (pick exactly one input):
//   --input <file.dlel>      run on a binary edge-list file
//   --generate <name>        run on a named surrogate / generator
//
// and optionally:
//   --variant baseline|tc|et|etc   heuristic variant (default baseline)
//   --alpha <x>                    ET aggressiveness (default 0.25)
//   --ranks <p>                    in-process ranks (default 4)
//   --threads <t>                  compute threads per rank (default 1)
//   --coloring                     colour-constrained sweeps (Section VI)
//   --output <file>                write "vertex community" lines
//   --stats                        print degree/component statistics first
//
// Examples:
//   dlouvain_cli --generate soc-friendster --variant etc --alpha 0.25
//   dlouvain_cli --input graph.dlel --ranks 8 --threads 4 --output communities.txt
#include <fstream>
#include <iostream>

#include "comm/world.hpp"
#include "core/components.hpp"
#include "dlouvain.hpp"
#include "gen/surrogate.hpp"
#include "graph/binary_io.hpp"
#include "graph/stats.hpp"
#include "quality/summary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const auto input = cli.get_string("input", "", "binary edge-list (.dlel) path");
  const auto generate = cli.get_string("generate", "", "surrogate graph name");
  const double scale = cli.get_double("scale", 1.0, "generator size multiplier");
  const auto variant_name = cli.get_string("variant", "baseline", "baseline|tc|et|etc");
  const double alpha = cli.get_double("alpha", 0.25, "ET aggressiveness");
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  const int threads =
      static_cast<int>(cli.get_int("threads", 1, "compute threads per rank (<=0 = auto)"));
  const bool coloring = cli.get_flag("coloring", false, "colour-constrained sweeps");
  const auto output = cli.get_string("output", "", "write 'vertex community' lines");
  const bool stats = cli.get_flag("stats", false, "print graph statistics first");
  const int summary = static_cast<int>(
      cli.get_int("summary", 0, "print the N largest communities' summaries"));
  if (!cli.finish()) return 1;

  if (input.empty() == generate.empty()) {
    std::cerr << "dlouvain: pass exactly one of --input or --generate\n";
    return 1;
  }

  const auto variant = core::parse_variant(variant_name);
  if (!variant) {
    std::cerr << "dlouvain: unknown --variant '" << variant_name
              << "' (expected baseline|tc|et|etc)\n";
    return 1;
  }

  util::WallTimer timer;

  // Materialize the graph exactly ONCE, as a replicated CSR -- the CLI's
  // operating envelope is graphs that fit on one node, so every downstream
  // consumer (the run itself, --stats, --summary) reuses this one copy
  // instead of re-reading or re-generating.
  graph::Csr csr;
  if (!input.empty()) {
    const auto header = graph::read_binary_header(input);
    csr = graph::from_edges(header.num_vertices,
                            graph::read_binary_slice(input, 0, header.num_edges));
  } else {
    const auto generated = gen::surrogate(generate, scale);
    csr = graph::from_edges(generated.num_vertices, generated.edges);
  }

  core::DistComponentsResult components;
  if (stats) {
    comm::run(ranks, [&](comm::Comm& comm) {
      auto dist = graph::DistGraph::from_replicated(comm, csr);
      auto comp = core::dist_connected_components(comm, dist);
      if (comm.is_root()) components = std::move(comp);
    });
  }

  const auto plan = Plan::distributed(ranks)
                        .threads(threads)
                        .variant(*variant)
                        .alpha(alpha)
                        .coloring(coloring);
  const auto result = plan.run(csr);

  std::cout << "graph:        " << csr.num_vertices() << " vertices, "
            << csr.num_arcs() / 2 << " edges\n";
  if (stats) {
    std::cout << "components:   " << components.count << " (in "
              << components.rounds << " propagation rounds)\n";
  }
  std::cout << "variant:      " << core::variant_label(*variant, alpha)
            << (coloring ? " + coloring" : "") << '\n'
            << "ranks:        " << ranks << " x " << threads << " thread(s)\n"
            << "communities:  " << result.num_communities << '\n'
            << "modularity:   " << result.modularity << '\n'
            << "phases:       " << result.phases << " (" << result.total_iterations
            << " iterations)\n"
            << "wall time:    " << util::TextTable::fmt(timer.seconds(), 3) << " s\n"
            << "traffic:      " << result.distributed->messages << " messages, "
            << result.distributed->bytes << " bytes\n";

  if (summary > 0) {
    const auto summaries = quality::summarize_communities(csr, result.community);
    util::TextTable table({"community", "size", "internal w", "boundary w",
                           "conductance"});
    for (int i = 0; i < summary && i < static_cast<int>(summaries.size()); ++i) {
      const auto& s = summaries[static_cast<std::size_t>(i)];
      table.add_row({util::TextTable::fmt(s.id), util::TextTable::fmt(s.size),
                     util::TextTable::fmt(s.internal_weight, 1),
                     util::TextTable::fmt(s.boundary_weight, 1),
                     util::TextTable::fmt(s.conductance, 4)});
    }
    std::cout << '\n';
    table.print(std::cout);
    std::cout << "coverage: "
              << util::TextTable::fmt(quality::coverage(csr, result.community), 4)
              << '\n';
  }

  if (!output.empty()) {
    std::ofstream out(output);
    if (!out) {
      std::cerr << "dlouvain: cannot open " << output << " for writing\n";
      return 1;
    }
    for (std::size_t v = 0; v < result.community.size(); ++v)
      out << v << ' ' << result.community[v] << '\n';
    std::cout << "wrote " << output << '\n';
  }
  return 0;
}
