// dlouvain: the end-to-end command-line front door to the library.
//
// Modes (pick exactly one input):
//   --input <file.dlel>      run on a binary edge-list file
//   --generate <name>        run on a named surrogate / generator
//
// and optionally:
//   --variant baseline|tc|et|etc   heuristic variant (default baseline)
//   --alpha <x>                    ET aggressiveness (default 0.25)
//   --ranks <p>                    in-process ranks (default 4)
//   --coloring                     colour-constrained sweeps (Section VI)
//   --output <file>                write "vertex community" lines
//   --stats                        print degree/component statistics first
//
// Examples:
//   dlouvain_cli --generate soc-friendster --variant etc --alpha 0.25
//   dlouvain_cli --input graph.dlel --ranks 8 --output communities.txt
#include <fstream>
#include <iostream>

#include "comm/world.hpp"
#include "core/components.hpp"
#include "core/dist_louvain.hpp"
#include "gen/surrogate.hpp"
#include "graph/binary_io.hpp"
#include "graph/stats.hpp"
#include "quality/summary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

dlouvain::core::DistConfig make_config(const std::string& variant, double alpha,
                                       bool coloring) {
  using dlouvain::core::DistConfig;
  DistConfig cfg;
  if (variant == "baseline") {
    cfg = DistConfig::baseline();
  } else if (variant == "tc") {
    cfg = DistConfig::threshold_cycling();
  } else if (variant == "et") {
    cfg = DistConfig::et(alpha);
  } else if (variant == "etc") {
    cfg = DistConfig::etc(alpha);
  } else {
    throw std::invalid_argument("unknown --variant '" + variant +
                                "' (expected baseline|tc|et|etc)");
  }
  cfg.use_coloring = coloring;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const auto input = cli.get_string("input", "", "binary edge-list (.dlel) path");
  const auto generate = cli.get_string("generate", "", "surrogate graph name");
  const double scale = cli.get_double("scale", 1.0, "generator size multiplier");
  const auto variant = cli.get_string("variant", "baseline", "baseline|tc|et|etc");
  const double alpha = cli.get_double("alpha", 0.25, "ET aggressiveness");
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  const bool coloring = cli.get_flag("coloring", false, "colour-constrained sweeps");
  const auto output = cli.get_string("output", "", "write 'vertex community' lines");
  const bool stats = cli.get_flag("stats", false, "print graph statistics first");
  const int summary = static_cast<int>(
      cli.get_int("summary", 0, "print the N largest communities' summaries"));
  if (!cli.finish()) return 1;

  if (input.empty() == generate.empty()) {
    std::cerr << "dlouvain: pass exactly one of --input or --generate\n";
    return 1;
  }

  core::DistConfig cfg;
  try {
    cfg = make_config(variant, alpha, coloring);
  } catch (const std::invalid_argument& err) {
    std::cerr << "dlouvain: " << err.what() << '\n';
    return 1;
  }

  core::DistResult result;
  core::DistComponentsResult components;
  graph::BinaryHeader header;
  util::WallTimer timer;

  comm::run(ranks, [&](comm::Comm& comm) {
    graph::DistGraph dist;
    if (!input.empty()) {
      dist = graph::load_distributed(comm, input);
    } else {
      const auto generated = gen::surrogate(generate, scale);
      const auto part = graph::partition_even_vertices(generated.num_vertices, comm.size());
      // Each rank contributes a 1/p slice of the generated edges, as a file
      // loader would.
      std::vector<Edge> mine;
      for (std::size_t i = comm.rank(); i < generated.edges.size();
           i += static_cast<std::size_t>(comm.size()))
        mine.push_back(generated.edges[i]);
      dist = graph::DistGraph::build(comm, part, std::move(mine), true);
    }
    if (comm.is_root()) {
      header.num_vertices = dist.global_n();
      header.num_edges = dist.global_arcs() / 2;
    }
    if (stats) {
      auto comp = core::dist_connected_components(comm, dist);
      if (comm.is_root()) components = std::move(comp);
    }
    auto r = core::dist_louvain(comm, std::move(dist), cfg);
    if (comm.is_root()) result = std::move(r);
  });

  std::cout << "graph:        " << header.num_vertices << " vertices, "
            << header.num_edges << " edges\n";
  if (stats) {
    std::cout << "components:   " << components.count << " (in "
              << components.rounds << " propagation rounds)\n";
  }
  std::cout << "variant:      " << core::variant_label(cfg.variant, cfg.base.et_alpha)
            << (coloring ? " + coloring" : "") << '\n'
            << "ranks:        " << ranks << '\n'
            << "communities:  " << result.num_communities << '\n'
            << "modularity:   " << result.modularity << '\n'
            << "phases:       " << result.phases << " (" << result.total_iterations
            << " iterations)\n"
            << "wall time:    " << util::TextTable::fmt(timer.seconds(), 3) << " s\n"
            << "traffic:      " << result.messages << " messages, " << result.bytes
            << " bytes\n";

  if (summary > 0) {
    // Rebuild a replicated CSR from the result's source for summarization.
    // (Only sensible for generated graphs / file graphs that fit on one
    // node, which is the CLI's operating envelope anyway.)
    graph::Csr csr;
    if (!input.empty()) {
      const auto header2 = graph::read_binary_header(input);
      csr = graph::from_edges(header2.num_vertices,
                              graph::read_binary_slice(input, 0, header2.num_edges));
    } else {
      const auto generated = gen::surrogate(generate, scale);
      csr = graph::from_edges(generated.num_vertices, generated.edges);
    }
    const auto summaries = quality::summarize_communities(csr, result.community);
    util::TextTable table({"community", "size", "internal w", "boundary w",
                           "conductance"});
    for (int i = 0; i < summary && i < static_cast<int>(summaries.size()); ++i) {
      const auto& s = summaries[static_cast<std::size_t>(i)];
      table.add_row({util::TextTable::fmt(s.id), util::TextTable::fmt(s.size),
                     util::TextTable::fmt(s.internal_weight, 1),
                     util::TextTable::fmt(s.boundary_weight, 1),
                     util::TextTable::fmt(s.conductance, 4)});
    }
    std::cout << '\n';
    table.print(std::cout);
    std::cout << "coverage: "
              << util::TextTable::fmt(quality::coverage(csr, result.community), 4)
              << '\n';
  }

  if (!output.empty()) {
    std::ofstream out(output);
    if (!out) {
      std::cerr << "dlouvain: cannot open " << output << " for writing\n";
      return 1;
    }
    for (std::size_t v = 0; v < result.community.size(); ++v)
      out << v << ' ' << result.community[v] << '\n';
    std::cout << "wrote " << output << '\n';
  }
  return 0;
}
