// dlouvain: the end-to-end command-line front door to the library.
//
// Modes (pick exactly one input):
//   --input <file.dlel>      run on a binary edge-list file
//   --generate <name>        run on a named surrogate / generator
//
// and optionally:
//   --variant baseline|tc|et|etc   heuristic variant (default baseline)
//   --alpha <x>                    ET aggressiveness (default 0.25)
//   --ranks <p>                    in-process ranks (default 4)
//   --threads <t>                  compute threads per rank (default 1)
//   --coloring                     colour-constrained sweeps (Section VI)
//   --exchange dense|delta|auto    ghost update wire format (default auto)
//   --overlap off|on|auto          hide exchange latency behind interior
//                                  compute (default auto = on when ranks > 1;
//                                  never changes results)
//   --rebalance                    re-balance vertex ownership at phase
//                                  boundaries when the measured arc-count
//                                  imbalance exceeds the threshold
//   --rebalance-threshold <x>      imbalance lambda = max/mean that triggers
//                                  migration (default 1.5)
//   --output <file>                write "vertex community" lines
//   --stats                        print degree/component statistics first
//
// fault tolerance (see docs/FAULT_TOLERANCE.md):
//   --comm-timeout <s>             deadline for blocked receives (deadlock
//                                  diagnostic instead of a hang)
//   --checkpoint-dir <dir>         write phase-boundary checkpoints
//   --checkpoint-every <k>         checkpoint cadence in phases (default 1)
//   --resume                       resume from the newest checkpoint in
//                                  --checkpoint-dir
//   --max-restarts <n>             restart attempts on comm failure (default 3)
//   --crash r:ph[:it][,...]        inject transient rank crashes (fire once)
//   --kill r:ph[:it][,...]         inject permanent rank deaths (re-fire
//                                  every attempt until the rank is shrunk out)
//   --lose <p>                     drop each message with probability p
//   --corrupt <p>                  flip a payload bit with probability p
//   --duplicate <p>                re-deliver each message with probability p
//   --delay <p> [--delay-ms <ms>]  hold delivery back with probability p
//   --fault-seed <n>               seed for the deterministic fate draws
//   --retransmit <n>               link-level ARQ: retransmit lost/corrupt
//                                  messages up to n times before escalating
//   --retransmit-backoff-ms <x>    base backoff between retransmits
//   --shrink-on-rank-loss          on a rank-dead verdict, resume from the
//                                  newest checkpoint with the survivors
//
// observability (see docs/OBSERVABILITY.md):
//   --trace-out <file>             write a Chrome trace_event JSON file
//                                  (open in Perfetto / chrome://tracing)
//   --metrics-out <file>           write the machine-readable run manifest
//
// Examples:
//   dlouvain_cli --generate soc-friendster --variant etc --alpha 0.25
//   dlouvain_cli --input graph.dlel --ranks 8 --threads 4 --output communities.txt
//   dlouvain_cli --generate lfr-b --checkpoint-dir ckpt --crash 1:2 --max-restarts 3
#include <charconv>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "comm/world.hpp"
#include "core/components.hpp"
#include "dlouvain.hpp"
#include "gen/surrogate.hpp"
#include "graph/binary_io.hpp"
#include "graph/stats.hpp"
#include "quality/summary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Parse "r:ph[:it],r:ph[:it],..." crash entries into `plan` -- transient
/// crash() triggers for --crash, permanent kill() triggers for --kill.
void parse_crashes(dlouvain::comm::FaultPlan& plan, const std::string& spec,
                   bool permanent) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    int fields[3] = {0, 0, 0};
    int count = 0;
    std::size_t field_pos = 0;
    while (field_pos <= entry.size() && count < 3) {
      const std::size_t colon = entry.find(':', field_pos);
      const std::string token = entry.substr(
          field_pos, colon == std::string::npos ? std::string::npos : colon - field_pos);
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), fields[count]);
      if (ec != std::errc{} || ptr != token.data() + token.size())
        throw std::runtime_error("bad --crash entry '" + entry +
                                 "' (expected rank:phase[:iteration])");
      ++count;
      if (colon == std::string::npos) break;
      field_pos = colon + 1;
    }
    if (count < 2)
      throw std::runtime_error("bad --crash entry '" + entry +
                               "' (expected rank:phase[:iteration])");
    if (permanent) {
      plan.kill(fields[0], fields[1], fields[2]);
    } else {
      plan.crash(fields[0], fields[1], fields[2]);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
}

int run_cli(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const auto input = cli.get_string("input", "", "binary edge-list (.dlel) path");
  const auto generate = cli.get_string("generate", "", "surrogate graph name");
  const double scale = cli.get_double("scale", 1.0, "generator size multiplier");
  const auto variant_name = cli.get_string("variant", "baseline", "baseline|tc|et|etc");
  const double alpha = cli.get_double("alpha", 0.25, "ET aggressiveness");
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  const int threads =
      static_cast<int>(cli.get_int("threads", 1, "compute threads per rank (<=0 = auto)"));
  const bool coloring = cli.get_flag("coloring", false, "colour-constrained sweeps");
  const auto exchange_name =
      cli.get_string("exchange", "auto", "ghost update wire format: dense|delta|auto");
  const auto overlap_name = cli.get_string(
      "overlap", "auto", "overlap exchanges with interior compute: off|on|auto");
  const bool rebalance = cli.get_flag(
      "rebalance", false, "re-balance vertex ownership at phase boundaries");
  const double rebalance_threshold = cli.get_double(
      "rebalance-threshold", 1.5, "imbalance lambda (max/mean) that triggers migration");
  const auto output = cli.get_string("output", "", "write 'vertex community' lines");
  const bool stats = cli.get_flag("stats", false, "print graph statistics first");
  const int summary = static_cast<int>(
      cli.get_int("summary", 0, "print the N largest communities' summaries"));
  const double comm_timeout =
      cli.get_double("comm-timeout", 0, "deadline (s) for blocked receives");
  const auto checkpoint_dir =
      cli.get_string("checkpoint-dir", "", "phase-boundary checkpoint directory");
  const int checkpoint_every = static_cast<int>(
      cli.get_int("checkpoint-every", 1, "checkpoint cadence in phases"));
  const bool resume =
      cli.get_flag("resume", false, "resume from the newest checkpoint");
  const int max_restarts = static_cast<int>(
      cli.get_int("max-restarts", 3, "restart attempts on comm failure"));
  const auto crash_spec =
      cli.get_string("crash", "", "inject transient rank crashes: r:ph[:it][,...]");
  const auto kill_spec =
      cli.get_string("kill", "", "inject permanent rank deaths: r:ph[:it][,...]");
  const double lose_p =
      cli.get_double("lose", 0, "per-message drop probability");
  const double corrupt_p =
      cli.get_double("corrupt", 0, "per-message payload-corruption probability");
  const double duplicate_p =
      cli.get_double("duplicate", 0, "per-message duplication probability");
  const double delay_p =
      cli.get_double("delay", 0, "per-message delivery-delay probability");
  const double delay_ms =
      cli.get_double("delay-ms", 2.0, "visibility delay for delayed messages");
  const auto fault_seed = static_cast<std::uint64_t>(
      cli.get_int("fault-seed", 1, "seed for deterministic fault fates"));
  const int retransmit = static_cast<int>(cli.get_int(
      "retransmit", 0, "ARQ retransmit budget per message (0 = off)"));
  const double retransmit_backoff_ms = cli.get_double(
      "retransmit-backoff-ms", 1.0, "base backoff between retransmits");
  const bool shrink_on_rank_loss = cli.get_flag(
      "shrink-on-rank-loss", false, "resume with survivors on rank death");
  const auto trace_out =
      cli.get_string("trace-out", "", "write Chrome trace_event JSON here");
  const auto metrics_out =
      cli.get_string("metrics-out", "", "write the run manifest JSON here");
  if (!cli.finish()) return 1;

  if (input.empty() == generate.empty()) {
    std::cerr << "dlouvain: pass exactly one of --input or --generate\n";
    return 1;
  }
  if (!input.empty() && !std::filesystem::exists(input)) {
    std::cerr << "dlouvain: input file '" << input << "' does not exist\n";
    return 1;
  }
  if (resume && checkpoint_dir.empty()) {
    std::cerr << "dlouvain: --resume requires --checkpoint-dir\n";
    return 1;
  }

  const auto variant = core::parse_variant(variant_name);
  if (!variant) {
    std::cerr << "dlouvain: unknown --variant '" << variant_name
              << "' (expected baseline|tc|et|etc)\n";
    return 1;
  }
  const auto exchange = core::parse_exchange_mode(exchange_name);
  if (!exchange) {
    std::cerr << "dlouvain: unknown --exchange '" << exchange_name
              << "' (expected dense|delta|auto)\n";
    return 1;
  }
  const auto overlap = core::parse_overlap_mode(overlap_name);
  if (!overlap) {
    std::cerr << "dlouvain: unknown --overlap '" << overlap_name
              << "' (expected off|on|auto)\n";
    return 1;
  }

  // Fail on an unwritable output path BEFORE spending minutes computing.
  for (const auto& path : {output, trace_out, metrics_out}) {
    if (path.empty()) continue;
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
      std::cerr << "dlouvain: cannot open " << path << " for writing\n";
      return 1;
    }
  }

  util::WallTimer timer;

  // Materialize the graph exactly ONCE, as a replicated CSR -- the CLI's
  // operating envelope is graphs that fit on one node, so every downstream
  // consumer (the run itself, --stats, --summary) reuses this one copy
  // instead of re-reading or re-generating.
  graph::Csr csr;
  if (!input.empty()) {
    if (!graph::verify_binary_crc(input)) {
      std::cerr << "dlouvain: " << input << " failed its CRC32 check (corrupt file)\n";
      return 1;
    }
    const auto header = graph::read_binary_header(input);
    csr = graph::from_edges(header.num_vertices,
                            graph::read_binary_slice(input, 0, header.num_edges));
  } else {
    const auto generated = gen::surrogate(generate, scale);
    csr = graph::from_edges(generated.num_vertices, generated.edges);
  }

  core::DistComponentsResult components;
  if (stats) {
    comm::run(ranks, [&](comm::Comm& comm) {
      auto dist = graph::DistGraph::from_replicated(comm, csr);
      auto comp = core::dist_connected_components(comm, dist);
      if (comm.is_root()) components = std::move(comp);
    });
  }

  auto plan = Plan::distributed(ranks)
                  .threads(threads)
                  .variant(*variant)
                  .alpha(alpha)
                  .coloring(coloring)
                  .exchange(*exchange)
                  .overlap(*overlap)
                  .comm_timeout(comm_timeout)
                  .max_restarts(max_restarts)
                  .retransmit(retransmit, retransmit_backoff_ms)
                  .shrink_on_rank_loss(shrink_on_rank_loss);
  if (rebalance) plan.rebalance(rebalance_threshold);
  if (!checkpoint_dir.empty()) plan.checkpointing(checkpoint_dir, checkpoint_every);
  if (resume) plan.resume(checkpoint_dir);
  comm::FaultPlan faults;
  faults.with_seed(fault_seed);
  if (!crash_spec.empty()) parse_crashes(faults, crash_spec, /*permanent=*/false);
  if (!kill_spec.empty()) parse_crashes(faults, kill_spec, /*permanent=*/true);
  if (lose_p > 0) faults.lose(lose_p);
  if (corrupt_p > 0) faults.corrupt(corrupt_p);
  if (duplicate_p > 0) faults.duplicate(duplicate_p);
  if (delay_p > 0) faults.delay(delay_p, delay_ms);
  if (!faults.crashes.empty() || faults.injects_messages())
    plan.inject_faults(faults);
  if (!trace_out.empty()) plan.trace(trace_out);
  if (!metrics_out.empty()) plan.metrics(metrics_out);
  const auto result = plan.run(csr);

  std::cout << "graph:        " << csr.num_vertices() << " vertices, "
            << csr.num_arcs() / 2 << " edges\n";
  if (stats) {
    std::cout << "components:   " << components.count << " (in "
              << components.rounds << " propagation rounds)\n";
  }
  std::cout << "variant:      " << core::variant_label(*variant, alpha)
            << (coloring ? " + coloring" : "") << '\n'
            << "ranks:        " << ranks << " x " << threads << " thread(s), overlap "
            << core::overlap_mode_label(*overlap) << '\n'
            << "communities:  " << result.num_communities << '\n'
            << "modularity:   " << result.modularity << '\n'
            << "phases:       " << result.phases << " (" << result.total_iterations
            << " iterations)\n"
            << "wall time:    " << util::TextTable::fmt(timer.seconds(), 3) << " s\n"
            << "traffic:      " << result.distributed->messages << " messages, "
            << result.distributed->bytes << " bytes\n";
  if (result.recovery.attempts > 1 || result.recovery.resumed_from_phase >= 0) {
    std::cout << "recovery:     " << result.recovery.attempts << " attempt(s), "
              << result.recovery.phases_replayed << " phase(s) replayed";
    if (result.recovery.resumed_from_phase >= 0)
      std::cout << ", resumed from phase " << result.recovery.resumed_from_phase;
    std::cout << '\n';
  }
  if (result.recovery.retransmits > 0 || result.recovery.shrinks > 0) {
    std::cout << "ladder:       " << result.recovery.retransmits
              << " retransmit(s) (" << result.recovery.nacks << " NACKs, "
              << result.recovery.escalations << " escalations)";
    if (result.recovery.shrinks > 0)
      std::cout << ", " << result.recovery.shrinks << " shrink(s) to "
                << result.recovery.final_ranks << " rank(s)";
    std::cout << '\n';
  }

  if (summary > 0) {
    const auto summaries = quality::summarize_communities(csr, result.community);
    util::TextTable table({"community", "size", "internal w", "boundary w",
                           "conductance"});
    for (int i = 0; i < summary && i < static_cast<int>(summaries.size()); ++i) {
      const auto& s = summaries[static_cast<std::size_t>(i)];
      table.add_row({util::TextTable::fmt(s.id), util::TextTable::fmt(s.size),
                     util::TextTable::fmt(s.internal_weight, 1),
                     util::TextTable::fmt(s.boundary_weight, 1),
                     util::TextTable::fmt(s.conductance, 4)});
    }
    std::cout << '\n';
    table.print(std::cout);
    std::cout << "coverage: "
              << util::TextTable::fmt(quality::coverage(csr, result.community), 4)
              << '\n';
  }

  if (!output.empty()) {
    std::ofstream out(output, std::ios::trunc);
    if (!out) {
      std::cerr << "dlouvain: cannot open " << output << " for writing\n";
      return 1;
    }
    for (std::size_t v = 0; v < result.community.size(); ++v)
      out << v << ' ' << result.community[v] << '\n';
    std::cout << "wrote " << output << '\n';
  }
  if (!trace_out.empty()) std::cout << "wrote trace " << trace_out << '\n';
  if (!metrics_out.empty()) std::cout << "wrote manifest " << metrics_out << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "dlouvain: " << e.what() << '\n';
    return 1;
  }
}
