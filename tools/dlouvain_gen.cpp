// dlouvain_gen: generate synthetic graphs and write them in the binary
// edge-list format (plus optional ground truth), producing inputs for
// dlouvain_cli --input and the bench harnesses.
//
//   dlouvain_gen --family lfr --n 100000 --mu 0.2 --out graph.dlel --truth gt.txt
//   dlouvain_gen --family ssca2 --n 50000 --max-clique 100 --out weak.dlel
//   dlouvain_gen --family surrogate --name soc-friendster --scale 2 --out fs.dlel
#include <fstream>
#include <iostream>

#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "gen/simple.hpp"
#include "gen/ssca2.hpp"
#include "gen/surrogate.hpp"
#include "graph/binary_io.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const auto family = cli.get_string(
      "family", "lfr", "lfr|ssca2|rmat|er|ws|banded|planted|karate|surrogate");
  const VertexId n = cli.get_int("n", 10000, "vertices");
  const double mu = cli.get_double("mu", 0.2, "LFR mixing");
  const double deg = cli.get_double("deg", 20, "average degree (lfr/er/ws)");
  const VertexId max_clique = cli.get_int("max-clique", 100, "SSCA#2 clique cap");
  const auto name = cli.get_string("name", "soc-friendster", "surrogate name");
  const double scale = cli.get_double("scale", 1.0, "surrogate scale");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  const auto out = cli.get_string("out", "graph.dlel", "output path");
  const auto truth = cli.get_string("truth", "", "ground-truth output path (optional)");
  if (!cli.finish()) return 1;

  gen::GeneratedGraph graph;
  try {
    if (family == "lfr") {
      gen::LfrParams p;
      p.num_vertices = n;
      p.avg_degree = deg;
      p.max_degree = static_cast<VertexId>(deg * 3);
      p.mu = mu;
      p.max_community = std::max<VertexId>(40, n / 20);
      p.seed = seed;
      graph = gen::lfr(p);
    } else if (family == "ssca2") {
      gen::Ssca2Params p;
      p.num_vertices = n;
      p.max_clique_size = max_clique;
      p.seed = seed;
      graph = gen::ssca2(p);
    } else if (family == "rmat") {
      gen::RmatParams p;
      p.scale = 1;
      while ((VertexId{1} << p.scale) < n) ++p.scale;
      p.seed = seed;
      graph = gen::rmat(p);
    } else if (family == "er") {
      graph = gen::erdos_renyi(n, deg / static_cast<double>(n - 1), seed);
    } else if (family == "ws") {
      graph = gen::watts_strogatz(n, static_cast<VertexId>(deg) & ~VertexId{1}, 0.1, seed);
    } else if (family == "banded") {
      graph = gen::banded(n, static_cast<VertexId>(deg / 2));
    } else if (family == "planted") {
      graph = gen::planted_partition(n, 8, 0.2, 0.01, seed);
    } else if (family == "karate") {
      graph = gen::karate_club();
    } else if (family == "surrogate") {
      graph = gen::surrogate(name, scale, seed);
    } else {
      std::cerr << "dlouvain_gen: unknown --family '" << family << "'\n";
      return 1;
    }
  } catch (const std::exception& err) {
    std::cerr << "dlouvain_gen: " << err.what() << '\n';
    return 1;
  }

  graph::write_binary(out, graph.num_vertices, graph.edges);
  std::cout << "wrote " << out << ": " << graph.name << ", " << graph.num_vertices
            << " vertices, " << graph.num_edges() << " edges\n";

  if (!truth.empty()) {
    if (graph.ground_truth.empty()) {
      std::cerr << "dlouvain_gen: family '" << family << "' has no ground truth\n";
      return 1;
    }
    std::ofstream file(truth);
    if (!file) {
      std::cerr << "dlouvain_gen: cannot open " << truth << '\n';
      return 1;
    }
    for (std::size_t v = 0; v < graph.ground_truth.size(); ++v)
      file << v << ' ' << graph.ground_truth[v] << '\n';
    std::cout << "wrote " << truth << " (ground truth)\n";
  }
  return 0;
}
