#!/usr/bin/env python3
"""Smoke-test dlouvain_cli observability outputs (the trace_smoke ctest).

Runs the CLI on a small generated graph with --trace-out and --metrics-out,
then checks:

  * the trace is Chrome trace_event JSON: a traceEvents list whose entries
    all carry name/ph/pid/ts, complete ("X") events carry dur, and at least
    --ranks distinct pids appear (one per simulated rank);
  * the manifest matches the "dlouvain-run-manifest/N" schema (v2 adds the
    streaming "updates" section, v3 the "recovery.ladder" object, v4 the
    "overlap" cost-model object) and recorded real traffic (comm.messages > 0
    for a multi-rank run);
  * the default --overlap=auto run recorded its cost-model probe iterations
    as `overlap_probe` spans, and the manifest's overlap object reached a
    decision consistent with the probes;
  * v5 manifests carry the "rebalance" object and per-phase load/time
    lambdas (the per-phase sampling also shows up as `rebalance` spans on
    every run), and with --rebalance the CLI is run with the re-balancer
    enabled and the manifest must record a decided rebalance object.

Exit code 0 = both artifacts valid, 1 = validation failure, 2 = the CLI
itself failed.

Usage:
  validate_trace.py --cli build/tools/dlouvain_cli [--ranks 2] [--rebalance]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def check_trace(path, min_pids):
    with open(path, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents list")
    pids = set()
    spans = 0
    for ev in events:
        for key in ("name", "ph", "pid", "ts"):
            if key not in ev:
                fail(f"{path}: event missing '{key}': {ev}")
        if ev["ph"] == "X":
            spans += 1
            if "dur" not in ev:
                fail(f"{path}: complete event missing 'dur': {ev}")
            if ev["dur"] < 0 or ev["ts"] < 0:
                fail(f"{path}: negative timestamp in {ev}")
        pids.add(ev["pid"])
    if len(pids) < min_pids:
        fail(f"{path}: only {len(pids)} pid(s), expected >= {min_pids} "
             f"(one per simulated rank)")
    if spans == 0:
        fail(f"{path}: no complete ('X') span events recorded")
    names = {ev["name"] for ev in events if ev["ph"] == "X"}
    # overlap_probe: the cost-model sampling iterations behind the default
    # --overlap=auto decision must be visible in the trace, not silent.
    # rebalance: the per-phase load-lambda sampling collective runs on EVERY
    # run (and also wraps the boundary decision when --rebalance is on), so
    # its span must always appear.
    for required in ("phase", "iteration", "compute", "overlap_probe",
                     "rebalance"):
        if required not in names:
            fail(f"{path}: span taxonomy missing '{required}' "
                 f"(got {sorted(names)})")
    print(f"trace ok: {spans} spans across {len(pids)} pids")


def check_manifest(path, rebalance_on=False):
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    schema = manifest.get("schema", "")
    if not schema.startswith("dlouvain-run-manifest/"):
        fail(f"{path}: schema '{schema}' is not a run manifest")
    counters = manifest.get("counters", {})
    if counters.get("comm.messages", 0) <= 0:
        fail(f"{path}: comm.messages not positive in a multi-rank run")
    if "recovery" not in manifest:
        fail(f"{path}: manifest carries no recovery object")
    # v2 adds the always-present streaming "updates" section; v1 documents
    # (no updates object) remain valid inputs.
    version = schema.rsplit("/", 1)[-1]
    if version.isdigit() and int(version) >= 2:
        updates = manifest.get("updates")
        if not isinstance(updates, dict) or "batches_applied" not in updates:
            fail(f"{path}: v2 manifest carries no updates object")
    # v3 adds the recovery-ladder telemetry nested under recovery.
    if version.isdigit() and int(version) >= 3:
        ladder = manifest.get("recovery", {}).get("ladder")
        if not isinstance(ladder, dict) or "retransmits" not in ladder:
            fail(f"{path}: v3 manifest carries no recovery.ladder object")
    # v4 adds the overlap object: the knob, the (possibly cost-model) decision
    # and the model inputs behind it. The CLI default is --overlap=auto, so
    # the smoke run must show a decided model, not an undecided fall-through.
    if version.isdigit() and int(version) >= 4:
        overlap = manifest.get("overlap")
        if not isinstance(overlap, dict) or "decision" not in overlap:
            fail(f"{path}: v4 manifest carries no overlap object")
        if overlap.get("mode") == "auto":
            if overlap.get("decided") is not True:
                fail(f"{path}: --overlap=auto run never reached a decision")
            if overlap.get("decision") not in ("on", "off"):
                fail(f"{path}: overlap decision "
                     f"'{overlap.get('decision')}' is not on/off")
            if overlap.get("probe_iterations_off", 0) <= 0:
                fail(f"{path}: auto decision recorded without probe "
                     f"iterations")
    # v5 adds the always-present "rebalance" object plus per-phase load/time
    # lambdas. When the run had --rebalance, the object must show the knob
    # enabled and a decided verdict (at least one boundary screened).
    if version.isdigit() and int(version) >= 5:
        rebalance = manifest.get("rebalance")
        if not isinstance(rebalance, dict) or "decided" not in rebalance:
            fail(f"{path}: v5 manifest carries no rebalance object")
        for ph in manifest.get("phases_detail", []):
            if "load_lambda" not in ph or "time_lambda" not in ph:
                fail(f"{path}: v5 phases_detail entry missing load/time lambda")
        if rebalance_on:
            if rebalance.get("enabled") is not True:
                fail(f"{path}: --rebalance run but the manifest knob is off")
            if rebalance.get("decided") is not True:
                fail(f"{path}: --rebalance run never screened a boundary")
    elif rebalance_on:
        fail(f"{path}: --rebalance run emitted a pre-v5 manifest ({schema})")
    # Optional "service" section (manifests replied by dlouvaind carry one;
    # direct CLI runs do not). When present it must be well-formed.
    if "service" in manifest:
        service = manifest["service"]
        if not isinstance(service, dict):
            fail(f"{path}: service section is not an object")
        for key in ("job_id", "cache_hit", "queue_depth", "jobs_served",
                    "cache_hits", "cache_misses", "rejected",
                    "sessions_open", "drain"):
            if key not in service:
                fail(f"{path}: service section missing '{key}'")
        if service["drain"] not in ("none", "draining", "clean"):
            fail(f"{path}: service drain state '{service['drain']}' unknown")
    print(f"manifest ok: schema {schema}, "
          f"{counters['comm.messages']} messages")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True, help="dlouvain_cli binary")
    parser.add_argument("--ranks", type=int, default=2)
    parser.add_argument("--rebalance", action="store_true",
                        help="run the CLI with --rebalance and require a "
                             "decided v5 rebalance object")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="dlouvain_trace_") as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        manifest_path = os.path.join(tmp, "manifest.json")
        cmd = [
            args.cli, "--generate", "channel", "--scale", "0.2",
            "--ranks", str(args.ranks), "--trace-out", trace_path,
            "--metrics-out", manifest_path,
        ]
        if args.rebalance:
            cmd.append("--rebalance")
        print("+", " ".join(cmd), flush=True)
        result = subprocess.run(cmd)
        if result.returncode != 0:
            print(f"FAIL: CLI exited with {result.returncode}")
            return 2
        check_trace(trace_path, min_pids=args.ranks)
        check_manifest(manifest_path, rebalance_on=args.rebalance)
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
