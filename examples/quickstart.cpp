// Quickstart: the smallest end-to-end use of the library.
//
//   1. build a graph (here: 4 cliques chained together),
//   2. describe the run with a Plan (distributed, 4 in-process ranks),
//   3. print the communities and the modularity.
//
//   $ ./quickstart [--ranks 4] [--threads 1]
#include <iostream>
#include <map>
#include <vector>

#include "dlouvain.hpp"
#include "gen/simple.hpp"
#include "graph/csr.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  const int threads =
      static_cast<int>(cli.get_int("threads", 1, "compute threads per rank"));
  if (!cli.finish()) return 1;

  // A graph with obvious structure: 4 cliques of 5 vertices, linked in a
  // chain by single bridge edges.
  const auto generated = gen::clique_chain(/*num_cliques=*/4, /*clique_size=*/5);
  const auto graph = graph::from_edges(generated.num_vertices, generated.edges);
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_arcs() / 2 << " edges\n";

  // Describe the run with a Plan and execute it. Each in-process rank owns a
  // slice of the graph exactly as MPI ranks would; `threads` sets the
  // per-rank compute pool and never changes the result.
  const auto result = Plan::distributed(ranks).threads(threads).run(graph);

  std::cout << "ranks:       " << ranks << '\n'
            << "communities: " << result.num_communities << '\n'
            << "modularity:  " << result.modularity << '\n'
            << "phases:      " << result.phases << " (" << result.total_iterations
            << " iterations)\n\n";

  std::map<CommunityId, std::vector<VertexId>> members;
  for (std::size_t v = 0; v < result.community.size(); ++v)
    members[result.community[v]].push_back(static_cast<VertexId>(v));
  for (const auto& [community, vertices] : members) {
    std::cout << "community " << community << ":";
    for (const auto v : vertices) std::cout << ' ' << v;
    std::cout << '\n';
  }
  return 0;
}
