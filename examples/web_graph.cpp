// Web-graph scenario: run the heuristic variants on a web-crawl-like graph
// (clique-dominated SSCA#2 surrogate of uk-2007) and print the per-phase
// telemetry, including the compute/communication time breakdown of the
// paper's Section V-A analysis.
//
//   $ ./web_graph [--graph uk-2007] [--scale 0.3] [--ranks 4]
#include <iostream>

#include "core/dist_louvain.hpp"
#include "gen/surrogate.hpp"
#include "graph/csr.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const auto name = cli.get_string("graph", "uk-2007", "surrogate graph name");
  const double scale = cli.get_double("scale", 0.3, "surrogate size multiplier");
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  if (!cli.finish()) return 1;

  const auto generated = gen::surrogate(name, scale);
  const auto graph = graph::from_edges(generated.num_vertices, generated.edges);
  std::cout << "web graph '" << name << "' surrogate: " << graph.num_vertices()
            << " pages, " << graph.num_arcs() / 2 << " links\n\n";

  util::TextTable summary({"variant", "modularity", "phases", "iterations",
                           "time (s)", "msgs", "comm share"});
  for (const auto& cfg :
       {core::DistConfig::baseline(), core::DistConfig::threshold_cycling(),
        core::DistConfig::et(0.25), core::DistConfig::etc(0.25)}) {
    const auto result = core::dist_louvain_inprocess(ranks, graph, cfg);
    const double comm_time = result.breakdown.ghost_exchange +
                             result.breakdown.community_info +
                             result.breakdown.delta_exchange +
                             result.breakdown.allreduce;
    const double total = result.breakdown.total();
    summary.add_row(
        {core::variant_label(cfg.variant, cfg.base.et_alpha),
         util::TextTable::fmt(result.modularity),
         util::TextTable::fmt(static_cast<long long>(result.phases)),
         util::TextTable::fmt(static_cast<long long>(result.total_iterations)),
         util::TextTable::fmt(result.seconds, 3),
         util::TextTable::fmt(result.messages),
         util::TextTable::fmt(total > 0 ? 100 * comm_time / total : 0, 1) + "%"});
  }
  summary.print(std::cout);

  // Per-phase view for the baseline (graph shrinkage + time split).
  std::cout << "\nBaseline per-phase detail:\n";
  const auto baseline = core::dist_louvain_inprocess(ranks, graph);
  util::TextTable phases({"phase", "vertices", "arcs", "iters", "modularity",
                          "ghost(s)", "cinfo(s)", "compute(s)", "delta(s)",
                          "allreduce(s)", "rebuild(s)"});
  for (const auto& ph : baseline.phase_telemetry) {
    phases.add_row({util::TextTable::fmt(static_cast<long long>(ph.phase)),
                    util::TextTable::fmt(static_cast<long long>(ph.graph_vertices)),
                    util::TextTable::fmt(static_cast<long long>(ph.graph_arcs)),
                    util::TextTable::fmt(static_cast<long long>(ph.iterations)),
                    util::TextTable::fmt(ph.modularity_after),
                    util::TextTable::fmt(ph.breakdown.ghost_exchange, 4),
                    util::TextTable::fmt(ph.breakdown.community_info, 4),
                    util::TextTable::fmt(ph.breakdown.compute, 4),
                    util::TextTable::fmt(ph.breakdown.delta_exchange, 4),
                    util::TextTable::fmt(ph.breakdown.allreduce, 4),
                    util::TextTable::fmt(ph.breakdown.rebuild, 4)});
  }
  phases.print(std::cout);
  return 0;
}
