// File-based pipeline: the deployment shape the paper uses on Cori --
// convert a graph to the binary edge-list format once, then have every rank
// read only its slice of the file (the MPI-I/O pattern) and run distributed
// Louvain on the pieces.
//
//   $ ./binary_pipeline [--n 4000] [--ranks 4] [--file /tmp/graph.dlel]
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "comm/world.hpp"
#include "core/dist_louvain.hpp"
#include "gen/ssca2.hpp"
#include "graph/binary_io.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const VertexId n = cli.get_int("n", 4000, "vertices of the generated graph");
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  const auto path = cli.get_string(
      "file", (std::filesystem::temp_directory_path() / "dlouvain_pipeline.dlel").string(),
      "binary edge-list path");
  if (!cli.finish()) return 1;

  // Step 1: one-time conversion to the binary format.
  gen::Ssca2Params params;
  params.num_vertices = n;
  params.max_clique_size = 30;
  params.inter_clique_prob = 0.01;
  const auto generated = gen::ssca2(params);
  graph::write_binary(path, generated.num_vertices, generated.edges);
  const auto header = graph::read_binary_header(path);
  std::cout << "wrote " << path << ": " << header.num_vertices << " vertices, "
            << header.num_edges << " edges ("
            << std::filesystem::file_size(path) / 1024 << " KiB)\n";

  // Step 2: collective sliced load + community detection. Each rank reads
  // a disjoint 1/p range of the records, the edges are shuffled to their
  // owners, and the algorithm runs on the distributed pieces.
  core::DistResult result;
  comm::run(ranks, [&](comm::Comm& comm) {
    auto dist = graph::load_distributed(comm, path);
    auto r = core::dist_louvain(comm, std::move(dist), core::DistConfig::etc(0.25));
    if (comm.is_root()) result = std::move(r);
  });

  std::cout << "communities: " << result.num_communities << '\n'
            << "modularity:  " << result.modularity << '\n'
            << "phases:      " << result.phases << ", iterations: "
            << result.total_iterations << '\n';

  std::filesystem::remove(path);
  return 0;
}
