// Social-network scenario: detect communities in an LFR-style social graph
// (power-law degrees, planted communities with tunable mixing) and score the
// result against the known ground truth -- the paper's Section V-D pipeline
// as an application.
//
//   $ ./social_network [--n 2000] [--mu 0.3] [--ranks 4] [--alpha 0.25]
#include <iostream>

#include "core/dist_louvain.hpp"
#include "gen/lfr.hpp"
#include "graph/csr.hpp"
#include "quality/fscore.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  gen::LfrParams params;
  params.num_vertices = cli.get_int("n", 2000, "members of the network");
  params.mu = cli.get_double("mu", 0.3, "mixing: fraction of cross-community ties");
  params.avg_degree = cli.get_double("deg", 20, "average friend count");
  params.max_degree = params.avg_degree * 3;
  params.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, ""));
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  const double alpha = cli.get_double("alpha", 0.25, "ET aggressiveness");
  if (!cli.finish()) return 1;

  const auto generated = gen::lfr(params);
  const auto graph = graph::from_edges(generated.num_vertices, generated.edges);
  std::cout << "social graph: " << graph.num_vertices() << " members, "
            << graph.num_arcs() / 2 << " ties, mixing mu=" << params.mu << "\n\n";

  util::TextTable table(
      {"variant", "communities", "modularity", "precision", "recall", "F-score",
       "iterations"});
  for (const auto& cfg :
       {core::DistConfig::baseline(), core::DistConfig::et(alpha),
        core::DistConfig::etc(alpha)}) {
    const auto result = core::dist_louvain_inprocess(ranks, graph, cfg);
    const auto scores =
        quality::compare_to_ground_truth(result.community, generated.ground_truth);
    table.add_row({core::variant_label(cfg.variant, cfg.base.et_alpha),
                   util::TextTable::fmt(static_cast<long long>(result.num_communities)),
                   util::TextTable::fmt(result.modularity),
                   util::TextTable::fmt(scores.precision),
                   util::TextTable::fmt(scores.recall),
                   util::TextTable::fmt(scores.f_score),
                   util::TextTable::fmt(static_cast<long long>(result.total_iterations))});
  }
  table.print(std::cout);
  std::cout << "\n(ground truth: " << [&] {
    std::size_t k = 0;
    CommunityId max_c = 0;
    for (const auto c : generated.ground_truth) max_c = std::max(max_c, c);
    k = static_cast<std::size_t>(max_c) + 1;
    return k;
  }() << " planted communities)\n";
  return 0;
}
