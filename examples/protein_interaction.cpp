// Biological-network scenario (the paper's introduction motivates community
// detection for "biological sciences"): protein-complex discovery in a
// protein-protein-interaction-style network -- dense complexes (planted
// partition blocks) plus promiscuous hub proteins that blur the boundaries.
// Demonstrates the resolution parameter: complexes are small, so classical
// modularity (gamma = 1) under-resolves them and a higher gamma recovers
// them -- checked against ground truth with F-score and NMI.
//
//   $ ./protein_interaction [--complexes 40] [--size 12] [--ranks 4]
#include <iostream>

#include "core/dist_louvain.hpp"
#include "gen/simple.hpp"
#include "graph/csr.hpp"
#include "quality/fscore.hpp"
#include "quality/nmi.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const int complexes = static_cast<int>(cli.get_int("complexes", 40, "protein complexes"));
  const VertexId size = cli.get_int("size", 12, "proteins per complex");
  const int hubs = static_cast<int>(cli.get_int("hubs", 10, "promiscuous hub proteins"));
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  if (!cli.finish()) return 1;

  // Complexes as dense blocks...
  const VertexId n_core = complexes * size;
  auto network = gen::planted_partition(n_core, complexes, 0.7, 0.004, 2026);
  // ...plus hub proteins interacting with one member of many complexes.
  util::Xoshiro256StarStar rng(7);
  const VertexId n = n_core + hubs;
  for (int h = 0; h < hubs; ++h) {
    const VertexId hub = n_core + h;
    network.ground_truth.push_back(complexes + h);  // hubs are their own "complex"
    for (int c = 0; c < complexes; ++c) {
      if (rng.next_unit() < 0.5) {
        const VertexId member = c * size + static_cast<VertexId>(rng.next_below(
                                               static_cast<std::uint64_t>(size)));
        network.edges.push_back({hub, member, 1.0});
      }
    }
  }
  network.num_vertices = n;
  const auto graph = graph::from_edges(n, network.edges);

  std::cout << "PPI-style network: " << n << " proteins (" << complexes
            << " complexes of " << size << " + " << hubs << " hubs), "
            << graph.num_arcs() / 2 << " interactions\n\n";

  util::TextTable table({"gamma", "found complexes", "modularity Q_g", "precision",
                         "recall", "F-score", "NMI"});
  for (const double gamma : {0.5, 1.0, 2.0, 4.0}) {
    core::DistConfig cfg;
    cfg.base.resolution = gamma;
    const auto result = core::dist_louvain_inprocess(ranks, graph, cfg);
    const auto scores =
        quality::compare_to_ground_truth(result.community, network.ground_truth);
    const double nmi =
        quality::normalized_mutual_information(result.community, network.ground_truth);
    table.add_row({util::TextTable::fmt(gamma, 1),
                   util::TextTable::fmt(result.num_communities),
                   util::TextTable::fmt(result.modularity, 4),
                   util::TextTable::fmt(scores.precision, 4),
                   util::TextTable::fmt(scores.recall, 4),
                   util::TextTable::fmt(scores.f_score, 4),
                   util::TextTable::fmt(nmi, 4)});
  }
  table.print(std::cout);
  std::cout << "\n(higher gamma resolves small complexes that classical modularity"
               " merges -- the resolution limit in action)\n";
  return 0;
}
