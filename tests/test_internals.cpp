// Direct unit tests for the distributed Louvain's internal machinery:
// CommunityLedger (authoritative community info + delta protocol),
// GhostField (mirror-push exchange), DistGraph::validate, and the
// distributed binary writer -- exercised in isolation rather than through
// full Louvain runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "comm/world.hpp"
#include "core/community_state.hpp"
#include "core/ghost_exchange.hpp"
#include "gen/simple.hpp"
#include "graph/binary_io.hpp"
#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"

namespace core = dlouvain::core;
namespace dg = dlouvain::graph;
namespace gen = dlouvain::gen;
namespace dc = dlouvain::comm;
using dlouvain::CommunityId;
using dlouvain::Edge;
using dlouvain::VertexId;
using dlouvain::Weight;

namespace {

dg::Csr path_graph(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 1.0});
  return dg::from_edges(n, edges);
}

}  // namespace

// ---- GhostField ---------------------------------------------------------------

TEST(GhostField, IdentityInitHoldsGhostIds) {
  const auto g = path_graph(8);
  dc::run(4, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    const auto field = core::GhostField<VertexId>::identity(dist);
    for (const VertexId ghost : dist.ghosts()) EXPECT_EQ(field.of(ghost), ghost);
  });
}

TEST(GhostField, FillInitHoldsFillValue) {
  const auto g = path_graph(8);
  dc::run(4, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    const core::GhostField<std::int64_t> field(dist, -7);
    for (const VertexId ghost : dist.ghosts()) EXPECT_EQ(field.of(ghost), -7);
  });
}

TEST(GhostField, ExchangePropagatesOwnedValues) {
  const auto g = path_graph(10);
  for (const bool sparse : {true, false}) {
    dc::run(3, [&](dc::Comm& comm) {
      const auto dist = dg::DistGraph::from_replicated(comm, g);
      // Owned value = 1000 + global id.
      std::vector<std::int64_t> owned(static_cast<std::size_t>(dist.local_count()));
      for (VertexId lv = 0; lv < dist.local_count(); ++lv)
        owned[static_cast<std::size_t>(lv)] = 1000 + dist.to_global(lv);
      core::GhostField<std::int64_t> field(dist, 0);
      field.exchange(comm, owned, sparse);
      for (const VertexId ghost : dist.ghosts()) EXPECT_EQ(field.of(ghost), 1000 + ghost);
    });
  }
}

TEST(GhostField, AtThrowsForNonGhost) {
  const auto g = path_graph(6);
  dc::run(2, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    const core::GhostField<std::int64_t> field(dist, 0);
    // An owned vertex is never a ghost; the checked accessor reports it.
    EXPECT_THROW((void)field.at(dist.v_begin()), std::out_of_range);
  });
}

TEST(GhostField, DeltaExchangeMatchesDenseAndReportsChanges) {
  const auto g = path_graph(10);
  dc::run(3, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    std::vector<std::int64_t> owned(static_cast<std::size_t>(dist.local_count()));
    for (VertexId lv = 0; lv < dist.local_count(); ++lv)
      owned[static_cast<std::size_t>(lv)] = dist.to_global(lv);

    core::GhostField<std::int64_t> dense_field(dist, 0);
    core::GhostField<std::int64_t> delta_field(dist, 0);
    core::GhostExchangeConfig dense_cfg;
    dense_cfg.mode = core::GhostExchangeMode::kDense;
    core::GhostExchangeConfig delta_cfg;
    delta_cfg.mode = core::GhostExchangeMode::kDelta;

    // Round 1: everything differs from the fill value.
    dense_field.exchange(comm, owned, dense_cfg);
    delta_field.exchange(comm, owned, delta_cfg);
    EXPECT_EQ(dense_field.values(), delta_field.values());
    EXPECT_EQ(dense_field.last_changes().size(), delta_field.last_changes().size());

    // Round 2: nothing moved; neither mode may report changes.
    dense_field.exchange(comm, owned, dense_cfg);
    delta_field.exchange(comm, owned, delta_cfg);
    EXPECT_TRUE(dense_field.last_changes().empty());
    EXPECT_TRUE(delta_field.last_changes().empty());

    // Round 3: one owned value changes; both modes agree again and the
    // change log carries the old value.
    owned[0] = -owned[0] - 1;
    dense_field.exchange(comm, owned, dense_cfg);
    delta_field.exchange(comm, owned, delta_cfg);
    EXPECT_EQ(dense_field.values(), delta_field.values());
    EXPECT_EQ(dense_field.last_changes().size(), delta_field.last_changes().size());
    for (std::size_t i = 0; i < dense_field.last_changes().size(); ++i) {
      EXPECT_EQ(dense_field.last_changes()[i].slot, delta_field.last_changes()[i].slot);
      EXPECT_EQ(dense_field.last_changes()[i].old_value,
                delta_field.last_changes()[i].old_value);
    }
  });
}

// ---- CommunityLedger -------------------------------------------------------------

TEST(CommunityLedger, InitialStateIsSingletons) {
  const auto g = path_graph(6);
  dc::run(2, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    core::CommunityLedger ledger(dist);
    for (VertexId lv = 0; lv < dist.local_count(); ++lv) {
      const VertexId gv = dist.to_global(lv);
      EXPECT_EQ(ledger.info(gv).size, 1);
      EXPECT_DOUBLE_EQ(ledger.info(gv).degree, dist.weighted_degree(gv));
    }
  });
}

TEST(CommunityLedger, LocalMoveUpdatesBothSides) {
  const auto g = path_graph(6);
  dc::run(1, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    core::CommunityLedger ledger(dist);
    // Move vertex 0 (degree 1) from community 0 to community 1.
    ledger.apply_move(0, 1, dist.weighted_degree(0));
    EXPECT_EQ(ledger.info(0).size, 0);
    EXPECT_DOUBLE_EQ(ledger.info(0).degree, 0.0);
    EXPECT_EQ(ledger.info(1).size, 2);
    EXPECT_DOUBLE_EQ(ledger.info(1).degree,
                     dist.weighted_degree(0) + dist.weighted_degree(1));
  });
}

TEST(CommunityLedger, RemoteMoveFlowsThroughDeltas) {
  // Path 0-1-2-3 over 2 ranks: rank 0 owns {0,1}, rank 1 owns {2,3}
  // (even-vertex partition). Rank 0 moves vertex 1 into community 2 (owned
  // by rank 1); after flush, rank 1's ledger must reflect it.
  const auto g = path_graph(4);
  dc::run(2, [&](dc::Comm& comm) {
    const auto dist =
        dg::DistGraph::from_replicated(comm, g, dg::PartitionKind::kEvenVertices);
    core::CommunityLedger ledger(dist);

    // Both ranks retain their ghost communities and refresh, so rank 0 has
    // community 2 in its ghost cache.
    for (const auto ghost : dist.ghosts()) ledger.retain(ghost);
    ledger.refresh(comm);

    if (comm.rank() == 0) {
      ledger.apply_move(1, 2, dist.weighted_degree(1));
      // The cached ghost copy updates immediately...
      EXPECT_EQ(ledger.info(2).size, 2);
    }
    ledger.flush_deltas(comm);
    if (comm.rank() == 1) {
      // ...and the authoritative copy after the flush.
      EXPECT_EQ(ledger.info(2).size, 2);
      EXPECT_DOUBLE_EQ(ledger.info(2).degree, 2.0 + 2.0);  // k_2 + k_1, both interior
    }
  });
}

TEST(CommunityLedger, SurvivorCountTracksEmptiedCommunities) {
  const auto g = path_graph(4);
  dc::run(1, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    core::CommunityLedger ledger(dist);
    EXPECT_EQ(ledger.owned_survivors(), 4);
    ledger.apply_move(0, 1, dist.weighted_degree(0));
    ledger.apply_move(3, 2, dist.weighted_degree(3));
    EXPECT_EQ(ledger.owned_survivors(), 2);
  });
}

TEST(CommunityLedger, DegreeTermMatchesDefinition) {
  const auto g = path_graph(5);
  dc::run(1, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    core::CommunityLedger ledger(dist);
    // Singletons: sum k^2 = 1 + 4 + 4 + 4 + 1.
    EXPECT_DOUBLE_EQ(ledger.owned_degree_term(), 14.0);
  });
}

TEST(CommunityLedger, MoveToUncachedCommunityThrows) {
  const auto g = path_graph(6);
  dc::run(2, [&](dc::Comm& comm) {
    const auto dist =
        dg::DistGraph::from_replicated(comm, g, dg::PartitionKind::kEvenVertices);
    core::CommunityLedger ledger(dist);
    // No refresh performed: a move touching a remote community must throw
    // (protocol bug detector).
    const VertexId mine = dist.v_begin();
    const VertexId remote = comm.rank() == 0 ? 5 : 0;
    EXPECT_THROW(ledger.apply_move(mine, remote, 1.0), std::out_of_range);
  });
}

// ---- DistGraph::validate -----------------------------------------------------------

TEST(DistGraphValidate, PassesOnWellFormedGraphs) {
  const auto graph = gen::clique_chain(5, 4);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  for (int p : {1, 2, 3, 4}) {
    dc::run(p, [&](dc::Comm& comm) {
      const auto dist = dg::DistGraph::from_replicated(comm, g);
      EXPECT_NO_THROW(dist.validate(comm));
    });
  }
}

TEST(DistGraphValidate, CatchesAsymmetricArcs) {
  dc::run(2, [](dc::Comm& comm) {
    // Hand-build an ASYMMETRIC distributed graph: only rank 0 contributes
    // the arc 0->3, no reverse. build() with symmetrize=false keeps it.
    const auto part = dg::partition_even_vertices(4, 2);
    std::vector<Edge> arcs;
    if (comm.rank() == 0) arcs.push_back({0, 3, 1.0});
    const auto dist = dg::DistGraph::build(comm, part, std::move(arcs), false);
    EXPECT_THROW(dist.validate(comm), std::logic_error);
  });
}

// ---- Distributed binary writer ---------------------------------------------------

TEST(WriteDistributed, RoundTripsThroughTheFileFormat) {
  const auto graph = gen::clique_chain(6, 5);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto path = std::filesystem::temp_directory_path() / "dlel_distwrite.bin";

  for (int p : {1, 2, 3}) {
    dc::run(p, [&](dc::Comm& comm) {
      const auto dist = dg::DistGraph::from_replicated(comm, g);
      dg::write_distributed(comm, dist, path.string());
      comm.barrier();
      // Reload and compare global invariants.
      const auto reloaded = dg::load_distributed(comm, path.string());
      EXPECT_EQ(reloaded.global_n(), g.num_vertices());
      EXPECT_EQ(reloaded.global_arcs(), g.num_arcs());
      EXPECT_DOUBLE_EQ(reloaded.total_weight(), g.total_arc_weight());
      EXPECT_NO_THROW(reloaded.validate(comm));
    });
    // Header says each undirected edge exactly once.
    const auto header = dg::read_binary_header(path.string());
    EXPECT_EQ(header.num_edges, g.num_arcs() / 2) << "p=" << p;
    std::filesystem::remove(path);
  }
}

TEST(WriteDistributed, PreservesWeightsAndSelfLoops) {
  // Graph with a self loop and non-unit weights.
  dg::BuildOptions opts;
  const auto g = dg::build_csr(3, {{0, 0, 2.5}, {0, 1, 1.5}, {1, 2, 3.0}}, opts);
  const auto path = std::filesystem::temp_directory_path() / "dlel_weights.bin";
  dc::run(2, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    dg::write_distributed(comm, dist, path.string());
    const auto reloaded = dg::load_distributed(comm, path.string());
    EXPECT_DOUBLE_EQ(reloaded.total_weight(), g.total_arc_weight());
  });
  std::filesystem::remove(path);
}
