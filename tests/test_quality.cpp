// Tests for the ground-truth quality metrics (precision / recall / F-score,
// paper Section V-D methodology).
#include <gtest/gtest.h>

#include "gen/lfr.hpp"
#include "graph/csr.hpp"
#include "louvain/serial.hpp"
#include "quality/fscore.hpp"
#include "quality/nmi.hpp"
#include "quality/summary.hpp"

namespace dq = dlouvain::quality;
using dlouvain::CommunityId;

TEST(Quality, PerfectMatchScoresOne) {
  const std::vector<CommunityId> truth{0, 0, 1, 1, 2, 2};
  const std::vector<CommunityId> detected{5, 5, 9, 9, 7, 7};  // ids may differ
  const auto s = dq::compare_to_ground_truth(detected, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f_score, 1.0);
  EXPECT_EQ(s.ground_truth_communities, 3u);
  EXPECT_EQ(s.detected_communities, 3u);
}

TEST(Quality, MergingCommunitiesKeepsRecallOne) {
  // Detector merged the two truth communities into one: recall stays 1.0,
  // precision halves -- the Table VII signature.
  const std::vector<CommunityId> truth{0, 0, 1, 1};
  const std::vector<CommunityId> detected{3, 3, 3, 3};
  const auto s = dq::compare_to_ground_truth(detected, truth);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_NEAR(s.f_score, 2 * 0.5 / 1.5, 1e-12);
}

TEST(Quality, SplittingCommunitiesKeepsPrecisionOne) {
  const std::vector<CommunityId> truth{0, 0, 0, 0};
  const std::vector<CommunityId> detected{1, 1, 2, 2};
  const auto s = dq::compare_to_ground_truth(detected, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
}

TEST(Quality, WeightsBySizeNotByCommunityCount) {
  // One big perfect community (8 vertices) + one tiny merged pair: the
  // aggregate is dominated by the big one.
  std::vector<CommunityId> truth(8, 0);
  std::vector<CommunityId> detected(8, 0);
  truth.insert(truth.end(), {1, 2});
  detected.insert(detected.end(), {9, 9});
  const auto s = dq::compare_to_ground_truth(detected, truth);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_GT(s.precision, 0.8);  // 8/10 * 1.0 + 2/10 * 0.5
  EXPECT_NEAR(s.precision, 0.9, 1e-12);
}

TEST(Quality, RejectsBadInput) {
  const std::vector<CommunityId> a{0, 1};
  const std::vector<CommunityId> b{0};
  EXPECT_THROW((void)dq::compare_to_ground_truth(a, b), std::invalid_argument);
  EXPECT_THROW((void)dq::compare_to_ground_truth({}, {}), std::invalid_argument);
}

TEST(Quality, LouvainOnLfrScoresHigh) {
  // End-to-end smoke of the Section V-D pipeline: LFR with mild mixing,
  // serial Louvain, scores near 1 with recall >= precision.
  dlouvain::gen::LfrParams p;
  p.num_vertices = 600;
  p.avg_degree = 16;
  p.max_degree = 48;
  p.mu = 0.1;
  const auto graph = dlouvain::gen::lfr(p);
  const auto g = dlouvain::graph::from_edges(graph.num_vertices, graph.edges);
  const auto result = dlouvain::louvain::louvain_serial(g);
  const auto s = dq::compare_to_ground_truth(result.community, graph.ground_truth);
  EXPECT_GT(s.f_score, 0.85);
  EXPECT_GE(s.recall, s.precision - 1e-9);
}

// ---- NMI -------------------------------------------------------------------

TEST(Nmi, IdenticalPartitionsScoreOne) {
  const std::vector<CommunityId> a{0, 0, 1, 1, 2, 2};
  const std::vector<CommunityId> b{7, 7, 3, 3, 9, 9};  // relabeled
  EXPECT_NEAR(dq::normalized_mutual_information(a, b), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionsScoreNearZero) {
  // a splits front/back halves; b alternates: I(a;b) = 0 exactly.
  const std::vector<CommunityId> a{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<CommunityId> b{0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(dq::normalized_mutual_information(a, b), 0.0, 1e-12);
}

TEST(Nmi, MergedPartitionScoresBetweenZeroAndOne) {
  const std::vector<CommunityId> truth{0, 0, 1, 1, 2, 2, 3, 3};
  const std::vector<CommunityId> merged{0, 0, 0, 0, 1, 1, 1, 1};
  const double nmi = dq::normalized_mutual_information(merged, truth);
  EXPECT_GT(nmi, 0.3);
  EXPECT_LT(nmi, 1.0);
  // Symmetric by definition.
  EXPECT_NEAR(nmi, dq::normalized_mutual_information(truth, merged), 1e-12);
}

TEST(Nmi, TrivialPartitionsScoreOne) {
  const std::vector<CommunityId> a{5, 5, 5};
  const std::vector<CommunityId> b{1, 1, 1};
  EXPECT_DOUBLE_EQ(dq::normalized_mutual_information(a, b), 1.0);
}

TEST(Nmi, RejectsBadInput) {
  const std::vector<CommunityId> a{0, 1};
  const std::vector<CommunityId> b{0};
  EXPECT_THROW((void)dq::normalized_mutual_information(a, b), std::invalid_argument);
}

TEST(Nmi, HighOnEasyLfr) {
  dlouvain::gen::LfrParams p;
  p.num_vertices = 500;
  p.avg_degree = 16;
  p.max_degree = 48;
  p.mu = 0.1;
  const auto graph = dlouvain::gen::lfr(p);
  const auto g = dlouvain::graph::from_edges(graph.num_vertices, graph.edges);
  const auto result = dlouvain::louvain::louvain_serial(g);
  EXPECT_GT(dq::normalized_mutual_information(result.community, graph.ground_truth), 0.8);
}

// ---- Community summaries -----------------------------------------------------

TEST(Summary, TwoTrianglesWithBridge) {
  const auto g = dlouvain::graph::from_edges(
      6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {3, 4, 1}, {4, 5, 1}, {3, 5, 1}, {2, 3, 1}});
  const std::vector<CommunityId> part{0, 0, 0, 1, 1, 1};
  const auto summaries = dq::summarize_communities(g, part);
  ASSERT_EQ(summaries.size(), 2u);
  for (const auto& s : summaries) {
    EXPECT_EQ(s.size, 3);
    EXPECT_DOUBLE_EQ(s.internal_weight, 3.0);  // each triangle: 3 edges
    EXPECT_DOUBLE_EQ(s.boundary_weight, 1.0);  // the bridge
    EXPECT_DOUBLE_EQ(s.total_degree, 7.0);
    EXPECT_NEAR(s.conductance, 1.0 / 7.0, 1e-12);
  }
  // Coverage: 12 of 14 arc weight is intra.
  EXPECT_NEAR(dq::coverage(g, part), 12.0 / 14.0, 1e-12);
}

TEST(Summary, SortsByDescendingSize) {
  const auto g = dlouvain::graph::from_edges(5, {{0, 1, 1}, {2, 3, 1}, {3, 4, 1}, {2, 4, 1}});
  const std::vector<CommunityId> part{7, 7, 9, 9, 9};
  const auto summaries = dq::summarize_communities(g, part);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].id, 9);
  EXPECT_EQ(summaries[0].size, 3);
  EXPECT_EQ(summaries[1].id, 7);
}

TEST(Summary, SelfLoopsCountAsInternal) {
  dlouvain::graph::BuildOptions opts;
  const auto g = dlouvain::graph::build_csr(2, {{0, 0, 2.0}, {0, 1, 1.0}}, opts);
  const std::vector<CommunityId> part{0, 1};
  const auto summaries = dq::summarize_communities(g, part);
  const auto& big = summaries[0].id == 0 ? summaries[0] : summaries[1];
  EXPECT_DOUBLE_EQ(big.internal_weight, 2.0);
  EXPECT_DOUBLE_EQ(big.boundary_weight, 1.0);
}

TEST(Summary, CoverageIsOneWhenEverythingIntra) {
  const auto g = dlouvain::graph::from_edges(3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}});
  const std::vector<CommunityId> one(3, 0);
  EXPECT_DOUBLE_EQ(dq::coverage(g, one), 1.0);
}
