// Trustworthy-telemetry guarantees (ISSUE 4), pinned as tests:
//
//  * tracing is an OBSERVER: enabling --trace-out changes no result bit at
//    any thread count, and the PR3 golden constants hold with tracing on;
//  * counter totals are wire-mode independent where the algorithm is
//    (messages), and the named-counter catalog is internally consistent
//    (whole-job totals == restored + executed, ghost bytes split by mode);
//  * the run manifest (Result::to_json) is valid, stable and deterministic;
//  * satellite 1: a crashed-and-restarted run reports the SAME algorithm
//    traffic as a clean run -- discarded attempts land in
//    recovery.wasted_messages/bytes, never in Result::messages;
//  * satellite 2: per-phase TimeBreakdowns sum to the run breakdown and
//    never exceed their phase's wall time (no double counting);
//  * satellite 3: counters survive checkpoint/resume (v2 counters.bin) and
//    a v1-era checkpoint without counters.bin still resumes, with restored
//    counters reading zero.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "comm/world.hpp"
#include "core/checkpoint.hpp"
#include "core/metrics.hpp"
#include "dlouvain.hpp"
#include "gen/rmat.hpp"
#include "graph/csr.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace {

using namespace dlouvain;
namespace dc = dlouvain::comm;

graph::Csr rmat10() {
  gen::RmatParams p;
  p.scale = 10;
  p.edges_per_vertex = 8;
  p.seed = 42;
  const auto g = gen::rmat(p);
  return graph::from_edges(g.num_vertices, g.edges);
}

graph::Csr rmat8() {
  gen::RmatParams p;
  p.scale = 8;
  p.edges_per_vertex = 8;
  p.seed = 42;
  const auto g = gen::rmat(p);
  return graph::from_edges(g.num_vertices, g.edges);
}

std::filesystem::path fresh_dir(const std::string& name) {
  auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::filesystem::path scratch_file(const std::string& name) {
  auto path = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove(path);
  return path;
}

std::uint32_t crc_of(const std::vector<CommunityId>& v) {
  return util::crc32(v.data(), v.size() * sizeof(CommunityId));
}

std::int64_t counter(const Result& r, util::Counter c) {
  return r.distributed->counters[c];
}

// ---- tracing is a pure observer ---------------------------------------------

TEST(Tracing, TraceOnIsBitwiseIdenticalAcrossThreadCounts) {
  const auto g = rmat10();
  for (const int threads : {1, 4, 16}) {
    const auto plain = Plan::distributed(4).threads(threads).seed(123).run(g);
    const auto traced_path =
        scratch_file("dl_trace_t" + std::to_string(threads) + ".json");
    const auto traced = Plan::distributed(4)
                            .threads(threads)
                            .seed(123)
                            .trace(traced_path.string())
                            .run(g);
    const auto label = "threads " + std::to_string(threads);
    EXPECT_EQ(traced.community, plain.community) << label;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(traced.modularity),
              std::bit_cast<std::uint64_t>(plain.modularity))
        << label;
    EXPECT_EQ(traced.distributed->messages, plain.distributed->messages) << label;
    EXPECT_EQ(traced.distributed->bytes, plain.distributed->bytes) << label;
    // The full named-counter vector must match too (busy_seconds is wall
    // clock and legitimately differs).
    EXPECT_EQ(traced.distributed->counters.values, plain.distributed->counters.values)
        << label;
    EXPECT_TRUE(std::filesystem::exists(traced_path)) << label;
    std::filesystem::remove(traced_path);
  }
}

TEST(Tracing, GoldenConstantsHoldWithTracingEnabled) {
  // Same golden bits test_hotpath pins for the untraced dist p4 run
  // (re-baselined for the ISSUE 5 interior-first schedule).
  const auto g = rmat10();
  const auto path = scratch_file("dl_trace_golden.json");
  const auto r =
      Plan::distributed(4).threads(1).seed(123).trace(path.string()).run(g);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.modularity), 0x3fc41f2c83fa1be6ULL);
  EXPECT_EQ(crc_of(r.community), 0xa7beaffcu);
  EXPECT_EQ(r.num_communities, 223);
  EXPECT_EQ(r.phases, 5);
  EXPECT_EQ(r.total_iterations, 22);
  std::filesystem::remove(path);
}

TEST(Tracing, SerialEngineWritesAnEmptyButValidTrace) {
  const auto path = scratch_file("dl_trace_serial.json");
  (void)Plan::serial().seed(123).trace(path.string()).run(rmat8());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  std::filesystem::remove(path);
}

// ---- counter catalog consistency --------------------------------------------

TEST(Counters, MessagesMatchAcrossWireModes) {
  // The wire format changes BYTES, never message counts or results; and a
  // fresh run's whole-job totals equal its executed-portion counters.
  const auto g = rmat10();
  std::vector<Result> results;
  for (const auto mode : {GhostExchangeMode::kDense, GhostExchangeMode::kDelta,
                          GhostExchangeMode::kAuto}) {
    results.push_back(
        Plan::distributed(4).threads(1).seed(123).exchange(mode).run(g));
  }
  for (const auto& r : results) {
    EXPECT_EQ(r.distributed->messages, results[0].distributed->messages);
    EXPECT_EQ(r.distributed->restored.messages, 0);
    EXPECT_EQ(r.distributed->messages, counter(r, util::Counter::kMessages));
    EXPECT_EQ(r.distributed->bytes, counter(r, util::Counter::kBytes));
    EXPECT_GT(counter(r, util::Counter::kGhostRecordsShipped), 0);
  }
  // Mode-split ghost byte counters: dense mode never ships delta payloads
  // and vice versa; auto picks per destination but ships SOMETHING.
  const auto& dense = results[0];
  const auto& delta = results[1];
  const auto& autom = results[2];
  EXPECT_GT(counter(dense, util::Counter::kGhostBytesDense), 0);
  EXPECT_EQ(counter(dense, util::Counter::kGhostBytesDelta), 0);
  EXPECT_GT(counter(delta, util::Counter::kGhostBytesDelta), 0);
  EXPECT_EQ(counter(delta, util::Counter::kGhostBytesDense), 0);
  EXPECT_GT(counter(autom, util::Counter::kGhostBytesDense) +
                counter(autom, util::Counter::kGhostBytesDelta),
            0);
  // Ghost traffic is a subset of all algorithm traffic.
  for (const auto& r : results) {
    EXPECT_LE(counter(r, util::Counter::kGhostBytesDense) +
                  counter(r, util::Counter::kGhostBytesDelta),
              r.distributed->bytes);
  }
}

TEST(Counters, CheckpointTrafficIsReclassifiedNotCounted) {
  // Runs with and without checkpointing report the SAME algorithm traffic;
  // checkpoint I/O shows up only under the checkpoint.* counters. This is
  // the PERFORMANCE.md fix: `bytes` never covered checkpoint I/O, now the
  // manifest says where it went.
  const auto g = rmat8();
  const auto plain = Plan::distributed(2).threads(1).seed(123).run(g);
  const auto dir = fresh_dir("dl_ctr_ckpt");
  const auto ckpt = Plan::distributed(2)
                        .threads(1)
                        .seed(123)
                        .checkpointing(dir.string(), 1)
                        .run(g);
  EXPECT_EQ(ckpt.distributed->messages, plain.distributed->messages);
  EXPECT_EQ(ckpt.distributed->bytes, plain.distributed->bytes);
  EXPECT_GT(counter(ckpt, util::Counter::kCheckpointMessages), 0);
  EXPECT_GT(counter(ckpt, util::Counter::kCheckpointBytes), 0);
  EXPECT_GT(counter(ckpt, util::Counter::kCheckpointFileBytes), 0);
  EXPECT_EQ(counter(plain, util::Counter::kCheckpointMessages), 0);
  EXPECT_EQ(counter(plain, util::Counter::kCheckpointFileBytes), 0);
  std::filesystem::remove_all(dir);
}

// ---- satellite 2: per-phase breakdown sums ----------------------------------

TEST(Breakdown, PhaseBreakdownsSumToRunBreakdownAndFitTheirPhase) {
  // Regression for the double-counting bug: un-cleared timers folded phases
  // 0..N-1 into phase N's breakdown, so phase breakdowns (a) summed to far
  // more than the run breakdown and (b) exceeded their own phase's wall
  // time. Both are now pinned.
  const auto r = Plan::distributed(4).threads(2).seed(123).run(rmat10());
  const auto& d = *r.distributed;
  ASSERT_GE(d.phases, 2);

  core::TimeBreakdown sum;
  for (const auto& ph : d.phase_telemetry) sum += ph.breakdown;
  const double tol = 1e-9 + 1e-6 * d.breakdown.total();
  EXPECT_NEAR(sum.ghost_exchange, d.breakdown.ghost_exchange, tol);
  EXPECT_NEAR(sum.community_info, d.breakdown.community_info, tol);
  EXPECT_NEAR(sum.compute, d.breakdown.compute, tol);
  EXPECT_NEAR(sum.delta_exchange, d.breakdown.delta_exchange, tol);
  EXPECT_NEAR(sum.allreduce, d.breakdown.allreduce, tol);
  EXPECT_NEAR(sum.rebuild, d.breakdown.rebuild, tol);
  EXPECT_NEAR(sum.compute_busy, d.breakdown.compute_busy, tol);

  // Every timed section lives inside its phase's wall clock; a breakdown
  // exceeding the phase duration can only come from double counting.
  for (const auto& ph : d.phase_telemetry) {
    EXPECT_LE(ph.breakdown.total(), ph.seconds + 0.05)
        << "phase " << ph.phase << " breakdown exceeds its wall time";
  }
  EXPECT_LE(d.breakdown.total(), d.seconds + 0.25);
}

// ---- satellite 1: restart traffic is wasted, not leaked ---------------------

TEST(Recovery, CrashedRunReportsCleanTrafficPlusWaste) {
  // Both plans pin the kEvenVertices original partition: a resume re-slices
  // the original-vertex bookkeeping (orig_to_cur) under kEvenVertices, so
  // only with a matching original partition are the self/remote payload
  // splits -- and therefore BYTE counts -- identical to the clean run.
  // (Message counts and results are partition-independent either way.)
  const auto g = rmat8();
  const auto clean_dir = fresh_dir("dl_waste_clean");
  const auto clean = Plan::distributed(2)
                         .threads(1)
                         .seed(123)
                         .partition(graph::PartitionKind::kEvenVertices)
                         .checkpointing(clean_dir.string(), 1)
                         .run(g);
  ASSERT_GE(clean.phases, 2) << "fixture must run multiple phases";
  EXPECT_EQ(clean.recovery.attempts, 1);
  EXPECT_EQ(clean.recovery.wasted_messages, 0);
  EXPECT_EQ(clean.recovery.wasted_bytes, 0);

  const auto crash_dir = fresh_dir("dl_waste_crash");
  const auto crashed = Plan::distributed(2)
                           .threads(1)
                           .seed(123)
                           .partition(graph::PartitionKind::kEvenVertices)
                           .checkpointing(crash_dir.string(), 1)
                           .inject_faults(dc::FaultPlan().crash(1, 1))
                           .max_restarts(2)
                           .run(g);
  EXPECT_GT(crashed.recovery.attempts, 1);
  EXPECT_EQ(crashed.community, clean.community);

  // The leak this fixes: the completed run reports exactly the clean run's
  // traffic -- whole-job totals restored from the checkpoint plus what the
  // surviving attempt executed, nothing from the discarded attempt.
  EXPECT_EQ(crashed.distributed->messages, clean.distributed->messages);
  EXPECT_EQ(crashed.distributed->bytes, clean.distributed->bytes);
  EXPECT_EQ(crashed.distributed->messages,
            crashed.distributed->restored.messages +
                counter(crashed, util::Counter::kMessages));

  // The discarded attempt's traffic is reported, separately.
  EXPECT_GT(crashed.recovery.wasted_messages, 0);
  EXPECT_GT(crashed.recovery.wasted_bytes, 0);
  EXPECT_GT(crashed.recovery.injected_crashes, 0);

  std::filesystem::remove_all(clean_dir);
  std::filesystem::remove_all(crash_dir);
}

// ---- satellite 3: counters across checkpoint/resume -------------------------

TEST(Resume, WholeJobTotalsAreSelfConsistentAfterResume) {
  const auto g = rmat8();
  const auto dir = fresh_dir("dl_resume_ctr");
  const auto first = Plan::distributed(2)
                         .threads(1)
                         .seed(123)
                         .checkpointing(dir.string(), 1)
                         .run(g);
  ASSERT_GE(first.phases, 2);

  const auto banked = core::checkpoint_latest_counters(dir.string());
  ASSERT_TRUE(banked.has_value()) << "v2 checkpoints must persist counters";
  EXPECT_GT(banked->messages, 0);
  EXPECT_GT(banked->seconds, 0);
  EXPECT_LE(banked->messages, first.distributed->messages);

  const auto resumed =
      Plan::distributed(2).threads(1).seed(123).resume(dir.string()).run(g);
  ASSERT_GE(resumed.distributed->resumed_from_phase, 0);
  EXPECT_EQ(resumed.distributed->restored.messages, banked->messages);
  EXPECT_EQ(resumed.distributed->restored.bytes, banked->bytes);
  // The satellite-3 rule: reported totals are whole-job = restored +
  // executed, mirroring what phases/total_iterations always did.
  EXPECT_EQ(resumed.distributed->messages,
            resumed.distributed->restored.messages +
                counter(resumed, util::Counter::kMessages));
  EXPECT_EQ(resumed.distributed->bytes,
            resumed.distributed->restored.bytes +
                counter(resumed, util::Counter::kBytes));
  EXPECT_GE(resumed.distributed->seconds, resumed.distributed->restored.seconds);
  std::filesystem::remove_all(dir);
}

TEST(Resume, V1CheckpointWithoutCountersStillResumes) {
  // A pre-v2 checkpoint has no counters.bin. Deleting the sidecar simulates
  // one: the resume must succeed with restored counters reading zero -- a
  // missing sidecar NEVER invalidates the checkpoint.
  const auto g = rmat8();
  const auto dir = fresh_dir("dl_resume_v1");
  const auto first = Plan::distributed(2)
                         .threads(1)
                         .seed(123)
                         .checkpointing(dir.string(), 1)
                         .run(g);
  ASSERT_GE(first.phases, 2);

  int removed = 0;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().filename() == "counters.bin") {
      std::filesystem::remove(entry.path());
      ++removed;
    }
  }
  ASSERT_GT(removed, 0) << "v2 checkpoints must write counters.bin";
  EXPECT_FALSE(core::checkpoint_latest_counters(dir.string()).has_value() &&
               core::checkpoint_latest_counters(dir.string())->messages != 0);

  const auto resumed =
      Plan::distributed(2).threads(1).seed(123).resume(dir.string()).run(g);
  ASSERT_GE(resumed.distributed->resumed_from_phase, 0);
  EXPECT_EQ(resumed.community, first.community);
  EXPECT_EQ(resumed.distributed->restored.messages, 0);
  EXPECT_EQ(resumed.distributed->restored.bytes, 0);
  EXPECT_EQ(resumed.distributed->restored.seconds, 0);
  // Self-consistency still holds: totals cover exactly what ran here.
  EXPECT_EQ(resumed.distributed->messages,
            counter(resumed, util::Counter::kMessages));
  std::filesystem::remove_all(dir);
}

// ---- the run manifest -------------------------------------------------------

/// Minimal structural JSON check: balanced braces/brackets outside strings.
void expect_balanced_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Manifest, ToJsonIsValidStableAndDeterministic) {
  const auto g = rmat8();
  const auto r = Plan::distributed(2).threads(1).seed(123).run(g);
  const auto json = r.to_json();
  expect_balanced_json(json);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"schema\":\"dlouvain-run-manifest/5\""), std::string::npos);
  EXPECT_NE(json.find("\"engine\":\"distributed\""), std::string::npos);
  EXPECT_NE(json.find("\"updates\":{\"batches_applied\":0"), std::string::npos);
  EXPECT_NE(json.find("\"comm.messages\":"), std::string::npos);
  EXPECT_NE(json.find("\"recovery\":{"), std::string::npos);
  EXPECT_NE(json.find("\"phases_detail\":["), std::string::npos);

  // Same Result -> same string (round-trip stability)...
  EXPECT_EQ(r.to_json(), json);
  // ...and a re-run differs only in wall-clock fields: the deterministic
  // counter section must be byte-identical.
  const auto again = Plan::distributed(2).threads(1).seed(123).run(g);
  const auto extract_counters = [](const std::string& j) {
    const auto from = j.find("\"counters\":");
    const auto to = j.find("\"pool.busy_seconds\"", from);
    return j.substr(from, to - from);
  };
  EXPECT_EQ(extract_counters(again.to_json()), extract_counters(json));
}

TEST(Manifest, SerialAndSharedEnginesEmitValidManifests) {
  const auto g = rmat8();
  for (const auto& r :
       {Plan::serial().seed(123).run(g), Plan::shared(2).seed(123).run(g)}) {
    const auto json = r.to_json();
    expect_balanced_json(json);
    EXPECT_NE(json.find("\"schema\":\"dlouvain-run-manifest/5\""),
              std::string::npos);
    EXPECT_NE(json.find("\"updates\":{"), std::string::npos);
    EXPECT_NE(json.find("\"recovery\":{"), std::string::npos);
  }
}

TEST(Manifest, MetricsOutWritesTheManifestToDisk) {
  const auto g = rmat8();
  const auto path = scratch_file("dl_manifest_out.json");
  const auto r =
      Plan::distributed(2).threads(1).seed(123).metrics(path.string()).run(g);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string on_disk((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, r.to_json() + "\n");
  std::filesystem::remove(path);
}

// ---- util-level unit tests --------------------------------------------------

TEST(TraceBuffer, RingOverwritesOldestAndCountsDrops) {
  const auto epoch = util::TraceBuffer::Clock::now();
  util::TraceBuffer buf(0, epoch, 4);
  for (int i = 0; i < 7; ++i) {
    const auto t = epoch + std::chrono::microseconds(i);
    buf.record("ev", "cat", t, t + std::chrono::microseconds(1), i, -1);
  }
  const auto events = buf.drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(buf.dropped(), 3);
  // Oldest-first, and the three oldest are the ones evicted.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].phase, static_cast<int>(i) + 3);
  }
}

TEST(TraceStore, WritesChromeTraceShape) {
  util::TraceStore store(2, 16);
  {
    const util::TraceSpan span(store.buffer(0), "phase", "phase", 0);
  }
  {
    const util::TraceSpan span(store.buffer(1), "compute", "compute", 0, 1);
  }
  // Out-of-range buffers are null, and null-buffer spans are no-ops.
  EXPECT_EQ(store.buffer(2), nullptr);
  { const util::TraceSpan noop(nullptr, "x", "y"); }

  std::ostringstream out;
  store.write_chrome_trace(out);
  const auto json = out.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"compute\""), std::string::npos);
}

TEST(Metrics, ReclassScopeMovesTrafficAndNests) {
  util::CounterBlock block;
  block[util::Counter::kMessages] = 10;
  block[util::Counter::kBytes] = 100;
  {
    const util::TrafficReclassScope outer(block, util::Counter::kCheckpointMessages,
                                          util::Counter::kCheckpointBytes);
    block[util::Counter::kMessages] += 5;
    block[util::Counter::kBytes] += 50;
    {
      const util::TrafficReclassScope inner(
          block, util::Counter::kCheckpointMessages,
          util::Counter::kCheckpointBytes);
      block[util::Counter::kMessages] += 2;
      block[util::Counter::kBytes] += 20;
    }
    // The inner scope already moved its delta; the outer sees only its own.
    EXPECT_EQ(block[util::Counter::kCheckpointMessages], 2);
  }
  EXPECT_EQ(block[util::Counter::kMessages], 10);
  EXPECT_EQ(block[util::Counter::kBytes], 100);
  EXPECT_EQ(block[util::Counter::kCheckpointMessages], 7);
  EXPECT_EQ(block[util::Counter::kCheckpointBytes], 70);
}

TEST(Metrics, RegistryRejectsNonPositiveRanks) {
  EXPECT_THROW(util::MetricsRegistry(0), std::invalid_argument);
  EXPECT_THROW(util::MetricsRegistry(-3), std::invalid_argument);
  util::MetricsRegistry reg(2);
  reg.rank(0)[util::Counter::kMessages] = 3;
  reg.rank(1)[util::Counter::kMessages] = 4;
  EXPECT_EQ(reg.total()[util::Counter::kMessages], 7);
}

}  // namespace
