// Phase-boundary dynamic load re-balancing (ISSUE 10), pinned as tests:
//
//  * the surplus/deficit model (core/rebalance.hpp) is pure and
//    deterministic: lambda = max/mean, per-rank loads from an explicit
//    histogram, migration stats between two ownership maps, and a decide
//    step that declines below threshold, declines when the edge-balanced
//    candidate is not a STRICT improvement, and engages otherwise;
//  * the decline path is invisible: with the knob on but the threshold
//    never crossed, every result bit (communities, modularity, messages,
//    bytes) matches the rebalance-off run at 1/4/16 threads;
//  * the engaged path is deterministic: identical bits across thread counts
//    and under delay/duplication fault injection, and its clustering is
//    quality-equivalent to the off-run (migration changes sweep orders, so
//    on-vs-off bitwise identity is deliberately NOT claimed -- same reason
//    different-p checkpoint resume is not bitwise, see checkpoint.hpp);
//  * satellite 2: checkpoints record the active ownership map, and a
//    same-p resume onto a MIGRATED partition reproduces the uninterrupted
//    run bit for bit;
//  * satellite 1: the manifest always carries per-phase load_lambda /
//    time_lambda and the v5 "rebalance" object, knob on or off;
//  * the config fingerprint mixes the rebalance knob ONLY when enabled, so
//    pre-existing checkpoints keep resuming under a default config.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/world.hpp"
#include "core/checkpoint.hpp"
#include "core/dist_config.hpp"
#include "core/rebalance.hpp"
#include "dlouvain.hpp"
#include "gen/surrogate.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"

namespace {

using namespace dlouvain;
using core::decide_rebalance;
using core::load_imbalance;
using core::migration_stats;
using core::partition_loads;
namespace dc = dlouvain::comm;

/// The skewed fixture: the twitter-2010 surrogate's coarse graphs carry
/// enough degree skew that an 8-rank run crosses lambda 1.2 at a phase
/// boundary and the edge-balanced candidate strictly improves on it.
graph::Csr skewed_graph() {
  const auto g = gen::surrogate("twitter-2010", 1.0);
  return graph::from_edges(g.num_vertices, g.edges);
}

/// A well-balanced fixture where the default threshold never trips.
graph::Csr balanced_graph() {
  const auto g = gen::surrogate("channel", 0.3);
  return graph::from_edges(g.num_vertices, g.edges);
}

std::filesystem::path fresh_dir(const std::string& name) {
  auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Every bit a rebalance test cares about, comparable with EXPECT_EQ.
struct Bits {
  std::vector<CommunityId> community;
  std::uint64_t modularity_bits;
  std::int64_t messages;
  std::int64_t bytes;
  int phases;

  explicit Bits(const Result& r)
      : community(r.community),
        modularity_bits(std::bit_cast<std::uint64_t>(r.modularity)),
        messages(r.distributed->messages),
        bytes(r.distributed->bytes),
        phases(r.phases) {}

  friend bool operator==(const Bits&, const Bits&) = default;
};

// ---- the pure model -----------------------------------------------------

TEST(RebalanceModel, LoadImbalanceIsMaxOverMean) {
  EXPECT_EQ(load_imbalance(std::vector<std::int64_t>{}), 1.0);
  EXPECT_EQ(load_imbalance(std::vector<std::int64_t>{7}), 1.0);
  EXPECT_EQ(load_imbalance(std::vector<std::int64_t>{10, 10, 10, 10}), 1.0);
  EXPECT_EQ(load_imbalance(std::vector<std::int64_t>{0, 0, 0}), 1.0);
  // mean = 15, max = 30.
  EXPECT_DOUBLE_EQ(load_imbalance(std::vector<std::int64_t>{30, 10, 10, 10}), 2.0);
  EXPECT_DOUBLE_EQ(load_imbalance(std::vector<double>{3.0, 1.0}), 1.5);
  EXPECT_THROW((void)load_imbalance(std::vector<std::int64_t>{5, -1}),
               std::invalid_argument);
}

TEST(RebalanceModel, PartitionLoadsSumsOwnedRanges) {
  // Ranks own [0,2) [2,3) [3,6).
  const graph::Partition1D part(std::vector<VertexId>{0, 2, 3, 6});
  const std::vector<std::int64_t> hist{5, 1, 10, 2, 2, 2};
  const auto loads = partition_loads(part, hist);
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_EQ(loads[0], 6);
  EXPECT_EQ(loads[1], 10);
  EXPECT_EQ(loads[2], 6);
  EXPECT_THROW((void)partition_loads(part, std::vector<std::int64_t>{1, 2}),
               std::invalid_argument);
}

TEST(RebalanceModel, MigrationStatsCountsMovedRanges) {
  const std::vector<std::int64_t> hist{5, 1, 10, 2, 2, 2};
  const graph::Partition1D from(std::vector<VertexId>{0, 2, 3, 6});
  // All three ranges shift: rank 0 widens to [0,3), rank 1 slides to [3,4),
  // rank 2 shrinks to [4,6). Vertex 2 (10 arcs) moves to rank 0, vertex 3
  // (2 arcs) moves to rank 1.
  const graph::Partition1D to(std::vector<VertexId>{0, 3, 4, 6});
  const auto stats = migration_stats(from, to, hist);
  EXPECT_EQ(stats.ranges_moved, 3);
  EXPECT_EQ(stats.vertices_migrated, 2);
  EXPECT_EQ(stats.arcs_migrated, 12);

  const auto none = migration_stats(from, from, hist);
  EXPECT_EQ(none.ranges_moved, 0);
  EXPECT_EQ(none.vertices_migrated, 0);
  EXPECT_EQ(none.arcs_migrated, 0);

  EXPECT_THROW((void)migration_stats(
                   from, graph::Partition1D(std::vector<VertexId>{0, 6}), hist),
               std::invalid_argument);
}

TEST(RebalanceModel, DecideDeclinesBelowThreshold) {
  // Even split of 8 vertices over 2 ranks is perfectly balanced here.
  const std::vector<std::int64_t> hist(8, 3);
  const auto d = decide_rebalance(8, 2, 1.5, hist);
  EXPECT_TRUE(d.evaluated);
  EXPECT_FALSE(d.engaged);
  EXPECT_DOUBLE_EQ(d.lambda_pre, 1.0);
  EXPECT_DOUBLE_EQ(d.lambda_post, 1.0);
  EXPECT_EQ(d.partition, graph::partition_even_vertices(8, 2));
  EXPECT_EQ(d.stats.vertices_migrated, 0);
}

TEST(RebalanceModel, DecideEngagesOnFixableSkew) {
  // 8 vertices, 2 ranks. Even split puts the four heavy vertices on rank 0:
  // loads {40, 4}, lambda_pre = 40/22. The edge-balanced cut after vertex 2
  // yields {30, 14}, a strict improvement.
  const std::vector<std::int64_t> hist{10, 10, 10, 10, 1, 1, 1, 1};
  const auto d = decide_rebalance(8, 2, 1.5, hist);
  EXPECT_TRUE(d.evaluated);
  EXPECT_TRUE(d.engaged);
  EXPECT_DOUBLE_EQ(d.lambda_pre, 40.0 / 22.0);
  EXPECT_LT(d.lambda_post, d.lambda_pre);
  EXPECT_NE(d.partition, graph::partition_even_vertices(8, 2));
  EXPECT_GT(d.stats.vertices_migrated, 0);
  EXPECT_GT(d.stats.arcs_migrated, 0);
  // Model lambdas are consistent with the partition it returns.
  EXPECT_DOUBLE_EQ(d.lambda_post,
                   load_imbalance(partition_loads(d.partition, hist)));
}

TEST(RebalanceModel, DecideDeclinesWhenNoStrictImprovementExists) {
  // One dominant vertex and nothing else: the even split's max IS vertex
  // 0's 100 arcs, and so is every candidate's, so the edge-balanced cut
  // cannot STRICTLY improve lambda -> decline (keep the even split).
  const std::vector<std::int64_t> hist{100, 0, 0, 0};
  const auto d = decide_rebalance(4, 2, 1.5, hist);
  EXPECT_TRUE(d.evaluated);
  EXPECT_FALSE(d.engaged);
  EXPECT_DOUBLE_EQ(d.lambda_pre, 2.0);
  EXPECT_DOUBLE_EQ(d.lambda_post, d.lambda_pre);
  EXPECT_EQ(d.partition, graph::partition_even_vertices(4, 2));
}

TEST(RebalanceModel, DecideIsDeterministic) {
  std::vector<std::int64_t> hist;
  for (int i = 0; i < 257; ++i) hist.push_back((i * 37) % 23);
  const auto a = decide_rebalance(257, 7, 1.2, hist);
  const auto b = decide_rebalance(257, 7, 1.2, hist);
  EXPECT_EQ(a.engaged, b.engaged);
  EXPECT_EQ(a.partition.starts(), b.partition.starts());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.lambda_pre),
            std::bit_cast<std::uint64_t>(b.lambda_pre));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.lambda_post),
            std::bit_cast<std::uint64_t>(b.lambda_post));
}

// ---- decline path: bitwise invisible ------------------------------------

TEST(Rebalance, DeclinePathIsBitwiseIdenticalToOff) {
  // A threshold no real lambda reaches: every boundary is screened and
  // declined, and the run must be indistinguishable from rebalance-off --
  // same communities, modularity bits, and algorithm traffic (the screen's
  // collectives are reclassified into the rebalance.* counters).
  const auto g = balanced_graph();
  for (const int threads : {1, 4, 16}) {
    const auto off = Plan::distributed(4).threads(threads).seed(123).run(g);
    const auto on =
        Plan::distributed(4).threads(threads).seed(123).rebalance(1e9).run(g);
    const auto label = "threads " + std::to_string(threads);
    EXPECT_EQ(Bits(on), Bits(off)) << label;
    EXPECT_EQ(on.distributed->rebalance.phases_engaged, 0) << label;
    EXPECT_EQ(on.distributed->rebalance.phases_declined,
              on.distributed->rebalance.phases_evaluated)
        << label;
    EXPECT_GT(on.distributed->rebalance.phases_evaluated, 0) << label;
  }
}

// ---- engaged path: deterministic, fault-tolerant, quality-equivalent ----

TEST(Rebalance, EngagedRunIsBitwiseIdenticalAcrossThreadCounts) {
  const auto g = skewed_graph();
  const auto reference =
      Plan::distributed(8).threads(1).seed(123).rebalance(1.2).run(g);
  ASSERT_GT(reference.distributed->rebalance.phases_engaged, 0)
      << "fixture must actually migrate; lower the threshold or re-skew";
  ASSERT_GT(reference.distributed->rebalance.vertices_migrated, 0);
  for (const int threads : {4, 16}) {
    const auto r =
        Plan::distributed(8).threads(threads).seed(123).rebalance(1.2).run(g);
    EXPECT_EQ(Bits(r), Bits(reference)) << "threads " << threads;
    EXPECT_EQ(r.distributed->rebalance.phases_engaged,
              reference.distributed->rebalance.phases_engaged)
        << "threads " << threads;
  }
}

TEST(Rebalance, EngagedRunSurvivesFaultInjectionBitwise) {
  // Delay and duplication shuffle delivery orders; the decision must not
  // move (its inputs are allreduced, rank-order-folded) and the bits must
  // not change.
  const auto g = skewed_graph();
  const auto clean =
      Plan::distributed(8).threads(4).seed(123).rebalance(1.2).run(g);
  ASSERT_GT(clean.distributed->rebalance.phases_engaged, 0);
  const auto faulty = Plan::distributed(8)
                          .threads(4)
                          .seed(123)
                          .rebalance(1.2)
                          .inject_faults(dc::FaultPlan()
                                             .with_seed(7)
                                             .delay(0.05, 1.0)
                                             .duplicate(0.05))
                          .run(g);
  EXPECT_EQ(Bits(faulty), Bits(clean));
  EXPECT_EQ(faulty.distributed->rebalance.phases_engaged,
            clean.distributed->rebalance.phases_engaged);
}

TEST(Rebalance, EngagedRunIsQualityEquivalentToOff) {
  // Migration changes sweep orders (partition-keyed PRNG), so the engaged
  // clustering legitimately differs bit-for-bit from the off run -- but it
  // must be the same QUALITY of answer on the same graph.
  const auto g = skewed_graph();
  const auto off = Plan::distributed(8).seed(123).run(g);
  const auto on = Plan::distributed(8).seed(123).rebalance(1.2).run(g);
  ASSERT_GT(on.distributed->rebalance.phases_engaged, 0);
  EXPECT_NEAR(on.modularity, off.modularity, 0.05);
  // Every ENGAGED boundary strictly improved the imbalance it acted on
  // (the run-level max_lambda_* roll-ups can be dominated by a declined
  // boundary, so check the per-phase records).
  for (const auto& ph : on.distributed->phase_telemetry) {
    if (ph.rebalance.engaged) {
      EXPECT_LT(ph.rebalance.lambda_post, ph.rebalance.lambda_pre)
          << "phase " << ph.phase;
    }
  }
}

// ---- satellite 2: checkpoint ownership map ------------------------------

TEST(Rebalance, ResumeOntoMigratedPartitionIsBitwiseIdentical) {
  // Engage, checkpoint every boundary, then kill a rank in a phase AFTER
  // the migration: recovery must resume onto the RECORDED (migrated)
  // ownership map -- deriving it from the rank count would silently change
  // sweep orders -- and land on the uninterrupted run's exact bits.
  const auto g = skewed_graph();
  const int p = 8;
  const auto reference = Plan::distributed(p).seed(123).rebalance(1.2).run(g);
  ASSERT_GT(reference.distributed->rebalance.phases_engaged, 0);

  // First phase whose partition was chosen by an ENGAGED boundary: the
  // boundary at the end of phase k picks phase k+1's partition.
  int migrated_phase = -1;
  const auto& detail = reference.distributed->phase_telemetry;
  for (std::size_t i = 0; i + 1 < detail.size(); ++i) {
    if (detail[i].rebalance.engaged) {
      migrated_phase = detail[i].phase + 1;
      break;
    }
  }
  ASSERT_GE(migrated_phase, 1) << "no phase ran on a migrated partition";

  const auto dir = fresh_dir("dl_rebalance_resume");
  const auto result = Plan::distributed(p)
                          .seed(123)
                          .rebalance(1.2)
                          .checkpointing(dir.string())
                          .inject_faults(dc::FaultPlan().crash(1, migrated_phase))
                          .max_restarts(1)
                          .run(g);
  EXPECT_EQ(result.recovery.resumed_from_phase, migrated_phase);
  EXPECT_EQ(result.community, reference.community);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(result.modularity),
            std::bit_cast<std::uint64_t>(reference.modularity));
  EXPECT_EQ(result.phases, reference.phases);
  EXPECT_EQ(result.distributed->messages, reference.distributed->messages);
  // (Byte totals are NOT compared: wire payload sizes drift by a few hundred
  // bytes across the checkpoint file round-trip on this fixture, rebalance
  // on or off -- same count of messages, same result bits.)
  std::filesystem::remove_all(dir);
}

// ---- satellite 1: manifest always carries the load picture --------------

TEST(Rebalance, ManifestCarriesLambdasAndRebalanceObjectEvenWhenOff) {
  const auto g = balanced_graph();
  const auto r = Plan::distributed(4).seed(123).run(g);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"schema\":\"dlouvain-run-manifest/5\""), std::string::npos);
  EXPECT_NE(json.find("\"rebalance\":{\"enabled\":false"), std::string::npos);
  EXPECT_NE(json.find("\"decided\":false"), std::string::npos);
  EXPECT_NE(json.find("\"load_lambda\":"), std::string::npos);
  EXPECT_NE(json.find("\"time_lambda\":"), std::string::npos);
  EXPECT_NE(json.find("\"evaluated\":false"), std::string::npos);
  // Off means NOT screened: per-run and per-phase records agree on that.
  EXPECT_EQ(r.distributed->rebalance.phases_evaluated, 0);
  for (const auto& ph : r.distributed->phase_telemetry) {
    EXPECT_FALSE(ph.rebalance.evaluated);
    EXPECT_GE(ph.load_lambda, 1.0);
    EXPECT_GE(ph.time_lambda, 1.0);
  }
}

TEST(Rebalance, ManifestRecordsEngagedBoundaries) {
  const auto g = skewed_graph();
  const auto r = Plan::distributed(8).seed(123).rebalance(1.2).run(g);
  ASSERT_GT(r.distributed->rebalance.phases_engaged, 0);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"rebalance\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"decided\":true"), std::string::npos);
  EXPECT_NE(json.find("\"engaged\":true"), std::string::npos);
}

// ---- plan validation and fingerprints -----------------------------------

TEST(Rebalance, PlanRejectsBadThresholdAndWrongEngine) {
  const auto g = balanced_graph();
  EXPECT_THROW(Plan::distributed(4).rebalance(0.9).run(g), PlanError);
  EXPECT_THROW(Plan::serial().rebalance().run(g), PlanError);
  EXPECT_THROW(Plan::shared(2).rebalance().run(g), PlanError);
}

TEST(Rebalance, FingerprintMixesKnobOnlyWhenEnabled) {
  core::DistConfig base;
  const auto plain = core::config_fingerprint(base);

  core::DistConfig disabled_other_threshold = base;
  disabled_other_threshold.rebalance.threshold = 9.0;  // still disabled
  EXPECT_EQ(core::config_fingerprint(disabled_other_threshold), plain)
      << "a disabled knob must not invalidate pre-existing checkpoints";

  core::DistConfig enabled = base;
  enabled.rebalance.enabled = true;
  EXPECT_NE(core::config_fingerprint(enabled), plain);

  core::DistConfig enabled_other = enabled;
  enabled_other.rebalance.threshold = 2.5;
  EXPECT_NE(core::config_fingerprint(enabled_other),
            core::config_fingerprint(enabled));
}

}  // namespace
