// ISSUE 8 guarantees, pinned as tests:
//
//  * the three sweep lanes (scalar / segmented / SIMD; util/segmented.hpp)
//    are BITWISE interchangeable -- same assignment, same modularity bits,
//    same phase/iteration counts -- on every engine, every topology class,
//    at thread counts 1/4/16, under fault-injection delay/duplication, and
//    across Session::update warm-start batches;
//  * the `--overlap=auto` cost model (core/overlap_model.hpp) is a real
//    decision, not an alias for on: it runs OFF until it warms up, declines
//    when there is nothing worth hiding, and its verdict + inputs land in
//    the manifest v4 "overlap" object;
//  * the bounds-checked ScatterAccumulator::at() twin (util/scatter.hpp)
//    rejects out-of-range slots that the assert-based hot path trusts.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "core/overlap_model.hpp"
#include "dlouvain.hpp"
#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "gen/simple.hpp"
#include "graph/csr.hpp"
#include "util/scatter.hpp"
#include "util/segmented.hpp"

namespace {

using namespace dlouvain;

// Restores CPU-detected lane selection no matter how a test exits, so an
// override can never leak into a sibling test sharing the process.
struct LaneGuard {
  explicit LaneGuard(util::SweepLane lane) { util::set_sweep_lane(lane); }
  ~LaneGuard() { util::clear_sweep_lane(); }
  LaneGuard(const LaneGuard&) = delete;
  LaneGuard& operator=(const LaneGuard&) = delete;
};

constexpr util::SweepLane kLanes[] = {util::SweepLane::kScalar,
                                      util::SweepLane::kSegmented,
                                      util::SweepLane::kSimd};

graph::Csr star(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) edges.push_back({0, v, 1.0});
  return graph::from_edges(n, edges);
}

graph::Csr rmat9() {
  gen::RmatParams p;
  p.scale = 9;
  p.edges_per_vertex = 8;
  p.seed = 42;
  const auto g = gen::rmat(p);
  return graph::from_edges(g.num_vertices, g.edges);
}

graph::Csr lfr600() {
  gen::LfrParams p;
  p.num_vertices = 600;
  p.avg_degree = 12;
  p.max_degree = 40;
  p.min_community = 15;
  p.max_community = 60;
  p.mu = 0.2;
  p.seed = 3;
  const auto g = gen::lfr(p);
  return graph::from_edges(g.num_vertices, g.edges);
}

struct Fixture {
  const char* name;
  graph::Csr g;
};

std::vector<Fixture> fixtures() {
  const auto ring = gen::ring(512);
  std::vector<Fixture> out;
  out.push_back({"ring", graph::from_edges(ring.num_vertices, ring.edges)});
  out.push_back({"star", star(400)});
  out.push_back({"rmat", rmat9()});
  out.push_back({"lfr", lfr600()});
  return out;
}

void expect_bitwise_equal(const Result& got, const Result& want,
                          const std::string& label) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.modularity),
            std::bit_cast<std::uint64_t>(want.modularity))
      << label;
  EXPECT_EQ(got.community, want.community) << label;
  EXPECT_EQ(got.num_communities, want.num_communities) << label;
  EXPECT_EQ(got.phases, want.phases) << label;
  EXPECT_EQ(got.total_iterations, want.total_iterations) << label;
}

// ---- lane bitwise interchangeability ----------------------------------------

TEST(Lanes, SerialEngineIsLaneInvariant) {
  for (const auto& f : fixtures()) {
    const auto plan = Plan::serial().seed(123);
    const auto scalar = [&] {
      const LaneGuard guard(util::SweepLane::kScalar);
      return plan.run(f.g);
    }();
    for (const auto lane : kLanes) {
      const LaneGuard guard(lane);
      expect_bitwise_equal(plan.run(f.g), scalar,
                           std::string("serial ") + f.name + " " +
                               util::sweep_lane_label(lane));
    }
  }
}

TEST(Lanes, SharedEngineIsLaneInvariantAcrossThreads) {
  for (const auto& f : fixtures()) {
    const auto scalar = [&] {
      const LaneGuard guard(util::SweepLane::kScalar);
      return Plan::shared(1).seed(123).run(f.g);
    }();
    for (const int threads : {1, 4, 16}) {
      for (const auto lane : kLanes) {
        const LaneGuard guard(lane);
        expect_bitwise_equal(Plan::shared(threads).seed(123).run(f.g), scalar,
                             std::string("shared ") + f.name + " t" +
                                 std::to_string(threads) + " " +
                                 util::sweep_lane_label(lane));
      }
    }
  }
}

TEST(Lanes, DistributedEngineIsLaneInvariantAcrossThreads) {
  for (const auto& f : fixtures()) {
    const auto scalar = [&] {
      const LaneGuard guard(util::SweepLane::kScalar);
      return Plan::distributed(4).threads(1).seed(123).run(f.g);
    }();
    for (const int threads : {1, 4, 16}) {
      for (const auto lane : kLanes) {
        const LaneGuard guard(lane);
        expect_bitwise_equal(
            Plan::distributed(4).threads(threads).seed(123).run(f.g), scalar,
            std::string("dist ") + f.name + " t" + std::to_string(threads) +
                " " + util::sweep_lane_label(lane));
      }
    }
  }
}

TEST(Lanes, SurviveFaultInjection) {
  // A delaying, duplicating transport must not open any lane-visible window:
  // the sweep consumes whatever ghost state the exchange settled on, and
  // that state is lane-independent.
  const auto g = rmat9();
  const auto faults =
      comm::FaultPlan().with_seed(11).delay(0.05, 0.5).duplicate(0.05);
  const auto scalar = [&] {
    const LaneGuard guard(util::SweepLane::kScalar);
    return Plan::distributed(4).threads(2).seed(123).inject_faults(faults).run(g);
  }();
  for (const auto lane : kLanes) {
    const LaneGuard guard(lane);
    expect_bitwise_equal(
        Plan::distributed(4).threads(2).seed(123).inject_faults(faults).run(g),
        scalar, std::string("faulty ") + util::sweep_lane_label(lane));
  }
}

TEST(Lanes, WarmStartUpdateBatchesAreLaneInvariant) {
  // The warm re-convergence path sweeps only reactivated vertices -- a
  // different entry into the same kernels. Replay an identical batch stream
  // under every lane and demand identical results after every batch.
  const auto g = rmat9();
  const auto batches = std::vector<EdgeBatch>{
      EdgeBatch().add(3, 500, 2.0).add(7, 400, 1.5).remove(0, 1),
      EdgeBatch().add(10, 200, 1.0).add(11, 201, 1.0).add(12, 202, 1.0),
      EdgeBatch().remove(3, 500).add(5, 300, 4.0),
  };

  std::vector<std::vector<Result>> per_lane;
  for (const auto lane : kLanes) {
    const LaneGuard guard(lane);
    auto session = Plan::distributed(4).threads(2).seed(123).open(g);
    std::vector<Result> states;
    states.push_back(session.result());
    for (const auto& batch : batches) {
      session.update(batch);
      states.push_back(session.result());
    }
    per_lane.push_back(std::move(states));
  }

  for (std::size_t lane = 1; lane < per_lane.size(); ++lane) {
    for (std::size_t step = 0; step < per_lane[lane].size(); ++step) {
      expect_bitwise_equal(per_lane[lane][step], per_lane[0][step],
                           std::string("update step ") + std::to_string(step) +
                               " " + util::sweep_lane_label(kLanes[lane]));
    }
  }
}

TEST(Lanes, LabelsRoundTripAndParserRejectsUnknown) {
  for (const auto lane : kLanes) {
    EXPECT_EQ(util::parse_sweep_lane(util::sweep_lane_label(lane)), lane);
  }
  EXPECT_THROW(util::parse_sweep_lane("avx512"), std::invalid_argument);
  EXPECT_THROW(util::parse_sweep_lane(""), std::invalid_argument);
}

TEST(Lanes, OverrideWinsOverDetection) {
  for (const auto lane : kLanes) {
    const LaneGuard guard(lane);
    EXPECT_EQ(util::sweep_lane(), lane);
  }
  // No override: whatever detection picks must be a valid lane.
  const auto detected = util::sweep_lane();
  EXPECT_NE(util::sweep_lane_label(detected), std::string("?"));
}

// ---- checked scatter twin ---------------------------------------------------

TEST(ScatterChecked, AtMatchesGetInRangeAndThrowsOutside) {
  util::ScatterAccumulator<double> acc;
  acc.reset(8);
  acc.add(2, 1.5);
  acc.add(2, 0.25);
  acc.add(7, 3.0);
  EXPECT_EQ(acc.at(2), acc.get(2));
  EXPECT_EQ(acc.at(7), 3.0);
  EXPECT_EQ(acc.at(0), 0.0);  // untouched slot reads the neutral value
  EXPECT_THROW(acc.at(8), std::out_of_range);
  EXPECT_THROW(acc.at(-1), std::out_of_range);

  acc.reset(4);  // new epoch: the old slots read neutral again
  EXPECT_EQ(acc.at(2), 0.0);
}

// ---- overlap cost model (unit) ---------------------------------------------

core::OverlapSample off_sample(double latency, double interior) {
  core::OverlapSample s;
  s.latency_s = latency;
  s.interior_s = interior;
  s.wall_s = latency + interior + 0.010;
  return s;
}

core::OverlapSample on_sample(double hidden, double wall) {
  core::OverlapSample s;
  s.hidden_s = hidden;
  s.wall_s = wall;
  return s;
}

TEST(OverlapModel, WarmupRunsOffThenEngagesWhenOnWallWins) {
  core::OverlapCostModel model(
      core::OverlapModelConfig{/*probe_iterations=*/2, /*min_hidden_s=*/1e-4});
  // Stage 1: auto must run OFF while warming up (the satellite-1 contract).
  EXPECT_FALSE(model.want_overlap());
  model.record(off_sample(0.004, 0.006));
  EXPECT_FALSE(model.want_overlap());
  EXPECT_TRUE(model.probing());
  model.record(off_sample(0.006, 0.008));
  // 5 ms mean latency against 7 ms mean interior: plenty to hide -> ON probe.
  ASSERT_TRUE(model.want_overlap());
  ASSERT_FALSE(model.decided());
  // Stage 2: ON iterations measure faster than the OFF mean (22 ms).
  model.record(on_sample(0.004, 0.013));
  model.record(on_sample(0.005, 0.014));
  EXPECT_TRUE(model.decided());
  EXPECT_TRUE(model.engaged());
  EXPECT_TRUE(model.want_overlap());

  const auto t = model.telemetry("auto");
  EXPECT_EQ(t.decision, "on");
  EXPECT_TRUE(t.decided);
  EXPECT_EQ(t.probe_iterations_off, 2);
  EXPECT_EQ(t.probe_iterations_on, 2);
  EXPECT_DOUBLE_EQ(t.measured_latency_s, 0.005);
  EXPECT_DOUBLE_EQ(t.measured_interior_s, 0.007);
  EXPECT_DOUBLE_EQ(t.predicted_hidden_s, 0.005);  // min(latency, interior)
  EXPECT_DOUBLE_EQ(t.off_wall_s, 0.022);
  EXPECT_DOUBLE_EQ(t.on_wall_s, 0.0135);
  EXPECT_DOUBLE_EQ(t.measured_hidden_s, 0.0045);
}

TEST(OverlapModel, DeclinesBelowTheFloorWithoutAnOnProbe) {
  core::OverlapCostModel model(
      core::OverlapModelConfig{/*probe_iterations=*/2, /*min_hidden_s=*/1e-3});
  model.record(off_sample(0.0002, 0.020));  // fast wire: almost no latency
  model.record(off_sample(0.0004, 0.020));
  // predicted_hidden = min(0.3 ms, 20 ms) = 0.3 ms < 1 ms floor: decline
  // immediately, never running an ON iteration.
  EXPECT_TRUE(model.decided());
  EXPECT_FALSE(model.engaged());
  EXPECT_FALSE(model.want_overlap());
  const auto t = model.telemetry("auto");
  EXPECT_EQ(t.decision, "off");
  EXPECT_EQ(t.probe_iterations_on, 0);
  EXPECT_DOUBLE_EQ(t.on_wall_s, 0.0);
}

TEST(OverlapModel, DeclinesWhenOverheadEatsTheHiddenTime) {
  core::OverlapCostModel model(
      core::OverlapModelConfig{/*probe_iterations=*/1, /*min_hidden_s=*/1e-4});
  model.record(off_sample(0.005, 0.010));  // off wall = 25 ms
  ASSERT_TRUE(model.want_overlap());       // worth probing ON
  model.record(on_sample(0.004, 0.027));   // ...but ON is slower overall
  EXPECT_TRUE(model.decided());
  EXPECT_FALSE(model.engaged());
  EXPECT_EQ(model.telemetry("auto").decision, "off");
  // A decided model ignores further samples.
  model.record(on_sample(0.0, 0.001));
  EXPECT_FALSE(model.want_overlap());
}

TEST(OverlapModel, UndecidedModelReportsOff) {
  core::OverlapCostModel model(
      core::OverlapModelConfig{/*probe_iterations=*/8, /*min_hidden_s=*/1e-4});
  model.record(off_sample(0.005, 0.010));  // run converged before warmup
  const auto t = model.telemetry("auto");
  EXPECT_FALSE(t.decided);
  EXPECT_EQ(t.decision, "off");
  EXPECT_EQ(t.probe_iterations_off, 1);
}

// ---- overlap auto end-to-end (the satellite-1 regression) -------------------

TEST(OverlapAuto, IsNotUnconditionalOn) {
  // The pre-ISSUE-8 kAuto was "on whenever ranks > 1". The cost model must
  // genuinely decline: with an engagement floor no in-process transport can
  // reach, auto stays OFF for the whole run while kOn engages every phase --
  // and the results agree bitwise regardless (overlap never changes bits).
  const auto g = rmat9();
  const auto run = [&](OverlapMode mode) {
    auto plan = Plan::distributed(4).threads(1).seed(123).overlap(mode);
    if (mode == OverlapMode::kAuto) plan.overlap_probe(1, /*min_hidden_s=*/10.0);
    return plan.run(g);
  };

  const auto off = run(OverlapMode::kOff);
  const auto on = run(OverlapMode::kOn);
  const auto automatic = run(OverlapMode::kAuto);

  ASSERT_TRUE(automatic.distributed.has_value());
  const auto& auto_t = automatic.distributed->overlap;
  EXPECT_EQ(auto_t.mode, "auto");
  EXPECT_EQ(auto_t.decision, "off");
  EXPECT_TRUE(auto_t.decided);
  EXPECT_EQ(auto_t.phases_engaged, 0);
  EXPECT_GT(auto_t.phases_declined, 0);
  EXPECT_GT(auto_t.probe_iterations_off, 0);
  EXPECT_EQ(auto_t.probe_iterations_on, 0);

  const auto& on_t = on.distributed->overlap;
  EXPECT_EQ(on_t.mode, "on");
  EXPECT_EQ(on_t.decision, "on");
  EXPECT_GT(on_t.phases_engaged, 0);
  EXPECT_EQ(on_t.phases_declined, 0);
  EXPECT_NE(auto_t.decision, on_t.decision) << "auto must not alias on";

  expect_bitwise_equal(on, off, "overlap on vs off");
  expect_bitwise_equal(automatic, off, "overlap auto vs off");
}

TEST(OverlapAuto, ManifestCarriesTheOverlapObject) {
  const auto g = rmat9();
  const auto result =
      Plan::distributed(2).threads(1).seed(123).overlap(OverlapMode::kAuto).run(g);
  const auto json = result.to_json();
  EXPECT_NE(json.find("\"schema\":\"dlouvain-run-manifest/5\""), std::string::npos);
  EXPECT_NE(json.find("\"overlap\":{\"mode\":\"auto\""), std::string::npos);
  EXPECT_NE(json.find("\"decision\":"), std::string::npos);
  EXPECT_NE(json.find("\"predicted_hidden_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"measured_latency_s\":"), std::string::npos);

  // Forced modes report themselves without model fields pretending to exist.
  const auto forced =
      Plan::distributed(2).threads(1).seed(123).overlap(OverlapMode::kOn).run(g);
  const auto& t = forced.distributed->overlap;
  EXPECT_EQ(t.mode, "on");
  EXPECT_EQ(t.decision, "on");
  EXPECT_EQ(t.probe_iterations_off, 0);
}

}  // namespace
