// Tests for the extension modules: distributed distance-1 coloring, colored
// Louvain, vertex following, graph statistics, distributed connected
// components, neighborhood collectives, and the Section V-D quality-gather
// mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "comm/world.hpp"
#include "core/coloring.hpp"
#include "core/components.hpp"
#include "core/dist_louvain.hpp"
#include "gen/lfr.hpp"
#include "gen/simple.hpp"
#include "gen/ssca2.hpp"
#include "graph/csr.hpp"
#include "graph/stats.hpp"
#include "louvain/coarsen.hpp"
#include "louvain/modularity.hpp"
#include "louvain/serial.hpp"
#include "louvain/shared.hpp"
#include "louvain/vertex_follow.hpp"
#include "quality/fscore.hpp"

namespace core = dlouvain::core;
namespace dg = dlouvain::graph;
namespace gen = dlouvain::gen;
namespace dl = dlouvain::louvain;
namespace dc = dlouvain::comm;
using dlouvain::CommunityId;
using dlouvain::Edge;
using dlouvain::Rank;
using dlouvain::VertexId;

namespace {

/// Validate a distributed coloring: gather per-rank colors and check no edge
/// is monochromatic.
void expect_valid_coloring(const dg::Csr& global, int p, std::uint64_t seed,
                           std::int64_t* num_colors_out = nullptr,
                           int* rounds_out = nullptr) {
  std::vector<std::int64_t> full(static_cast<std::size_t>(global.num_vertices()), -1);
  std::int64_t num_colors = 0;
  int rounds = 0;
  dc::run(p, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, global);
    const auto coloring = core::distance1_coloring(comm, dist, seed);
    const auto gathered = comm.gatherv<std::int64_t>(coloring.color, 0);
    if (comm.rank() == 0) {
      // Even-edge partitions keep rank order == id order, so the gather is
      // already aligned with global ids.
      std::copy(gathered.begin(), gathered.end(), full.begin());
      num_colors = coloring.num_colors;
      rounds = coloring.rounds;
    }
  });
  for (const auto c : full) EXPECT_GE(c, 0) << "uncolored vertex escaped";
  for (VertexId v = 0; v < global.num_vertices(); ++v) {
    for (const auto& e : global.neighbors(v)) {
      if (e.dst == v) continue;
      EXPECT_NE(full[static_cast<std::size_t>(v)], full[static_cast<std::size_t>(e.dst)])
          << "edge " << v << "-" << e.dst << " is monochromatic";
    }
  }
  if (num_colors_out) *num_colors_out = num_colors;
  if (rounds_out) *rounds_out = rounds;
}

}  // namespace

// ---- Distance-1 coloring -----------------------------------------------------

TEST(ColoringSerial, GreedyIsValidAndTight) {
  const auto graph = gen::clique_chain(5, 4);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = core::distance1_coloring_serial(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (const auto& e : g.neighbors(v)) {
      if (e.dst != v) {
        EXPECT_NE(result.color[static_cast<std::size_t>(v)],
                  result.color[static_cast<std::size_t>(e.dst)]);
      }
    }
  // A clique of 4 needs exactly 4 colors; greedy on clique chains hits that.
  EXPECT_GE(result.num_colors, 4);
  EXPECT_LE(result.num_colors, 5);
}

class ColoringAtP : public ::testing::TestWithParam<int> {};

TEST_P(ColoringAtP, ValidOnCliqueChain) {
  const auto graph = gen::clique_chain(6, 5);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  std::int64_t colors = 0;
  expect_valid_coloring(g, GetParam(), 1, &colors);
  EXPECT_GE(colors, 5);  // clique of 5 forces >= 5 colors
}

TEST_P(ColoringAtP, ValidOnIrregularGraph) {
  gen::LfrParams params;
  params.num_vertices = 300;
  params.avg_degree = 10;
  params.max_degree = 30;
  params.mu = 0.3;
  const auto graph = gen::lfr(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  std::int64_t colors = 0;
  int rounds = 0;
  expect_valid_coloring(g, GetParam(), 7, &colors, &rounds);
  EXPECT_GT(colors, 0);
  EXPECT_GT(rounds, 0);
  // Jones-Plassmann color count stays near the degree bound.
  const auto stats = dg::degree_stats(g);
  EXPECT_LE(colors, stats.max_degree + 1);
}

TEST_P(ColoringAtP, RankCountDoesNotChangeColors) {
  // The priority function is stateless, so the coloring is a pure function
  // of (graph, seed) regardless of distribution.
  const auto graph = gen::clique_chain(6, 4);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  auto run_at = [&](int p) {
    std::vector<std::int64_t> full(static_cast<std::size_t>(g.num_vertices()));
    dc::run(p, [&](dc::Comm& comm) {
      const auto dist = dg::DistGraph::from_replicated(comm, g);
      const auto coloring = core::distance1_coloring(comm, dist, 99);
      const auto gathered = comm.gatherv<std::int64_t>(coloring.color, 0);
      if (comm.rank() == 0) std::copy(gathered.begin(), gathered.end(), full.begin());
    });
    return full;
  };
  const auto at1 = run_at(1);
  EXPECT_EQ(at1, run_at(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ColoringAtP, ::testing::Values(1, 2, 3, 4));

TEST(ColoredLouvain, MatchesQualityAndStaysExact) {
  gen::Ssca2Params params;
  params.num_vertices = 500;
  params.max_clique_size = 20;
  const auto graph = gen::ssca2(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  core::DistConfig cfg;
  cfg.use_coloring = true;
  const auto colored = core::dist_louvain_inprocess(3, g, cfg);
  const auto baseline = core::dist_louvain_inprocess(3, g);

  EXPECT_NEAR(colored.modularity, dl::modularity(g, colored.community), 1e-9);
  EXPECT_GT(colored.modularity, baseline.modularity - 0.02);
}

TEST(ColoredLouvain, WorksWithEtVariant) {
  const auto graph = gen::clique_chain(8, 5);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  auto cfg = core::DistConfig::et(0.25);
  cfg.use_coloring = true;
  const auto result = core::dist_louvain_inprocess(2, g, cfg);
  EXPECT_EQ(result.num_communities, 8);
}

// ---- Vertex following ---------------------------------------------------------

TEST(VertexFollow, LeavesFollowTheirHub) {
  // Star: hub 0 with 5 leaves.
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= 5; ++v) edges.push_back({0, v, 1.0});
  const auto g = dg::from_edges(6, edges);
  const auto assignment = dl::vertex_follow_assignment(g);
  for (VertexId v = 1; v <= 5; ++v) EXPECT_EQ(assignment[static_cast<std::size_t>(v)], 0);
  EXPECT_EQ(assignment[0], 0);
  EXPECT_EQ(dl::followed_count(assignment), 5);
}

TEST(VertexFollow, MutualPairCollapsesToSmallerId) {
  const auto g = dg::from_edges(4, {{2, 3, 1.0}, {0, 1, 1.0}});
  const auto assignment = dl::vertex_follow_assignment(g);
  EXPECT_EQ(assignment[0], 0);
  EXPECT_EQ(assignment[1], 0);
  EXPECT_EQ(assignment[2], 2);
  EXPECT_EQ(assignment[3], 2);
}

TEST(VertexFollow, InteriorVerticesUntouched) {
  const auto graph = gen::clique_chain(4, 4);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto assignment = dl::vertex_follow_assignment(g);
  EXPECT_EQ(dl::followed_count(assignment), 0);  // min degree is 3
}

TEST(VertexFollow, PreservesModularityArithmetic) {
  // Coarsening by the follow assignment must keep total weight and degrees.
  std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {2, 3, 1}};  // pendant 3
  const auto g = dg::from_edges(4, edges);
  const auto assignment = dl::vertex_follow_assignment(g);
  EXPECT_EQ(assignment[3], 2);
  const auto pre = dl::coarsen(g, assignment);
  EXPECT_EQ(pre.graph.num_vertices(), 3);
  EXPECT_DOUBLE_EQ(pre.graph.total_arc_weight(), g.total_arc_weight());
}

TEST(VertexFollow, SerialLouvainWithVfMatchesWithout) {
  // LFR graphs have no degree-1 vertices by construction; add pendants.
  gen::LfrParams params;
  params.num_vertices = 300;
  params.avg_degree = 10;
  params.max_degree = 30;
  params.mu = 0.2;
  auto graph = gen::lfr(params);
  // Attach 30 pendant vertices.
  const VertexId base = graph.num_vertices;
  for (VertexId i = 0; i < 30; ++i)
    graph.edges.push_back({i * 7 % base, base + i, 1.0});
  graph.num_vertices += 30;
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  dl::LouvainConfig plain;
  dl::LouvainConfig with_vf;
  with_vf.vertex_following = true;
  const auto a = dl::louvain_serial(g, plain);
  const auto b = dl::louvain_serial(g, with_vf);
  EXPECT_EQ(b.community.size(), static_cast<std::size_t>(g.num_vertices()));
  EXPECT_NEAR(b.modularity, a.modularity, 0.02);
  // Reported modularity must match the expanded assignment.
  EXPECT_NEAR(dl::modularity(g, b.community), b.modularity, 1e-9);
}

TEST(VertexFollow, SharedLouvainWithVfRuns) {
  std::vector<Edge> edges;
  for (VertexId c = 0; c < 5; ++c) {
    const VertexId base = c * 6;
    for (VertexId i = 0; i < 5; ++i)
      for (VertexId j = i + 1; j < 5; ++j) edges.push_back({base + i, base + j, 1.0});
    edges.push_back({base, base + 5, 1.0});  // pendant per clique
    if (c > 0) edges.push_back({base - 6, base, 1.0});
  }
  const auto g = dg::from_edges(30, edges);
  dl::LouvainConfig cfg;
  cfg.vertex_following = true;
  const auto result = dl::louvain_shared(g, cfg);
  EXPECT_EQ(result.num_communities, 5);
  // Each pendant lands with its clique.
  for (VertexId c = 0; c < 5; ++c)
    EXPECT_EQ(result.community[static_cast<std::size_t>(c * 6 + 5)],
              result.community[static_cast<std::size_t>(c * 6)]);
}

// ---- Graph statistics ----------------------------------------------------------

TEST(GraphStats, DegreeStatsOnKnownGraph) {
  const auto graph = gen::clique_chain(3, 4);  // degrees 3 or 4 (bridge ends)
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto stats = dg::degree_stats(g);
  EXPECT_EQ(stats.min_degree, 3);
  EXPECT_EQ(stats.max_degree, 4);  // bridge endpoints gain one over clique degree
  EXPECT_EQ(stats.isolated_vertices, 0);
  EXPECT_EQ(stats.self_loops, 0);
  EXPECT_DOUBLE_EQ(stats.total_weight_2m, g.total_arc_weight());
  VertexId histogram_total = 0;
  for (const auto b : stats.log2_histogram) histogram_total += b;
  EXPECT_EQ(histogram_total, g.num_vertices());
}

TEST(GraphStats, ClusteringCoefficientExtremes) {
  // A clique has coefficient 1; a star has 0.
  const auto clique = gen::clique_chain(1, 6);
  EXPECT_DOUBLE_EQ(
      dg::mean_clustering_coefficient(dg::from_edges(clique.num_vertices, clique.edges)),
      1.0);
  std::vector<Edge> star;
  for (VertexId v = 1; v < 8; ++v) star.push_back({0, v, 1.0});
  EXPECT_DOUBLE_EQ(dg::mean_clustering_coefficient(dg::from_edges(8, star)), 0.0);
}

TEST(GraphStats, SerialComponentsCountsCorrectly) {
  // Two triangles, one isolated vertex: 3 components.
  const auto g = dg::from_edges(
      7, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {3, 4, 1}, {4, 5, 1}, {3, 5, 1}});
  const auto result = dg::connected_components(g);
  EXPECT_EQ(result.count, 3);
  EXPECT_EQ(result.component[0], result.component[2]);
  EXPECT_EQ(result.component[3], result.component[5]);
  EXPECT_NE(result.component[0], result.component[3]);
  EXPECT_EQ(result.component[6], 6);
}

// ---- Distributed connected components -------------------------------------------

class DistComponentsAtP : public ::testing::TestWithParam<int> {};

TEST_P(DistComponentsAtP, MatchesSerialUnionFind) {
  const int p = GetParam();
  const auto graph = gen::erdos_renyi(150, 0.012, 5);  // sparse -> several comps
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto serial = dg::connected_components(g);

  std::vector<VertexId> full(static_cast<std::size_t>(g.num_vertices()));
  VertexId count = 0;
  dc::run(p, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    const auto result = core::dist_connected_components(comm, dist);
    const auto gathered = comm.gatherv<VertexId>(result.component, 0);
    if (comm.rank() == 0) {
      std::copy(gathered.begin(), gathered.end(), full.begin());
      count = result.count;
    }
  });
  EXPECT_EQ(count, serial.count);
  EXPECT_EQ(full, serial.component);
}

TEST_P(DistComponentsAtP, SingleComponentOnSsca2) {
  const int p = GetParam();
  gen::Ssca2Params params;
  params.num_vertices = 400;
  params.max_clique_size = 15;
  const auto graph = gen::ssca2(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  dc::run(p, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, g);
    const auto result = core::dist_connected_components(comm, dist);
    EXPECT_EQ(result.count, 1);  // chain bridges guarantee connectivity
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, DistComponentsAtP, ::testing::Values(1, 2, 3, 4));

// ---- Neighborhood collectives -----------------------------------------------------

TEST(NeighborCollectives, RoutesOverSparseTopology) {
  // Ring topology: rank r talks to r-1 and r+1 only.
  dc::run(4, [](dc::Comm& comm) {
    const int p = comm.size();
    std::vector<Rank> neighbors{static_cast<Rank>((comm.rank() + p - 1) % p),
                                static_cast<Rank>((comm.rank() + 1) % p)};
    std::sort(neighbors.begin(), neighbors.end());
    std::vector<std::vector<int>> outbox(2);
    for (std::size_t i = 0; i < 2; ++i)
      outbox[i] = {comm.rank() * 10 + neighbors[i]};
    const auto inbox = comm.neighbor_alltoallv<int>(neighbors, std::move(outbox));
    for (std::size_t i = 0; i < 2; ++i) {
      ASSERT_EQ(inbox[i].size(), 1u);
      EXPECT_EQ(inbox[i][0], neighbors[i] * 10 + comm.rank());
    }
  });
}

TEST(NeighborCollectives, RejectsSelfInNeighborList) {
  dc::run(2, [](dc::Comm& comm) {
    std::vector<Rank> bad{comm.rank()};
    std::vector<std::vector<int>> outbox(1);
    EXPECT_THROW((void)comm.neighbor_alltoallv<int>(bad, std::move(outbox)),
                 std::logic_error);
  });
}

TEST(NeighborCollectives, GhostExchangeSavesMessagesOnLocalTopology) {
  // A banded graph distributed over many ranks: each rank only borders its
  // two neighbours, so neighbour exchange sends far fewer messages than the
  // dense all-to-all.
  const auto graph = gen::banded(400, 3);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  auto traffic = [&](bool use_neighbor) {
    core::DistConfig cfg;
    cfg.use_neighbor_exchange = use_neighbor;
    std::int64_t messages = 0;
    dc::run(8, [&](dc::Comm& comm) {
      auto dist = dg::DistGraph::from_replicated(comm, g);
      auto result = core::dist_louvain(comm, std::move(dist), cfg);
      if (comm.rank() == 0) messages = result.messages;
    });
    return messages;
  };
  const auto sparse = traffic(true);
  const auto dense = traffic(false);
  EXPECT_LT(sparse, dense);
}

TEST(NeighborCollectives, SameResultEitherWay) {
  const auto graph = gen::clique_chain(6, 5);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  core::DistConfig dense_cfg;
  dense_cfg.use_neighbor_exchange = false;
  const auto sparse = core::dist_louvain_inprocess(3, g);
  const auto dense = core::dist_louvain_inprocess(3, g, dense_cfg);
  EXPECT_EQ(sparse.community, dense.community);
  EXPECT_EQ(sparse.modularity, dense.modularity);
}

// ---- Quality gather (Section V-D mode) ----------------------------------------------

TEST(QualityGather, PerPhaseAssignmentsTrackConvergence) {
  gen::LfrParams params;
  params.num_vertices = 400;
  params.avg_degree = 14;
  params.max_degree = 42;
  params.mu = 0.15;
  const auto graph = gen::lfr(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  core::DistConfig cfg;
  cfg.gather_quality = true;
  core::DistResult root_result;
  dc::run(3, [&](dc::Comm& comm) {
    auto dist = dg::DistGraph::from_replicated(comm, g);
    auto r = core::dist_louvain(comm, std::move(dist), cfg);
    if (comm.rank() == 0) root_result = std::move(r);
  });

  ASSERT_EQ(root_result.phase_assignments.size(),
            static_cast<std::size_t>(root_result.phases));
  for (const auto& assignment : root_result.phase_assignments)
    EXPECT_EQ(assignment.size(), static_cast<std::size_t>(g.num_vertices()));

  // Per-phase modularity (computed from the gathered assignments) must be
  // non-decreasing and end at the final result.
  double prev = -1;
  for (const auto& assignment : root_result.phase_assignments) {
    const double q = dl::modularity(g, assignment);
    EXPECT_GE(q + 1e-9, prev);
    prev = q;
  }
  EXPECT_NEAR(prev, root_result.modularity, 1e-9);

  // And F-score against ground truth improves (or holds) across phases.
  const auto first = dlouvain::quality::compare_to_ground_truth(
      root_result.phase_assignments.front(), graph.ground_truth);
  const auto last = dlouvain::quality::compare_to_ground_truth(
      root_result.phase_assignments.back(), graph.ground_truth);
  EXPECT_GE(last.f_score + 0.05, first.f_score);
}

TEST(QualityGather, DisabledByDefault) {
  const auto g = dg::from_edges(4, {{0, 1, 1}, {2, 3, 1}});
  const auto result = core::dist_louvain_inprocess(2, g);
  EXPECT_TRUE(result.phase_assignments.empty());
}
