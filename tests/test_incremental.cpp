// Streaming-update tests (ISSUE 6): the Session API, warm-start equivalence
// against from-scratch runs on the same final graph, streaming determinism
// across thread counts and under message-level fault injection, in-place
// DistGraph edge mutation, Plan validation, and the v2 manifest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "comm/world.hpp"
#include "core/checkpoint.hpp"
#include "core/dist_louvain.hpp"
#include "dlouvain.hpp"
#include "gen/rmat.hpp"
#include "gen/simple.hpp"
#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "louvain/serial.hpp"

namespace core = dlouvain::core;
namespace dg = dlouvain::graph;
namespace gen = dlouvain::gen;
namespace dc = dlouvain::comm;
using dlouvain::CommunityId;
using dlouvain::Edge;
using dlouvain::EdgeBatch;
using dlouvain::Engine;
using dlouvain::Plan;
using dlouvain::PlanError;
using dlouvain::Result;
using dlouvain::VertexId;
using dlouvain::Weight;

namespace {

/// The current undirected edge set of a test graph, kept alongside the
/// session so batches can name valid removals and the final graph can be
/// rebuilt from scratch for comparison.
struct EdgeLedger {
  VertexId n{0};
  std::vector<Edge> edges;  // each undirected edge once (src <= dst)

  static EdgeLedger from(const gen::GeneratedGraph& g) {
    EdgeLedger ledger;
    ledger.n = g.num_vertices;
    // Normalize through the CSR so ledger weights match coalesced reality.
    const auto csr = dg::from_edges(g.num_vertices, g.edges);
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
      for (const auto& e : csr.neighbors(v)) {
        if (e.dst >= v) ledger.edges.push_back(Edge{v, e.dst, e.weight});
      }
    }
    return ledger;
  }

  [[nodiscard]] dg::Csr csr() const { return dg::from_edges(n, edges); }

  /// Deterministic mixed batch: `removals` existing edges out, `additions`
  /// fresh (or reinforcing) edges in. Mirrors the batch onto the ledger.
  EdgeBatch next_batch(std::mt19937_64& rng, int additions, int removals) {
    EdgeBatch batch;
    for (int i = 0; i < removals && !edges.empty(); ++i) {
      const auto pick = static_cast<std::size_t>(rng() % edges.size());
      batch.remove(edges[pick].src, edges[pick].dst);
      edges[pick] = edges.back();
      edges.pop_back();
    }
    for (int i = 0; i < additions; ++i) {
      const auto u = static_cast<VertexId>(rng() % static_cast<std::uint64_t>(n));
      auto v = static_cast<VertexId>(rng() % static_cast<std::uint64_t>(n));
      if (v == u) v = (v + 1) % n;
      batch.add(u, v, 1.0);
      // Mirror coalescing: adding an existing edge merges weight.
      bool merged = false;
      for (auto& e : edges) {
        if (std::minmax(e.src, e.dst) == std::minmax(u, v)) {
          e.weight += 1.0;
          merged = true;
          break;
        }
      }
      if (!merged) edges.push_back(Edge{std::min(u, v), std::max(u, v), 1.0});
    }
    return batch;
  }
};

void expect_bitwise_equal(const Result& a, const Result& b) {
  EXPECT_EQ(a.community, b.community);
  EXPECT_EQ(a.num_communities, b.num_communities);
  std::uint64_t qa = 0;
  std::uint64_t qb = 0;
  std::memcpy(&qa, &a.modularity, sizeof qa);
  std::memcpy(&qb, &b.modularity, sizeof qb);
  EXPECT_EQ(qa, qb) << "modularity bits differ: " << a.modularity << " vs "
                    << b.modularity;
}

}  // namespace

// ---- Plan::run == open().result() (the thin-wrapper contract) ---------------

TEST(Session, RunIsOpenPlusResult) {
  const auto g = gen::planted_partition(240, 6, 0.30, 0.01, 11);
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  const auto plan = Plan::distributed(4).threads(2);
  const auto via_run = plan.run(csr);
  const auto session = plan.open(csr);
  expect_bitwise_equal(via_run, session.result());
  EXPECT_EQ(session.updates_applied(), 0);
}

// ---- Satellite 2: dist_config() round-trips into an identical run -----------

TEST(Session, DistConfigRoundTripsBitwise) {
  const auto g = gen::planted_partition(200, 5, 0.30, 0.01, 3);
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  const auto plan =
      Plan::distributed(4).threads(2).variant(dlouvain::Variant::kEtc).alpha(0.25);
  const auto via_plan = plan.run(csr);
  const auto raw = core::dist_louvain_inprocess(plan.num_ranks(), csr,
                                                plan.dist_config());
  EXPECT_EQ(via_plan.community, raw.community);
  std::uint64_t qa = 0;
  std::uint64_t qb = 0;
  std::memcpy(&qa, &via_plan.modularity, sizeof qa);
  std::memcpy(&qb, &raw.modularity, sizeof qb);
  EXPECT_EQ(qa, qb);
}

TEST(Session, BaseConfigRoundTripsSerial) {
  const auto g = gen::clique_chain(12, 8);
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  const auto plan = Plan::serial().threshold(1e-5).seed(99);
  const auto via_plan = plan.run(csr);
  const auto raw = dlouvain::louvain::louvain_serial(csr, plan.base_config());
  EXPECT_EQ(via_plan.community, raw.community);
  EXPECT_EQ(via_plan.modularity, raw.modularity);
}

// ---- Warm-start equivalence per graph family --------------------------------

namespace {

void check_warm_equivalence(const gen::GeneratedGraph& g, int ranks,
                            std::uint64_t seed) {
  auto ledger = EdgeLedger::from(g);
  const auto plan = Plan::distributed(ranks).threads(2);
  auto session = plan.open(ledger.csr());

  std::mt19937_64 rng(seed);
  for (int batch_no = 0; batch_no < 3; ++batch_no) {
    const auto batch = ledger.next_batch(rng, /*additions=*/6, /*removals=*/4);
    const auto stats = session.update(batch);
    EXPECT_EQ(stats.edges_added + stats.edges_removed,
              static_cast<std::int64_t>(batch.size()));
    if (!stats.fell_back_to_full) {
      EXPECT_GT(stats.vertices_reactivated, 0);
    }
  }
  ASSERT_EQ(session.updates_applied(), 3);

  // The incrementally-maintained clustering must match a from-scratch run on
  // the same final graph to within a small modularity tolerance.
  const auto scratch = plan.run(ledger.csr());
  EXPECT_NEAR(session.result().modularity, scratch.modularity, 0.03)
      << "warm-start drifted from from-scratch on " << g.name;
  EXPECT_EQ(session.result().community.size(), scratch.community.size());
}

}  // namespace

TEST(WarmEquivalence, PlantedPartition) {
  check_warm_equivalence(gen::planted_partition(240, 6, 0.30, 0.01, 5), 4, 101);
}

TEST(WarmEquivalence, CliqueChain) {
  check_warm_equivalence(gen::clique_chain(16, 8), 4, 202);
}

TEST(WarmEquivalence, WattsStrogatz) {
  check_warm_equivalence(gen::watts_strogatz(256, 8, 0.1, 17), 4, 303);
}

TEST(WarmEquivalence, Rmat) {
  gen::RmatParams params;
  params.scale = 8;
  params.edges_per_vertex = 8;
  params.seed = 23;
  check_warm_equivalence(gen::rmat(params), 4, 404);
}

// ---- Streaming determinism: thread count and fault injection ----------------

namespace {

Result stream_result(const Plan& plan, const dg::Csr& base,
                     const std::vector<EdgeBatch>& batches) {
  auto session = plan.open(base);
  for (const auto& b : batches) session.update(b);
  return session.result();
}

}  // namespace

TEST(StreamingDeterminism, ThreadCountInvariant) {
  auto ledger = EdgeLedger::from(gen::planted_partition(180, 6, 0.30, 0.02, 7));
  const auto base = ledger.csr();
  std::mt19937_64 rng(55);
  std::vector<EdgeBatch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(ledger.next_batch(rng, 5, 3));

  const auto r1 = stream_result(Plan::distributed(4).threads(1), base, batches);
  const auto r4 = stream_result(Plan::distributed(4).threads(4), base, batches);
  const auto r16 = stream_result(Plan::distributed(4).threads(16), base, batches);
  expect_bitwise_equal(r1, r4);
  expect_bitwise_equal(r1, r16);
}

TEST(StreamingDeterminism, DelayAndDuplicationInvariant) {
  auto ledger = EdgeLedger::from(gen::planted_partition(160, 4, 0.30, 0.02, 9));
  const auto base = ledger.csr();
  std::mt19937_64 rng(66);
  std::vector<EdgeBatch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(ledger.next_batch(rng, 5, 3));

  const auto clean = stream_result(Plan::distributed(4).threads(2), base, batches);
  const auto faulty = stream_result(
      Plan::distributed(4).threads(2).inject_faults(
          dc::FaultPlan().with_seed(3).delay(0.2, 1.0).duplicate(0.2)),
      base, batches);
  expect_bitwise_equal(clean, faulty);
  EXPECT_GT(faulty.recovery.injected_delays + faulty.recovery.injected_duplicates, 0);
}

// ---- DistGraph::apply_edge_changes vs rebuild-from-scratch ------------------

TEST(ApplyEdgeChanges, MatchesFromReplicatedRebuild) {
  auto ledger = EdgeLedger::from(gen::planted_partition(120, 4, 0.30, 0.02, 13));
  const auto before = ledger.csr();
  std::mt19937_64 rng(77);
  const auto batch = ledger.next_batch(rng, 8, 5);
  const auto after = ledger.csr();

  constexpr int kRanks = 4;
  dc::run(kRanks, [&](dc::Comm& comm) {
    auto mutated = dg::DistGraph::from_replicated(comm, before);
    mutated.apply_edge_changes(comm, batch.changes());
    // Rebuild from scratch under the SAME partition (apply_edge_changes
    // keeps the original vertex distribution; from_replicated would re-cut
    // kEvenEdges on the new edge counts).
    std::vector<Edge> owned_arcs;
    for (VertexId lv = 0; lv < mutated.local_count(); ++lv) {
      const VertexId gv = mutated.to_global(lv);
      for (const auto& e : after.neighbors(gv)) {
        owned_arcs.push_back(Edge{gv, e.dst, e.weight});
      }
    }
    const auto rebuilt = dg::DistGraph::build(comm, mutated.partition(),
                                              std::move(owned_arcs),
                                              /*symmetrize=*/false);

    ASSERT_EQ(mutated.local_count(), rebuilt.local_count());
    EXPECT_EQ(mutated.local().offsets(), rebuilt.local().offsets());
    ASSERT_EQ(mutated.local().edges().size(), rebuilt.local().edges().size());
    for (std::size_t i = 0; i < mutated.local().edges().size(); ++i) {
      EXPECT_EQ(mutated.local().edges()[i].dst, rebuilt.local().edges()[i].dst);
      EXPECT_DOUBLE_EQ(mutated.local().edges()[i].weight,
                       rebuilt.local().edges()[i].weight);
    }
    EXPECT_DOUBLE_EQ(mutated.total_weight(), rebuilt.total_weight());
    EXPECT_EQ(mutated.ghosts(), rebuilt.ghosts());
    EXPECT_EQ(mutated.boundary_flags(), rebuilt.boundary_flags());
    EXPECT_EQ(mutated.neighbor_ranks(), rebuilt.neighbor_ranks());
  });
}

TEST(ApplyEdgeChanges, RemovalOfAbsentEdgeThrowsEverywhere) {
  const auto g = gen::ring(64);
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  constexpr int kRanks = 2;
  dc::run(kRanks, [&](dc::Comm& comm) {
    auto dist = dg::DistGraph::from_replicated(comm, csr);
    const std::vector<dg::EdgeChange> changes{
        dg::EdgeChange{0, 2, 0.0, true}};  // ring has no chord 0-2
    EXPECT_THROW(dist.apply_edge_changes(comm, changes), std::invalid_argument);
  });
}

// ---- Fallback to full recompute ---------------------------------------------

TEST(Session, FallbackFiresOnDestructiveBatchAndMatchesScratch) {
  auto ledger = EdgeLedger::from(gen::planted_partition(160, 4, 0.40, 0.01, 21));
  const auto plan = Plan::distributed(4).threads(2).update_fallback(0.0);
  auto session = plan.open(ledger.csr());

  // Shred structure: remove many edges (mostly intra-community at this
  // density), so even the best re-clustering lands below the old modularity
  // and the zero-drift threshold forces the full recompute path.
  std::mt19937_64 rng(88);
  const auto batch = ledger.next_batch(rng, /*additions=*/0, /*removals=*/40);
  const auto stats = session.update(batch);
  EXPECT_TRUE(stats.fell_back_to_full);
  EXPECT_EQ(session.result().updates.fallback_to_full, 1);

  // The fallback recomputes from scratch on the updated graph, so it must
  // be bitwise-identical to a fresh run on the same final graph.
  const auto scratch = plan.run(ledger.csr());
  expect_bitwise_equal(session.result(), scratch);
}

TEST(Session, GenerousFallbackThresholdNeverFires) {
  auto ledger = EdgeLedger::from(gen::planted_partition(160, 4, 0.30, 0.02, 31));
  auto session = Plan::distributed(4).threads(2).update_fallback(1.0).open(ledger.csr());
  std::mt19937_64 rng(99);
  session.update(ledger.next_batch(rng, 4, 2));
  EXPECT_EQ(session.result().updates.fallback_to_full, 0);
}

// ---- Batch edge cases -------------------------------------------------------

TEST(Session, EmptyBatchIsNoOp) {
  const auto g = gen::clique_chain(8, 6);
  auto session = Plan::distributed(2).open(dg::from_edges(g.num_vertices, g.edges));
  const auto before = session.result().community;
  const auto stats = session.update(EdgeBatch());
  EXPECT_EQ(stats.edges_added, 0);
  EXPECT_EQ(stats.edges_removed, 0);
  EXPECT_EQ(session.updates_applied(), 0);
  EXPECT_EQ(session.result().community, before);
}

TEST(Session, MalformedBatchThrowsWithoutMutating) {
  const auto g = gen::clique_chain(8, 6);
  auto session = Plan::distributed(2).open(dg::from_edges(g.num_vertices, g.edges));
  const auto before = session.result().community;

  EXPECT_THROW(session.update(EdgeBatch().add(0, 1'000'000)), std::invalid_argument);
  EXPECT_THROW(session.update(EdgeBatch().add(3, 3)), std::invalid_argument);
  EXPECT_THROW(session.update(EdgeBatch().add(0, 1, -2.0)), std::invalid_argument);
  EXPECT_THROW(session.update(EdgeBatch().remove(0, 47)), std::invalid_argument);

  EXPECT_EQ(session.updates_applied(), 0);
  EXPECT_EQ(session.result().community, before);
}

// ---- Serial and shared sessions ---------------------------------------------

TEST(Session, SerialSessionRecomputesInFull) {
  auto ledger = EdgeLedger::from(gen::planted_partition(120, 4, 0.30, 0.02, 41));
  auto session = Plan::serial().open(ledger.csr());
  std::mt19937_64 rng(111);
  const auto batch = ledger.next_batch(rng, 5, 3);
  const auto stats = session.update(batch);
  EXPECT_TRUE(stats.fell_back_to_full);
  EXPECT_EQ(stats.vertices_reactivated, 0);

  const auto scratch = Plan::serial().run(ledger.csr());
  expect_bitwise_equal(session.result(), scratch);
}

TEST(Session, SharedSessionRemovalOfAbsentEdgeThrowsWithoutMutating) {
  auto ledger = EdgeLedger::from(gen::clique_chain(8, 6));
  auto session = Plan::shared(2).open(ledger.csr());
  const auto before = session.result().community;
  EXPECT_THROW(session.update(EdgeBatch().remove(0, 40)), std::invalid_argument);
  EXPECT_EQ(session.result().community, before);
  EXPECT_EQ(session.updates_applied(), 0);
}

// ---- Satellite 1: Plan::validate() ------------------------------------------

TEST(PlanValidate, RejectsDistributedKnobsOnLocalEngines) {
  const auto g = gen::ring(16);
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  EXPECT_THROW(Plan::serial().coloring().run(csr), PlanError);
  EXPECT_THROW(Plan::serial().threshold_cycling().run(csr), PlanError);
  EXPECT_THROW(Plan::shared(2).overlap(dlouvain::OverlapMode::kOn).run(csr), PlanError);
  EXPECT_THROW(Plan::shared(2).exchange(dlouvain::GhostExchangeMode::kDelta).run(csr),
               PlanError);
  EXPECT_THROW(Plan::serial().checkpointing("/tmp/x").run(csr), PlanError);
  EXPECT_THROW(Plan::serial().inject_faults(dc::FaultPlan().delay(0.1)).run(csr),
               PlanError);
  EXPECT_THROW(Plan::serial().max_restarts(2).run(csr), PlanError);
  EXPECT_THROW(Plan::serial().comm_timeout(1.0).run(csr), PlanError);
  EXPECT_THROW(Plan::serial().retransmit(3).run(csr), PlanError);
  EXPECT_THROW(Plan::shared(2).shrink_on_rank_loss().run(csr), PlanError);
}

TEST(PlanValidate, RejectsOutOfRangeSettings) {
  EXPECT_THROW(Plan::distributed(0).validate(), PlanError);
  EXPECT_THROW(Plan::distributed(2).threshold(-1.0).validate(), PlanError);
  EXPECT_THROW(Plan::distributed(2).resolution(0.0).validate(), PlanError);
  EXPECT_THROW(Plan::distributed(2).max_phases(0).validate(), PlanError);
  EXPECT_THROW(Plan::distributed(2).max_iterations(0).validate(), PlanError);
  EXPECT_THROW(Plan::distributed(2).update_fallback(-0.1).validate(), PlanError);
  EXPECT_THROW(
      Plan::distributed(2).variant(dlouvain::Variant::kEt).alpha(0.0).validate(),
      PlanError);
  EXPECT_THROW(
      Plan::distributed(2).variant(dlouvain::Variant::kEtc).alpha(1.5).validate(),
      PlanError);
  EXPECT_THROW(Plan::distributed(2).checkpointing("/tmp/x", 0).validate(), PlanError);
  EXPECT_THROW(Plan::distributed(2).vertex_following().validate(), PlanError);
  EXPECT_THROW(Plan::distributed(2).retransmit(-1).validate(), PlanError);
  EXPECT_THROW(Plan::distributed(2).retransmit(3, 0.0).validate(), PlanError);
  EXPECT_THROW(Plan::distributed(2).retransmit(3, -2.0).validate(), PlanError);
  EXPECT_NO_THROW(Plan::distributed(2).retransmit(0).validate());
  EXPECT_NO_THROW(Plan::distributed(2).retransmit(5, 0.5).shrink_on_rank_loss().validate());
  EXPECT_NO_THROW(Plan::distributed(2).variant(dlouvain::Variant::kBaseline)
                      .alpha(7.0)  // unused by the baseline variant
                      .validate());
}

TEST(PlanValidate, ResumeNoLongerClobbersCheckpointDir) {
  // Pre-PR, resume() silently overwrote checkpointing()'s directory (and
  // vice versa, order-dependently). Now: same dir fine, different dirs a
  // validate() error, resume alone keeps checkpointing into the resume dir.
  EXPECT_THROW(Plan::distributed(2).resume("").validate(), PlanError);
  EXPECT_THROW(Plan::distributed(2).checkpointing("/tmp/a").resume("/tmp/b").validate(),
               PlanError);
  EXPECT_THROW(Plan::distributed(2).resume("/tmp/b").checkpointing("/tmp/a").validate(),
               PlanError);

  const auto same = Plan::distributed(2).checkpointing("/tmp/a").resume("/tmp/a");
  EXPECT_NO_THROW(same.validate());
  EXPECT_EQ(same.dist_config().checkpoint.dir, "/tmp/a");
  EXPECT_TRUE(same.dist_config().checkpoint.resume);

  const auto resume_only = Plan::distributed(2).resume("/tmp/c");
  EXPECT_NO_THROW(resume_only.validate());
  EXPECT_EQ(resume_only.dist_config().checkpoint.dir, "/tmp/c");
  EXPECT_TRUE(resume_only.dist_config().checkpoint.resume);

  const auto checkpoint_only = Plan::distributed(2).checkpointing("/tmp/d", 2);
  EXPECT_EQ(checkpoint_only.dist_config().checkpoint.dir, "/tmp/d");
  EXPECT_FALSE(checkpoint_only.dist_config().checkpoint.resume);
}

// ---- Satellite 3: manifest v2 -----------------------------------------------

TEST(ManifestV2, UpdatesSectionAlwaysPresent) {
  const auto g = gen::clique_chain(8, 6);
  const auto csr = dg::from_edges(g.num_vertices, g.edges);

  const auto one_shot = Plan::distributed(2).run(csr);
  const auto json = one_shot.to_json();
  EXPECT_NE(json.find("\"schema\":\"dlouvain-run-manifest/5\""), std::string::npos);
  EXPECT_NE(json.find("\"updates\":{\"batches_applied\":0"), std::string::npos);

  const auto serial_json = Plan::serial().run(csr).to_json();
  EXPECT_NE(serial_json.find("\"schema\":\"dlouvain-run-manifest/5\""),
            std::string::npos);
  EXPECT_NE(serial_json.find("\"updates\":{\"batches_applied\":0"), std::string::npos);
}

TEST(ManifestV2, UpdatesSectionTracksSession) {
  auto ledger = EdgeLedger::from(gen::planted_partition(120, 4, 0.30, 0.02, 51));
  auto session = Plan::distributed(2).threads(2).open(ledger.csr());
  std::mt19937_64 rng(121);
  session.update(ledger.next_batch(rng, 3, 2));
  session.update(ledger.next_batch(rng, 2, 1));

  const auto& u = session.result().updates;
  EXPECT_EQ(u.batches_applied, 2);
  EXPECT_EQ(u.edges_added, 5);
  EXPECT_EQ(u.edges_removed, 3);
  const auto json = session.result().to_json();
  EXPECT_NE(json.find("\"updates\":{\"batches_applied\":2,\"edges_added\":5,"
                      "\"edges_removed\":3"),
            std::string::npos);
}

// ---- ISSUE 9 satellite 1: Session safe against reuse-after-failure ----------

namespace {

/// Stage a converged checkpoint in `dir` so a follow-up session can
/// `.resume(dir)` straight past phase 0 -- which lets a (phase 0, iter 0)
/// fault trigger target the UPDATE's warm re-convergence while the initial
/// (resumed) run sails past untouched.
dg::Csr stage_resumable_checkpoint(const std::string& dir) {
  std::filesystem::remove_all(dir);
  const auto g = gen::planted_partition(240, 6, 0.30, 0.01, 11);
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  const auto staged = Plan::distributed(3).checkpointing(dir).run(csr);
  // The trick needs a phase >= 1 checkpoint; this graph converges in
  // several phases.
  EXPECT_GE(staged.phases, 2);
  EXPECT_GE(core::checkpoint_latest_phase(dir).value_or(0), 1);
  return csr;
}

}  // namespace

TEST(SessionLifecycle, TransientExhaustionDoesNotPoisonNextUpdateRecovers) {
  const std::string dir = "ckpt_transient_reuse";
  const auto csr = stage_resumable_checkpoint(dir);

  // crash() is one-shot: the first update's attempt 0 dies, and with
  // max_restarts(0) the CommFailure propagates to the caller.
  auto session = Plan::distributed(3)
                     .resume(dir)
                     .inject_faults(dc::FaultPlan().crash(1, /*phase=*/0, /*iteration=*/0))
                     .max_restarts(0)
                     .open(csr);
  ASSERT_GE(session.result().recovery.resumed_from_phase, 1);

  const auto batch = EdgeBatch().add(0, 120, 1.0).add(5, 200, 1.0);
  EXPECT_THROW(session.update(batch), dc::RankCrashed);

  // Pre-PR, the session was left in a futile-retry state. Now: a transient
  // exhaustion never poisons -- updates mutate copies and commit on success,
  // so the failed batch left NOTHING behind...
  EXPECT_TRUE(session.poisoned().empty());
  EXPECT_EQ(session.result().updates.batches_applied, 0);
  EXPECT_EQ(session.result().recovery.attempts, 2);  // initial + failed update attempt

  // ...and the SAME batch succeeds on retry (the one-shot trigger already
  // fired), with the session's state exactly pre-batch.
  const auto stats = session.update(batch);
  EXPECT_EQ(stats.edges_added, 2);
  EXPECT_EQ(session.result().updates.batches_applied, 1);
  std::filesystem::remove_all(dir);
}

TEST(SessionLifecycle, RankDeathDuringUpdatePoisonsSession) {
  const std::string dir = "ckpt_poison";
  const auto csr = stage_resumable_checkpoint(dir);

  // kill() is permanent: the rank is dead for good and re-fails every
  // attempt, so a restart budget must NOT be burned retrying the update.
  auto session = Plan::distributed(3)
                     .resume(dir)
                     .inject_faults(dc::FaultPlan().kill(1, /*phase=*/0, /*iteration=*/0))
                     .max_restarts(3)
                     .open(csr);
  ASSERT_GE(session.result().recovery.resumed_from_phase, 1);

  const auto batch = EdgeBatch().add(0, 120, 1.0);
  EXPECT_THROW(session.update(batch), dc::RankDead);

  // The death was taken as a verdict, and the session is poisoned: the
  // resident per-rank slices are partitioned for a world that lost a rank.
  // (result() itself now reports the poisoning, so the message is the
  // only telemetry left -- that is the point of the bugfix.)
  ASSERT_FALSE(session.poisoned().empty());
  EXPECT_NE(session.poisoned().find("rank-death"), std::string::npos);
  EXPECT_NE(session.poisoned().find("re-open the plan"), std::string::npos);

  // Every subsequent use reports the original cause as SessionPoisoned --
  // result() via the const accessor, update() before touching anything.
  const auto& poisoned_session = session;
  EXPECT_THROW((void)poisoned_session.result(), dlouvain::SessionPoisoned);
  try {
    session.update(EdgeBatch().add(2, 3, 1.0));
    FAIL() << "expected SessionPoisoned";
  } catch (const dlouvain::SessionPoisoned& e) {
    EXPECT_NE(std::string(e.what()).find("rank-death"), std::string::npos);
  }
  EXPECT_EQ(session.updates_applied(), 0);
  std::filesystem::remove_all(dir);
}

// ---- ISSUE 9 satellite 2: checkpoint-dir collision between live Plans ------

TEST(CheckpointLock, TwoSimultaneousSessionsSameDirCollide) {
  const std::string dir = "ckpt_lock_collision";
  std::filesystem::remove_all(dir);
  const auto g = gen::clique_chain(6, 8);
  const auto csr = dg::from_edges(g.num_vertices, g.edges);

  const auto plan = Plan::distributed(2).checkpointing(dir);
  auto first = plan.open(csr);  // holds the directory lock while resident

  // Pre-PR, the second session silently interleaved (and pruned) the
  // first's phase files. Now open() fails fast, naming both owners.
  try {
    auto second = plan.open(csr);
    FAIL() << "expected PlanError";
  } catch (const PlanError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(dir), std::string::npos) << what;
    EXPECT_NE(what.find("in use by"), std::string::npos) << what;
    // Both parties are named: the holder's pidfile line and this plan.
    EXPECT_NE(what.find("pid"), std::string::npos) << what;
    EXPECT_NE(what.find("different directories"), std::string::npos) << what;
  }

  // The lock is released with the session: a sequential reuse is fine.
  {
    auto moved = std::move(first);  // lock moves with the session
    EXPECT_THROW((void)plan.open(csr), PlanError);
  }
  EXPECT_NO_THROW((void)plan.open(csr));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointLock, StaleLockReclaimedLiveLockHonoured) {
  namespace fs = std::filesystem;
  const std::string dir = "ckpt_lock_unit";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // A lock whose pid is gone (crashed process) is stale: reclaimed, so
  // recovery-by-resume after a hard crash still works.
  {
    std::ofstream(dir + "/LOCK") << "pid 4000000 session s99\n";
    core::CheckpointDirLock lock(dir, "fresh");
    EXPECT_NE(lock.owner_line().find("session fresh"), std::string::npos);
  }
  // Released on destruction.
  EXPECT_FALSE(fs::exists(dir + "/LOCK"));

  // A live holder (this process) is honoured -- CheckpointDirBusy carries
  // the holder's line so the caller can name it.
  core::CheckpointDirLock held(dir, "alpha");
  try {
    core::CheckpointDirLock second(dir, "beta");
    FAIL() << "expected CheckpointDirBusy";
  } catch (const core::CheckpointDirBusy& busy) {
    EXPECT_NE(busy.owner.find("session alpha"), std::string::npos) << busy.owner;
    EXPECT_NE(std::string(busy.what()).find(dir), std::string::npos);
  }
  fs::remove_all(dir);
}

// ---- ISSUE 9 satellite 3: EdgeBatch duplicate-change semantics --------------
//
// The documented contract (dlouvain.hpp EdgeBatch): removals resolve against
// the PRE-batch graph and additions apply after, regardless of listed order;
// duplicate adds sum (on top of the surviving pre-batch weight); duplicate
// removes are an error. Pinned here for BOTH engines: absolute graph-level
// semantics via apply_edge_changes against an explicitly-built expected
// graph, and engine-level equivalence via bitwise-identical session results
// for equivalent batches.

namespace {

/// apply_edge_changes(before, changes) must produce exactly `expected`
/// (weights compared bitwise via EXPECT_DOUBLE_EQ on every arc).
void expect_changes_yield(const dg::Csr& before, const std::vector<dg::EdgeChange>& changes,
                          const dg::Csr& expected) {
  dc::run(2, [&](dc::Comm& comm) {
    auto mutated = dg::DistGraph::from_replicated(comm, before);
    mutated.apply_edge_changes(comm, changes);
    for (VertexId lv = 0; lv < mutated.local_count(); ++lv) {
      const VertexId gv = mutated.to_global(lv);
      const auto got = mutated.local().neighbors(lv);
      const auto want = expected.neighbors(gv);
      ASSERT_EQ(got.size(), want.size()) << "row " << gv;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].dst, want[i].dst) << "row " << gv;
        EXPECT_DOUBLE_EQ(got[i].weight, want[i].weight) << "row " << gv;
      }
    }
  });
}

/// The clique-chain fixture: {0,1} is an intra-clique edge of weight 1;
/// {0,9} does not exist (different cliques, no bridge).
struct DupFixture {
  EdgeLedger ledger;
  dg::Csr before;

  DupFixture() : ledger(EdgeLedger::from(gen::clique_chain(4, 8))), before(ledger.csr()) {}

  [[nodiscard]] dg::Csr with_weight01(double w) const {
    auto edges = ledger.edges;
    for (auto& e : edges) {
      if (e.src == 0 && e.dst == 1) {
        e.weight = w;
        return dg::from_edges(ledger.n, edges);
      }
    }
    ADD_FAILURE() << "fixture lost edge {0,1}";
    return before;
  }
};

}  // namespace

TEST(EdgeBatchSemantics, DuplicateAddsSumAcrossOrientations) {
  const DupFixture fx;
  // add(0,1,2) + add(1,0,3): one undirected edge, weights sum onto the
  // pre-batch weight 1 -> 6. Orientation never matters.
  expect_changes_yield(fx.before,
                       {dg::EdgeChange{0, 1, 2.0, false}, dg::EdgeChange{1, 0, 3.0, false}},
                       fx.with_weight01(6.0));
}

TEST(EdgeBatchSemantics, RemoveThenAddReplacesRegardlessOfOrder) {
  const DupFixture fx;
  // Removal consumes the pre-batch edge; the addition then creates it
  // fresh: final weight is exactly 4, NOT 1+4.
  const dg::Csr expected = fx.with_weight01(4.0);
  expect_changes_yield(fx.before,
                       {dg::EdgeChange{0, 1, 0.0, true}, dg::EdgeChange{0, 1, 4.0, false}},
                       expected);
  // Listed order is immaterial: removals resolve against the PRE-batch
  // graph even when written after the add.
  expect_changes_yield(fx.before,
                       {dg::EdgeChange{0, 1, 4.0, false}, dg::EdgeChange{0, 1, 0.0, true}},
                       expected);
}

TEST(EdgeBatchSemantics, DuplicateRemoveThrowsEverywhere) {
  const DupFixture fx;
  // The second removal names an edge the pre-batch graph holds only once.
  dc::run(2, [&](dc::Comm& comm) {
    auto dist = dg::DistGraph::from_replicated(comm, fx.before);
    const std::vector<dg::EdgeChange> dup{dg::EdgeChange{0, 1, 0.0, true},
                                          dg::EdgeChange{1, 0, 0.0, true}};
    EXPECT_THROW(dist.apply_edge_changes(comm, dup), std::invalid_argument);
  });
  // Same verdict through a serial session, which must stay unmutated.
  auto session = Plan::serial().open(fx.before);
  const auto before_mod = session.result().modularity;
  EXPECT_THROW(session.update(EdgeBatch().remove(0, 1).remove(1, 0)),
               std::invalid_argument);
  EXPECT_EQ(session.result().modularity, before_mod);
  EXPECT_EQ(session.updates_applied(), 0);
}

TEST(EdgeBatchSemantics, AddThenRemoveOfAbsentEdgeThrows) {
  const DupFixture fx;
  // {0,9} is absent pre-batch; the add in the same batch does NOT rescue
  // the removal (removals resolve pre-batch, by contract).
  dc::run(2, [&](dc::Comm& comm) {
    auto dist = dg::DistGraph::from_replicated(comm, fx.before);
    const std::vector<dg::EdgeChange> changes{dg::EdgeChange{0, 9, 1.0, false},
                                              dg::EdgeChange{0, 9, 0.0, true}};
    EXPECT_THROW(dist.apply_edge_changes(comm, changes), std::invalid_argument);
  });
  auto session = Plan::serial().open(fx.before);
  EXPECT_THROW(session.update(EdgeBatch().add(0, 9, 1.0).remove(0, 9)),
               std::invalid_argument);
  EXPECT_EQ(session.updates_applied(), 0);
}

TEST(EdgeBatchSemantics, EquivalentBatchesConvergeBitwiseIdentically) {
  // Engine-level pin: two textually different but semantically equal
  // batches (same post-batch graph, same touched set) must leave two
  // sessions bitwise identical -- distributed (warm path) and serial.
  const DupFixture fx;
  for (const auto make_plan : {+[] { return Plan::distributed(3); },
                               +[] { return Plan::serial(); }}) {
    auto a = make_plan().open(fx.before);
    auto b = make_plan().open(fx.before);
    // a: remove {0,1} then add it back at 4.  b: top up {0,1} by 3 (1+3=4).
    a.update(EdgeBatch().remove(0, 1).add(0, 1, 4.0));
    b.update(EdgeBatch().add(0, 1, 3.0));
    expect_bitwise_equal(a.result(), b.result());
  }
}
