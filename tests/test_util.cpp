// Unit tests for the util library: PRNG determinism and distribution sanity,
// timers, running stats, CLI parsing, table rendering.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace du = dlouvain::util;

TEST(Prng, SplitmixIsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(du::splitmix64(s1), du::splitmix64(s2));
}

TEST(Prng, MixSeparatesNearbyKeys) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 1000; ++k) seen.insert(du::mix64(k));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Prng, HashRandUnitInRange) {
  for (std::uint64_t k = 0; k < 10000; ++k) {
    const double x = du::hash_rand_unit(k);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Prng, HashRandUnitIsUniformish) {
  // Mean of U(0,1) over 100k keyed draws should be close to 0.5.
  double sum = 0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) sum += du::hash_rand_unit(7, k, 3, 5);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Prng, KeyedDrawIndependentOfCallOrder) {
  const double a = du::hash_rand_unit(1, 2, 3, 4);
  (void)du::hash_rand_unit(9, 9, 9, 9);
  EXPECT_EQ(a, du::hash_rand_unit(1, 2, 3, 4));
}

TEST(Prng, XoshiroSequenceDeterministic) {
  du::Xoshiro256StarStar g1(123);
  du::Xoshiro256StarStar g2(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(g1(), g2());
}

TEST(Prng, XoshiroNextBelowRespectsBound) {
  du::Xoshiro256StarStar gen(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(gen.next_below(17), 17u);
}

TEST(Prng, XoshiroNextBelowCoversRange) {
  du::Xoshiro256StarStar gen(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, XoshiroUnitInRange) {
  du::Xoshiro256StarStar gen(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = gen.next_unit();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  du::WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.millis(), 15.0);
}

TEST(Timer, AccumSumsWindows) {
  du::AccumTimer acc;
  for (int i = 0; i < 3; ++i) {
    acc.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    acc.stop();
  }
  EXPECT_EQ(acc.count(), 3);
  EXPECT_GE(acc.seconds(), 0.010);
}

TEST(Timer, ScopedAccumStopsOnDestruction) {
  du::AccumTimer acc;
  {
    du::ScopedAccum scope(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(acc.count(), 1);
  EXPECT_GT(acc.seconds(), 0.0);
}

TEST(Stats, RunningStatsBasics) {
  du::RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(du::percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(du::percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(du::percentile(xs, 50), 25);
}

TEST(Cli, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--n", "32", "--alpha=0.25", "--verbose"};
  du::Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 1), 32);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 0.25);
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_TRUE(cli.finish());
}

TEST(Cli, DefaultsApplyWhenMissing) {
  const char* argv[] = {"prog"};
  du::Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_EQ(cli.get_string("name", "abc"), "abc");
  EXPECT_FALSE(cli.get_flag("x"));
  EXPECT_TRUE(cli.finish());
}

TEST(Cli, UnknownFlagFailsFinish) {
  const char* argv[] = {"prog", "--oops", "1"};
  du::Cli cli(3, argv);
  (void)cli.get_int("n", 7);
  EXPECT_FALSE(cli.finish());
}

TEST(Cli, ParsesIntAndDoubleLists) {
  const char* argv[] = {"prog", "--ranks", "2,4,8", "--alpha", "0.25,0.75"};
  du::Cli cli(5, argv);
  EXPECT_EQ(cli.get_int_list("ranks", {}), (std::vector<std::int64_t>{2, 4, 8}));
  EXPECT_EQ(cli.get_double_list("alpha", {}), (std::vector<double>{0.25, 0.75}));
  EXPECT_TRUE(cli.finish());
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(du::Cli(2, argv), std::invalid_argument);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  du::TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(Table, MarkdownHasSeparatorRow) {
  du::TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_NE(os.str().find("|---|---|"), std::string::npos);
}

TEST(Table, FmtFormatsNumbers) {
  EXPECT_EQ(du::TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(du::TextTable::fmt(static_cast<long long>(42)), "42");
}
