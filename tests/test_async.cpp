// ISSUE 5 guarantees, pinned as tests:
//
//  * the async handle layer (Comm::irecv / isend, wait_any / wait_all,
//    PendingAlltoallv) completes whichever peer's buffer lands first, while
//    per-(src, tag) FIFO order and abort propagation still hold;
//  * arrival-order draining never changes what a collective returns, even
//    when the transport delays and duplicates messages;
//  * DistGraph's interior/boundary classification matches the definition
//    "has an arc to a non-owned vertex" on ring, star and RMAT graphs;
//  * overlap on / off / auto produce BITWISE identical results -- community
//    vector, modularity bits, checkpoint bytes -- at every thread count,
//    under fault injection, and through crash recovery;
//  * the comm_hidden telemetry is reported, non-negative, and excluded from
//    the breakdown's total().
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "comm/async.hpp"
#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "comm/world.hpp"
#include "core/metrics.hpp"
#include "dlouvain.hpp"
#include "gen/rmat.hpp"
#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "util/crc32.hpp"

namespace {

using namespace dlouvain;
namespace dc = dlouvain::comm;
namespace dg = dlouvain::graph;

std::uint32_t crc_of(const std::vector<CommunityId>& v) {
  return util::crc32(v.data(), v.size() * sizeof(CommunityId));
}

graph::Csr rmat10() {
  gen::RmatParams p;
  p.scale = 10;
  p.edges_per_vertex = 8;
  p.seed = 42;
  const auto g = gen::rmat(p);
  return graph::from_edges(g.num_vertices, g.edges);
}

// ---- async handle layer -----------------------------------------------------

TEST(Async, IrecvTakeRoundTrip) {
  dc::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      (void)comm.isend<int>(1, 7, std::vector<int>{1, 2, 3});
    } else {
      auto h = comm.irecv(0, 7);
      EXPECT_TRUE(h.valid());
      EXPECT_EQ(h.take<int>(), (std::vector<int>{1, 2, 3}));
      EXPECT_TRUE(h.done());
    }
  });
}

TEST(Async, TestDoesNotBlockBeforeArrival) {
  dc::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      // Only send AFTER rank 1 confirms it observed the pending handle.
      EXPECT_EQ(comm.recv_value<int>(1, 1), 42);
      (void)comm.isend<int>(1, 2, std::vector<int>{9});
    } else {
      auto h = comm.irecv(0, 2);
      EXPECT_FALSE(h.done());
      EXPECT_FALSE(h.test());  // nothing sent yet -- must not block
      comm.send_value<int>(0, 1, 42);
      h.wait();
      EXPECT_TRUE(h.done());
      EXPECT_TRUE(h.test());  // idempotent after completion
      EXPECT_EQ(h.take<int>(), (std::vector<int>{9}));
    }
  });
}

TEST(Async, WaitAnyReturnsWhicheverArrivedFirst) {
  // Rank 0 enqueues tag 10, then tag 11, then a flag; the mailbox queue
  // preserves put order, so once the flag is receivable both payloads are
  // already queued in that order. wait_any must then hand them back
  // oldest-arrival-first regardless of the handle order we pass.
  dc::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      (void)comm.isend<int>(1, 10, std::vector<int>{10});
      (void)comm.isend<int>(1, 11, std::vector<int>{11});
      comm.send_value<int>(1, 12, 1);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 12), 1);
      auto ha = comm.irecv(0, 11);  // handle order reversed on purpose
      auto hb = comm.irecv(0, 10);
      std::vector<dc::RecvHandle*> handles{&ha, &hb};
      const auto first = dc::wait_any(std::span<dc::RecvHandle* const>(handles));
      EXPECT_EQ(first, 1u);  // tag 10 was put first
      EXPECT_EQ(hb.take<int>(), (std::vector<int>{10}));
      dc::wait_all(std::span<dc::RecvHandle* const>(handles));
      EXPECT_EQ(ha.take<int>(), (std::vector<int>{11}));
    }
  });
}

TEST(Async, WaitAnySkipsStillPendingPeer) {
  // A receive posted toward a quiet peer must not stall completion of the
  // one that actually arrives: rank 0 only sends after rank 1 proves its
  // wait_any returned the rank-2 buffer.
  dc::run(3, [](dc::Comm& comm) {
    if (comm.rank() == 2) {
      (void)comm.isend<int>(1, 5, std::vector<int>{22});
    } else if (comm.rank() == 1) {
      auto from0 = comm.irecv(0, 5);  // nothing sent yet: pending throughout
      auto from2 = comm.irecv(2, 5);
      std::vector<dc::RecvHandle*> handles{&from0, &from2};
      const auto i = dc::wait_any(std::span<dc::RecvHandle* const>(handles));
      EXPECT_EQ(i, 1u);
      EXPECT_EQ(from2.take<int>(), (std::vector<int>{22}));
      comm.send_value<int>(0, 6, 1);  // now release rank 0's send
      from0.wait();
      EXPECT_EQ(from0.take<int>(), (std::vector<int>{20}));
    } else {
      EXPECT_EQ(comm.recv_value<int>(1, 6), 1);
      (void)comm.isend<int>(1, 5, std::vector<int>{20});
    }
  });
}

TEST(Async, AbortDuringPendingIrecvUnblocks) {
  EXPECT_THROW(dc::run(3,
                       [](dc::Comm& comm) {
                         if (comm.rank() == 0) throw std::runtime_error("boom");
                         auto h = comm.irecv(0, 99);
                         h.wait();  // must throw WorldAborted, not hang
                       }),
               std::runtime_error);
}

// ---- arrival-order collectives under faulty transport -----------------------

TEST(ArrivalOrder, AlltoallvMatchesExpectedUnderDelayAndDuplication) {
  dc::RunOptions options;
  options.faults = std::make_shared<dc::FaultInjector>(
      dc::FaultPlan().with_seed(13).delay(0.3, 0.5).duplicate(0.2));
  dc::run(
      4,
      [](dc::Comm& comm) {
        const int p = comm.size();
        for (int round = 0; round < 8; ++round) {
          std::vector<std::vector<int>> outbox(static_cast<std::size_t>(p));
          for (int dst = 0; dst < p; ++dst)
            outbox[static_cast<std::size_t>(dst)] = {
                comm.rank() * 1000 + dst * 10 + round};
          const auto inbox = comm.alltoallv<int>(std::move(outbox));
          for (int src = 0; src < p; ++src) {
            ASSERT_EQ(inbox[static_cast<std::size_t>(src)],
                      (std::vector<int>{src * 1000 + comm.rank() * 10 + round}))
                << "round " << round << " src " << src;
          }
        }
      },
      options);
}

TEST(ArrivalOrder, NeighborAlltoallvMatchesExpectedUnderFaults) {
  dc::RunOptions options;
  options.faults = std::make_shared<dc::FaultInjector>(
      dc::FaultPlan().with_seed(29).delay(0.3, 0.5).duplicate(0.2));
  dc::run(
      4,
      [](dc::Comm& comm) {
        // Fully-connected neighbourhood, peer lists in rank order.
        std::vector<Rank> neighbors;
        for (Rank r = 0; r < comm.size(); ++r)
          if (r != comm.rank()) neighbors.push_back(r);
        for (int round = 0; round < 8; ++round) {
          std::vector<std::vector<int>> outbox(neighbors.size());
          for (std::size_t i = 0; i < neighbors.size(); ++i)
            outbox[i] = {comm.rank() * 100 + neighbors[i] * 10 + round};
          const auto inbox =
              comm.neighbor_alltoallv<int>(neighbors, std::move(outbox));
          for (std::size_t i = 0; i < neighbors.size(); ++i) {
            ASSERT_EQ(inbox[i], (std::vector<int>{neighbors[i] * 100 +
                                                  comm.rank() * 10 + round}))
                << "round " << round << " neighbor " << neighbors[i];
          }
        }
      },
      options);
}

TEST(ArrivalOrder, PendingAlltoallvTestAbsorbsEarlyArrivals) {
  dc::run(3, [](dc::Comm& comm) {
    std::vector<std::vector<int>> outbox(3);
    for (int dst = 0; dst < 3; ++dst) outbox[static_cast<std::size_t>(dst)] = {dst};
    auto pending = comm.ialltoallv<int>(std::move(outbox));
    (void)pending.test();  // nonblocking; may or may not complete
    const auto inbox = pending.take();
    EXPECT_TRUE(pending.done());
    for (int src = 0; src < 3; ++src)
      EXPECT_EQ(inbox[static_cast<std::size_t>(src)],
                (std::vector<int>{comm.rank()}));
    EXPECT_GE(pending.wait_seconds(), 0.0);
    EXPECT_GE(pending.hidden_seconds(), 0.0);
  });
}

// ---- interior/boundary classification ---------------------------------------

/// For every owned vertex, is_boundary must equal "some incident arc leaves
/// the owned range" computed straight from the replicated CSR.
void expect_classification_matches(const graph::Csr& csr, int ranks) {
  dc::run(ranks, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, csr);
    const auto& offsets = csr.offsets();
    const auto& arcs = csr.edges();
    VertexId boundary = 0;
    for (VertexId lv = 0; lv < dist.local_count(); ++lv) {
      const auto gv = dist.to_global(lv);
      bool expect_boundary = false;
      for (auto a = static_cast<std::size_t>(offsets[static_cast<std::size_t>(gv)]);
           a < static_cast<std::size_t>(offsets[static_cast<std::size_t>(gv) + 1]);
           ++a) {
        if (!dist.owns(arcs[a].dst)) {
          expect_boundary = true;
          break;
        }
      }
      EXPECT_EQ(dist.is_boundary(lv), expect_boundary)
          << "rank " << comm.rank() << " vertex " << gv;
      if (expect_boundary) ++boundary;
    }
    EXPECT_EQ(dist.boundary_count(), boundary);
    EXPECT_EQ(dist.interior_count(), dist.local_count() - boundary);
  });
}

TEST(Boundary, RingClassification) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 8; ++v) edges.push_back({v, (v + 1) % 8, 1.0});
  const auto csr = graph::from_edges(8, edges);
  expect_classification_matches(csr, 2);
  expect_classification_matches(csr, 4);
}

TEST(Boundary, StarClassification) {
  std::vector<Edge> edges;
  for (VertexId leaf = 1; leaf < 10; ++leaf) edges.push_back({0, leaf, 1.0});
  const auto csr = graph::from_edges(10, edges);
  expect_classification_matches(csr, 2);
  expect_classification_matches(csr, 3);
}

TEST(Boundary, RmatClassification) {
  gen::RmatParams p;
  p.scale = 7;
  p.edges_per_vertex = 8;
  p.seed = 9;
  const auto g = gen::rmat(p);
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  expect_classification_matches(csr, 3);
}

TEST(Boundary, SingleRankHasNoBoundary) {
  const auto csr = rmat10();
  dc::run(1, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, csr);
    EXPECT_EQ(dist.boundary_count(), 0);
    EXPECT_EQ(dist.interior_count(), dist.local_count());
  });
}

// ---- overlap on/off bitwise identity ----------------------------------------

struct Bits {
  std::uint64_t modularity;
  std::uint32_t community_crc;
  int phases;
  long iterations;

  bool operator==(const Bits&) const = default;
};

Bits bits_of(const Result& r) {
  return {std::bit_cast<std::uint64_t>(r.modularity), crc_of(r.community),
          r.phases, r.total_iterations};
}

TEST(Overlap, OnOffAutoBitwiseIdenticalAcrossThreadCounts) {
  const auto g = rmat10();
  for (const int threads : {1, 4, 16}) {
    const auto off = bits_of(Plan::distributed(4)
                                 .threads(threads)
                                 .seed(123)
                                 .overlap(OverlapMode::kOff)
                                 .run(g));
    const auto on = bits_of(Plan::distributed(4)
                                .threads(threads)
                                .seed(123)
                                .overlap(OverlapMode::kOn)
                                .run(g));
    const auto auto_mode = bits_of(Plan::distributed(4)
                                       .threads(threads)
                                       .seed(123)
                                       .overlap(OverlapMode::kAuto)
                                       .run(g));
    EXPECT_EQ(off, on) << "threads " << threads;
    EXPECT_EQ(off, auto_mode) << "threads " << threads;
  }
}

TEST(Overlap, ColoringAndVariantsUnaffected) {
  const auto g = rmat10();
  for (const bool coloring : {false, true}) {
    const auto off = bits_of(Plan::distributed(3)
                                 .threads(2)
                                 .seed(123)
                                 .coloring(coloring)
                                 .variant(Variant::kEtc)
                                 .overlap(OverlapMode::kOff)
                                 .run(g));
    const auto on = bits_of(Plan::distributed(3)
                                .threads(2)
                                .seed(123)
                                .coloring(coloring)
                                .variant(Variant::kEtc)
                                .overlap(OverlapMode::kOn)
                                .run(g));
    EXPECT_EQ(off, on) << "coloring " << coloring;
  }
}

TEST(Overlap, SurvivesDelayAndDuplicationFaults) {
  const auto g = rmat10();
  const auto faults = dc::FaultPlan().with_seed(11).delay(0.05, 0.5).duplicate(0.05);
  const auto off = bits_of(Plan::distributed(4)
                               .threads(1)
                               .seed(123)
                               .overlap(OverlapMode::kOff)
                               .inject_faults(faults)
                               .run(g));
  const auto on = bits_of(Plan::distributed(4)
                              .threads(1)
                              .seed(123)
                              .overlap(OverlapMode::kOn)
                              .inject_faults(faults)
                              .run(g));
  EXPECT_EQ(off, on);
}

std::vector<std::pair<std::string, std::vector<char>>> snapshot_dir(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::string, std::vector<char>>> files;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    // counters.bin carries wall-clock seconds: excluded, like in
    // test_hotpath's exchange-mode byte-identity contract.
    if (entry.path().filename() == "counters.bin") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    files.emplace_back(entry.path().lexically_relative(dir).string(),
                       std::vector<char>(std::istreambuf_iterator<char>(in),
                                         std::istreambuf_iterator<char>()));
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Overlap, CheckpointsAreByteIdenticalAcrossModes) {
  const auto g = rmat10();
  const auto base = std::filesystem::temp_directory_path() / "dlel_ckpt_overlap";
  std::filesystem::remove_all(base);

  std::vector<std::vector<std::pair<std::string, std::vector<char>>>> snapshots;
  for (const auto mode : {OverlapMode::kOff, OverlapMode::kOn}) {
    const auto dir = base / core::overlap_mode_label(mode);
    const auto result = Plan::distributed(2)
                            .threads(1)
                            .seed(123)
                            .overlap(mode)
                            .checkpointing(dir.string(), 1)
                            .run(g);
    EXPECT_GT(result.phases, 1);
    snapshots.push_back(snapshot_dir(dir));
  }
  ASSERT_FALSE(snapshots[0].empty());
  EXPECT_EQ(snapshots[0], snapshots[1]) << "overlap off vs on checkpoint bytes";
  std::filesystem::remove_all(base);
}

TEST(Overlap, CrashRecoveryWithOverlapOnMatchesCleanRun) {
  const auto g = rmat10();
  const auto dir =
      std::filesystem::temp_directory_path() / "dlel_ckpt_overlap_crash";
  std::filesystem::remove_all(dir);

  const auto clean = bits_of(
      Plan::distributed(4).threads(1).seed(123).overlap(OverlapMode::kOn).run(g));
  const auto recovered = Plan::distributed(4)
                             .threads(1)
                             .seed(123)
                             .overlap(OverlapMode::kOn)
                             .checkpointing(dir.string(), 1)
                             .inject_faults(dc::FaultPlan().crash(1, 2))
                             .max_restarts(2)
                             .run(g);
  EXPECT_GT(recovered.recovery.attempts, 1);
  EXPECT_EQ(bits_of(recovered), clean);
  std::filesystem::remove_all(dir);
}

// ---- comm_hidden telemetry --------------------------------------------------

TEST(Overlap, CommHiddenReportedAndExcludedFromTotal) {
  const auto g = rmat10();
  const auto r =
      Plan::distributed(4).threads(1).seed(123).overlap(OverlapMode::kOn).run(g);
  ASSERT_TRUE(r.distributed.has_value());
  const auto& b = r.distributed->breakdown;
  EXPECT_GE(b.comm_hidden, 0.0);
  // total() is the attributed wall-time split; hidden seconds overlap the
  // compute wall time and must not be double counted into it.
  EXPECT_EQ(b.total(), b.ghost_exchange + b.community_info + b.compute +
                           b.delta_exchange + b.allreduce + b.rebuild);
  const auto json = core::dist_result_to_json(*r.distributed);
  EXPECT_NE(json.find("\"comm_hidden\":"), std::string::npos);
}

TEST(Overlap, OffModeHidesNothing) {
  const auto g = rmat10();
  const auto r =
      Plan::distributed(2).threads(1).seed(123).overlap(OverlapMode::kOff).run(g);
  ASSERT_TRUE(r.distributed.has_value());
  // With the wait inside exchange_begin, every transfer second is spent
  // blocked; the hidden metric can only be a scheduling-jitter epsilon.
  EXPECT_LT(r.distributed->breakdown.comm_hidden, 0.05);
}

}  // namespace
