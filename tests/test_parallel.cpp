// Tests for the per-rank threading layer (util/parallel.hpp) and the
// determinism contract it promises: every engine returns the same community
// vector and the SAME MODULARITY BITS at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "dlouvain.hpp"
#include "gen/rmat.hpp"
#include "gen/simple.hpp"
#include "graph/csr.hpp"
#include "louvain/shared.hpp"
#include "util/parallel.hpp"

namespace {

using namespace dlouvain;

// ---------------------------------------------------------------------------
// ThreadPool / parallel_for

TEST(ThreadPool, CallerParticipatesAsThreadZero) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::vector<int> hits(3, 0);
  pool.run([&](int tid) { hits[static_cast<std::size_t>(tid)] += 1; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ThreadPool, NonPositiveThreadsPicksHardwareConcurrency) {
  util::ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  util::ThreadPool pool(2);
  EXPECT_THROW(
      pool.run([](int) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The pool must survive a throwing job.
  std::atomic<int> ran{0};
  pool.run([&](int) { ++ran; });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ParallelFor, ZeroItemsNeverInvokesBody) {
  util::ThreadPool pool(4);
  bool called = false;
  util::parallel_for(&pool, 0, [&](int, std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, CoversEachIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 7}) {
    util::ThreadPool pool(threads);
    for (const std::int64_t n : {1, 2, 3, 5, 64, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      for (auto& h : hits) h = 0;
      util::parallel_for(&pool, n, [&](int, std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i)
          ++hits[static_cast<std::size_t>(i)];
      });
      for (std::int64_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "threads=" << threads << " n=" << n << " i=" << i;
    }
  }
}

TEST(ParallelFor, NullPoolRunsInline) {
  std::int64_t sum = 0;
  util::parallel_for(nullptr, 10, [&](int tid, std::int64_t begin, std::int64_t end) {
    EXPECT_EQ(tid, 0);
    for (std::int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 45);
}

// ---------------------------------------------------------------------------
// fixed_chunk / tree_reduce / parallel_reduce

TEST(FixedChunk, PartitionsTheRangeExactly) {
  for (const std::int64_t n : {0, 1, 5, 63, 64, 65, 1000}) {
    std::int64_t expect_begin = 0;
    for (std::int64_t c = 0; c < util::kReduceChunks; ++c) {
      const auto [begin, end] = util::fixed_chunk(n, c, util::kReduceChunks);
      EXPECT_EQ(begin, expect_begin) << "n=" << n << " c=" << c;
      EXPECT_GE(end, begin);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, n);
  }
}

TEST(TreeReduce, HandlesEmptyAndSingle) {
  EXPECT_EQ(util::tree_reduce({}), 0.0);
  const double one[] = {42.5};
  EXPECT_EQ(util::tree_reduce(one), 42.5);
}

TEST(TreeReduce, SumsEveryElement) {
  std::vector<double> values(static_cast<std::size_t>(util::kReduceChunks));
  std::iota(values.begin(), values.end(), 1.0);
  // Integers up to 64 sum exactly in doubles regardless of association.
  EXPECT_EQ(util::tree_reduce(values), 64.0 * 65.0 / 2.0);
}

TEST(ParallelReduce, BitwiseIdenticalAcrossThreadCounts) {
  // Values chosen so the sum is association-sensitive: a naive left fold and
  // a chunked fold genuinely differ in the last bits, which is exactly what
  // the fixed chunking must hide from the thread count.
  const std::int64_t n = 10007;
  const auto partial = [&](std::int64_t begin, std::int64_t end) {
    double s = 0;
    for (std::int64_t i = begin; i < end; ++i)
      s += 1.0 / (1.0 + static_cast<double>(i) * 1.618033988749895);
    return s;
  };
  util::ThreadPool p1(1);
  const double ref = util::parallel_reduce(&p1, n, partial);
  for (const int threads : {2, 3, 4, 8}) {
    util::ThreadPool pool(threads);
    const double got = util::parallel_reduce(&pool, n, partial);
    EXPECT_EQ(got, ref) << "threads=" << threads;  // bitwise, not near
  }
  EXPECT_EQ(util::parallel_reduce(nullptr, n, partial), ref);
  EXPECT_EQ(util::parallel_reduce(&p1, 0, partial), 0.0);
}

// ---------------------------------------------------------------------------
// stable_sort_parallel

TEST(StableSortParallel, MatchesStdStableSort) {
  // Key/tag pairs with heavy key duplication: any instability or
  // thread-dependent merge order shows up as a tag permutation.
  struct Item {
    int key;
    int tag;
    bool operator==(const Item&) const = default;
  };
  std::uint64_t state = 12345;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>(state >> 33);
  };
  for (const std::size_t n : {0ul, 1ul, 2ul, 100ul, 127ul, 128ul, 5000ul}) {
    std::vector<Item> input(n);
    for (std::size_t i = 0; i < n; ++i)
      input[i] = Item{next() % 17, static_cast<int>(i)};
    auto expect = input;
    std::stable_sort(expect.begin(), expect.end(),
                     [](const Item& a, const Item& b) { return a.key < b.key; });
    for (const int threads : {1, 2, 4}) {
      util::ThreadPool pool(threads);
      auto got = input;
      util::stable_sort_parallel(&pool, got,
                                 [](const Item& a, const Item& b) { return a.key < b.key; });
      EXPECT_EQ(got, expect) << "threads=" << threads << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// parse_variant

TEST(ParseVariant, AcceptsTheCliTokens) {
  EXPECT_EQ(core::parse_variant("baseline"), core::Variant::kBaseline);
  EXPECT_EQ(core::parse_variant("tc"), core::Variant::kThresholdCycling);
  EXPECT_EQ(core::parse_variant("threshold-cycling"), core::Variant::kThresholdCycling);
  EXPECT_EQ(core::parse_variant("et"), core::Variant::kEt);
  EXPECT_EQ(core::parse_variant("etc"), core::Variant::kEtc);
}

TEST(ParseVariant, IsCaseInsensitive) {
  EXPECT_EQ(core::parse_variant("ETC"), core::Variant::kEtc);
  EXPECT_EQ(core::parse_variant("Baseline"), core::Variant::kBaseline);
}

TEST(ParseVariant, RejectsUnknownNames) {
  EXPECT_EQ(core::parse_variant(""), std::nullopt);
  EXPECT_EQ(core::parse_variant("et(0.25)"), std::nullopt);
  EXPECT_EQ(core::parse_variant("leiden"), std::nullopt);
}

// ---------------------------------------------------------------------------
// Engine determinism: the tentpole acceptance criterion. Same community
// vector, bitwise-identical modularity, at every thread count.

graph::Csr unstructured_graph() {
  gen::RmatParams params;
  params.scale = 7;  // 128 vertices -- small enough for a 1-core CI box
  params.edges_per_vertex = 8;
  params.seed = 99;
  const auto g = gen::rmat(params);
  return graph::from_edges(g.num_vertices, g.edges);
}

TEST(Determinism, SharedEngineIsThreadCountInvariant) {
  const auto g = unstructured_graph();
  louvain::LouvainConfig cfg;
  const auto ref = louvain::louvain_shared(g, cfg, 1);
  for (const int threads : {2, 4}) {
    const auto got = louvain::louvain_shared(g, cfg, threads);
    EXPECT_EQ(got.community, ref.community) << "threads=" << threads;
    EXPECT_EQ(got.modularity, ref.modularity) << "threads=" << threads;
  }
}

TEST(Determinism, SharedEngineWithEtIsThreadCountInvariant) {
  const auto g = unstructured_graph();
  louvain::LouvainConfig cfg;
  cfg.early_termination = true;
  cfg.et_alpha = 0.25;
  const auto ref = louvain::louvain_shared(g, cfg, 1);
  for (const int threads : {2, 4}) {
    const auto got = louvain::louvain_shared(g, cfg, threads);
    EXPECT_EQ(got.community, ref.community) << "threads=" << threads;
    EXPECT_EQ(got.modularity, ref.modularity) << "threads=" << threads;
  }
}

class DistDeterminism : public ::testing::TestWithParam<std::tuple<int, Variant>> {};

TEST_P(DistDeterminism, ThreadCountNeverChangesTheResult) {
  const auto [ranks, variant] = GetParam();
  const auto g = unstructured_graph();

  const auto plan_for = [&](int threads) {
    return Plan::distributed(ranks).threads(threads).variant(variant).alpha(0.25);
  };
  const auto ref = plan_for(1).run(g);
  for (const int threads : {2, 4}) {
    const auto got = plan_for(threads).run(g);
    EXPECT_EQ(got.community, ref.community)
        << "ranks=" << ranks << " threads=" << threads;
    EXPECT_EQ(got.modularity, ref.modularity)  // bitwise, not near
        << "ranks=" << ranks << " threads=" << threads;
    EXPECT_EQ(got.phases, ref.phases);
    EXPECT_EQ(got.total_iterations, ref.total_iterations);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RanksTimesVariants, DistDeterminism,
    ::testing::Combine(::testing::Values(1, 4),
                       ::testing::Values(Variant::kBaseline, Variant::kEtc)),
    [](const auto& info) {
      return std::string(std::get<1>(info.param) == Variant::kBaseline ? "baseline"
                                                                       : "etc") +
             "_p" + std::to_string(std::get<0>(info.param));
    });

// ---------------------------------------------------------------------------
// Plan front door sanity

TEST(Plan, AllEnginesAgreeOnObviousStructure) {
  const auto generated = gen::clique_chain(4, 5);
  const auto g = graph::from_edges(generated.num_vertices, generated.edges);
  for (const auto plan :
       {Plan::serial(), Plan::shared(2), Plan::distributed(2).threads(2)}) {
    const auto result = plan.run(g);
    EXPECT_EQ(result.num_communities, 4);
    EXPECT_NEAR(result.modularity, 0.68, 0.03);
    EXPECT_EQ(result.community.size(), 20u);
  }
}

TEST(Plan, MaterializesConfigsFaithfully) {
  const auto plan = Plan::distributed(8)
                        .threads(4)
                        .variant(Variant::kEtc)
                        .alpha(0.125)
                        .threshold(1e-4)
                        .resolution(1.5)
                        .seed(42)
                        .coloring();
  EXPECT_EQ(plan.engine(), Engine::kDistributed);
  EXPECT_EQ(plan.num_ranks(), 8);
  const auto cfg = plan.dist_config();
  EXPECT_EQ(cfg.variant, Variant::kEtc);
  EXPECT_TRUE(cfg.base.early_termination);
  EXPECT_EQ(cfg.base.et_alpha, 0.125);
  EXPECT_EQ(cfg.base.threshold, 1e-4);
  EXPECT_EQ(cfg.base.resolution, 1.5);
  EXPECT_EQ(cfg.base.seed, 42u);
  EXPECT_TRUE(cfg.use_coloring);
  EXPECT_EQ(cfg.threads_per_rank, 4);
}

TEST(Plan, ResultCarriesEngineDetail) {
  const auto generated = gen::clique_chain(3, 4);
  const auto g = graph::from_edges(generated.num_vertices, generated.edges);

  const auto dist = Plan::distributed(2).run(g);
  ASSERT_TRUE(dist.distributed.has_value());
  EXPECT_FALSE(dist.local.has_value());
  EXPECT_GT(dist.distributed->messages, 0);

  const auto serial = Plan::serial().run(g);
  ASSERT_TRUE(serial.local.has_value());
  EXPECT_FALSE(serial.distributed.has_value());
  EXPECT_EQ(serial.engine, Engine::kSerial);
}

}  // namespace
