// Tests for the graph substrate: CSR assembly, partitions, the distributed
// graph (ghost discovery = paper Algorithm 4), and binary I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numeric>

#include "comm/world.hpp"
#include "graph/binary_io.hpp"
#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "graph/partition.hpp"

namespace dg = dlouvain::graph;
namespace dc = dlouvain::comm;
using dlouvain::Edge;
using dlouvain::EdgeId;
using dlouvain::VertexId;
using dlouvain::Weight;

namespace {

/// Triangle 0-1-2 plus pendant 3 attached to 2.
std::vector<Edge> triangle_plus_pendant() {
  return {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}, {2, 3, 1.0}};
}

}  // namespace

TEST(Csr, BuildsSymmetricFromUndirectedEdges) {
  const auto g = dg::from_edges(4, triangle_plus_pendant());
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_arcs(), 8);  // 4 undirected edges -> 8 arcs
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(2), 3);
  EXPECT_EQ(g.degree(3), 1);
}

TEST(Csr, NeighborsAreSortedAndWeighted) {
  const auto g = dg::from_edges(4, triangle_plus_pendant());
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].dst, 0);
  EXPECT_EQ(nbrs[1].dst, 1);
  EXPECT_EQ(nbrs[2].dst, 3);
  for (const auto& e : nbrs) EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST(Csr, CoalesceMergesParallelEdges) {
  std::vector<Edge> edges{{0, 1, 1.0}, {0, 1, 2.5}};
  const auto g = dg::from_edges(2, edges);
  EXPECT_EQ(g.num_arcs(), 2);  // one merged arc each direction
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 3.5);
  EXPECT_DOUBLE_EQ(g.neighbors(1)[0].weight, 3.5);
}

TEST(Csr, SelfLoopCountsTwiceInDegree) {
  // Vertex 0 has a self loop of weight 2 and an edge to 1 of weight 1.
  std::vector<Edge> edges{{0, 0, 2.0}, {0, 1, 1.0}};
  const auto g = dg::from_edges(2, edges);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 5.0);  // 2*2 + 1
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 1.0);
  EXPECT_DOUBLE_EQ(g.total_arc_weight(), 6.0);  // 2m
}

TEST(Csr, DropSelfLoopsOption) {
  dg::BuildOptions opts;
  opts.drop_self_loops = true;
  const auto g = dg::build_csr(2, {{0, 0, 2.0}, {0, 1, 1.0}}, opts);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Csr, TotalArcWeightIsTwiceEdgeWeight) {
  const auto g = dg::from_edges(4, triangle_plus_pendant());
  EXPECT_DOUBLE_EQ(g.total_arc_weight(), 8.0);  // 4 unit edges -> 2m = 8
}

TEST(Csr, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(dg::from_edges(2, {{0, 5, 1.0}}), std::out_of_range);
}

TEST(Csr, EmptyGraph) {
  const auto g = dg::from_edges(3, {});
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_arcs(), 0);
  EXPECT_DOUBLE_EQ(g.total_arc_weight(), 0.0);
}

TEST(Partition, EvenVerticesSpreadsRemainder) {
  const auto part = dg::partition_even_vertices(10, 4);
  EXPECT_EQ(part.num_ranks(), 4);
  EXPECT_EQ(part.num_vertices(), 10);
  EXPECT_EQ(part.count(0), 3);
  EXPECT_EQ(part.count(1), 3);
  EXPECT_EQ(part.count(2), 2);
  EXPECT_EQ(part.count(3), 2);
}

TEST(Partition, OwnerIsConsistentWithIntervals) {
  const auto part = dg::partition_even_vertices(100, 7);
  for (VertexId v = 0; v < 100; ++v) {
    const auto r = part.owner(v);
    EXPECT_GE(v, part.begin(r));
    EXPECT_LT(v, part.end(r));
  }
}

TEST(Partition, OwnerThrowsOutOfRange) {
  const auto part = dg::partition_even_vertices(10, 2);
  EXPECT_THROW((void)part.owner(-1), std::out_of_range);
  EXPECT_THROW((void)part.owner(10), std::out_of_range);
}

TEST(Partition, EvenEdgesBalancesSkewedDegrees) {
  // Vertex 0 carries half of all arcs; edge-balanced split should isolate it.
  std::vector<EdgeId> degree{100, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10};
  const auto part = dg::partition_even_edges(
      11, 2, [&](VertexId v) { return degree[static_cast<std::size_t>(v)]; });
  EXPECT_EQ(part.num_ranks(), 2);
  // Rank 0 should own just vertex 0 (100 arcs vs 100 arcs for the rest).
  EXPECT_EQ(part.end(0), 1);
}

TEST(Partition, EvenEdgesCoversAllVerticesForAnyP) {
  for (int p : {1, 2, 3, 5, 8}) {
    const auto part =
        dg::partition_even_edges(20, p, [](VertexId) { return EdgeId{3}; });
    EXPECT_EQ(part.num_vertices(), 20);
    VertexId total = 0;
    for (int r = 0; r < p; ++r) total += part.count(r);
    EXPECT_EQ(total, 20);
  }
}

TEST(Partition, MoreRanksThanVerticesLeavesEmptyTails) {
  const auto part = dg::partition_even_vertices(3, 8);
  VertexId total = 0;
  for (int r = 0; r < 8; ++r) total += part.count(r);
  EXPECT_EQ(total, 3);
  for (VertexId v = 0; v < 3; ++v) EXPECT_NO_THROW((void)part.owner(v));
}

class DistGraphAtP : public ::testing::TestWithParam<int> {};

TEST_P(DistGraphAtP, PreservesGlobalInvariants) {
  const int p = GetParam();
  const auto global = dg::from_edges(4, triangle_plus_pendant());
  dc::run(p, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, global);
    EXPECT_EQ(dist.global_n(), 4);
    EXPECT_DOUBLE_EQ(dist.total_weight(), global.total_arc_weight());
    EXPECT_EQ(dist.global_arcs(), global.num_arcs());
    // Each owned vertex's degree matches the global graph.
    for (VertexId gv = dist.v_begin(); gv < dist.v_end(); ++gv) {
      EXPECT_DOUBLE_EQ(dist.weighted_degree(gv), global.weighted_degree(gv));
      EXPECT_EQ(dist.local().degree(dist.to_local(gv)), global.degree(gv));
    }
  });
}

TEST_P(DistGraphAtP, GhostsAreExactlyRemoteEndpoints) {
  const int p = GetParam();
  const auto global = dg::from_edges(4, triangle_plus_pendant());
  dc::run(p, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, global);
    for (const auto gv : dist.ghosts()) {
      EXPECT_FALSE(dist.owns(gv));
      EXPECT_GE(dist.ghost_slot(gv), 0);
    }
    // Every remote endpoint of a local edge is a ghost.
    for (const auto& e : dist.local().edges()) {
      if (!dist.owns(e.dst)) {
        EXPECT_GE(dist.ghost_slot(e.dst), 0);
      }
    }
    // Owned vertices are never ghosts.
    for (VertexId gv = dist.v_begin(); gv < dist.v_end(); ++gv)
      EXPECT_EQ(dist.ghost_slot(gv), -1);
  });
}

TEST_P(DistGraphAtP, MirrorListsMatchGhostLists) {
  const int p = GetParam();
  const auto global = dg::from_edges(4, triangle_plus_pendant());
  dc::run(p, [&](dc::Comm& comm) {
    const auto dist = dg::DistGraph::from_replicated(comm, global);
    // mirrors()[r] on this rank must equal ghosts_by_owner()[me] on rank r.
    // Verify by symmetric exchange: send my ghosts_by_owner to each owner and
    // compare with what DistGraph computed.
    auto expect = comm.alltoallv<VertexId>(dist.ghosts_by_owner());
    ASSERT_EQ(expect.size(), dist.mirrors().size());
    for (std::size_t r = 0; r < expect.size(); ++r) EXPECT_EQ(expect[r], dist.mirrors()[r]);
    // All mirrored vertices are owned here.
    for (const auto& list : dist.mirrors())
      for (const auto gv : list) EXPECT_TRUE(dist.owns(gv));
  });
}

TEST_P(DistGraphAtP, BuildFromScatteredEdgesMatchesReplicated) {
  const int p = GetParam();
  const auto edges = triangle_plus_pendant();
  dc::run(p, [&](dc::Comm& comm) {
    // Scatter: rank r contributes edges r, r+p, r+2p, ... of the list.
    std::vector<Edge> mine;
    for (std::size_t i = comm.rank(); i < edges.size(); i += p) mine.push_back(edges[i]);
    const auto part = dg::partition_even_vertices(4, comm.size());
    const auto dist = dg::DistGraph::build(comm, part, std::move(mine), true);
    EXPECT_DOUBLE_EQ(dist.total_weight(), 8.0);
    EXPECT_EQ(dist.global_arcs(), 8);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, DistGraphAtP, ::testing::Values(1, 2, 3, 4));

TEST(DistGraph, EvenEdgePartitionBalancesArcCounts) {
  // Star graph: hub 0 with 30 leaves. Edge balance should give the hub's rank
  // few additional vertices.
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= 30; ++v) edges.push_back({0, v, 1.0});
  const auto global = dg::from_edges(31, edges);
  dc::run(3, [&](dc::Comm& comm) {
    const auto dist =
        dg::DistGraph::from_replicated(comm, global, dg::PartitionKind::kEvenEdges);
    const auto arcs = comm.allgather<EdgeId>(dist.local().num_arcs());
    const EdgeId max_arcs = *std::max_element(arcs.begin(), arcs.end());
    // 60 arcs over 3 ranks; hub alone has 30. Max should stay near 30, far
    // below a vertex-balanced split where rank 0 would also get 10 leaves.
    EXPECT_LE(max_arcs, 32);
  });
}

TEST(BinaryIo, RoundTripsHeaderAndRecords) {
  const auto path = std::filesystem::temp_directory_path() / "dlel_roundtrip.bin";
  const auto edges = triangle_plus_pendant();
  dg::write_binary(path.string(), 4, edges);

  const auto header = dg::read_binary_header(path.string());
  EXPECT_EQ(header.num_vertices, 4);
  EXPECT_EQ(header.num_edges, 4);

  const auto all = dg::read_binary_slice(path.string(), 0, header.num_edges);
  ASSERT_EQ(all.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(all[i].src, edges[i].src);
    EXPECT_EQ(all[i].dst, edges[i].dst);
    EXPECT_DOUBLE_EQ(all[i].weight, edges[i].weight);
  }
  std::filesystem::remove(path);
}

TEST(BinaryIo, SliceReadsAreDisjointAndComplete) {
  const auto path = std::filesystem::temp_directory_path() / "dlel_slices.bin";
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < 20; ++v) edges.push_back({v, v + 1, 1.0});
  dg::write_binary(path.string(), 20, edges);

  const auto first = dg::read_binary_slice(path.string(), 0, 7);
  const auto second = dg::read_binary_slice(path.string(), 7, 19);
  EXPECT_EQ(first.size(), 7u);
  EXPECT_EQ(second.size(), 12u);
  EXPECT_EQ(first.front().src, 0);
  EXPECT_EQ(second.front().src, 7);
  std::filesystem::remove(path);
}

TEST(BinaryIo, RejectsBadRangeAndBadFile) {
  const auto path = std::filesystem::temp_directory_path() / "dlel_bad.bin";
  dg::write_binary(path.string(), 2, {{0, 1, 1.0}});
  EXPECT_THROW(dg::read_binary_slice(path.string(), 0, 5), std::out_of_range);
  EXPECT_THROW(dg::read_binary_header("/nonexistent/nope.bin"), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(BinaryIo, LoadDistributedMatchesDirectBuild) {
  const auto path = std::filesystem::temp_directory_path() / "dlel_dist.bin";
  const auto edges = triangle_plus_pendant();
  dg::write_binary(path.string(), 4, edges);
  for (int p : {1, 2, 3}) {
    dc::run(p, [&](dc::Comm& comm) {
      const auto dist = dg::load_distributed(comm, path.string());
      EXPECT_EQ(dist.global_n(), 4);
      EXPECT_DOUBLE_EQ(dist.total_weight(), 8.0);
      EXPECT_EQ(dist.global_arcs(), 8);
    });
  }
  std::filesystem::remove(path);
}
